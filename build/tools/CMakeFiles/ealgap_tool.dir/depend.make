# Empty dependencies file for ealgap_tool.
# This may be replaced when dependencies are built.
