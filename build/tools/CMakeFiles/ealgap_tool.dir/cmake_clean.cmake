file(REMOVE_RECURSE
  "CMakeFiles/ealgap_tool.dir/ealgap_tool.cpp.o"
  "CMakeFiles/ealgap_tool.dir/ealgap_tool.cpp.o.d"
  "ealgap_tool"
  "ealgap_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
