# Empty dependencies file for ealgap_tensor.
# This may be replaced when dependencies are built.
