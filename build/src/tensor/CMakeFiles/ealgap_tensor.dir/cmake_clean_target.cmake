file(REMOVE_RECURSE
  "libealgap_tensor.a"
)
