file(REMOVE_RECURSE
  "CMakeFiles/ealgap_tensor.dir/autograd.cc.o"
  "CMakeFiles/ealgap_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/ealgap_tensor.dir/ops.cc.o"
  "CMakeFiles/ealgap_tensor.dir/ops.cc.o.d"
  "CMakeFiles/ealgap_tensor.dir/tensor.cc.o"
  "CMakeFiles/ealgap_tensor.dir/tensor.cc.o.d"
  "libealgap_tensor.a"
  "libealgap_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
