file(REMOVE_RECURSE
  "CMakeFiles/ealgap_baselines.dir/arima.cc.o"
  "CMakeFiles/ealgap_baselines.dir/arima.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/chat.cc.o"
  "CMakeFiles/ealgap_baselines.dir/chat.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/evl.cc.o"
  "CMakeFiles/ealgap_baselines.dir/evl.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/forecaster.cc.o"
  "CMakeFiles/ealgap_baselines.dir/forecaster.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/historical_average.cc.o"
  "CMakeFiles/ealgap_baselines.dir/historical_average.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/neural.cc.o"
  "CMakeFiles/ealgap_baselines.dir/neural.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/recurrent.cc.o"
  "CMakeFiles/ealgap_baselines.dir/recurrent.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/st_norm.cc.o"
  "CMakeFiles/ealgap_baselines.dir/st_norm.cc.o.d"
  "CMakeFiles/ealgap_baselines.dir/st_resnet.cc.o"
  "CMakeFiles/ealgap_baselines.dir/st_resnet.cc.o.d"
  "libealgap_baselines.a"
  "libealgap_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
