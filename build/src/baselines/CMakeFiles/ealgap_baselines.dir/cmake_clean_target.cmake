file(REMOVE_RECURSE
  "libealgap_baselines.a"
)
