# Empty compiler generated dependencies file for ealgap_baselines.
# This may be replaced when dependencies are built.
