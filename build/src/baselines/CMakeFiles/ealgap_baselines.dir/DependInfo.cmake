
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/arima.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/arima.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/arima.cc.o.d"
  "/root/repo/src/baselines/chat.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/chat.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/chat.cc.o.d"
  "/root/repo/src/baselines/evl.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/evl.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/evl.cc.o.d"
  "/root/repo/src/baselines/forecaster.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/forecaster.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/forecaster.cc.o.d"
  "/root/repo/src/baselines/historical_average.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/historical_average.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/historical_average.cc.o.d"
  "/root/repo/src/baselines/neural.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/neural.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/neural.cc.o.d"
  "/root/repo/src/baselines/recurrent.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/recurrent.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/recurrent.cc.o.d"
  "/root/repo/src/baselines/st_norm.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/st_norm.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/st_norm.cc.o.d"
  "/root/repo/src/baselines/st_resnet.cc" "src/baselines/CMakeFiles/ealgap_baselines.dir/st_resnet.cc.o" "gcc" "src/baselines/CMakeFiles/ealgap_baselines.dir/st_resnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ealgap_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ealgap_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ealgap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ealgap_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ealgap_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ealgap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
