file(REMOVE_RECURSE
  "CMakeFiles/ealgap_cluster.dir/dbscan.cc.o"
  "CMakeFiles/ealgap_cluster.dir/dbscan.cc.o.d"
  "CMakeFiles/ealgap_cluster.dir/kmeans.cc.o"
  "CMakeFiles/ealgap_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/ealgap_cluster.dir/optics.cc.o"
  "CMakeFiles/ealgap_cluster.dir/optics.cc.o.d"
  "CMakeFiles/ealgap_cluster.dir/silhouette.cc.o"
  "CMakeFiles/ealgap_cluster.dir/silhouette.cc.o.d"
  "libealgap_cluster.a"
  "libealgap_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
