# Empty compiler generated dependencies file for ealgap_cluster.
# This may be replaced when dependencies are built.
