file(REMOVE_RECURSE
  "libealgap_cluster.a"
)
