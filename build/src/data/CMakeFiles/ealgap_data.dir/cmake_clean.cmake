file(REMOVE_RECURSE
  "CMakeFiles/ealgap_data.dir/aggregate.cc.o"
  "CMakeFiles/ealgap_data.dir/aggregate.cc.o.d"
  "CMakeFiles/ealgap_data.dir/cleaning.cc.o"
  "CMakeFiles/ealgap_data.dir/cleaning.cc.o.d"
  "CMakeFiles/ealgap_data.dir/dataset.cc.o"
  "CMakeFiles/ealgap_data.dir/dataset.cc.o.d"
  "CMakeFiles/ealgap_data.dir/dataset_configs.cc.o"
  "CMakeFiles/ealgap_data.dir/dataset_configs.cc.o.d"
  "CMakeFiles/ealgap_data.dir/event.cc.o"
  "CMakeFiles/ealgap_data.dir/event.cc.o.d"
  "CMakeFiles/ealgap_data.dir/partition.cc.o"
  "CMakeFiles/ealgap_data.dir/partition.cc.o.d"
  "CMakeFiles/ealgap_data.dir/scaler.cc.o"
  "CMakeFiles/ealgap_data.dir/scaler.cc.o.d"
  "CMakeFiles/ealgap_data.dir/synthetic_city.cc.o"
  "CMakeFiles/ealgap_data.dir/synthetic_city.cc.o.d"
  "CMakeFiles/ealgap_data.dir/trip.cc.o"
  "CMakeFiles/ealgap_data.dir/trip.cc.o.d"
  "libealgap_data.a"
  "libealgap_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
