file(REMOVE_RECURSE
  "libealgap_data.a"
)
