
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/aggregate.cc" "src/data/CMakeFiles/ealgap_data.dir/aggregate.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/aggregate.cc.o.d"
  "/root/repo/src/data/cleaning.cc" "src/data/CMakeFiles/ealgap_data.dir/cleaning.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/cleaning.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/ealgap_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/dataset_configs.cc" "src/data/CMakeFiles/ealgap_data.dir/dataset_configs.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/dataset_configs.cc.o.d"
  "/root/repo/src/data/event.cc" "src/data/CMakeFiles/ealgap_data.dir/event.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/event.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/data/CMakeFiles/ealgap_data.dir/partition.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/partition.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/data/CMakeFiles/ealgap_data.dir/scaler.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/scaler.cc.o.d"
  "/root/repo/src/data/synthetic_city.cc" "src/data/CMakeFiles/ealgap_data.dir/synthetic_city.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/synthetic_city.cc.o.d"
  "/root/repo/src/data/trip.cc" "src/data/CMakeFiles/ealgap_data.dir/trip.cc.o" "gcc" "src/data/CMakeFiles/ealgap_data.dir/trip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ealgap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ealgap_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ealgap_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
