# Empty dependencies file for ealgap_data.
# This may be replaced when dependencies are built.
