file(REMOVE_RECURSE
  "CMakeFiles/ealgap_common.dir/csv.cc.o"
  "CMakeFiles/ealgap_common.dir/csv.cc.o.d"
  "CMakeFiles/ealgap_common.dir/flags.cc.o"
  "CMakeFiles/ealgap_common.dir/flags.cc.o.d"
  "CMakeFiles/ealgap_common.dir/logging.cc.o"
  "CMakeFiles/ealgap_common.dir/logging.cc.o.d"
  "CMakeFiles/ealgap_common.dir/rng.cc.o"
  "CMakeFiles/ealgap_common.dir/rng.cc.o.d"
  "CMakeFiles/ealgap_common.dir/status.cc.o"
  "CMakeFiles/ealgap_common.dir/status.cc.o.d"
  "CMakeFiles/ealgap_common.dir/table_printer.cc.o"
  "CMakeFiles/ealgap_common.dir/table_printer.cc.o.d"
  "CMakeFiles/ealgap_common.dir/time_util.cc.o"
  "CMakeFiles/ealgap_common.dir/time_util.cc.o.d"
  "libealgap_common.a"
  "libealgap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
