file(REMOVE_RECURSE
  "libealgap_common.a"
)
