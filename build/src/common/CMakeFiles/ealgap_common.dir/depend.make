# Empty dependencies file for ealgap_common.
# This may be replaced when dependencies are built.
