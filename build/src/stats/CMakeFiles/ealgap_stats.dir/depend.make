# Empty dependencies file for ealgap_stats.
# This may be replaced when dependencies are built.
