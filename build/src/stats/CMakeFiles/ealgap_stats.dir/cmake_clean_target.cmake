file(REMOVE_RECURSE
  "libealgap_stats.a"
)
