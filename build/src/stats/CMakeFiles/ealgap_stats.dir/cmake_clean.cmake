file(REMOVE_RECURSE
  "CMakeFiles/ealgap_stats.dir/descriptive.cc.o"
  "CMakeFiles/ealgap_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/ealgap_stats.dir/distribution.cc.o"
  "CMakeFiles/ealgap_stats.dir/distribution.cc.o.d"
  "CMakeFiles/ealgap_stats.dir/histogram.cc.o"
  "CMakeFiles/ealgap_stats.dir/histogram.cc.o.d"
  "CMakeFiles/ealgap_stats.dir/metrics.cc.o"
  "CMakeFiles/ealgap_stats.dir/metrics.cc.o.d"
  "CMakeFiles/ealgap_stats.dir/timeseries.cc.o"
  "CMakeFiles/ealgap_stats.dir/timeseries.cc.o.d"
  "libealgap_stats.a"
  "libealgap_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
