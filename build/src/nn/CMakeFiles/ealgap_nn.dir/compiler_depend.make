# Empty compiler generated dependencies file for ealgap_nn.
# This may be replaced when dependencies are built.
