file(REMOVE_RECURSE
  "CMakeFiles/ealgap_nn.dir/conv2d.cc.o"
  "CMakeFiles/ealgap_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/dropout.cc.o"
  "CMakeFiles/ealgap_nn.dir/dropout.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/init.cc.o"
  "CMakeFiles/ealgap_nn.dir/init.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/linear.cc.o"
  "CMakeFiles/ealgap_nn.dir/linear.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/loss.cc.o"
  "CMakeFiles/ealgap_nn.dir/loss.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/module.cc.o"
  "CMakeFiles/ealgap_nn.dir/module.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/optimizer.cc.o"
  "CMakeFiles/ealgap_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/rnn_cells.cc.o"
  "CMakeFiles/ealgap_nn.dir/rnn_cells.cc.o.d"
  "CMakeFiles/ealgap_nn.dir/serialize.cc.o"
  "CMakeFiles/ealgap_nn.dir/serialize.cc.o.d"
  "libealgap_nn.a"
  "libealgap_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
