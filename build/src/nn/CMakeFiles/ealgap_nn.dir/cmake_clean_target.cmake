file(REMOVE_RECURSE
  "libealgap_nn.a"
)
