file(REMOVE_RECURSE
  "CMakeFiles/ealgap_core.dir/ealgap.cc.o"
  "CMakeFiles/ealgap_core.dir/ealgap.cc.o.d"
  "CMakeFiles/ealgap_core.dir/experiment.cc.o"
  "CMakeFiles/ealgap_core.dir/experiment.cc.o.d"
  "CMakeFiles/ealgap_core.dir/extreme_degree.cc.o"
  "CMakeFiles/ealgap_core.dir/extreme_degree.cc.o.d"
  "CMakeFiles/ealgap_core.dir/global_impact.cc.o"
  "CMakeFiles/ealgap_core.dir/global_impact.cc.o.d"
  "CMakeFiles/ealgap_core.dir/rollout.cc.o"
  "CMakeFiles/ealgap_core.dir/rollout.cc.o.d"
  "libealgap_core.a"
  "libealgap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
