# Empty compiler generated dependencies file for ealgap_core.
# This may be replaced when dependencies are built.
