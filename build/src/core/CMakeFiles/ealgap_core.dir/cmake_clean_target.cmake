file(REMOVE_RECURSE
  "libealgap_core.a"
)
