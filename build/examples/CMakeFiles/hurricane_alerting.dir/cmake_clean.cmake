file(REMOVE_RECURSE
  "CMakeFiles/hurricane_alerting.dir/hurricane_alerting.cpp.o"
  "CMakeFiles/hurricane_alerting.dir/hurricane_alerting.cpp.o.d"
  "hurricane_alerting"
  "hurricane_alerting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hurricane_alerting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
