# Empty dependencies file for hurricane_alerting.
# This may be replaced when dependencies are built.
