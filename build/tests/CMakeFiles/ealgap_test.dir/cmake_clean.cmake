file(REMOVE_RECURSE
  "CMakeFiles/ealgap_test.dir/ealgap_test.cc.o"
  "CMakeFiles/ealgap_test.dir/ealgap_test.cc.o.d"
  "ealgap_test"
  "ealgap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ealgap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
