# Empty dependencies file for ealgap_test.
# This may be replaced when dependencies are built.
