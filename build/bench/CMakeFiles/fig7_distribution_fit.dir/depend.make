# Empty dependencies file for fig7_distribution_fit.
# This may be replaced when dependencies are built.
