file(REMOVE_RECURSE
  "CMakeFiles/fig7_distribution_fit.dir/fig7_distribution_fit.cpp.o"
  "CMakeFiles/fig7_distribution_fit.dir/fig7_distribution_fit.cpp.o.d"
  "fig7_distribution_fit"
  "fig7_distribution_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_distribution_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
