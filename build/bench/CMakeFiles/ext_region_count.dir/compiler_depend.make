# Empty compiler generated dependencies file for ext_region_count.
# This may be replaced when dependencies are built.
