file(REMOVE_RECURSE
  "CMakeFiles/ext_region_count.dir/ext_region_count.cpp.o"
  "CMakeFiles/ext_region_count.dir/ext_region_count.cpp.o.d"
  "ext_region_count"
  "ext_region_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_region_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
