# Empty dependencies file for table2_nyc_bike.
# This may be replaced when dependencies are built.
