file(REMOVE_RECURSE
  "CMakeFiles/table2_nyc_bike.dir/table2_nyc_bike.cpp.o"
  "CMakeFiles/table2_nyc_bike.dir/table2_nyc_bike.cpp.o.d"
  "CMakeFiles/table2_nyc_bike.dir/table_common.cc.o"
  "CMakeFiles/table2_nyc_bike.dir/table_common.cc.o.d"
  "table2_nyc_bike"
  "table2_nyc_bike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nyc_bike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
