file(REMOVE_RECURSE
  "CMakeFiles/ext_dropoffs.dir/ext_dropoffs.cpp.o"
  "CMakeFiles/ext_dropoffs.dir/ext_dropoffs.cpp.o.d"
  "ext_dropoffs"
  "ext_dropoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dropoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
