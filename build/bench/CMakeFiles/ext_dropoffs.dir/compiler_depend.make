# Empty compiler generated dependencies file for ext_dropoffs.
# This may be replaced when dependencies are built.
