
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_dropoffs.cpp" "bench/CMakeFiles/ext_dropoffs.dir/ext_dropoffs.cpp.o" "gcc" "bench/CMakeFiles/ext_dropoffs.dir/ext_dropoffs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ealgap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ealgap_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ealgap_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ealgap_data.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ealgap_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ealgap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ealgap_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ealgap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
