# Empty dependencies file for ext_multistep.
# This may be replaced when dependencies are built.
