file(REMOVE_RECURSE
  "CMakeFiles/ext_multistep.dir/ext_multistep.cpp.o"
  "CMakeFiles/ext_multistep.dir/ext_multistep.cpp.o.d"
  "ext_multistep"
  "ext_multistep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multistep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
