# Empty compiler generated dependencies file for table4_nyc_taxi.
# This may be replaced when dependencies are built.
