file(REMOVE_RECURSE
  "CMakeFiles/table4_nyc_taxi.dir/table4_nyc_taxi.cpp.o"
  "CMakeFiles/table4_nyc_taxi.dir/table4_nyc_taxi.cpp.o.d"
  "CMakeFiles/table4_nyc_taxi.dir/table_common.cc.o"
  "CMakeFiles/table4_nyc_taxi.dir/table_common.cc.o.d"
  "table4_nyc_taxi"
  "table4_nyc_taxi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_nyc_taxi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
