file(REMOVE_RECURSE
  "CMakeFiles/table5_chicago_taxi.dir/table5_chicago_taxi.cpp.o"
  "CMakeFiles/table5_chicago_taxi.dir/table5_chicago_taxi.cpp.o.d"
  "CMakeFiles/table5_chicago_taxi.dir/table_common.cc.o"
  "CMakeFiles/table5_chicago_taxi.dir/table_common.cc.o.d"
  "table5_chicago_taxi"
  "table5_chicago_taxi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_chicago_taxi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
