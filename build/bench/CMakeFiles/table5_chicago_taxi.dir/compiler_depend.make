# Empty compiler generated dependencies file for table5_chicago_taxi.
# This may be replaced when dependencies are built.
