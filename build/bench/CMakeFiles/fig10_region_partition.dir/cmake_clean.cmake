file(REMOVE_RECURSE
  "CMakeFiles/fig10_region_partition.dir/fig10_region_partition.cpp.o"
  "CMakeFiles/fig10_region_partition.dir/fig10_region_partition.cpp.o.d"
  "fig10_region_partition"
  "fig10_region_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_region_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
