file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_heatmaps.dir/fig14_15_heatmaps.cpp.o"
  "CMakeFiles/fig14_15_heatmaps.dir/fig14_15_heatmaps.cpp.o.d"
  "fig14_15_heatmaps"
  "fig14_15_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
