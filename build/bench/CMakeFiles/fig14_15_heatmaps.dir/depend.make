# Empty dependencies file for fig14_15_heatmaps.
# This may be replaced when dependencies are built.
