# Empty dependencies file for fig2_3_station_impact.
# This may be replaced when dependencies are built.
