file(REMOVE_RECURSE
  "CMakeFiles/fig2_3_station_impact.dir/fig2_3_station_impact.cpp.o"
  "CMakeFiles/fig2_3_station_impact.dir/fig2_3_station_impact.cpp.o.d"
  "fig2_3_station_impact"
  "fig2_3_station_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_3_station_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
