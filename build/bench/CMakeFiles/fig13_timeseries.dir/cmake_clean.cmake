file(REMOVE_RECURSE
  "CMakeFiles/fig13_timeseries.dir/fig13_timeseries.cpp.o"
  "CMakeFiles/fig13_timeseries.dir/fig13_timeseries.cpp.o.d"
  "fig13_timeseries"
  "fig13_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
