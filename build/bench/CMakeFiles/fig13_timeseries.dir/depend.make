# Empty dependencies file for fig13_timeseries.
# This may be replaced when dependencies are built.
