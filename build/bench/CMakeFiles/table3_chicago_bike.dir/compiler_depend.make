# Empty compiler generated dependencies file for table3_chicago_bike.
# This may be replaced when dependencies are built.
