file(REMOVE_RECURSE
  "CMakeFiles/table3_chicago_bike.dir/table3_chicago_bike.cpp.o"
  "CMakeFiles/table3_chicago_bike.dir/table3_chicago_bike.cpp.o.d"
  "CMakeFiles/table3_chicago_bike.dir/table_common.cc.o"
  "CMakeFiles/table3_chicago_bike.dir/table_common.cc.o.d"
  "table3_chicago_bike"
  "table3_chicago_bike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_chicago_bike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
