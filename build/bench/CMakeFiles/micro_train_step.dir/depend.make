# Empty dependencies file for micro_train_step.
# This may be replaced when dependencies are built.
