file(REMOVE_RECURSE
  "CMakeFiles/micro_train_step.dir/micro_train_step.cpp.o"
  "CMakeFiles/micro_train_step.dir/micro_train_step.cpp.o.d"
  "micro_train_step"
  "micro_train_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_train_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
