file(REMOVE_RECURSE
  "CMakeFiles/fig4_5_region_profiles.dir/fig4_5_region_profiles.cpp.o"
  "CMakeFiles/fig4_5_region_profiles.dir/fig4_5_region_profiles.cpp.o.d"
  "fig4_5_region_profiles"
  "fig4_5_region_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_5_region_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
