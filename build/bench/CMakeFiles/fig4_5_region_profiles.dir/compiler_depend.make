# Empty compiler generated dependencies file for fig4_5_region_profiles.
# This may be replaced when dependencies are built.
