// Responsive resource allocation (the paper's Fig. 1 application): use
// EALGAP's next-step predictions over the final test day to plan per-region
// rebalancing capacity, and show how the plan shifts when a hurricane is
// forecast.
//
//   ./build/examples/capacity_planning [--epochs 15] [--buffer 1.25]

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace {

using namespace ealgap;

// Per-region peak predicted demand over one day; the planning quantity.
Result<std::vector<double>> DailyPeaks(Forecaster& model,
                                       const core::PreparedData& prepared,
                                       int64_t day_begin) {
  const int n = prepared.dataset.series().num_regions;
  std::vector<double> peaks(n, 0.0);
  for (int64_t s = day_begin; s < day_begin + 24; ++s) {
    EALGAP_ASSIGN_OR_RETURN(std::vector<double> pred,
                            model.Predict(prepared.dataset, s));
    for (int r = 0; r < n; ++r) peaks[r] = std::max(peaks[r], pred[r]);
  }
  return peaks;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double buffer = flags.GetDouble("buffer", 1.25);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = 2e-3f;
  train.seed = flags.GetInt("seed", 7);

  // Two scenarios on the same city: a quiet stretch and the hurricane.
  TablePrinter table(
      "Per-region peak-hour capacity plan (docks to provision, buffer " +
          TablePrinter::Num(buffer, 2) + "x)",
      {"region", "normal_peak", "normal_docks", "hurricane_peak",
       "hurricane_docks", "freed"});
  std::vector<std::vector<double>> peaks(2);
  for (int scenario = 0; scenario < 2; ++scenario) {
    data::PeriodConfig config = data::MakePeriodConfig(
        data::City::kNycBike,
        scenario == 0 ? data::Period::kNormal : data::Period::kWeather,
        train.seed, flags.GetDouble("scale", 1.5));
    auto prepared = core::PrepareData(config);
    if (!prepared.ok()) {
      std::cerr << prepared.status().ToString() << "\n";
      return 1;
    }
    auto model = core::MakeForecaster("EALGAP", *prepared);
    if (!model.ok() ||
        !(*model)->Fit(prepared->dataset, prepared->split, train).ok()) {
      std::cerr << "training failed\n";
      return 1;
    }
    // Plan for the event day (5th test day in both configs).
    const int64_t day_begin = prepared->split.test_begin + 4 * 24;
    auto result = DailyPeaks(**model, *prepared, day_begin);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    peaks[scenario] = *result;
  }
  double total_freed = 0;
  for (size_t r = 0; r < peaks[0].size(); ++r) {
    const int normal_docks = static_cast<int>(peaks[0][r] * buffer + 0.5);
    const int event_docks = static_cast<int>(peaks[1][r] * buffer + 0.5);
    total_freed += std::max(0, normal_docks - event_docks);
    table.AddRow({std::to_string(r), TablePrinter::Num(peaks[0][r], 0),
                  std::to_string(normal_docks),
                  TablePrinter::Num(peaks[1][r], 0),
                  std::to_string(event_docks),
                  std::to_string(std::max(0, normal_docks - event_docks))});
  }
  table.Print(std::cout);
  std::cout << "\nHurricane-aware planning frees "
            << static_cast<int>(total_freed)
            << " dock-slots citywide for emergency reallocation.\n";
  return 0;
}
