// Quickstart: generate a synthetic city, run the full EALGAP pipeline, and
// compare EALGAP against a GRU baseline on a hurricane test period.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--epochs 12] [--seed 7]

#include <iostream>

#include "common/flags.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace ealgap;
  Flags flags(argc, argv);

  // 1. Describe the experiment: NYC-bike-like city, hurricane landing in
  //    the 10-day test window (paper Table II, "Hurricane" column).
  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather,
      flags.GetInt("seed", 7), flags.GetDouble("scale", 1.0));

  // 2. Run the data pipeline: synthesize trips, clean them, cluster the
  //    stations into regions, aggregate to hourly counts, build windows.
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  const auto& city = prepared->city;
  std::cout << "generated " << city.trips.size() << " trips at "
            << city.stations.size() << " stations\n";
  std::cout << "cleaning removed " << prepared->cleaning.removed_bad_timestamps
            << " bad-timestamp and " << prepared->cleaning.removed_short
            << " sub-minute trips\n";
  std::cout << "partitioned into " << prepared->partition.num_regions
            << " regions; series has " << prepared->dataset.series().total_steps()
            << " hourly steps\n\n";

  // 3. Train and evaluate two schemes on the held-out test days.
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 12));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.seed = flags.GetInt("seed", 7);
  for (const std::string& scheme : {std::string("GRU"), std::string("EALGAP")}) {
    auto result = core::RunScheme(scheme, *prepared, train);
    if (!result.ok()) {
      std::cerr << scheme << ": " << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << scheme << ":  ER " << result->metrics.er << "  MSLE "
              << result->metrics.msle << "  R2 " << result->metrics.r2
              << "  (fit " << result->fit_seconds << " s)\n";
  }
  std::cout << "\nLower ER/MSLE and higher R2 are better; EALGAP should lead "
               "during the hurricane window.\n";
  return 0;
}
