// Bring-your-own-data walkthrough: builds a custom synthetic city, writes
// the raw trips to the interchange CSV format, then runs every pipeline
// stage explicitly — read, clean, partition, aggregate, window — exactly as
// a user with their own trip feed would.
//
//   ./build/examples/custom_city [--stations 60] [--days 45]

#include <iostream>

#include "common/flags.h"
#include "core/ealgap.h"
#include "data/aggregate.h"
#include "data/cleaning.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic_city.h"
#include "data/trip.h"
#include "stats/metrics.h"

int main(int argc, char** argv) {
  using namespace ealgap;
  Flags flags(argc, argv);

  // 1. A custom city: 10 regions, one rainstorm in the final week.
  data::CityConfig city_config;
  city_config.name = "rivertown";
  city_config.num_stations = static_cast<int>(flags.GetInt("stations", 60));
  city_config.num_regions = 10;
  city_config.num_days = static_cast<int>(flags.GetInt("days", 45));
  city_config.start_date = {2022, 4, 1};
  city_config.base_region_hour_rate = 9.0;
  city_config.seed = flags.GetInt("seed", 123);
  data::AnomalyEvent storm;
  storm.kind = data::EventKind::kRainstorm;
  storm.start_date = AddDays(city_config.start_date, city_config.num_days - 6);
  storm.end_date = AddDays(storm.start_date, 1);
  storm.severity = 0.3;
  city_config.events.push_back(storm);

  auto city = data::GenerateCity(city_config);
  if (!city.ok()) {
    std::cerr << city.status().ToString() << "\n";
    return 1;
  }

  // 2. Round-trip through the CSV interchange format (your own feed would
  //    start here).
  const std::string trips_csv = "/tmp/rivertown_trips.csv";
  const std::string stations_csv = "/tmp/rivertown_stations.csv";
  if (!data::WriteTripsCsv(trips_csv, city->trips).ok() ||
      !data::WriteStationsCsv(stations_csv, city->stations).ok()) {
    std::cerr << "CSV write failed\n";
    return 1;
  }
  auto trips = data::ReadTripsCsv(trips_csv);
  auto stations = data::ReadStationsCsv(stations_csv);
  if (!trips.ok() || !stations.ok()) {
    std::cerr << "CSV read failed\n";
    return 1;
  }
  std::cout << "loaded " << trips->size() << " trips / " << stations->size()
            << " stations from " << trips_csv << "\n";

  // 3. Clean with the paper's rules.
  data::CleaningOptions cleaning;
  cleaning.min_avg_hourly_pickups = 0.05;
  data::CleaningReport report;
  auto clean = data::CleanTrips(*trips, *stations, cleaning, &report);
  std::cout << "cleaning: dropped " << report.removed_bad_timestamps
            << " bad-timestamp, " << report.removed_short << " sub-minute, "
            << report.removed_dead_station << " dead-station trips\n";

  // 4. Partition stations into regions (k-means on coordinates).
  data::PartitionOptions partition_options;
  partition_options.num_regions = 10;
  auto partition = data::PartitionStations(*stations, partition_options);
  if (!partition.ok()) {
    std::cerr << partition.status().ToString() << "\n";
    return 1;
  }

  // 5. Aggregate to hourly region counts and build windowed samples.
  auto series =
      data::AggregateTrips(clean, *stations, *partition,
                           city_config.start_date, city_config.num_days);
  if (!series.ok()) {
    std::cerr << series.status().ToString() << "\n";
    return 1;
  }
  data::DatasetOptions dataset_options;
  dataset_options.history_length = 5;
  dataset_options.num_windows = 3;
  auto dataset = data::SlidingWindowDataset::Create(std::move(series).value(),
                                                    dataset_options);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  auto split = data::MakeChronoSplit(*dataset);
  if (!split.ok()) {
    std::cerr << split.status().ToString() << "\n";
    return 1;
  }

  // 6. Train EALGAP and score the held-out days (storm included).
  core::EalgapForecaster model;
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 12));
  train.learning_rate = 2e-3f;
  if (!model.Fit(*dataset, *split, train).ok()) {
    std::cerr << "training failed\n";
    return 1;
  }
  std::vector<double> pred, truth;
  if (!model.PredictRange(*dataset, split->test_begin, split->test_end, &pred,
                          &truth)
           .ok()) {
    std::cerr << "prediction failed\n";
    return 1;
  }
  auto metrics = stats::ComputeMetrics(pred, truth);
  std::cout << "rivertown test metrics: ER " << metrics.er << "  MSLE "
            << metrics.msle << "  R2 " << metrics.r2 << "\n";
  return 0;
}
