// CLI for running any subset of schemes on any (city, period) pair:
//
//   ./build/examples/compare_baselines --city nyc_bike --period weather \
//       --schemes HA,GRU,EALGAP --epochs 15

#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace ealgap;
  Flags flags(argc, argv);

  data::City city = data::City::kNycBike;
  const std::string city_name = flags.GetString("city", "nyc_bike");
  for (data::City c : data::AllCities()) {
    if (city_name == data::CityName(c)) city = c;
  }
  data::Period period = data::Period::kNormal;
  const std::string period_name = flags.GetString("period", "normal");
  if (period_name == "weather") period = data::Period::kWeather;
  if (period_name == "holiday") period = data::Period::kHoliday;

  std::vector<std::string> schemes;
  std::istringstream is(flags.GetString("schemes", "HA,GRU,EALGAP"));
  std::string item;
  while (std::getline(is, item, ',')) schemes.push_back(item);

  data::PeriodConfig config = data::MakePeriodConfig(
      city, period, flags.GetInt("seed", 7), flags.GetDouble("scale", 1.5));
  if (flags.Has("turbulence")) {
    config.generator.turbulence_sigma = flags.GetDouble("turbulence", 0.09);
  }
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.seed = flags.GetInt("seed", 7);

  TablePrinter table(std::string(data::CityName(city)) + " / " + config.label,
                     {"scheme", "ER", "MSLE", "R2", "fit_s"});
  for (const std::string& scheme : schemes) {
    auto result = core::RunScheme(scheme, *prepared, train);
    if (!result.ok()) {
      std::cerr << scheme << ": " << result.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({scheme, TablePrinter::Num(result->metrics.er),
                  TablePrinter::Num(result->metrics.msle),
                  TablePrinter::Num(result->metrics.r2),
                  TablePrinter::Num(result->fit_seconds, 1)});
  }
  table.Print(std::cout);
  return 0;
}
