// Extreme-mobility alerting (the paper's Fig. 1 application): train EALGAP
// on the hurricane period, then walk the ten test days emitting an alert
// whenever the predicted citywide mobility falls far below the same-hour
// historical mean. Precision/recall are reported against the ground-truth
// event calendar.
//
//   ./build/examples/hurricane_alerting [--epochs 15] [--threshold 0.2]

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace ealgap;
  Flags flags(argc, argv);
  const double threshold = flags.GetDouble("threshold", 0.18);

  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, flags.GetInt("seed", 7),
      flags.GetDouble("scale", 1.5));
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = 2e-3f;
  auto model = core::MakeForecaster("EALGAP", *prepared);
  if (!model.ok() ||
      !(*model)->Fit(prepared->dataset, prepared->split, train).ok()) {
    std::cerr << "training failed\n";
    return 1;
  }

  const auto& series = prepared->dataset.series();
  const auto& mu = prepared->dataset.mu();  // same-hour matched means
  int true_positive = 0, false_positive = 0, false_negative = 0;
  std::cout << "hour-by-hour alerts (predicted citywide drop > "
            << threshold * 100 << "% vs same-hour history):\n";
  for (int64_t s = prepared->split.test_begin; s < prepared->split.test_end;
       ++s) {
    auto pred = (*model)->Predict(prepared->dataset, s);
    if (!pred.ok()) {
      std::cerr << pred.status().ToString() << "\n";
      return 1;
    }
    double predicted = 0, expected = 0;
    for (int r = 0; r < series.num_regions; ++r) {
      predicted += (*pred)[r];
      expected += mu.data()[r * series.total_steps() + s];
    }
    const double drop = 1.0 - predicted / std::max(expected, 1.0);
    const bool alert = drop > threshold;
    // Ground truth: is a non-mild weather event active at this step's
    // daylight hours?
    bool event_hour = false;
    for (const auto& e : config.generator.events) {
      if (e.kind == data::EventKind::kMildWeather) continue;
      const int h = series.HourOfStep(s);
      if (e.Covers(series.DateOfStep(s)) && h >= 8 && h <= 22) {
        event_hour = true;
      }
    }
    if (alert && event_hour) ++true_positive;
    if (alert && !event_hour) ++false_positive;
    if (!alert && event_hour) ++false_negative;
    if (alert) {
      std::cout << "  ALERT " << FormatDate(series.DateOfStep(s)) << " "
                << series.HourOfStep(s) << ":00  predicted "
                << TablePrinter::Num(predicted, 0) << " vs usual "
                << TablePrinter::Num(expected, 0) << " ("
                << TablePrinter::Num(drop * 100, 0) << "% drop)"
                << (event_hour ? "  [event hour]" : "") << "\n";
    }
  }
  const double precision =
      true_positive + false_positive > 0
          ? double(true_positive) / (true_positive + false_positive)
          : 0.0;
  const double recall =
      true_positive + false_negative > 0
          ? double(true_positive) / (true_positive + false_negative)
          : 0.0;
  std::cout << "\nprecision " << TablePrinter::Num(precision, 2) << "  recall "
            << TablePrinter::Num(recall, 2) << " over "
            << (prepared->split.test_end - prepared->split.test_begin)
            << " test hours\n";
  return 0;
}
