// ealgap_tool — command-line front end for the library's pipeline.
//
// Subcommands:
//   generate  --out-trips T.csv --out-stations S.csv [--city nyc_bike]
//             [--period weather] [--seed N] [--scale F]
//       Synthesizes a city and writes the raw trip/station feeds.
//
//   inspect   --trips T.csv --stations S.csv
//       Prints feed statistics: record counts, date range, cleaning report.
//
//   evaluate  --trips T.csv --stations S.csv --start YYYY-MM-DD --days N
//             [--regions K] [--scheme EALGAP] [--epochs N] [--save ckpt.txt]
//             [--train-state path --checkpoint-every K [--resume]]
//             [--quant]
//       Runs the full pipeline on a trip feed, trains the scheme, and
//       reports the test metrics. --save checkpoints the fitted model.
//       --train-state writes a crash-safe full-training-state snapshot
//       every --checkpoint-every epochs; with --resume an interrupted run
//       continues from it bit-identically to an uninterrupted one.
//
//   experiment [--cities A,B] [--periods normal,weather] [--schemes X,Y]
//              [--epochs N] [--scale F] [--seed N] [--journal J.txt]
//              [--resume] [--state-dir DIR] [--checkpoint-every K]
//       Sweeps cities x periods x schemes, training and evaluating every
//       cell. Each finished cell is recorded atomically in --journal, so
//       an interrupted sweep rerun with --resume skips completed cells.
//       A scheme that fails (e.g. diverges past its rollback budget) is
//       recorded as a failed cell without aborting the sweep. --state-dir
//       adds per-cell train-state checkpoints every --checkpoint-every
//       epochs, letting --resume continue even mid-cell.
//
//   serve     --trips T.csv --stations S.csv --start YYYY-MM-DD --days N
//             --checkpoint ckpt.txt [--regions K] [--seed N]
//             [--repair reject|hold-last|impute] [--deadline-ms D]
//             [--recovery K] [--quant] [--quant-check-every N]
//             [--quant-threshold D] [--quant-pack P.qpack]
//       Loads a checkpointed model, seeds an OnlinePredictor at the start
//       of the test range, and replays the test feed step by step
//       (predict, then observe the realized counts) through the
//       fault-tolerant serving chain, reporting metrics, per-prediction
//       latency, and degradation/guard statistics. --repair sets the
//       input-guard policy for bad values and gaps; --deadline-ms bounds
//       the model's answer time (0 = unbounded); --recovery is the
//       hysteresis: consecutive healthy model answers needed to promote
//       back from a fallback. --quant serves through the int8 quantized
//       forward (DESIGN.md §8g) with a float-parity drift guard:
//       --quant-check-every sets the shadow-probe cadence (0 = off,
//       default 64), --quant-threshold the max tolerated per-region
//       relative drift before the sticky float fallback (default 0.5),
//       and --quant-pack a pack-cache
//       file keyed to the checkpoint's CRC (stale caches are a hard
//       error). --adapt serves through the test-time-adaptation wrapper
//       (DESIGN.md §8h): a per-region CUSUM drift detector over
//       matched-stat residuals triggers bounded micro-fine-tunes on the
//       recent window, committed only when held-out validation improves
//       (otherwise rolled back bit-exactly), with a sticky freeze after
//       --adapt-freeze-after consecutive failures and probe-based
//       recovery after --adapt-probe-after observed steps. Knobs:
//       --adapt-cusum-k/-h (detector allowance/threshold),
//       --adapt-window/-holdout/-min-window (ring sizing),
//       --adapt-cooldown, --adapt-steps/--adapt-lr (micro-fit), and
//       --adapt-shadow-every (frozen-arm A/B cadence). The report adds
//       adaptation attribution and the adapted-vs-frozen ER/MSLE A/B
//       table; exit 3 if any attempt goes unattributed. Arm EALGAP_FAULTS
//       (see src/common/fault_injection.h) to rehearse failures,
//       including serve.adapt.{nan,error,delay,reject}.
//
//   daemon    [--shards N] [--regions-per-shard R] [--days D] [--epochs E]
//             [--ticks T] [--seed S] [--threads W] [--state-dir DIR]
//             [--queue-capacity C] [--batch-max B] [--deadline-ticks K]
//             [--ms-per-tick MS] [--model-deadline-ms MS]
//             [--checkpoint-every K] [--steady-rate X] [--steady-ticks A]
//             [--burst-rate Y] [--burst-ticks B] [--load-seed S]
//             [--quant] [--quant-check-every N] [--quant-threshold D]
//       Overload-safe sharded serving soak (DESIGN.md §8f): builds a
//       synthetic fleet of N shards (R regions each), fits a small EALGAP
//       model per shard, and drives T virtual-time ticks of seeded
//       open-loop load (cycling steady/burst phases) through bounded
//       queues, admission control, deadline budgets, and the
//       watchdog-supervised restart path. Prints the SLO report
//       (throughput, latency percentiles, full shed/degraded/restart
//       attribution, per-region guard quarantines) and the replay digest;
//       exits non-zero if any request went unattributed. --state-dir
//       enables on-disk CRC'd checkpoints so restarts rehearse the
//       recover-from-disk path. --quant serves every shard through the
//       int8 quantized forward with per-shard drift guards (restarts
//       re-wrap the reloaded checkpoint). --adapt (same knobs as serve)
//       adds per-shard test-time adaptation, run single-threaded from the
//       supervisor phase; committed adaptations re-save the shard's model
//       checkpoint and persist the detector state, so quarantine-restarts
//       resume the adapted weights and drift posture — and with --quant
//       the int8 packs are rebuilt after every commit (a failed repack
//       trips the float fallback, never a stale pack). The SLO report
//       folds adaptation attribution across restarts; exit 3 if any
//       attempt goes unattributed. Arm EALGAP_FAULTS with
//       daemon.queue.full / daemon.shard.stall / daemon.shard.crash (plus
//       the nn.* sites, including nn.quant.drift, and the
//       serve.adapt.* sites) for chaos soaks.
//
// Exit code 0 on success; errors go to stderr.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "common/checksum.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/ealgap.h"
#include "core/experiment.h"
#include "data/aggregate.h"
#include "data/cleaning.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic_city.h"
#include "data/trip.h"
#include "serve/adaptive_predictor.h"
#include "serve/daemon.h"
#include "serve/online_predictor.h"
#include "serve/quantized_forecaster.h"
#include "serve/resilient_predictor.h"
#include "stats/metrics.h"

namespace {

using namespace ealgap;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Generate(const Flags& flags) {
  data::City city = data::City::kNycBike;
  for (data::City c : data::AllCities()) {
    if (flags.GetString("city", "nyc_bike") == data::CityName(c)) city = c;
  }
  data::Period period = data::Period::kNormal;
  const std::string p = flags.GetString("period", "normal");
  if (p == "weather") period = data::Period::kWeather;
  if (p == "holiday") period = data::Period::kHoliday;
  data::PeriodConfig config = data::MakePeriodConfig(
      city, period, flags.GetInt("seed", 7), flags.GetDouble("scale", 1.0));
  auto generated = data::GenerateCity(config.generator);
  if (!generated.ok()) return Fail(generated.status());
  const std::string trips = flags.GetString("out-trips", "trips.csv");
  const std::string stations = flags.GetString("out-stations", "stations.csv");
  Status s = data::WriteTripsCsv(trips, generated->trips);
  if (!s.ok()) return Fail(s);
  s = data::WriteStationsCsv(stations, generated->stations);
  if (!s.ok()) return Fail(s);
  std::cout << "wrote " << generated->trips.size() << " trips to " << trips
            << " and " << generated->stations.size() << " stations to "
            << stations << "\n";
  std::cout << "series starts " << FormatDate(config.generator.start_date)
            << " and spans " << config.generator.num_days << " days\n";
  return 0;
}

int Inspect(const Flags& flags) {
  auto trips = data::ReadTripsCsv(flags.GetString("trips", "trips.csv"));
  if (!trips.ok()) return Fail(trips.status());
  auto stations =
      data::ReadStationsCsv(flags.GetString("stations", "stations.csv"));
  if (!stations.ok()) return Fail(stations.status());
  int64_t min_ts = INT64_MAX, max_ts = INT64_MIN;
  for (const auto& t : *trips) {
    if (t.start_seconds > 0) {
      min_ts = std::min(min_ts, t.start_seconds);
      max_ts = std::max(max_ts, t.start_seconds);
    }
  }
  std::cout << "trips: " << trips->size() << "\n";
  std::cout << "stations: " << stations->size() << "\n";
  if (min_ts <= max_ts) {
    std::cout << "first pick-up: " << FormatTimestamp(FromUnixSeconds(min_ts))
              << "\nlast pick-up:  " << FormatTimestamp(FromUnixSeconds(max_ts))
              << "\n";
  }
  std::vector<data::Station> station_copy = *stations;
  data::CleaningOptions cleaning;
  data::CleaningReport report;
  auto clean = data::CleanTrips(*trips, station_copy, cleaning, &report);
  std::cout << "cleaning would drop: " << report.removed_bad_timestamps
            << " bad-timestamp, " << report.removed_short
            << " sub-minute trips (keeping " << report.kept << ")\n";
  return 0;
}

/// Shared by evaluate and serve: trips CSV -> cleaned, partitioned,
/// windowed, chronologically split dataset. The pipeline is deterministic
/// in its flags, so `serve` rebuilds the exact dataset `evaluate`
/// checkpointed against.
int BuildPrepared(const Flags& flags, core::PreparedData* prepared) {
  auto trips = data::ReadTripsCsv(flags.GetString("trips", "trips.csv"));
  if (!trips.ok()) return Fail(trips.status());
  auto stations =
      data::ReadStationsCsv(flags.GetString("stations", "stations.csv"));
  if (!stations.ok()) return Fail(stations.status());
  auto start = ParseDate(flags.GetString("start", ""));
  if (!start.ok()) {
    std::cerr << "error: --start YYYY-MM-DD is required\n";
    return 1;
  }
  const int days = static_cast<int>(flags.GetInt("days", 90));

  data::CleaningOptions cleaning;
  cleaning.min_avg_hourly_pickups = flags.GetDouble("min-pickups", 0.0);
  prepared->stations = *stations;
  auto clean = data::CleanTrips(*trips, prepared->stations, cleaning,
                                &prepared->cleaning);
  data::PartitionOptions popts;
  popts.num_regions = static_cast<int>(flags.GetInt("regions", 20));
  popts.seed = flags.GetInt("seed", 7);
  auto partition = data::PartitionStations(prepared->stations, popts);
  if (!partition.ok()) return Fail(partition.status());
  prepared->partition = std::move(partition).value();
  auto series = data::AggregateTrips(clean, prepared->stations,
                                     prepared->partition, *start, days);
  if (!series.ok()) return Fail(series.status());
  data::DatasetOptions dopts;
  dopts.history_length = static_cast<int>(flags.GetInt("L", 5));
  dopts.num_windows = static_cast<int>(flags.GetInt("M", 3));
  dopts.norm_history = dopts.num_windows;
  auto dataset =
      data::SlidingWindowDataset::Create(std::move(series).value(), dopts);
  if (!dataset.ok()) return Fail(dataset.status());
  prepared->dataset = std::move(dataset).value();
  auto split = data::MakeChronoSplit(prepared->dataset);
  if (!split.ok()) return Fail(split.status());
  prepared->split = *split;
  return 0;
}

/// Per-region guard-quarantine summary: the regions whose inputs tripped
/// the guard most, worst first. Quiet fleets print a one-liner instead of
/// an empty table.
void PrintRegionQuarantines(const std::vector<int64_t>& quarantine) {
  std::vector<std::pair<int64_t, int>> worst;
  for (size_t r = 0; r < quarantine.size(); ++r) {
    if (quarantine[r] > 0) {
      worst.emplace_back(quarantine[r], static_cast<int>(r));
    }
  }
  if (worst.empty()) {
    std::cout << "guard quarantines by region: none\n";
    return;
  }
  std::sort(worst.begin(), worst.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  const size_t shown = std::min<size_t>(worst.size(), 10);
  TablePrinter table("guard quarantines by region (" +
                         std::to_string(worst.size()) + " regions, top " +
                         std::to_string(shown) + ")",
                     {"region", "quarantined-values"});
  for (size_t i = 0; i < shown; ++i) {
    table.AddRow({std::to_string(worst[i].second),
                  std::to_string(worst[i].first)});
  }
  table.Print(std::cout);
}

void PrintMetrics(const std::string& title, const stats::MetricReport& m) {
  TablePrinter table(title, {"ER", "MSLE", "R2", "RMSE", "MAE"});
  table.AddRow({TablePrinter::Num(m.er), TablePrinter::Num(m.msle),
                TablePrinter::Num(m.r2), TablePrinter::Num(m.rmse),
                TablePrinter::Num(m.mae)});
  table.Print(std::cout);
}

serve::QuantOptions QuantOptionsFromFlags(const Flags& flags) {
  serve::QuantOptions opt;
  opt.check_every = flags.GetInt("quant-check-every", 64);
  opt.drift_threshold = flags.GetDouble("quant-threshold", 0.5);
  return opt;
}

void PrintQuantStats(const serve::QuantStats& s) {
  TablePrinter qt("int8 quantized serving (drift guard)",
                  {"quant-steps", "float-steps", "probes", "trips",
                   "max-drift", "tripped"});
  qt.AddRow({std::to_string(s.quant_steps), std::to_string(s.float_steps),
             std::to_string(s.probes), std::to_string(s.drift_trips),
             TablePrinter::Num(s.max_drift), s.tripped ? "yes" : "no"});
  qt.Print(std::cout);
}

serve::AdaptOptions AdaptOptionsFromFlags(const Flags& flags) {
  serve::AdaptOptions opt;
  opt.cusum_k = flags.GetDouble("adapt-cusum-k", opt.cusum_k);
  opt.cusum_h = flags.GetDouble("adapt-cusum-h", opt.cusum_h);
  opt.window = static_cast<int>(flags.GetInt("adapt-window", opt.window));
  opt.holdout = static_cast<int>(flags.GetInt("adapt-holdout", opt.holdout));
  opt.min_window =
      static_cast<int>(flags.GetInt("adapt-min-window", opt.min_window));
  opt.cooldown = static_cast<int>(flags.GetInt("adapt-cooldown", opt.cooldown));
  opt.micro.steps =
      static_cast<int>(flags.GetInt("adapt-steps", opt.micro.steps));
  opt.micro.learning_rate = static_cast<float>(
      flags.GetDouble("adapt-lr", opt.micro.learning_rate));
  opt.freeze_after =
      static_cast<int>(flags.GetInt("adapt-freeze-after", opt.freeze_after));
  opt.frozen_probe_after = static_cast<int>(
      flags.GetInt("adapt-probe-after", opt.frozen_probe_after));
  opt.shadow_every =
      static_cast<int>(flags.GetInt("adapt-shadow-every", opt.shadow_every));
  return opt;
}

/// Adaptation attribution + the shadow A/B scoreboard. Returns non-zero
/// when the adaptation conservation law is broken (every attempt must be
/// a commit or exactly one kind of rollback).
int PrintAdaptStats(const serve::AdaptStats& s) {
  TablePrinter at("test-time adaptation (" + std::to_string(s.observed) +
                      " observed steps)",
                  {"triggers", "attempts", "commits", "rb-reject", "rb-nan",
                   "rb-error", "freezes", "unfreezes", "frozen"});
  at.AddRow({std::to_string(s.triggers), std::to_string(s.attempts),
             std::to_string(s.commits), std::to_string(s.rollbacks_reject),
             std::to_string(s.rollbacks_nan),
             std::to_string(s.rollbacks_error), std::to_string(s.freezes),
             std::to_string(s.unfreezes), s.frozen ? "yes" : "no"});
  at.Print(std::cout);
  TablePrinter dt("adaptation detail",
                  {"max-cusum", "val-before", "val-after", "repacks",
                   "repack-fail", "shadow-fwd", "shadow-fail"});
  dt.AddRow({TablePrinter::Num(s.max_cusum),
             TablePrinter::Num(s.last_val_before),
             TablePrinter::Num(s.last_val_after), std::to_string(s.repacks),
             std::to_string(s.repack_failures),
             std::to_string(s.shadow_forwards),
             std::to_string(s.shadow_failures)});
  dt.Print(std::cout);
  if (s.pairs > 0) {
    TablePrinter ab("adapted vs frozen (shadow A/B, " +
                        std::to_string(s.pairs) + " paired steps)",
                    {"arm", "ER", "MSLE"});
    ab.AddRow({"adapted", TablePrinter::Num(s.AdaptedEr()),
               TablePrinter::Num(s.AdaptedMsle())});
    ab.AddRow({"frozen", TablePrinter::Num(s.FrozenEr()),
               TablePrinter::Num(s.FrozenMsle())});
    ab.Print(std::cout);
    std::cout << "A/B delta (adapted - frozen): ER "
              << TablePrinter::Num(s.AdaptedEr() - s.FrozenEr()) << ", MSLE "
              << TablePrinter::Num(s.AdaptedMsle() - s.FrozenMsle()) << "\n";
  } else {
    std::cout << "shadow A/B: no paired steps scored\n";
  }
  const int64_t bad = s.UnattributedAdaptations();
  if (bad != 0) {
    std::cerr << "error: adaptation attribution broken — " << bad
              << " attempts neither committed nor rolled back\n";
    return 3;
  }
  return 0;
}

int Evaluate(const Flags& flags) {
  core::PreparedData prepared;
  if (int rc = BuildPrepared(flags, &prepared); rc != 0) return rc;

  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 20));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.seed = flags.GetInt("seed", 7);
  train.checkpoint_path = flags.GetString("train-state", "");
  train.checkpoint_every =
      static_cast<int>(flags.GetInt("checkpoint-every", 1));
  train.resume = flags.GetBool("resume");
  const std::string scheme = flags.GetString("scheme", "EALGAP");
  auto model = core::MakeForecaster(scheme, prepared);
  if (!model.ok()) return Fail(model.status());
  Status fit = (*model)->Fit(prepared.dataset, prepared.split, train);
  if (!fit.ok()) return Fail(fit);
  if (auto* neural = dynamic_cast<NeuralForecaster*>(model->get())) {
    const TrainStats& ts = neural->train_stats();
    if (ts.rollbacks > 0 || ts.resumed_epoch >= 0) {
      std::cout << "training: " << ts.epochs_completed << " epochs";
      if (ts.resumed_epoch >= 0) {
        std::cout << ", resumed at epoch " << ts.resumed_epoch;
      }
      if (ts.rollbacks > 0) {
        std::cout << ", " << ts.rollbacks << " divergence rollbacks ("
                  << ts.skipped_steps << " steps discarded, final lr "
                  << ts.final_lr << ")";
      }
      std::cout << "\n";
    }
  }

  const std::string save_path = flags.GetString("save", "");
  if (!save_path.empty()) {
    auto* neural = dynamic_cast<NeuralForecaster*>(model->get());
    if (neural == nullptr) {
      std::cerr << "error: --save supports neural schemes only, not "
                << scheme << "\n";
      return 1;
    }
    Status saved = neural->SaveCheckpoint(save_path);
    if (!saved.ok()) return Fail(saved);
    std::cout << "checkpoint written to " << save_path << "\n";
  }

  std::vector<double> pred, truth;
  Status ps = (*model)->PredictRange(prepared.dataset,
                                     prepared.split.test_begin,
                                     prepared.split.test_end, &pred, &truth);
  if (!ps.ok()) return Fail(ps);
  PrintMetrics("test metrics (" + scheme + ")",
               stats::ComputeMetrics(pred, truth));

  if (flags.GetBool("quant")) {
    auto* neural = dynamic_cast<NeuralForecaster*>(model->get());
    if (neural == nullptr) {
      std::cerr << "error: --quant supports neural schemes only, not "
                << scheme << "\n";
      return 1;
    }
    auto quant =
        serve::QuantizedForecaster::Create(neural, QuantOptionsFromFlags(flags));
    if (!quant.ok()) return Fail(quant.status());
    std::vector<double> qpred, qtruth;
    Status qs = (*quant)->PredictRange(prepared.dataset,
                                       prepared.split.test_begin,
                                       prepared.split.test_end, &qpred,
                                       &qtruth);
    if (!qs.ok()) return Fail(qs);
    PrintMetrics("test metrics (" + scheme + ", int8)",
                 stats::ComputeMetrics(qpred, qtruth));
    double worst = 0.0;
    for (size_t i = 0; i < pred.size() && i < qpred.size(); ++i) {
      worst = std::max(worst, std::abs(qpred[i] - pred[i]) /
                                  std::max(std::abs(pred[i]), 1.0));
    }
    std::cout << "int8 vs float: max relative prediction drift "
              << TablePrinter::Num(worst) << "\n";
    PrintQuantStats((*quant)->stats());
  }
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Experiment(const Flags& flags) {
  core::SweepOptions sweep;
  if (flags.Has("cities")) {
    sweep.cities.clear();
    for (const std::string& name : SplitCsv(flags.GetString("cities"))) {
      bool found = false;
      for (data::City c : data::AllCities()) {
        if (name == data::CityName(c)) {
          sweep.cities.push_back(c);
          found = true;
        }
      }
      if (!found) {
        std::cerr << "error: unknown city '" << name
                  << "' (known: nyc_bike, chicago_bike, nyc_taxi, "
                     "chicago_taxi)\n";
        return 1;
      }
    }
  }
  if (flags.Has("periods")) {
    sweep.periods.clear();
    for (const std::string& name : SplitCsv(flags.GetString("periods"))) {
      bool found = false;
      for (data::Period p : data::AllPeriods()) {
        if (name == data::PeriodName(p)) {
          sweep.periods.push_back(p);
          found = true;
        }
      }
      if (!found) {
        std::cerr << "error: unknown period '" << name
                  << "' (known: normal, weather, holiday)\n";
        return 1;
      }
    }
  }
  if (flags.Has("schemes")) {
    sweep.experiment.schemes = SplitCsv(flags.GetString("schemes"));
  }
  sweep.experiment.seed = flags.GetInt("seed", 7);
  sweep.experiment.data_scale = flags.GetDouble("scale", 1.0);
  sweep.experiment.train.epochs =
      static_cast<int>(flags.GetInt("epochs", 10));
  sweep.experiment.train.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 2e-3));
  sweep.experiment.verbose = flags.GetBool("verbose");
  sweep.journal_path = flags.GetString("journal", "");
  sweep.resume = flags.GetBool("resume");
  sweep.state_dir = flags.GetString("state-dir", "");
  sweep.checkpoint_every =
      static_cast<int>(flags.GetInt("checkpoint-every", 1));
  if (sweep.resume && sweep.journal_path.empty()) {
    std::cerr << "error: --resume requires --journal\n";
    return 1;
  }

  auto result = core::RunSweep(sweep);
  if (!result.ok()) return Fail(result.status());

  TablePrinter table("experiment sweep (" +
                         std::to_string(result->entries.size()) + " cells)",
                     {"city", "period", "scheme", "status", "ER", "MSLE",
                      "R2"});
  for (const core::JournalEntry& e : result->entries) {
    if (e.ok) {
      table.AddRow({e.city, e.period, e.scheme, "ok",
                    TablePrinter::Num(e.metrics.er),
                    TablePrinter::Num(e.metrics.msle),
                    TablePrinter::Num(e.metrics.r2)});
    } else {
      table.AddRow({e.city, e.period, e.scheme, "FAIL", "-", "-", "-"});
    }
  }
  table.Print(std::cout);
  std::cout << "cells: " << result->cells_run << " run, "
            << result->cells_skipped << " resumed from journal, "
            << result->cells_failed << " failed\n";
  for (const core::JournalEntry& e : result->entries) {
    if (!e.ok) {
      std::cout << "  FAIL " << e.city << "/" << e.period << "/" << e.scheme
                << ": " << e.error << "\n";
    }
  }
  // Failed cells make the sweep exit non-zero (they are isolated, not
  // ignored); a resumed sweep that completes cleanly exits 0.
  return result->cells_failed > 0 ? 2 : 0;
}

int Serve(const Flags& flags) {
  const std::string ckpt = flags.GetString("checkpoint", "");
  if (ckpt.empty()) {
    std::cerr << "error: --checkpoint is required\n";
    return 1;
  }
  core::PreparedData prepared;
  if (int rc = BuildPrepared(flags, &prepared); rc != 0) return rc;

  auto model = core::LoadForecasterFromCheckpoint(ckpt);
  if (!model.ok()) return Fail(model.status());

  // --quant: serve through the int8 forward with the drift guard. The
  // optional pack cache is keyed to the checkpoint file's CRC — loading a
  // cache built from different checkpoint bytes is a hard error, never a
  // silent repack.
  Forecaster* serving = model->get();
  std::unique_ptr<serve::QuantizedForecaster> quant;
  if (flags.GetBool("quant")) {
    auto* neural = dynamic_cast<NeuralForecaster*>(model->get());
    if (neural == nullptr) {
      std::cerr << "error: --quant requires a neural checkpoint\n";
      return 1;
    }
    auto q = serve::QuantizedForecaster::Create(neural,
                                                QuantOptionsFromFlags(flags));
    if (!q.ok()) return Fail(q.status());
    quant = std::move(q).value();
    const std::string pack_path = flags.GetString("quant-pack", "");
    if (!pack_path.empty()) {
      if (std::ifstream(pack_path).good()) {
        Status loaded = neural->LoadQuantPack(pack_path, ckpt);
        if (!loaded.ok()) return Fail(loaded);
        std::cout << "quantized packs loaded from " << pack_path << "\n";
      } else {
        Status saved = neural->SaveQuantPack(pack_path, ckpt);
        if (!saved.ok()) return Fail(saved);
        std::cout << "quantized packs written to " << pack_path << "\n";
      }
    }
    serving = quant.get();
  }

  // --adapt: test-time adaptation between the predictor and the model
  // (stacks on top of --quant). The replay loop runs MaybeAdapt after
  // every observe — outside the timed predict path, like the daemon's
  // supervisor phase.
  std::unique_ptr<serve::AdaptivePredictor> adaptive;
  if (flags.GetBool("adapt")) {
    auto a = serve::AdaptivePredictor::Create(serving,
                                              AdaptOptionsFromFlags(flags));
    if (!a.ok()) return Fail(a.status());
    adaptive = std::move(a).value();
    serving = adaptive.get();
  }

  auto predictor = serve::OnlinePredictor::Create(
      serving, prepared.dataset, prepared.split.test_begin);
  if (!predictor.ok()) return Fail(predictor.status());

  auto repair = serve::ParseRepairPolicy(flags.GetString("repair", "reject"));
  if (!repair.ok()) return Fail(repair.status());
  serve::GuardPolicy guard;
  guard.on_bad_value = *repair;
  guard.on_gap = *repair;
  predictor->SetGuardPolicy(guard);

  serve::ResilienceOptions resilience;
  resilience.deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  resilience.recovery_successes =
      static_cast<int>(flags.GetInt("recovery", 3));
  serve::ResilientPredictor resilient(&*predictor, resilience);

  // Replay the test range as a live feed: predict the next step through
  // the degradation chain, then observe the realized counts.
  const int n = predictor->num_regions();
  std::vector<double> pred, truth;
  std::vector<double> latency_ms;
  for (int64_t step = prepared.split.test_begin;
       step < prepared.split.test_end; ++step) {
    const auto t0 = std::chrono::steady_clock::now();
    auto row = resilient.PredictNext();
    const auto t1 = std::chrono::steady_clock::now();
    if (!row.ok()) return Fail(row.status());
    latency_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    const std::vector<float> realized = prepared.dataset.StepCounts(step);
    std::vector<double> observed(realized.begin(), realized.end());
    for (int r = 0; r < n; ++r) {
      pred.push_back(row->values[r]);
      truth.push_back(observed[r]);
    }
    Status obs = resilient.Observe(observed);
    if (!obs.ok()) return Fail(obs);
    if (adaptive != nullptr) {
      auto event = adaptive->MaybeAdapt();
      if (!event.ok()) return Fail(event.status());
    }
  }

  PrintMetrics("replay metrics (" + (*model)->name() + ")",
               stats::ComputeMetrics(pred, truth));

  std::vector<double> sorted = latency_ms;
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&](double q) {
    const size_t i = static_cast<size_t>(q * (sorted.size() - 1));
    return sorted[i];
  };
  double mean = 0.0;
  for (double v : latency_ms) mean += v;
  mean /= static_cast<double>(latency_ms.size());
  TablePrinter lat("per-prediction latency (ms, " +
                       std::to_string(latency_ms.size()) + " steps)",
                   {"mean", "p50", "p95", "p99"});
  lat.AddRow({TablePrinter::Num(mean), TablePrinter::Num(pct(0.50)),
              TablePrinter::Num(pct(0.95)), TablePrinter::Num(pct(0.99))});
  lat.Print(std::cout);

  // Degradation report: how many steps fell back, why, and to what.
  const serve::DegradationState& deg = resilient.degradation();
  TablePrinter dt("degraded steps (" + std::to_string(deg.degraded_steps) +
                      " of " + std::to_string(deg.total_steps) + ")",
                  {"non-finite", "model-error", "deadline", "probation"});
  auto cause_count = [&](serve::DegradeCause c) {
    return std::to_string(deg.by_cause[static_cast<int>(c)]);
  };
  auto level_count = [&](serve::FallbackLevel f) {
    return std::to_string(deg.by_level[static_cast<int>(f)]);
  };
  dt.AddRow({cause_count(serve::DegradeCause::kNonFinite),
             cause_count(serve::DegradeCause::kModelError),
             cause_count(serve::DegradeCause::kDeadline),
             cause_count(serve::DegradeCause::kProbation)});
  dt.Print(std::cout);
  TablePrinter ft("fallback sources served",
                  {"matched-mean", "recent-mean", "persistence"});
  ft.AddRow({level_count(serve::FallbackLevel::kMatchedMean),
             level_count(serve::FallbackLevel::kRecentMean),
             level_count(serve::FallbackLevel::kPersistence)});
  ft.Print(std::cout);
  const serve::GuardStats& gs = predictor->guard_stats();
  TablePrinter gt("input guards (policy " +
                      std::string(serve::RepairPolicyName(guard.on_bad_value)) +
                      ")",
                  {"repaired-values", "repaired-steps", "gap-steps",
                   "rejected"});
  gt.AddRow({std::to_string(gs.repaired_values),
             std::to_string(gs.repaired_steps),
             std::to_string(gs.gap_steps_filled),
             std::to_string(gs.rejected_observations)});
  gt.Print(std::cout);
  std::vector<int64_t> quarantine(gs.quarantine.begin(), gs.quarantine.end());
  PrintRegionQuarantines(quarantine);
  if (quant != nullptr) PrintQuantStats(quant->stats());
  if (adaptive != nullptr) return PrintAdaptStats(adaptive->stats());
  return 0;
}

int Daemon(const Flags& flags) {
  const int shards = static_cast<int>(flags.GetInt("shards", 4));
  const int regions_per_shard =
      static_cast<int>(flags.GetInt("regions-per-shard", 8));
  const int days = static_cast<int>(flags.GetInt("days", 30));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 1));
  const int64_t ticks = flags.GetInt("ticks", 256);
  if (shards < 1 || regions_per_shard < 1 || ticks < 1) {
    std::cerr << "error: --shards, --regions-per-shard, --ticks must be >= 1\n";
    return 1;
  }
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }

  // One synthetic city, partitioned into contiguous region slices — each
  // slice gets its own dataset, fitted model, and supervised shard.
  data::RegionSeriesConfig series_config;
  series_config.num_regions = shards * regions_per_shard;
  series_config.num_days = days;
  series_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const data::MobilitySeries city = data::GenerateRegionSeries(series_config);

  serve::DaemonConfig daemon_config;
  daemon_config.batch_max = static_cast<int>(flags.GetInt("batch-max", 64));
  daemon_config.deadline_ticks = flags.GetInt("deadline-ticks", 8);
  daemon_config.ms_per_tick = flags.GetDouble("ms-per-tick", 10.0);
  daemon_config.model_deadline_ms =
      flags.GetDouble("model-deadline-ms", 50.0);
  serve::Daemon daemon(daemon_config);

  const bool quant_enabled = flags.GetBool("quant");
  const serve::QuantOptions qopt = QuantOptionsFromFlags(flags);
  const bool adapt_enabled = flags.GetBool("adapt");
  const serve::AdaptOptions aopt = AdaptOptionsFromFlags(flags);

  const std::string state_dir = flags.GetString("state-dir", "");
  for (int s = 0; s < shards; ++s) {
    auto slice = data::SliceRegions(city, s * regions_per_shard,
                                    (s + 1) * regions_per_shard);
    if (!slice.ok()) return Fail(slice.status());
    data::DatasetOptions dopts;
    dopts.history_length = 5;
    dopts.num_windows = 3;
    dopts.norm_history = 3;
    auto dataset =
        data::SlidingWindowDataset::Create(std::move(slice).value(), dopts);
    if (!dataset.ok()) return Fail(dataset.status());
    auto split = data::MakeChronoSplit(*dataset);
    if (!split.ok()) return Fail(split.status());
    auto model = std::make_unique<core::EalgapForecaster>();
    TrainConfig train;
    train.epochs = epochs;
    train.learning_rate = static_cast<float>(flags.GetDouble("lr", 3e-3));
    train.seed = flags.GetInt("seed", 7) + s;  // per-shard init streams
    Status fit = model->Fit(*dataset, *split, train);
    if (!fit.ok()) return Fail(fit);

    serve::ShardConfig shard_config;
    shard_config.name = "shard" + std::to_string(s);
    shard_config.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue-capacity", 128));
    shard_config.checkpoint_every_steps =
        static_cast<int>(flags.GetInt("checkpoint-every", 16));
    if (!state_dir.empty()) {
      shard_config.state_dir = state_dir + "/" + shard_config.name;
    }
    // Steps lost while a shard is quarantined come back as a feed gap on
    // its first post-restart observe; impute-with-generous-window absorbs
    // them instead of rejecting the feed forever.
    shard_config.guard.on_bad_value = serve::RepairPolicy::kImpute;
    shard_config.guard.on_gap = serve::RepairPolicy::kImpute;
    shard_config.guard.max_gap_steps = 4096;
    shard_config.resilience.recovery_successes =
        static_cast<int>(flags.GetInt("recovery", 3));
    // --quant: each shard serves through its own drift-guarded int8
    // wrapper, and restarts-from-checkpoint re-wrap the reloaded float
    // model so a restarted shard keeps serving quantized.
    std::unique_ptr<Forecaster> serving_model;
    serve::ModelReloader reloader;
    if (quant_enabled) {
      auto quant = serve::QuantizedForecaster::Create(
          std::unique_ptr<NeuralForecaster>(std::move(model)), qopt);
      if (!quant.ok()) return Fail(quant.status());
      serving_model = std::move(quant).value();
      reloader = [qopt](const std::string& path)
          -> Result<std::unique_ptr<Forecaster>> {
        auto loaded = core::LoadForecasterFromCheckpoint(path);
        if (!loaded.ok()) return loaded.status();
        auto* neural = dynamic_cast<NeuralForecaster*>(loaded->get());
        if (neural == nullptr) {
          return Status::InvalidArgument(
              "reloaded checkpoint is not a neural model; cannot quantize");
        }
        loaded->release();
        auto rewrapped = serve::QuantizedForecaster::Create(
            std::unique_ptr<NeuralForecaster>(neural), qopt);
        if (!rewrapped.ok()) return rewrapped.status();
        return std::unique_ptr<Forecaster>(std::move(rewrapped).value());
      };
    } else {
      serving_model = std::move(model);
      reloader = [](const std::string& path) {
        return core::LoadForecasterFromCheckpoint(path);
      };
    }
    // --adapt: stack the test-time-adaptation wrapper on top (of the quant
    // wrapper when both are on). Restarts re-wrap the reloaded checkpoint
    // the same way, so a restarted shard resumes adapting — and, with
    // --quant, repacks from the reloaded (possibly adapted) weights.
    if (adapt_enabled) {
      auto adaptive =
          serve::AdaptivePredictor::Create(std::move(serving_model), aopt);
      if (!adaptive.ok()) return Fail(adaptive.status());
      serving_model = std::move(adaptive).value();
      serve::ModelReloader inner = std::move(reloader);
      reloader = [inner, aopt](const std::string& path)
          -> Result<std::unique_ptr<Forecaster>> {
        auto loaded = inner(path);
        if (!loaded.ok()) return loaded.status();
        auto rewrapped = serve::AdaptivePredictor::Create(
            std::move(loaded).value(), aopt);
        if (!rewrapped.ok()) return rewrapped.status();
        return std::unique_ptr<Forecaster>(std::move(rewrapped).value());
      };
    }
    auto shard = serve::Shard::Create(
        std::move(*dataset), std::move(serving_model), split->test_begin,
        shard_config, std::move(reloader));
    if (!shard.ok()) return Fail(shard.status());
    daemon.AddShard(std::move(shard).value());
  }

  serve::LoadGenConfig load_config;
  load_config.num_shards = shards;
  load_config.seed = static_cast<uint64_t>(flags.GetInt("load-seed", 17));
  serve::LoadPhase steady;
  steady.ticks = flags.GetInt("steady-ticks", 48);
  steady.predict_rate = flags.GetDouble("steady-rate", 2.0);
  serve::LoadPhase burst;
  burst.ticks = flags.GetInt("burst-ticks", 16);
  burst.predict_rate = flags.GetDouble("burst-rate", 24.0);
  load_config.phases = {steady, burst};
  serve::LoadGen load(load_config);

  std::cout << "daemon soak: " << shards << " shards x "
            << regions_per_shard << " regions, " << ticks
            << " ticks, load seed " << load_config.seed << "\n";
  const serve::SloReport report = daemon.Run(&load, ticks);

  TablePrinter slo("SLO (" + std::to_string(report.ticks) + " ticks, " +
                       TablePrinter::Num(report.wall_seconds) + " s)",
                   {"answers/s", "mean-ms", "p50-ms", "p95-ms", "p99-ms"});
  slo.AddRow({TablePrinter::Num(report.throughput_rps),
              TablePrinter::Num(report.mean_ms),
              TablePrinter::Num(report.p50_ms),
              TablePrinter::Num(report.p95_ms),
              TablePrinter::Num(report.p99_ms)});
  slo.Print(std::cout);

  TablePrinter pt("predict attribution (" +
                      std::to_string(report.predict_requests) + " requests)",
                  {"model", "degraded", "expired", "shed-overload",
                   "shed-quarantine", "queued"});
  pt.AddRow({std::to_string(report.served_model),
             std::to_string(report.served_degraded),
             std::to_string(report.expired_fallback),
             std::to_string(report.shed_overload_predict),
             std::to_string(report.shed_quarantine_predict),
             std::to_string(report.queued_predict)});
  pt.Print(std::cout);

  TablePrinter ot("observe attribution (" +
                      std::to_string(report.observe_requests) + " requests)",
                  {"applied", "guard-rejected", "shed-overload",
                   "shed-quarantine", "queued"});
  ot.AddRow({std::to_string(report.observes_applied),
             std::to_string(report.observes_guard_rejected),
             std::to_string(report.shed_overload_observe),
             std::to_string(report.shed_quarantine_observe),
             std::to_string(report.queued_observe)});
  ot.Print(std::cout);

  TablePrinter dt("degraded answers by cause (" +
                      std::to_string(report.served_degraded) + " of " +
                      std::to_string(report.served_model +
                                     report.served_degraded) +
                      " served)",
                  {"non-finite", "model-error", "deadline", "probation"});
  auto cause = [&](serve::DegradeCause c) {
    return std::to_string(report.degraded_by_cause[static_cast<int>(c)]);
  };
  dt.AddRow({cause(serve::DegradeCause::kNonFinite),
             cause(serve::DegradeCause::kModelError),
             cause(serve::DegradeCause::kDeadline),
             cause(serve::DegradeCause::kProbation)});
  dt.Print(std::cout);

  TablePrinter st("supervisor",
                  {"crashes", "stall-ticks", "quarantines", "restarts",
                   "from-ckpt", "ckpts", "ckpt-fail"});
  st.AddRow({std::to_string(report.crashes_injected),
             std::to_string(report.stall_ticks_injected),
             std::to_string(report.watchdog_quarantines),
             std::to_string(report.restarts),
             std::to_string(report.restarts_from_checkpoint),
             std::to_string(report.checkpoints_written),
             std::to_string(report.checkpoint_failures)});
  st.Print(std::cout);

  TablePrinter ht("shards", {"name", "health", "quarantines", "restarts",
                             "observes", "degraded"});
  std::vector<int64_t> fleet_quarantine;
  for (int s = 0; s < daemon.num_shards(); ++s) {
    serve::Shard* sh = daemon.shard(s);
    const serve::ShardTotals t = sh->Totals();
    ht.AddRow({sh->name(), serve::ShardHealthName(sh->health()),
               std::to_string(t.quarantines), std::to_string(t.restarts),
               std::to_string(t.observes_applied),
               std::to_string(t.predicts_degraded)});
    // Shard-local region q maps to city region s * regions_per_shard + q.
    for (size_t r = 0; r < t.quarantine_by_region.size(); ++r) {
      const size_t global =
          static_cast<size_t>(s) * static_cast<size_t>(regions_per_shard) + r;
      if (fleet_quarantine.size() <= global) {
        fleet_quarantine.resize(global + 1, 0);
      }
      fleet_quarantine[global] += t.quarantine_by_region[r];
    }
  }
  ht.Print(std::cout);
  PrintRegionQuarantines(fleet_quarantine);

  if (quant_enabled) {
    // Fleet-wide drift-guard telemetry, aggregated over whatever wrapper
    // each shard is serving right now (restarts replace the model).
    serve::QuantStats fleet;
    for (int s = 0; s < daemon.num_shards(); ++s) {
      Forecaster* model = daemon.shard(s)->model();
      if (auto* adaptive = dynamic_cast<serve::AdaptivePredictor*>(model)) {
        model = adaptive->serving();  // quant wrapper lives underneath
      }
      auto* quant = dynamic_cast<serve::QuantizedForecaster*>(model);
      if (quant == nullptr) continue;
      const serve::QuantStats qs = quant->stats();
      fleet.quant_steps += qs.quant_steps;
      fleet.float_steps += qs.float_steps;
      fleet.probes += qs.probes;
      fleet.drift_trips += qs.drift_trips;
      fleet.max_drift = std::max(fleet.max_drift, qs.max_drift);
      fleet.tripped = fleet.tripped || qs.tripped;
    }
    PrintQuantStats(fleet);
  }

  int adapt_rc = 0;
  if (adapt_enabled) adapt_rc = PrintAdaptStats(report.adapt);

  std::cout << "replay digest: " << Crc32Hex(daemon.digest()) << "\n";
  const int64_t bad_predicts = report.UnattributedPredicts();
  const int64_t bad_observes = report.UnattributedObserves();
  const int64_t bad_causes = report.DegradedCauseMismatch();
  if (bad_predicts != 0 || bad_observes != 0 || bad_causes != 0) {
    std::cerr << "error: attribution broken — " << bad_predicts
              << " predicts, " << bad_observes << " observes unattributed, "
              << bad_causes << " degraded-cause mismatch\n";
    return 3;
  }
  if (adapt_rc != 0) return adapt_rc;
  std::cout << "attribution: every request accounted for\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: ealgap_tool "
                 "<generate|inspect|evaluate|experiment|serve|daemon> "
                 "[flags]\n";
    return 1;
  }
  const std::string cmd = argv[1];
  ealgap::Flags flags(argc - 1, argv + 1);
  if (cmd == "generate") return Generate(flags);
  if (cmd == "inspect") return Inspect(flags);
  if (cmd == "evaluate") return Evaluate(flags);
  if (cmd == "experiment") return Experiment(flags);
  if (cmd == "serve") return Serve(flags);
  if (cmd == "daemon") return Daemon(flags);
  std::cerr << "unknown subcommand: " << cmd << "\n";
  return 1;
}
