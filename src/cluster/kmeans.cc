#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

namespace ealgap {
namespace cluster {

double SquaredDistance(const Point2& a, const Point2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

namespace {

// k-means++ seeding: each next center is drawn proportionally to the
// squared distance from the nearest already-chosen center.
std::vector<Point2> SeedPlusPlus(const std::vector<Point2>& points, int k,
                                 Rng& rng) {
  std::vector<Point2> centers;
  centers.reserve(k);
  centers.push_back(points[rng.UniformInt(points.size())]);
  std::vector<double> d2(points.size());
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const Point2& ctr : centers) {
        best = std::min(best, SquaredDistance(points[i], ctr));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; duplicate one.
      centers.push_back(points[rng.UniformInt(points.size())]);
      continue;
    }
    double r = rng.Uniform() * total;
    size_t pick = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back(points[pick]);
  }
  return centers;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<Point2>& points, int k,
                            const KMeansOptions& options) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (points.empty() || static_cast<size_t>(k) > points.size()) {
    return Status::InvalidArgument("k exceeds number of points");
  }
  Rng rng(options.seed);
  KMeansResult result;
  result.centers = SeedPlusPlus(points, k, rng);
  result.labels.assign(points.size(), 0);
  std::vector<double> sum_x(k), sum_y(k);
  std::vector<int64_t> count(k);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    result.inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double d = SquaredDistance(points[i], result.centers[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.labels[i] = best_c;
      result.inertia += best;
    }
    // Update step.
    std::fill(sum_x.begin(), sum_x.end(), 0.0);
    std::fill(sum_y.begin(), sum_y.end(), 0.0);
    std::fill(count.begin(), count.end(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = result.labels[i];
      sum_x[c] += points[i].x;
      sum_y[c] += points[i].y;
      ++count[c];
    }
    double max_shift = 0.0;
    for (int c = 0; c < k; ++c) {
      if (count[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centers[c] = points[rng.UniformInt(points.size())];
        max_shift = std::numeric_limits<double>::max();
        continue;
      }
      const Point2 next{sum_x[c] / count[c], sum_y[c] / count[c]};
      max_shift = std::max(max_shift, SquaredDistance(next, result.centers[c]));
      result.centers[c] = next;
    }
    if (max_shift < options.tolerance) break;
  }
  return result;
}

}  // namespace cluster
}  // namespace ealgap
