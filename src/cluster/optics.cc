#include "cluster/optics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ealgap {
namespace cluster {

namespace {

constexpr double kUndefined = 1e18;

// Core distance: distance to the min_points-th nearest neighbor, or
// kUndefined when there are not enough neighbors within max_eps.
double CoreDistance(const std::vector<Point2>& points, size_t idx,
                    double max_eps, int min_points) {
  std::vector<double> dists;
  for (size_t j = 0; j < points.size(); ++j) {
    const double d = std::sqrt(SquaredDistance(points[idx], points[j]));
    if (d <= max_eps) dists.push_back(d);
  }
  if (static_cast<int>(dists.size()) < min_points) return kUndefined;
  std::nth_element(dists.begin(), dists.begin() + (min_points - 1),
                   dists.end());
  return dists[min_points - 1];
}

}  // namespace

Result<OpticsResult> Optics(const std::vector<Point2>& points,
                            const OpticsOptions& options) {
  if (options.min_points < 1) {
    return Status::InvalidArgument("min_points must be >= 1");
  }
  if (options.max_eps <= 0.0 || options.cluster_eps <= 0.0) {
    return Status::InvalidArgument("eps values must be > 0");
  }
  const size_t n = points.size();
  OpticsResult result;
  result.reachability.assign(n, kUndefined);
  std::vector<bool> processed(n, false);
  std::vector<double> core(n);
  for (size_t i = 0; i < n; ++i) {
    core[i] = CoreDistance(points, i, options.max_eps, options.min_points);
  }
  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = true;
    result.ordering.push_back(static_cast<int>(start));
    if (core[start] == kUndefined) continue;
    // Priority "seeds" set keyed by current reachability.
    std::vector<size_t> seeds;
    auto update = [&](size_t center) {
      for (size_t j = 0; j < n; ++j) {
        if (processed[j]) continue;
        const double d = std::sqrt(SquaredDistance(points[center], points[j]));
        if (d > options.max_eps) continue;
        const double new_reach = std::max(core[center], d);
        if (new_reach < result.reachability[j]) {
          const bool was_seed = result.reachability[j] != kUndefined;
          result.reachability[j] = new_reach;
          if (!was_seed) seeds.push_back(j);
        }
      }
    };
    update(start);
    while (!seeds.empty()) {
      // Extract the seed with the smallest reachability.
      size_t best_pos = 0;
      for (size_t s = 1; s < seeds.size(); ++s) {
        if (result.reachability[seeds[s]] <
            result.reachability[seeds[best_pos]]) {
          best_pos = s;
        }
      }
      const size_t next = seeds[best_pos];
      seeds.erase(seeds.begin() + best_pos);
      if (processed[next]) continue;
      processed[next] = true;
      result.ordering.push_back(static_cast<int>(next));
      if (core[next] != kUndefined) update(next);
    }
  }
  // Flat extraction: walk the ordering; reachability above cluster_eps
  // starts a new cluster (when the point is core) or marks noise.
  result.labels.assign(n, kNoise);
  int cluster = -1;
  for (int idx : result.ordering) {
    if (result.reachability[idx] > options.cluster_eps) {
      if (core[idx] != kUndefined && core[idx] <= options.cluster_eps) {
        ++cluster;
        result.labels[idx] = cluster;
      } else {
        result.labels[idx] = kNoise;
      }
    } else {
      if (cluster < 0) cluster = 0;
      result.labels[idx] = cluster;
    }
  }
  result.num_clusters = cluster + 1;
  return result;
}

}  // namespace cluster
}  // namespace ealgap
