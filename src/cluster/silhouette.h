#ifndef EALGAP_CLUSTER_SILHOUETTE_H_
#define EALGAP_CLUSTER_SILHOUETTE_H_

#include <vector>

#include "cluster/kmeans.h"
#include "common/result.h"

namespace ealgap {
namespace cluster {

/// Mean silhouette coefficient of a clustering in [-1, 1]; higher means
/// tighter, better-separated clusters. Points in singleton clusters score
/// 0. Used by the region-count sensitivity bench to characterize the
/// paper's choice of 20 (NYC) / 18 (Chicago) regions.
Result<double> MeanSilhouette(const std::vector<Point2>& points,
                              const std::vector<int>& labels);

}  // namespace cluster
}  // namespace ealgap

#endif  // EALGAP_CLUSTER_SILHOUETTE_H_
