#include "cluster/dbscan.h"

#include <deque>

namespace ealgap {
namespace cluster {

namespace {

std::vector<int> RegionQuery(const std::vector<Point2>& points, size_t idx,
                             double eps2) {
  std::vector<int> out;
  for (size_t j = 0; j < points.size(); ++j) {
    if (SquaredDistance(points[idx], points[j]) <= eps2) {
      out.push_back(static_cast<int>(j));
    }
  }
  return out;
}

}  // namespace

Result<DbscanResult> Dbscan(const std::vector<Point2>& points,
                            const DbscanOptions& options) {
  if (options.eps <= 0.0) return Status::InvalidArgument("eps must be > 0");
  if (options.min_points < 1) {
    return Status::InvalidArgument("min_points must be >= 1");
  }
  const double eps2 = options.eps * options.eps;
  constexpr int kUnvisited = -2;
  DbscanResult result;
  result.labels.assign(points.size(), kUnvisited);
  int cluster = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (result.labels[i] != kUnvisited) continue;
    std::vector<int> neighbors = RegionQuery(points, i, eps2);
    if (static_cast<int>(neighbors.size()) < options.min_points) {
      result.labels[i] = kNoise;
      continue;
    }
    // Start a new cluster and expand it breadth-first.
    result.labels[i] = cluster;
    std::deque<int> queue(neighbors.begin(), neighbors.end());
    while (!queue.empty()) {
      const int q = queue.front();
      queue.pop_front();
      if (result.labels[q] == kNoise) result.labels[q] = cluster;
      if (result.labels[q] != kUnvisited) continue;
      result.labels[q] = cluster;
      std::vector<int> qn = RegionQuery(points, q, eps2);
      if (static_cast<int>(qn.size()) >= options.min_points) {
        queue.insert(queue.end(), qn.begin(), qn.end());
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  return result;
}

}  // namespace cluster
}  // namespace ealgap
