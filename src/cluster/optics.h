#ifndef EALGAP_CLUSTER_OPTICS_H_
#define EALGAP_CLUSTER_OPTICS_H_

#include <vector>

#include "common/result.h"
#include "cluster/dbscan.h"

namespace ealgap {
namespace cluster {

struct OpticsOptions {
  double max_eps = 1e9;   ///< neighborhood cap (generating distance)
  int min_points = 4;     ///< density threshold
  double cluster_eps = 0.01;  ///< reachability cut used to extract clusters
};

struct OpticsResult {
  /// Processing order of point indices.
  std::vector<int> ordering;
  /// Reachability distance per point (in input index space); infinity
  /// (1e18) for points never density-reached.
  std::vector<double> reachability;
  /// DBSCAN-equivalent clustering extracted at `cluster_eps`.
  std::vector<int> labels;
  int num_clusters = 0;
};

/// OPTICS (Ankerst et al., SIGMOD'99): computes the density reachability
/// ordering, then extracts a flat clustering by cutting the reachability
/// plot at `cluster_eps`. Used by ablation (vi).
Result<OpticsResult> Optics(const std::vector<Point2>& points,
                            const OpticsOptions& options);

}  // namespace cluster
}  // namespace ealgap

#endif  // EALGAP_CLUSTER_OPTICS_H_
