#ifndef EALGAP_CLUSTER_KMEANS_H_
#define EALGAP_CLUSTER_KMEANS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace ealgap {
namespace cluster {

/// A 2-D point (longitude, latitude for station coordinates).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Squared Euclidean distance.
double SquaredDistance(const Point2& a, const Point2& b);

/// Result of a k-means run.
struct KMeansResult {
  std::vector<int> labels;       ///< cluster index per input point
  std::vector<Point2> centers;   ///< k centroids
  double inertia = 0.0;          ///< sum of squared distances to centers
  int iterations = 0;            ///< Lloyd iterations executed
};

struct KMeansOptions {
  int max_iterations = 100;
  double tolerance = 1e-7;  ///< stop when centers move less than this
  uint64_t seed = 42;
};

/// Lloyd's k-means with k-means++ seeding (paper's default region
/// partitioner, Sec. VI-B). Fails when k <= 0 or k > points.size().
Result<KMeansResult> KMeans(const std::vector<Point2>& points, int k,
                            const KMeansOptions& options = {});

}  // namespace cluster
}  // namespace ealgap

#endif  // EALGAP_CLUSTER_KMEANS_H_
