#include "cluster/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ealgap {
namespace cluster {

Result<double> MeanSilhouette(const std::vector<Point2>& points,
                              const std::vector<int>& labels) {
  if (points.size() != labels.size() || points.empty()) {
    return Status::InvalidArgument("points/labels size mismatch");
  }
  int num_clusters = 0;
  for (int l : labels) {
    if (l < 0) return Status::InvalidArgument("negative label");
    num_clusters = std::max(num_clusters, l + 1);
  }
  if (num_clusters < 2) {
    return Status::FailedPrecondition("need at least two clusters");
  }
  std::vector<int64_t> sizes(num_clusters, 0);
  for (int l : labels) ++sizes[l];

  double total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (sizes[labels[i]] <= 1) continue;  // singleton: silhouette 0
    // Mean distance to every cluster.
    std::vector<double> mean_dist(num_clusters, 0.0);
    for (size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      mean_dist[labels[j]] += std::sqrt(SquaredDistance(points[i], points[j]));
    }
    for (int c = 0; c < num_clusters; ++c) {
      const int64_t denom = c == labels[i] ? sizes[c] - 1 : sizes[c];
      if (denom > 0) mean_dist[c] /= static_cast<double>(denom);
    }
    const double a = mean_dist[labels[i]];
    double b = std::numeric_limits<double>::max();
    for (int c = 0; c < num_clusters; ++c) {
      if (c != labels[i] && sizes[c] > 0) b = std::min(b, mean_dist[c]);
    }
    total += (b - a) / std::max(a, b);
  }
  return total / static_cast<double>(points.size());
}

}  // namespace cluster
}  // namespace ealgap
