#ifndef EALGAP_CLUSTER_DBSCAN_H_
#define EALGAP_CLUSTER_DBSCAN_H_

#include <vector>

#include "common/result.h"
#include "cluster/kmeans.h"  // Point2

namespace ealgap {
namespace cluster {

/// Label for points DBSCAN classifies as noise.
inline constexpr int kNoise = -1;

struct DbscanOptions {
  double eps = 0.01;   ///< neighborhood radius (same units as the points)
  int min_points = 4;  ///< core-point density threshold (incl. the point)
};

struct DbscanResult {
  std::vector<int> labels;  ///< cluster id per point, or kNoise
  int num_clusters = 0;
};

/// Density-Based Spatial Clustering of Applications with Noise
/// (Ester et al., KDD'96). Used by ablation (v): region partitioning with
/// DBSCAN instead of k-means.
Result<DbscanResult> Dbscan(const std::vector<Point2>& points,
                            const DbscanOptions& options);

}  // namespace cluster
}  // namespace ealgap

#endif  // EALGAP_CLUSTER_DBSCAN_H_
