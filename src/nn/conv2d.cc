#include "nn/conv2d.h"

#include <memory>

#include "common/logging.h"
#include "nn/init.h"

namespace ealgap {
namespace nn {

namespace {

int64_t OutDim(int64_t in, int64_t kernel, int64_t stride, int64_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

// Forward im2col: (B, C, H, W) -> (B, C*k*k, OH*OW). Out-of-bounds taps
// (from padding) read as zero.
Tensor Im2ColForward(const Tensor& x, int64_t k, int64_t stride, int64_t pad) {
  const int64_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = OutDim(h, k, stride, pad), ow = OutDim(w, k, stride, pad);
  Tensor out({b, c * k * k, oh * ow});
  const float* px = x.data();
  float* po = out.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t ki = 0; ki < k; ++ki) {
        for (int64_t kj = 0; kj < k; ++kj) {
          const int64_t row = ((ci * k + ki) * k + kj);
          for (int64_t oi = 0; oi < oh; ++oi) {
            const int64_t ii = oi * stride - pad + ki;
            for (int64_t oj = 0; oj < ow; ++oj) {
              const int64_t jj = oj * stride - pad + kj;
              float v = 0.f;
              if (ii >= 0 && ii < h && jj >= 0 && jj < w) {
                v = px[((bi * c + ci) * h + ii) * w + jj];
              }
              po[(bi * c * k * k + row) * oh * ow + oi * ow + oj] = v;
            }
          }
        }
      }
    }
  }
  return out;
}

// Transposed scatter of Im2ColForward: accumulates column gradients back
// into the input layout.
Tensor Col2Im(const Tensor& g, int64_t c, int64_t h, int64_t w, int64_t k,
              int64_t stride, int64_t pad) {
  const int64_t b = g.dim(0);
  const int64_t oh = OutDim(h, k, stride, pad), ow = OutDim(w, k, stride, pad);
  Tensor out({b, c, h, w});
  const float* pg = g.data();
  float* po = out.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t ki = 0; ki < k; ++ki) {
        for (int64_t kj = 0; kj < k; ++kj) {
          const int64_t row = ((ci * k + ki) * k + kj);
          for (int64_t oi = 0; oi < oh; ++oi) {
            const int64_t ii = oi * stride - pad + ki;
            if (ii < 0 || ii >= h) continue;
            for (int64_t oj = 0; oj < ow; ++oj) {
              const int64_t jj = oj * stride - pad + kj;
              if (jj < 0 || jj >= w) continue;
              po[((bi * c + ci) * h + ii) * w + jj] +=
                  pg[(bi * c * k * k + row) * oh * ow + oi * ow + oj];
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

Var Im2Col(const Var& x, int64_t kernel, int64_t stride, int64_t padding) {
  EALGAP_CHECK_EQ(x.value().ndim(), 4);
  Tensor out = Im2ColForward(x.value(), kernel, stride, padding);
  if (!GradEnabled() || !x.requires_grad()) {
    return Var::Leaf(std::move(out));
  }
  auto node = std::make_shared<autograd::Node>();
  node->value = std::move(out);
  node->requires_grad = true;
  node->parents = {x.node()};
  auto nx = x.node();
  const int64_t c = x.value().dim(1), h = x.value().dim(2),
                w = x.value().dim(3);
  node->backfn = [nx, c, h, w, kernel, stride, padding](const Tensor& g) {
    nx->AccumulateGrad(Col2Im(g, c, h, w, kernel, stride, padding));
  };
  return Var(std::move(node));
}

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               Rng& rng, int64_t stride, int64_t padding, bool has_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = RegisterParameter(
      "weight", HeNormal({out_channels, fan_in}, fan_in, rng));
  if (has_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_channels}));
  }
}

Var Conv2d::Forward(const Var& x) const {
  EALGAP_CHECK_EQ(x.value().ndim(), 4);
  EALGAP_CHECK_EQ(x.value().dim(1), in_channels_);
  const int64_t b = x.value().dim(0);
  const int64_t oh = OutDim(x.value().dim(2), kernel_, stride_, padding_);
  const int64_t ow = OutDim(x.value().dim(3), kernel_, stride_, padding_);
  Var cols = Im2Col(x, kernel_, stride_, padding_);  // (B, K, P)
  const int64_t kdim = cols.value().dim(1);
  const int64_t p = cols.value().dim(2);
  // (out, K) x (B, K, P) -> per-batch matmul, stacked.
  std::vector<Var> per_batch;
  per_batch.reserve(b);
  for (int64_t bi = 0; bi < b; ++bi) {
    Var cb = Reshape(Slice(cols, 0, bi, bi + 1), {kdim, p});
    per_batch.push_back(MatMul(weight_, cb));  // (out, P)
  }
  Var out = Stack(per_batch);  // (B, out, P)
  if (bias_.defined()) {
    out = Add(out, Reshape(bias_, {1, out_channels_, 1}));
  }
  return Reshape(out, {b, out_channels_, oh, ow});
}

}  // namespace nn
}  // namespace ealgap
