#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"

namespace ealgap {
namespace nn {

Var MseLoss(const Var& pred, const Var& target) {
  Var d = Sub(pred, target);
  return MeanAll(Mul(d, d));
}

Var MaeLoss(const Var& pred, const Var& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

Var HuberLoss(const Var& pred, const Var& target, float delta) {
  // Branchless composition: quadratic below delta, linear above.
  //   l = delta^2 * (sqrt(1 + (d/delta)^2) - 1)   (pseudo-Huber)
  Var d = Sub(pred, target);
  Var scaled = MulScalar(d, 1.f / delta);
  Var inner = AddScalar(Mul(scaled, scaled), 1.f);
  Var l = MulScalar(AddScalar(Sqrt(inner), -1.f), delta * delta);
  return MeanAll(l);
}

Var EvlLoss(const Var& pred, const Var& target, const EvlConfig& config) {
  // Build the per-element weight tensor from the (constant) targets; the
  // weights are data, not part of the differentiated graph.
  const Tensor& t = target.value();
  Tensor weights(t.shape());
  const float* pt = t.data();
  float* pw = weights.data();
  const int64_t n = t.numel();
  int64_t extreme = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (pt[i] > config.high_threshold || pt[i] < config.low_threshold) {
      ++extreme;
    }
  }
  const float frac =
      n > 0 ? static_cast<float>(extreme) / static_cast<float>(n) : 0.f;
  // Rarer extremes get a larger weight; fully-normal batches degrade to MSE.
  const float w_extreme =
      config.beta * std::pow(std::max(1.f - frac, 1e-3f), -config.gamma);
  for (int64_t i = 0; i < n; ++i) {
    const bool is_extreme =
        pt[i] > config.high_threshold || pt[i] < config.low_threshold;
    pw[i] = is_extreme ? w_extreme : 1.f;
  }
  Var d = Sub(pred, target);
  Var weighted = Mul(Mul(d, d), Var::Leaf(std::move(weights)));
  return MeanAll(weighted);
}

}  // namespace nn
}  // namespace ealgap
