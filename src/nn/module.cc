#include "nn/module.h"

namespace ealgap {
namespace nn {

std::vector<Var> Module::Parameters() const {
  std::vector<Var> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, Var>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Var>> out = params_;
  for (const auto& [name, child] : children_) {
    for (auto& [sub_name, p] : child->NamedParameters()) {
      out.emplace_back(name + "." + sub_name, p);
    }
  }
  return out;
}

void Module::ZeroGrad() {
  for (Var& p : Parameters()) p.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const Var& p : Parameters()) n += p.value().numel();
  return n;
}

void Module::VisitModules(
    const std::function<void(const std::string&, Module*)>& fn,
    const std::string& prefix) {
  fn(prefix, this);
  for (auto& [name, child] : children_) {
    child->VisitModules(fn, prefix.empty() ? name : prefix + "." + name);
  }
}

void Module::VisitModules(
    const std::function<void(const std::string&, const Module*)>& fn,
    const std::string& prefix) const {
  fn(prefix, this);
  for (const auto& [name, child] : children_) {
    const Module* c = child;
    c->VisitModules(fn, prefix.empty() ? name : prefix + "." + name);
  }
}

Var Module::RegisterParameter(std::string name, Tensor init) {
  Var v = Var::Leaf(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), v);
  return v;
}

void Module::RegisterModule(std::string name, Module* child) {
  children_.emplace_back(std::move(name), child);
}

}  // namespace nn
}  // namespace ealgap
