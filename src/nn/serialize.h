#ifndef EALGAP_NN_SERIALIZE_H_
#define EALGAP_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace ealgap {
namespace nn {

/// Saves all named parameters of `module` to a plain-text checkpoint:
///   <name> <rank> <d0> ... <dk> <v0> <v1> ...
/// one parameter per line. Portable and diff-able; fine at our model sizes.
Status SaveParameters(const Module& module, const std::string& path);

/// Loads a checkpoint produced by SaveParameters into `module`. Every
/// parameter in the module must be present in the file with a matching
/// shape (extra file entries are ignored).
Status LoadParameters(Module& module, const std::string& path);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_SERIALIZE_H_
