#ifndef EALGAP_NN_SERIALIZE_H_
#define EALGAP_NN_SERIALIZE_H_

#include <iosfwd>
#include <map>
#include <string>

#include "common/checksum.h"
#include "common/status.h"
#include "nn/module.h"

namespace ealgap {
namespace nn {

/// Saves all named parameters of `module` to a plain-text checkpoint:
///   <name> <rank> <d0> ... <dk> <v0> <v1> ...
/// one parameter per line. Portable and diff-able; fine at our model sizes.
/// Values are written with float max_digits10 precision, so a save/load
/// round-trip restores every parameter bit-exactly.
Status SaveParameters(const Module& module, const std::string& path);

/// Loads a checkpoint produced by SaveParameters into `module`. Every
/// parameter in the module must be present in the file with a matching
/// shape (extra file entries are ignored).
Status LoadParameters(Module& module, const std::string& path);

/// Stream-level building blocks shared by SaveParameters/LoadParameters and
/// the versioned model checkpoints of NeuralForecaster::SaveCheckpoint.

/// Writes every named parameter of `module` to `out`, one per line in the
/// format above. Returns the number of lines written via `count` when
/// non-null. When `crc` is non-null, every written line (with its '\n') is
/// folded into it, giving the block a CRC32 the reader can verify.
void WriteParameterBlock(std::ostream& out, const Module& module,
                         int64_t* count = nullptr, LineCrc* crc = nullptr);

/// Reads exactly `count` parameter lines (or, when count < 0, every
/// remaining non-empty line) from `in` into `loaded`. Malformed lines,
/// absurd shapes, and truncated value lists produce a Status error —
/// never a crash or an unbounded allocation. `context` names the source
/// in error messages. When `crc` is non-null, consumed lines are folded
/// into it exactly as WriteParameterBlock does on the writing side, so a
/// checksummed block detects any in-block corruption the parser cannot.
Status ReadParameterBlock(std::istream& in, int64_t count,
                          std::map<std::string, Tensor>* loaded,
                          const std::string& context, LineCrc* crc = nullptr);

/// Writes an arbitrary name -> Tensor map in the same line format (and
/// deterministic map order), so non-module tensors — optimizer moments,
/// best-validation snapshots — can ride in checksummed checkpoint blocks
/// that ReadParameterBlock parses back.
void WriteTensorMapBlock(std::ostream& out,
                         const std::map<std::string, Tensor>& tensors,
                         int64_t* count = nullptr, LineCrc* crc = nullptr);

/// Copies `loaded` entries into the matching parameters of `module`.
/// Every module parameter must be present with an identical shape.
Status ApplyParameters(Module& module,
                       const std::map<std::string, Tensor>& loaded,
                       const std::string& context);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_SERIALIZE_H_
