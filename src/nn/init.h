#ifndef EALGAP_NN_INIT_H_
#define EALGAP_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace ealgap {
namespace nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suits tanh/sigmoid layers (the GRU gates, attention decoders).
Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

/// Kaiming/He normal: N(0, sqrt(2 / fan_in)). Suits ReLU layers.
Tensor HeNormal(Shape shape, int64_t fan_in, Rng& rng);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_INIT_H_
