#include "nn/linear.h"

#include <utility>

#include "common/logging.h"
#include "nn/init.h"
#include "nn/quant.h"

namespace ealgap {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool has_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight",
      XavierUniform({in_features, out_features}, in_features, out_features,
                    rng));
  if (has_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

// Out of line: ~Linear (and the unique_ptr<QuantPack> it destroys) needs
// the complete QuantPack type, which the header only forward-declares.
Linear::~Linear() = default;

void Linear::set_quant_pack(std::unique_ptr<quant::QuantPack> pack) {
  quant_pack_ = std::move(pack);
}

Var Linear::Forward(const Var& x) const {
  const Shape& in_shape = x.value().shape();
  EALGAP_CHECK_GE(in_shape.size(), 1u);
  EALGAP_CHECK_EQ(in_shape.back(), in_features_)
      << "Linear(" << in_features_ << ") got " << ShapeToString(in_shape);
  const int64_t rows = x.value().numel() / in_features_;
  if (quant_pack_ != nullptr && quant::ModeEnabled() && !GradEnabled()) {
    // Int8 path. An undefined result means the activation block was
    // all-zero or non-finite — fall through to the float matmul, which
    // handles both exactly (and identically in every backend).
    Tensor qout = quant::QuantLinearForward(
        *quant_pack_, x.value(),
        bias_.defined() ? bias_.value().data() : nullptr);
    if (qout.defined()) {
      Shape out_shape(in_shape.begin(), in_shape.end() - 1);
      out_shape.push_back(out_features_);
      return Reshape(Var::Leaf(std::move(qout)), std::move(out_shape));
    }
  }
  Var flat = Reshape(x, {rows, in_features_});
  Var out = MatMul(flat, weight_);
  if (bias_.defined()) {
    out = Add(out, Reshape(bias_, {1, out_features_}));
  }
  Shape out_shape(in_shape.begin(), in_shape.end() - 1);
  out_shape.push_back(out_features_);
  return Reshape(out, std::move(out_shape));
}

}  // namespace nn
}  // namespace ealgap
