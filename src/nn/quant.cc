#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/checksum.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/linear.h"
#include "tensor/kernels.h"
#include "tensor/vec.h"

namespace ealgap {
namespace nn {
namespace quant {
namespace {

thread_local bool g_quant_mode = false;

/// Same cost model as ops.cc MatMul: chunk rows so one chunk is ~2^15
/// multiply-adds (int ops are cheaper than float, but the constant only
/// shifts the parallelism threshold, not correctness).
constexpr int64_t kQuantGrainOps = 1 << 15;

/// Grow-only thread-local scratch for callers without an ambient Arena
/// (training-side tools, tests). The serve path installs an ArenaScope in
/// PredictNextInto, so the steady-state serve step never touches these.
struct TlScratch {
  AlignedBuffer<int8_t> aq;
  AlignedBuffer<int32_t> acc;  // streaming (k > kQuantFusedMaxK) path only
};

TlScratch& Scratch() {
  static thread_local TlScratch s;
  return s;
}

constexpr char kPackMagic[] = "ealgap-quant-pack";
constexpr int kPackVersion = 1;

/// Reads one '\n'-terminated line starting at *pos; advances past it.
bool NextLine(const std::string& s, size_t* pos, std::string* line) {
  if (*pos >= s.size()) return false;
  const size_t nl = s.find('\n', *pos);
  if (nl == std::string::npos) return false;
  line->assign(s, *pos, nl - *pos);
  *pos = nl + 1;
  return true;
}

std::vector<std::pair<std::string, Linear*>> CollectLinears(Module& root) {
  std::vector<std::pair<std::string, Linear*>> out;
  root.VisitModules([&out](const std::string& name, Module* m) {
    if (auto* linear = dynamic_cast<Linear*>(m)) {
      out.emplace_back(name, linear);
    }
  });
  return out;
}

std::vector<std::pair<std::string, const Linear*>> CollectLinears(
    const Module& root) {
  std::vector<std::pair<std::string, const Linear*>> out;
  root.VisitModules([&out](const std::string& name, const Module* m) {
    if (const auto* linear = dynamic_cast<const Linear*>(m)) {
      out.emplace_back(name, linear);
    }
  });
  return out;
}

Result<std::unique_ptr<QuantPack>> PackLinear(const Linear& layer,
                                              const std::string& name) {
  const Tensor& w = layer.weight().value();
  const int64_t in = layer.in_features();
  const int64_t out = layer.out_features();
  if (in > kQuantMaxK) {
    return Status::InvalidArgument(
        "cannot int8-pack layer " + name + ": in_features " +
        std::to_string(in) + " exceeds the int32-accumulation bound " +
        std::to_string(kQuantMaxK));
  }
  const float* pw = w.data();
  std::vector<float> absmax(static_cast<size_t>(out), 0.f);
  for (int64_t p = 0; p < in; ++p) {
    const float* row = pw + p * out;
    for (int64_t j = 0; j < out; ++j) {
      const float a = std::fabs(row[j]);
      if (!std::isfinite(a)) {
        return Status::InvalidArgument("cannot int8-pack layer " + name +
                                       ": non-finite weight");
      }
      absmax[j] = std::max(absmax[j], a);
    }
  }
  auto pack = std::make_unique<QuantPack>();
  pack->in = in;
  pack->out = out;
  pack->scales.Reset(static_cast<size_t>(out));
  std::vector<float> inv(static_cast<size_t>(out), 0.f);
  for (int64_t j = 0; j < out; ++j) {
    pack->scales[j] = absmax[j] / 127.f;
    inv[j] = absmax[j] > 0.f ? 127.f / absmax[j] : 0.f;
  }
  const int64_t pairs = (in + 1) / 2;
  pack->wpack.Reset(static_cast<size_t>(pairs * 2 * out));  // zero-filled
  for (int64_t p2 = 0; p2 < pairs; ++p2) {
    int16_t* row = pack->wpack.data() + p2 * 2 * out;
    const float* w0 = pw + (2 * p2) * out;
    const float* w1 = (2 * p2 + 1 < in) ? pw + (2 * p2 + 1) * out : nullptr;
    for (int64_t j = 0; j < out; ++j) {
      row[2 * j] = vec::QuantizeOneS8(w0[j], inv[j]);
      if (w1 != nullptr) row[2 * j + 1] = vec::QuantizeOneS8(w1[j], inv[j]);
    }
  }
  return pack;
}

}  // namespace

bool ModeEnabled() { return g_quant_mode; }

ScopedQuantMode::ScopedQuantMode() : prev_(g_quant_mode) {
  g_quant_mode = true;
}

ScopedQuantMode::~ScopedQuantMode() { g_quant_mode = prev_; }

Tensor QuantLinearForward(const QuantPack& pack, const Tensor& x,
                          const float* bias) {
  const int64_t k = pack.in;
  const int64_t n = pack.out;
  EALGAP_CHECK_EQ(x.numel() % k, 0);
  const int64_t rows = x.numel() / k;
  const kernels::KernelTable& t = kernels::Active();
  const float* px = x.data();
  const float absmax = t.absmax_block(px, rows * k);
  if (!(absmax > 0.f) || !std::isfinite(absmax)) return Tensor();
  const float inv_scale = 127.f / absmax;
  const float a_scale = absmax / 127.f;

  // Kernel policy (kernels.h, kQuantFusedMaxK): shallow reductions — every
  // tall-activation layer, where rows = num_regions — take the fused
  // register-tile kernel (no int32 scratch, no per-row epilogue); deeper
  // reductions (the single-row decoder GEMVs, k up to num_regions *
  // window) take the streaming pair, which reads the weight pack
  // sequentially exactly once. Both are bit-identical by kernel contract.
  const bool fused = k <= kernels::kQuantFusedMaxK;

  // Per-step scratch: arena-resident on the serve path (rewound by the
  // caller's ArenaScope), thread-local grow-only elsewhere.
  int8_t* aq = nullptr;
  int32_t* acc = nullptr;
  const size_t aq_elems = static_cast<size_t>(rows * k);
  const size_t acc_elems = fused ? 0 : static_cast<size_t>(rows * n);
  if (Arena* arena = CurrentArena()) {
    aq = static_cast<int8_t*>(arena->Allocate(aq_elems));
    if (!fused) {
      acc = static_cast<int32_t*>(
          arena->Allocate(acc_elems * sizeof(int32_t)));
    }
  } else {
    TlScratch& s = Scratch();
    if (s.aq.size() < aq_elems) s.aq.Reset(aq_elems);
    aq = s.aq.data();
    if (!fused) {
      if (s.acc.size() < acc_elems) s.acc.Reset(acc_elems);
      acc = s.acc.data();
    }
  }

  t.quantize_s8(px, inv_scale, aq, rows * k);

  Tensor out({rows, n});
  float* po = out.data();
  const float* w_scale = pack.scales.data();
  const int16_t* wp = pack.wpack.data();
  const int64_t row_ops = std::max<int64_t>(1, k * n);
  const int64_t grain = std::max<int64_t>(1, kQuantGrainOps / row_ops);
  ParallelFor(0, rows, grain, [&](int64_t i0, int64_t i1) {
    if (fused) {
      t.quant_gemm_dequant_rows(aq, wp, a_scale, w_scale, bias, po, i0, i1,
                                k, n);
      return;
    }
    t.quant_gemm_rows(aq, wp, acc, i0, i1, k, n);
    for (int64_t i = i0; i < i1; ++i) {
      t.dequant_bias_row(acc + i * n, a_scale, w_scale, bias, po + i * n, n);
    }
  });
  return out;
}

bool QuantEligible(const Linear& layer) {
  return layer.in_features() >= kQuantMinDim &&
         layer.out_features() >= kQuantMinDim;
}

Result<int64_t> PackLinears(Module& root) {
  int64_t packed = 0;
  for (auto& [name, layer] : CollectLinears(root)) {
    if (!QuantEligible(*layer)) {
      layer->set_quant_pack(nullptr);
      continue;
    }
    EALGAP_ASSIGN_OR_RETURN(std::unique_ptr<QuantPack> pack,
                            PackLinear(*layer, name));
    layer->set_quant_pack(std::move(pack));
    ++packed;
  }
  return packed;
}

void ClearPacks(Module& root) {
  for (auto& [name, layer] : CollectLinears(root)) {
    layer->set_quant_pack(nullptr);
  }
}

int64_t PackedLinearCount(const Module& root) {
  int64_t count = 0;
  for (const auto& [name, layer] : CollectLinears(root)) {
    if (layer->quant_pack() != nullptr) ++count;
  }
  return count;
}

namespace {

/// The quantized layer roster (cache contents, pack counts) covers only
/// QuantEligible layers — ineligible ones serve float and carry no pack.
template <class Pairs>
Pairs FilterEligible(Pairs linears) {
  Pairs out;
  for (auto& entry : linears) {
    if (QuantEligible(*entry.second)) out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

Status SavePackCache(const Module& root, const std::string& path,
                     uint32_t source_crc) {
  auto linears = FilterEligible(CollectLinears(root));
  for (const auto& [name, layer] : linears) {
    if (layer->quant_pack() == nullptr) {
      return Status::FailedPrecondition(
          "layer " + name + " has no int8 pack; run PackLinears first");
    }
  }
  std::string body;
  body += std::string(kPackMagic) + " " + std::to_string(kPackVersion) + "\n";
  body += "source_crc " + Crc32Hex(source_crc) + "\n";
  body += "layers " + std::to_string(linears.size()) + "\n";
  for (const auto& [name, layer] : linears) {
    const QuantPack& pack = *layer->quant_pack();
    body += "layer " + name + " " + std::to_string(pack.in) + " " +
            std::to_string(pack.out) + "\n";
    body.append(reinterpret_cast<const char*>(pack.scales.data()),
                pack.scales.size() * sizeof(float));
    body.append(reinterpret_cast<const char*>(pack.wpack.data()),
                pack.wpack.size() * sizeof(int16_t));
    body += "\n";
  }
  const uint32_t crc = Crc32(body);
  body += "crc " + Crc32Hex(crc) + "\nend\n";
  return WriteFileAtomic(path, body);
}

Status LoadPackCache(Module& root, const std::string& path,
                     uint32_t expected_source_crc) {
  EALGAP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  size_t pos = 0;
  std::string line;
  if (!NextLine(text, &pos, &line)) {
    return Status::ParseError(path + " is not a quant-pack cache");
  }
  {
    std::istringstream h(line);
    std::string magic;
    int version = 0;
    if (!(h >> magic >> version) || magic != kPackMagic) {
      return Status::ParseError(path + " is not a quant-pack cache");
    }
    if (version != kPackVersion) {
      return Status::InvalidArgument(
          "unsupported quant-pack version " + std::to_string(version) +
          " in " + path + " (maximum supported: " +
          std::to_string(kPackVersion) + ")");
    }
  }
  if (!NextLine(text, &pos, &line) || line.rfind("source_crc ", 0) != 0) {
    return Status::ParseError("missing source_crc in " + path);
  }
  uint32_t stored_crc = 0;
  if (!ParseCrc32Hex(line.substr(11), &stored_crc)) {
    return Status::ParseError("malformed source_crc in " + path);
  }
  if (stored_crc != expected_source_crc) {
    return Status::InvalidArgument(
        "quant-pack cache " + path + " was built from a checkpoint with CRC " +
        Crc32Hex(stored_crc) + " but the current checkpoint has CRC " +
        Crc32Hex(expected_source_crc) +
        "; refusing to serve stale packs (rebuild with PackLinears/--quant)");
  }
  if (!NextLine(text, &pos, &line) || line.rfind("layers ", 0) != 0) {
    return Status::ParseError("missing layer count in " + path);
  }
  const int64_t layer_count = std::atoll(line.c_str() + 7);

  auto linears = FilterEligible(CollectLinears(root));
  if (layer_count != static_cast<int64_t>(linears.size())) {
    return Status::InvalidArgument(
        path + " holds " + std::to_string(layer_count) +
        " layers but the model has " + std::to_string(linears.size()) +
        " quantizable ones");
  }
  std::vector<std::unique_ptr<QuantPack>> packs;
  packs.reserve(linears.size());
  for (size_t li = 0; li < linears.size(); ++li) {
    if (!NextLine(text, &pos, &line) || line.rfind("layer ", 0) != 0) {
      return Status::ParseError("truncated layer table in " + path);
    }
    std::istringstream h(line.substr(6));
    std::string name;
    int64_t in = 0, out = 0;
    if (!(h >> name >> in >> out)) {
      return Status::ParseError("malformed layer header in " + path);
    }
    const auto& [want_name, layer] = linears[li];
    if (name != want_name || in != layer->in_features() ||
        out != layer->out_features()) {
      return Status::InvalidArgument(
          path + " layer " + std::to_string(li) + " is " + name + " (" +
          std::to_string(in) + "x" + std::to_string(out) +
          ") but the model expects " + want_name + " (" +
          std::to_string(layer->in_features()) + "x" +
          std::to_string(layer->out_features()) + ")");
    }
    const int64_t pairs = (in + 1) / 2;
    const size_t scale_bytes = static_cast<size_t>(out) * sizeof(float);
    const size_t wpack_bytes =
        static_cast<size_t>(pairs * 2 * out) * sizeof(int16_t);
    if (pos + scale_bytes + wpack_bytes + 1 > text.size()) {
      return Status::ParseError("truncated pack payload in " + path);
    }
    auto pack = std::make_unique<QuantPack>();
    pack->in = in;
    pack->out = out;
    pack->scales.Reset(static_cast<size_t>(out));
    std::memcpy(pack->scales.data(), text.data() + pos, scale_bytes);
    pos += scale_bytes;
    pack->wpack.Reset(static_cast<size_t>(pairs * 2 * out));
    std::memcpy(pack->wpack.data(), text.data() + pos, wpack_bytes);
    pos += wpack_bytes;
    if (text[pos] != '\n') {
      return Status::ParseError("malformed pack payload in " + path);
    }
    ++pos;
    packs.push_back(std::move(pack));
  }
  const size_t crc_start = pos;
  if (!NextLine(text, &pos, &line) || line.rfind("crc ", 0) != 0) {
    return Status::ParseError("missing crc in " + path);
  }
  uint32_t stored_body_crc = 0;
  if (!ParseCrc32Hex(line.substr(4), &stored_body_crc)) {
    return Status::ParseError("malformed crc in " + path);
  }
  const uint32_t actual = Crc32(text.data(), crc_start);
  if (stored_body_crc != actual) {
    return Status::ParseError("quant-pack cache " + path + " is corrupt: CRC " +
                              Crc32Hex(actual) + " != recorded " +
                              Crc32Hex(stored_body_crc));
  }
  if (!NextLine(text, &pos, &line) || line != "end") {
    return Status::ParseError("missing end marker in " + path);
  }
  for (size_t li = 0; li < linears.size(); ++li) {
    linears[li].second->set_quant_pack(std::move(packs[li]));
  }
  return Status::OK();
}

}  // namespace quant
}  // namespace nn
}  // namespace ealgap
