#ifndef EALGAP_NN_CONV2D_H_
#define EALGAP_NN_CONV2D_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// 2-D convolution (NCHW) via im2col, with full autograd support.
///
/// Used by the ST-ResNet baseline, whose residual units are 3x3
/// convolutions over the city grid.
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         Rng& rng, int64_t stride = 1, int64_t padding = 0,
         bool has_bias = true);

  /// x: (B, in_channels, H, W) -> (B, out_channels, H', W') with
  /// H' = (H + 2*padding - kernel)/stride + 1 (same for W').
  Var Forward(const Var& x) const;

  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;
  Var weight_;  // (out_channels, in_channels * kernel * kernel)
  Var bias_;    // (out_channels)
};

/// Differentiable im2col: x (B, C, H, W) -> columns (B, C*k*k, OH*OW).
/// Exposed for testing.
Var Im2Col(const Var& x, int64_t kernel, int64_t stride, int64_t padding);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_CONV2D_H_
