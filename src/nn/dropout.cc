#include "nn/dropout.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace ealgap {
namespace nn {

Var Dropout(const Var& x, float p, Rng& rng) {
  EALGAP_CHECK(p >= 0.f && p < 1.f);
  if (!GradEnabled() || p == 0.f) return x;
  Tensor mask(x.value().shape());
  const float keep_scale = 1.f / (1.f - p);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng.Uniform() < p ? 0.f : keep_scale;
  }
  return Mul(x, Var::Leaf(std::move(mask)));
}

}  // namespace nn
}  // namespace ealgap
