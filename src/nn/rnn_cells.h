#ifndef EALGAP_NN_RNN_CELLS_H_
#define EALGAP_NN_RNN_CELLS_H_

#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// Vanilla recurrent cell: h' = tanh(x W + h U + b).
class RnnCell : public Module {
 public:
  RnnCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// x: (B, input), h: (B, hidden) -> (B, hidden).
  Var Forward(const Var& x, const Var& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear ih_;  // input -> hidden (with bias)
  Linear hh_;  // hidden -> hidden (no bias)
};

/// Gated Recurrent Unit cell (Cho et al. 2014):
///   z = sigmoid(x Wz + h Uz + bz)
///   r = sigmoid(x Wr + h Ur + br)
///   n = tanh(x Wn + (r .* h) Un + bn)
///   h' = (1 - z) .* h + z .* n
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// x: (B, input), h: (B, hidden) -> (B, hidden).
  Var Forward(const Var& x, const Var& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear iz_, hz_;
  Linear ir_, hr_;
  Linear in_, hn_;
};

/// Long Short-Term Memory cell with forget-gate bias initialized to 1.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  struct State {
    Var h;
    Var c;
  };

  /// x: (B, input), state {h, c}: (B, hidden) each.
  State Forward(const Var& x, const State& state) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear ii_, hi_;  // input gate
  Linear if_, hf_;  // forget gate
  Linear ig_, hg_;  // candidate
  Linear io_, ho_;  // output gate
};

/// Zero hidden state of shape (batch, hidden).
Var ZeroState(int64_t batch, int64_t hidden);

/// Unrolls a cell over a sequence. `steps[t]` is the (B, input) slice at
/// time t; returns the final hidden state (B, hidden).
Var RunRnn(const RnnCell& cell, const std::vector<Var>& steps, Var h);
Var RunGru(const GruCell& cell, const std::vector<Var>& steps, Var h);
Var RunLstm(const LstmCell& cell, const std::vector<Var>& steps,
            LstmCell::State state);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_RNN_CELLS_H_
