#ifndef EALGAP_NN_MODULE_H_
#define EALGAP_NN_MODULE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// Base class for trainable components.
///
/// Concrete modules register their parameters (leaf Vars with
/// requires_grad) and sub-modules in their constructors; Parameters() then
/// yields the full flattened set for an optimizer, and NamedParameters()
/// hierarchical "child.name" keys for serialization.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<Var> Parameters() const;

  /// Parameters with hierarchical names ("gru.w_z", ...).
  std::vector<std::pair<std::string, Var>> NamedParameters() const;

  /// Zeroes the gradient of every parameter.
  void ZeroGrad();

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

  /// Depth-first traversal of this module and every registered child with
  /// hierarchical names ("" for the root, "gru.w_z" style below). The int8
  /// pack layer (nn/quant.cc) uses this to reach every Linear without the
  /// Module base knowing layer types.
  void VisitModules(const std::function<void(const std::string&, Module*)>& fn,
                    const std::string& prefix = "");
  void VisitModules(
      const std::function<void(const std::string&, const Module*)>& fn,
      const std::string& prefix = "") const;

 protected:
  /// Registers a trainable tensor; returns the parameter Var.
  Var RegisterParameter(std::string name, Tensor init);

  /// Registers a child module. `child` must outlive this module (it is
  /// normally a data member of the subclass).
  void RegisterModule(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, Var>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_MODULE_H_
