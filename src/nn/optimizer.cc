#include "nn/optimizer.h"

#include <cmath>

#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace ealgap {
namespace nn {

namespace {
// Optimizer updates are elementwise; chunks below this stay serial.
constexpr int64_t kStepGrain = 1 << 12;
}  // namespace

void Optimizer::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.f) {
    velocity_.reserve(params_.size());
    for (Var& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    const Tensor& g = p.grad();
    // Parameters are leaves; updating the value in place is safe because the
    // next forward pass re-reads it.
    Tensor& w = const_cast<Tensor&>(p.value());
    float* pw = w.data();
    const float* pg = g.data();
    const int64_t n = w.numel();
    if (momentum_ != 0.f) {
      float* pv = velocity_[i].data();
      ParallelFor(0, n, kStepGrain, [&](int64_t j0, int64_t j1) {
        for (int64_t j = j0; j < j1; ++j) {
          pv[j] = momentum_ * pv[j] + pg[j];
          pw[j] -= lr_ * pv[j];
        }
      });
    } else {
      ParallelFor(0, n, kStepGrain, [&](int64_t j0, int64_t j1) {
        for (int64_t j = j0; j < j1; ++j) pw[j] -= lr_ * pg[j];
      });
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Var& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    const Tensor& g = p.grad();
    Tensor& w = const_cast<Tensor&>(p.value());
    float* pw = w.data();
    const float* pg = g.data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    const int64_t n = w.numel();
    ParallelFor(0, n, kStepGrain, [&](int64_t j0, int64_t j1) {
      for (int64_t j = j0; j < j1; ++j) {
        pm[j] = beta1_ * pm[j] + (1.f - beta1_) * pg[j];
        pv[j] = beta2_ * pv[j] + (1.f - beta2_) * pg[j] * pg[j];
        const float mhat = pm[j] / bc1;
        const float vhat = pv[j] / bc2;
        pw[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    });
  }
}

void Adam::ExportState(int64_t* t, std::vector<Tensor>* m,
                       std::vector<Tensor>* v) const {
  *t = t_;
  m->clear();
  v->clear();
  m->reserve(m_.size());
  v->reserve(v_.size());
  for (const Tensor& x : m_) m->push_back(x.Clone());
  for (const Tensor& x : v_) v->push_back(x.Clone());
}

Status Adam::ImportState(int64_t t, const std::vector<Tensor>& m,
                         const std::vector<Tensor>& v) {
  if (t < 0) {
    return Status::InvalidArgument("Adam step count is negative: " +
                                   std::to_string(t));
  }
  if (m.size() != m_.size() || v.size() != v_.size()) {
    return Status::InvalidArgument(
        "Adam state holds " + std::to_string(m.size()) + "/" +
        std::to_string(v.size()) + " moment tensors but the optimizer has " +
        std::to_string(m_.size()) + " parameters");
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    if (!(m[i].shape() == m_[i].shape()) || !(v[i].shape() == v_[i].shape())) {
      return Status::InvalidArgument("Adam moment shape mismatch at index " +
                                     std::to_string(i));
    }
  }
  t_ = t;
  for (size_t i = 0; i < m_.size(); ++i) {
    m_[i].CopyFrom(m[i]);
    v_[i].CopyFrom(v[i]);
  }
  return Status::OK();
}

float ClipGradNorm(std::vector<Var>& params, float max_norm) {
  double total = 0.0;
  for (Var& p : params) total += ops::SumSquares(p.grad());
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.f) {
    const float scale = max_norm / norm;
    for (Var& p : params) ops::ScaleInPlace(p.grad(), scale);
  }
  return norm;
}

}  // namespace nn
}  // namespace ealgap
