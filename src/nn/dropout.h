#ifndef EALGAP_NN_DROPOUT_H_
#define EALGAP_NN_DROPOUT_H_

#include "common/rng.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// Inverted dropout: during training each element is zeroed with
/// probability p and survivors are scaled by 1/(1-p); under NoGradGuard
/// (inference) the input passes through unchanged. Stateless apart from
/// the caller-provided Rng, so it composes with the functional style of
/// the model code.
Var Dropout(const Var& x, float p, Rng& rng);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_DROPOUT_H_
