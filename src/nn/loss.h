#ifndef EALGAP_NN_LOSS_H_
#define EALGAP_NN_LOSS_H_

#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// Mean squared error over all elements.
Var MseLoss(const Var& pred, const Var& target);

/// Mean absolute error over all elements.
Var MaeLoss(const Var& pred, const Var& target);

/// Huber loss with the given delta (smooth L1).
Var HuberLoss(const Var& pred, const Var& target, float delta = 1.f);

/// Configuration for the extreme-value loss (EVL baseline, Ding et al.,
/// KDD'19). Targets above `high_threshold` or below `low_threshold` are
/// "extreme"; their squared error is up-weighted by the EVT-motivated factor
///   w = beta * (1 - extreme_fraction)^(-gamma)
/// where extreme_fraction is the fraction of extreme samples in the batch.
/// This reproduces the paper's intent — extreme samples dominate the loss in
/// proportion to their rarity — without the original's separate
/// classification head.
struct EvlConfig {
  float high_threshold = 0.f;
  float low_threshold = 0.f;
  float beta = 1.f;
  float gamma = 1.f;
};

/// Extreme-value-weighted squared error.
Var EvlLoss(const Var& pred, const Var& target, const EvlConfig& config);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_LOSS_H_
