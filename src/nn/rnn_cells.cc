#include "nn/rnn_cells.h"

namespace ealgap {
namespace nn {

RnnCell::RnnCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      ih_(input_size, hidden_size, rng, /*has_bias=*/true),
      hh_(hidden_size, hidden_size, rng, /*has_bias=*/false) {
  RegisterModule("ih", &ih_);
  RegisterModule("hh", &hh_);
}

Var RnnCell::Forward(const Var& x, const Var& h) const {
  return Tanh(Add(ih_.Forward(x), hh_.Forward(h)));
}

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      iz_(input_size, hidden_size, rng, true),
      hz_(hidden_size, hidden_size, rng, false),
      ir_(input_size, hidden_size, rng, true),
      hr_(hidden_size, hidden_size, rng, false),
      in_(input_size, hidden_size, rng, true),
      hn_(hidden_size, hidden_size, rng, false) {
  RegisterModule("iz", &iz_);
  RegisterModule("hz", &hz_);
  RegisterModule("ir", &ir_);
  RegisterModule("hr", &hr_);
  RegisterModule("in", &in_);
  RegisterModule("hn", &hn_);
}

Var GruCell::Forward(const Var& x, const Var& h) const {
  Var z = Sigmoid(Add(iz_.Forward(x), hz_.Forward(h)));
  Var r = Sigmoid(Add(ir_.Forward(x), hr_.Forward(h)));
  Var n = Tanh(Add(in_.Forward(x), hn_.Forward(Mul(r, h))));
  Var one_minus_z = AddScalar(Neg(z), 1.f);
  return Add(Mul(one_minus_z, h), Mul(z, n));
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      ii_(input_size, hidden_size, rng, true),
      hi_(hidden_size, hidden_size, rng, false),
      if_(input_size, hidden_size, rng, true),
      hf_(hidden_size, hidden_size, rng, false),
      ig_(input_size, hidden_size, rng, true),
      hg_(hidden_size, hidden_size, rng, false),
      io_(input_size, hidden_size, rng, true),
      ho_(hidden_size, hidden_size, rng, false) {
  RegisterModule("ii", &ii_);
  RegisterModule("hi", &hi_);
  RegisterModule("if", &if_);
  RegisterModule("hf", &hf_);
  RegisterModule("ig", &ig_);
  RegisterModule("hg", &hg_);
  RegisterModule("io", &io_);
  RegisterModule("ho", &ho_);
  // Standard trick: bias the forget gate open so gradients flow early on.
  const_cast<Tensor&>(if_.bias().value()).Fill(1.f);
}

LstmCell::State LstmCell::Forward(const Var& x, const State& s) const {
  Var i = Sigmoid(Add(ii_.Forward(x), hi_.Forward(s.h)));
  Var f = Sigmoid(Add(if_.Forward(x), hf_.Forward(s.h)));
  Var g = Tanh(Add(ig_.Forward(x), hg_.Forward(s.h)));
  Var o = Sigmoid(Add(io_.Forward(x), ho_.Forward(s.h)));
  Var c = Add(Mul(f, s.c), Mul(i, g));
  Var h = Mul(o, Tanh(c));
  return {h, c};
}

Var ZeroState(int64_t batch, int64_t hidden) {
  return Var::Leaf(Tensor::Zeros({batch, hidden}));
}

Var RunRnn(const RnnCell& cell, const std::vector<Var>& steps, Var h) {
  for (const Var& x : steps) h = cell.Forward(x, h);
  return h;
}

Var RunGru(const GruCell& cell, const std::vector<Var>& steps, Var h) {
  for (const Var& x : steps) h = cell.Forward(x, h);
  return h;
}

Var RunLstm(const LstmCell& cell, const std::vector<Var>& steps,
            LstmCell::State state) {
  for (const Var& x : steps) state = cell.Forward(x, state);
  return state.h;
}

}  // namespace nn
}  // namespace ealgap
