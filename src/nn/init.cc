#include "nn/init.h"

#include <cmath>

namespace ealgap {
namespace nn {

Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float a =
      std::sqrt(6.f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(std::move(shape), rng, -a, a);
}

Tensor HeNormal(Shape shape, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.f / static_cast<float>(fan_in));
  return Tensor::Randn(std::move(shape), rng, 0.f, stddev);
}

}  // namespace nn
}  // namespace ealgap
