#ifndef EALGAP_NN_QUANT_H_
#define EALGAP_NN_QUANT_H_

/// Int8 inference path for the serve-side forward pass (DESIGN.md §8g).
///
/// Scheme: per-output-row symmetric int8 weight quantization (scale_j =
/// absmax of column j / 127, no zero point) with dynamic per-tensor
/// activation quantization (scale = absmax of the activation block / 127,
/// recomputed per forward). The GEMM accumulates in int32 exactly — see
/// tensor/kernels_impl.h QuantGemmRows — so quantized predictions are
/// bit-identical across SIMD backends and thread counts by integer
/// arithmetic alone; only the (per-element pure) quantize/dequantize float
/// steps carry rounding, and they keep fixed expression trees.
///
/// Weight layout: the pack stores quantized values widened to int16 in
/// pair-interleaved order — ceil(in/2) rows of `out` (lo, hi) pairs, pair
/// p2 of column j holding (W[2*p2][j], W[2*p2+1][j]), an odd trailing k
/// padded with 0 — which is exactly the operand shape [V]PMADDWD consumes.
/// The pack is built once (at checkpoint load / after Fit) and shared by
/// every predictor over the model; per-step scratch (int8 activations,
/// int32 accumulators) comes from the ambient serve Arena, so the
/// steady-state quantized serve step performs 0 heap allocations
/// (tests/alloc_guard_test.cc).

#include <cstdint>
#include <functional>
#include <string>

#include "common/aligned_alloc.h"
#include "common/result.h"
#include "common/status.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace ealgap {
namespace nn {

class Linear;

namespace quant {

/// Largest supported reduction dimension: every |product| is at most
/// 127*127, so k products stay below INT32_MAX while k <= kQuantMaxK.
/// Packing a Linear with in_features above this fails loudly.
inline constexpr int64_t kQuantMaxK = (int64_t{1} << 31) / (127 * 127) - 1;

/// Layers narrower than this on either side stay float. Per-tensor
/// dynamic quantization pays two extra passes over the activations
/// (absmax + quantize) plus a pair broadcast per reduction step, which
/// the int32 SIMD kernels only win back when both dimensions carry
/// enough arithmetic per row. Measured on the serve shapes (AVX2, no
/// VNNI): (m,16)x(16,16) runs at ~0.6x float and (m,k)x(k,1) at ~0.5x,
/// while (m,32)x(32,32) reaches 1.1-1.6x and the deep m=1 decoder GEMVs
/// 1.5-2.8x — so eligibility is min(in, out) >= 32.
inline constexpr int64_t kQuantMinDim = 32;

/// True when `layer`'s shape profits from the int8 path (both dimensions
/// at least kQuantMinDim). PackLinears leaves ineligible layers float —
/// they silently keep the exact float forward in quant mode.
bool QuantEligible(const Linear& layer);

/// One packed Linear: pair-interleaved int16 weights + per-output-row
/// scales. Built by PackLinear; owned by the Linear it quantizes.
struct QuantPack {
  int64_t in = 0;
  int64_t out = 0;
  /// ceil(in/2) * (2 * out) int16, 64-byte aligned.
  AlignedBuffer<int16_t> wpack;
  /// out floats: absmax of weight column j / 127 (0 for an all-zero row).
  AlignedBuffer<float> scales;
};

/// Thread-local int8 inference mode. When enabled (and gradients are off),
/// Linear::Forward routes through the quantized kernels for every layer
/// that has a pack. Scopes nest.
bool ModeEnabled();

class ScopedQuantMode {
 public:
  ScopedQuantMode();
  ~ScopedQuantMode();
  ScopedQuantMode(const ScopedQuantMode&) = delete;
  ScopedQuantMode& operator=(const ScopedQuantMode&) = delete;

 private:
  bool prev_;
};

/// Int8 forward of one packed Linear: x is a contiguous (..., in) tensor,
/// flattened to (numel/in, in) rows; returns the (rows, out) float result.
/// Returns an undefined Tensor when the activation absmax is zero or
/// non-finite — the caller falls back to the float matmul, which handles
/// both exactly. Scratch comes from the ambient Arena when one is
/// installed (serve), else from grow-only thread-local buffers. x must be
/// NaN-free (serve input guards + the finite-params training sentinel
/// ensure this; an inf intermediate takes the absmax fallback).
Tensor QuantLinearForward(const QuantPack& pack, const Tensor& x,
                          const float* bias);

/// Builds (or rebuilds) the int8 pack of every QuantEligible Linear under
/// `root`; ineligible layers get their pack cleared (they serve float).
/// Returns the number of layers packed; fails when an eligible layer's
/// in_features exceeds kQuantMaxK or a weight is non-finite.
Result<int64_t> PackLinears(Module& root);

/// Drops every pack under `root` (float-only inference again).
void ClearPacks(Module& root);

/// Number of packed Linears under `root`.
int64_t PackedLinearCount(const Module& root);

/// Pack-cache serialization. The cache file is keyed to the checkpoint the
/// packs were derived from via `source_crc` (CRC32 of the checkpoint file
/// bytes): loading validates the stored key against the caller's and
/// REJECTS a mismatch with an error — a stale cache is never silently
/// repacked, the caller must decide (tools repack explicitly).
Status SavePackCache(const Module& root, const std::string& path,
                     uint32_t source_crc);
Status LoadPackCache(Module& root, const std::string& path,
                     uint32_t expected_source_crc);

}  // namespace quant
}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_QUANT_H_
