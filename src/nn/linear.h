#ifndef EALGAP_NN_LINEAR_H_
#define EALGAP_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// Fully-connected layer: y = x W + b.
///
/// Accepts inputs of any rank >= 1 whose last dimension equals
/// `in_features`; leading dimensions are treated as batch.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool has_bias = true);

  /// x: (..., in_features) -> (..., out_features).
  Var Forward(const Var& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Var weight_;  // (in, out)
  Var bias_;    // (out) — undefined when has_bias = false
};

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_LINEAR_H_
