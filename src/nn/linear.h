#ifndef EALGAP_NN_LINEAR_H_
#define EALGAP_NN_LINEAR_H_

#include <memory>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

namespace quant {
struct QuantPack;
}  // namespace quant

/// Fully-connected layer: y = x W + b.
///
/// Accepts inputs of any rank >= 1 whose last dimension equals
/// `in_features`; leading dimensions are treated as batch.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool has_bias = true);
  ~Linear() override;

  /// x: (..., in_features) -> (..., out_features). When an int8 pack is
  /// attached, quant mode is on, and gradients are off, the matmul runs
  /// through the int32-accumulation quant kernels instead (nn/quant.cc);
  /// training and float inference are untouched.
  Var Forward(const Var& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

  /// Int8 inference pack; null until quant::PackLinears (nn/quant.cc).
  const quant::QuantPack* quant_pack() const { return quant_pack_.get(); }
  void set_quant_pack(std::unique_ptr<quant::QuantPack> pack);

 private:
  int64_t in_features_;
  int64_t out_features_;
  Var weight_;  // (in, out)
  Var bias_;    // (out) — undefined when has_bias = false
  std::unique_ptr<quant::QuantPack> quant_pack_;
};

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_LINEAR_H_
