#ifndef EALGAP_NN_OPTIMIZER_H_
#define EALGAP_NN_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// Base class for gradient-descent optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients accumulated in the parameters.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

 protected:
  std::vector<Var> params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  /// The learning rate is mutable so divergence rollback can back it off
  /// mid-training without rebuilding the optimizer (which would zero the
  /// moments).
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  /// Number of Step() calls applied (the bias-correction clock).
  int64_t step_count() const { return t_; }

  /// Deep-copies the full optimizer state (step clock + per-parameter
  /// first/second moments, in Parameters() order) for train checkpoints.
  void ExportState(int64_t* t, std::vector<Tensor>* m,
                   std::vector<Tensor>* v) const;

  /// Restores state captured by ExportState (or parsed from a train
  /// checkpoint). Counts and shapes must match this optimizer's parameter
  /// set; mismatches return InvalidArgument and leave the state untouched.
  Status ImportState(int64_t t, const std::vector<Tensor>& m,
                     const std::vector<Tensor>& v);

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(std::vector<Var>& params, float max_norm);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_OPTIMIZER_H_
