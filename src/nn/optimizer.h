#ifndef EALGAP_NN_OPTIMIZER_H_
#define EALGAP_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/autograd.h"

namespace ealgap {
namespace nn {

/// Base class for gradient-descent optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients accumulated in the parameters.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

 protected:
  std::vector<Var> params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(std::vector<Var>& params, float max_norm);

}  // namespace nn
}  // namespace ealgap

#endif  // EALGAP_NN_OPTIMIZER_H_
