#include "nn/serialize.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace ealgap {
namespace nn {

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.precision(9);
  for (const auto& [name, p] : module.NamedParameters()) {
    const Tensor& t = p.value();
    out << name << " " << t.ndim();
    for (int64_t d : t.shape()) out << " " << d;
    const float* data = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) out << " " << data[i];
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadParameters(Module& module, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::map<std::string, Tensor> loaded;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string name;
    int64_t rank = 0;
    if (!(is >> name >> rank) || rank < 0 || rank > 8) {
      return Status::ParseError("bad checkpoint line in " + path);
    }
    Shape shape(rank);
    for (int64_t i = 0; i < rank; ++i) {
      if (!(is >> shape[i])) return Status::ParseError("bad shape in " + path);
    }
    const int64_t n = ShapeNumel(shape);
    std::vector<float> values(n);
    for (int64_t i = 0; i < n; ++i) {
      if (!(is >> values[i])) {
        return Status::ParseError("truncated values for " + name);
      }
    }
    loaded.emplace(name, Tensor::FromVector(shape, std::move(values)));
  }
  for (auto& [name, p] : module.NamedParameters()) {
    auto it = loaded.find(name);
    if (it == loaded.end()) {
      return Status::NotFound("checkpoint missing parameter " + name);
    }
    if (!(it->second.shape() == p.value().shape())) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          ShapeToString(it->second.shape()) + " vs model " +
          ShapeToString(p.value().shape()));
    }
    const_cast<Tensor&>(p.value()).CopyFrom(it->second);
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace ealgap
