#include "nn/serialize.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace ealgap {
namespace nn {

namespace {
/// Ceiling on a single parameter's element count: far above any model in
/// this repo, low enough that a corrupted shape cannot drive a multi-GB
/// allocation before the value parse fails.
constexpr int64_t kMaxParameterNumel = int64_t{1} << 28;
}  // namespace

namespace {

void WriteTensorLine(std::ostream& out, std::ostringstream& line,
                     const std::string& name, const Tensor& t, LineCrc* crc) {
  line.str("");
  line << name << " " << t.ndim();
  for (int64_t d : t.shape()) line << " " << d;
  const float* data = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) line << " " << data[i];
  const std::string text = line.str();
  out << text << "\n";
  if (crc != nullptr) crc->Update(text);
}

}  // namespace

void WriteParameterBlock(std::ostream& out, const Module& module,
                         int64_t* count, LineCrc* crc) {
  int64_t n = 0;
  std::ostringstream line;
  line.precision(std::numeric_limits<float>::max_digits10);
  for (const auto& [name, p] : module.NamedParameters()) {
    WriteTensorLine(out, line, name, p.value(), crc);
    ++n;
  }
  if (count != nullptr) *count = n;
}

void WriteTensorMapBlock(std::ostream& out,
                         const std::map<std::string, Tensor>& tensors,
                         int64_t* count, LineCrc* crc) {
  int64_t n = 0;
  std::ostringstream line;
  line.precision(std::numeric_limits<float>::max_digits10);
  for (const auto& [name, t] : tensors) {
    WriteTensorLine(out, line, name, t, crc);
    ++n;
  }
  if (count != nullptr) *count = n;
}

Status ReadParameterBlock(std::istream& in, int64_t count,
                          std::map<std::string, Tensor>* loaded,
                          const std::string& context, LineCrc* crc) {
  std::string line;
  int64_t read = 0;
  while ((count < 0 || read < count) && std::getline(in, line)) {
    // Every consumed line feeds the CRC — a well-formed writer never emits
    // blank lines inside a checksummed block, so a stray one is corruption
    // and shows up as a CRC mismatch.
    if (crc != nullptr) crc->Update(line);
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string name;
    int64_t rank = 0;
    if (!(is >> name >> rank) || rank < 0 || rank > 8) {
      return Status::ParseError("bad checkpoint line in " + context);
    }
    Shape shape(rank);
    int64_t numel = 1;
    for (int64_t i = 0; i < rank; ++i) {
      if (!(is >> shape[i])) {
        return Status::ParseError("bad shape for " + name + " in " + context);
      }
      // A zero or negative dimension in a corrupt header is named here —
      // it must never survive into tensor allocation or an OOB copy.
      if (shape[i] < 1) {
        return Status::ParseError(
            "parameter " + name + " dimension " + std::to_string(i) + " is " +
            std::to_string(shape[i]) + " (must be >= 1) in " + context);
      }
      if (shape[i] > kMaxParameterNumel ||
          numel * shape[i] > kMaxParameterNumel) {
        return Status::ParseError("bad shape for " + name + " in " + context);
      }
      numel *= shape[i];
    }
    const int64_t n = ShapeNumel(shape);
    std::vector<float> values(n);
    for (int64_t i = 0; i < n; ++i) {
      if (!(is >> values[i])) {
        return Status::ParseError("truncated values for " + name + " in " +
                                  context);
      }
    }
    loaded->insert_or_assign(name, Tensor::FromVector(shape, std::move(values)));
    ++read;
  }
  if (count >= 0 && read < count) {
    return Status::ParseError("expected " + std::to_string(count) +
                              " parameters, found " + std::to_string(read) +
                              " in " + context);
  }
  return Status::OK();
}

Status ApplyParameters(Module& module,
                       const std::map<std::string, Tensor>& loaded,
                       const std::string& context) {
  for (auto& [name, p] : module.NamedParameters()) {
    auto it = loaded.find(name);
    if (it == loaded.end()) {
      return Status::NotFound("checkpoint missing parameter " + name + " in " +
                              context);
    }
    if (!(it->second.shape() == p.value().shape())) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          ShapeToString(it->second.shape()) + " vs model " +
          ShapeToString(p.value().shape()));
    }
    const_cast<Tensor&>(p.value()).CopyFrom(it->second);
  }
  return Status::OK();
}

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteParameterBlock(out, module);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadParameters(Module& module, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::map<std::string, Tensor> loaded;
  EALGAP_RETURN_IF_ERROR(ReadParameterBlock(in, -1, &loaded, path));
  return ApplyParameters(module, loaded, path);
}

}  // namespace nn
}  // namespace ealgap
