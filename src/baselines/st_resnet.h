#ifndef EALGAP_BASELINES_ST_RESNET_H_
#define EALGAP_BASELINES_ST_RESNET_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/neural.h"
#include "cluster/kmeans.h"
#include "data/scaler.h"

namespace ealgap {

struct StResNetOptions {
  /// Branch lengths. Values <= 0 mean "derive from the dataset at Fit time"
  /// following the paper's protocol (all baselines share EALGAP's L and M):
  /// closeness = L recent steps, period = M previous days, trend = M
  /// previous weeks.
  int closeness = 0;
  int period = 0;
  int trend = 0;
  int filters = 16;    ///< conv channels
  int res_units = 2;   ///< residual units per branch
};

/// ST-ResNet baseline (Zhang et al., AAAI'17), adapted as in the paper:
/// regions are laid out on a small geographic grid (rows by latitude,
/// columns by longitude), and three branches of residual 3x3 convolutions —
/// closeness / period / trend sequences — are fused with learned
/// elementwise weights under a tanh head on min-max scaled data.
class StResNetForecaster : public NeuralForecaster {
 public:
  /// `region_centers` provide the geographic grid layout (from the
  /// partition stage).
  StResNetForecaster(std::vector<cluster::Point2> region_centers,
                     StResNetOptions options = {});
  ~StResNetForecaster() override;

  std::string name() const override { return "ST-ResNet"; }

  /// ForwardBatch gathers period/trend frames straight from the attached
  /// dataset — a bare WindowSample is not enough history.
  bool SupportsStreaming() const override { return false; }
  Result<std::vector<double>> PredictSample(
      const data::WindowSample& sample) override {
    (void)sample;
    return Status::NotImplemented(
        "ST-ResNet needs dataset-wide history; it cannot serve from samples");
  }

  int grid_rows() const { return grid_rows_; }
  int grid_cols() const { return grid_cols_; }
  /// Raster cell (row * cols + col) of each region; cells are unique.
  const std::vector<int>& region_cells() const { return region_cell_; }

 protected:
  void Initialize(const data::SlidingWindowDataset& dataset,
                  const data::StepRanges& split,
                  const TrainConfig& config) override;
  Var ForwardBatch(const std::vector<data::WindowSample>& batch) override;
  Tensor ScaleTargets(const Tensor& targets) const override;
  Tensor InverseScale(const Tensor& predictions) const override;
  nn::Module* module() override;

 private:
  struct Net;
  /// (B, channels, H, W) grid tensor for the given step offsets.
  Tensor GatherGrid(const std::vector<data::WindowSample>& batch,
                    const std::vector<int64_t>& offsets) const;

  StResNetOptions options_;
  std::vector<cluster::Point2> centers_;
  int grid_rows_ = 0, grid_cols_ = 0;
  std::vector<int> region_cell_;  ///< region -> row*cols+col
  data::MinMaxScaler scaler_;
  std::unique_ptr<Net> net_;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_ST_RESNET_H_
