#ifndef EALGAP_BASELINES_HISTORICAL_AVERAGE_H_
#define EALGAP_BASELINES_HISTORICAL_AVERAGE_H_

#include <string>

#include "baselines/forecaster.h"

namespace ealgap {

/// Training-free sanity baseline: predicts the average of the `history`
/// previous values at the same time of day on the same day type
/// (weekday/weekend). Not part of the paper's tables; used in tests,
/// examples, and the extended benches as a floor.
class HistoricalAverageForecaster : public Forecaster {
 public:
  explicit HistoricalAverageForecaster(int history = 4)
      : history_(history) {}

  std::string name() const override { return "HA"; }

  Status Fit(const data::SlidingWindowDataset& dataset,
             const data::StepRanges& split,
             const TrainConfig& config) override;

  Result<std::vector<double>> Predict(const data::SlidingWindowDataset& dataset,
                                      int64_t target_step) override;

 private:
  int history_;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_HISTORICAL_AVERAGE_H_
