#ifndef EALGAP_BASELINES_EVL_H_
#define EALGAP_BASELINES_EVL_H_

#include <string>

#include "baselines/recurrent.h"
#include "nn/loss.h"

namespace ealgap {

struct EvlOptions {
  double high_quantile = 0.95;  ///< training quantile defining "high"
  double low_quantile = 0.05;   ///< training quantile defining "low"
  float beta = 1.f;
  float gamma = 1.f;
};

/// EVL baseline (Ding et al., KDD'19): the GRU forecaster trained with the
/// extreme-value loss. Targets are classified high/normal/low by thresholds
/// taken from training-data quantiles, and extreme samples' errors are
/// up-weighted by the EVT-motivated factor (see nn::EvlLoss).
class EvlForecaster : public RecurrentForecaster {
 public:
  explicit EvlForecaster(EvlOptions options = {}, int64_t hidden_size = 16);

  std::string name() const override { return "EVL"; }

 protected:
  void Initialize(const data::SlidingWindowDataset& dataset,
                  const data::StepRanges& split,
                  const TrainConfig& config) override;
  Var ComputeLoss(const Var& predictions,
                  const Tensor& scaled_targets) override;

 private:
  EvlOptions options_;
  nn::EvlConfig loss_config_;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_EVL_H_
