#include "baselines/arima.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ealgap {

std::vector<double> SolveLeastSquares(const std::vector<double>& a,
                                      int64_t rows, int64_t cols,
                                      const std::vector<double>& b) {
  EALGAP_CHECK_EQ(static_cast<int64_t>(a.size()), rows * cols);
  EALGAP_CHECK_EQ(static_cast<int64_t>(b.size()), rows);
  // Normal equations: (A^T A + ridge) x = A^T b. The tiny ridge keeps
  // nearly-collinear lag matrices (constant series) solvable.
  std::vector<double> ata(cols * cols, 0.0), atb(cols, 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t i = 0; i < cols; ++i) {
      const double ai = a[r * cols + i];
      atb[i] += ai * b[r];
      for (int64_t j = i; j < cols; ++j) {
        ata[i * cols + j] += ai * a[r * cols + j];
      }
    }
  }
  double trace = 0.0;
  for (int64_t i = 0; i < cols; ++i) trace += ata[i * cols + i];
  const double ridge = 1e-6 * std::max(trace / cols, 1.0);
  for (int64_t i = 0; i < cols; ++i) {
    ata[i * cols + i] += ridge;
    for (int64_t j = 0; j < i; ++j) ata[i * cols + j] = ata[j * cols + i];
  }
  // Gaussian elimination with partial pivoting.
  std::vector<double> x = atb;
  for (int64_t k = 0; k < cols; ++k) {
    int64_t pivot = k;
    for (int64_t i = k + 1; i < cols; ++i) {
      if (std::fabs(ata[i * cols + k]) > std::fabs(ata[pivot * cols + k])) {
        pivot = i;
      }
    }
    if (pivot != k) {
      for (int64_t j = 0; j < cols; ++j) {
        std::swap(ata[k * cols + j], ata[pivot * cols + j]);
      }
      std::swap(x[k], x[pivot]);
    }
    const double diag = ata[k * cols + k];
    if (std::fabs(diag) < 1e-14) continue;
    for (int64_t i = k + 1; i < cols; ++i) {
      const double factor = ata[i * cols + k] / diag;
      if (factor == 0.0) continue;
      for (int64_t j = k; j < cols; ++j) {
        ata[i * cols + j] -= factor * ata[k * cols + j];
      }
      x[i] -= factor * x[k];
    }
  }
  for (int64_t k = cols - 1; k >= 0; --k) {
    double s = x[k];
    for (int64_t j = k + 1; j < cols; ++j) s -= ata[k * cols + j] * x[j];
    const double diag = ata[k * cols + k];
    x[k] = std::fabs(diag) < 1e-14 ? 0.0 : s / diag;
  }
  return x;
}

namespace {

// d-th order differencing.
std::vector<double> Difference(const std::vector<double>& y, int d) {
  std::vector<double> out = y;
  for (int k = 0; k < d; ++k) {
    for (size_t i = out.size() - 1; i >= 1; --i) out[i] -= out[i - 1];
    out.erase(out.begin());
  }
  return out;
}

}  // namespace

ArimaForecaster::ArimaForecaster(ArimaOptions options) : options_(options) {}

Status ArimaForecaster::Fit(const data::SlidingWindowDataset& dataset,
                            const data::StepRanges& split,
                            const TrainConfig& config) {
  (void)config;
  const auto& series = dataset.series();
  const int n = series.num_regions;
  const int64_t total = series.total_steps();
  const int p = options_.p, q = options_.q, d = options_.d;
  const int long_p = std::max(options_.long_ar, p + q + 1);
  if (split.train_end - d <= long_p + q + 8) {
    return Status::FailedPrecondition("series too short for ARIMA orders");
  }

  models_.assign(n, {});
  forecasts_.assign(n, std::vector<double>(total, 0.0));

  for (int r = 0; r < n; ++r) {
    // Training series in count space.
    std::vector<double> y_train(split.train_end);
    for (int64_t s = 0; s < split.train_end; ++s) {
      y_train[s] = series.At(r, s);
    }
    std::vector<double> w = Difference(y_train, d);
    const int64_t m = static_cast<int64_t>(w.size());

    // Stage 1: long AR by OLS to obtain residual proxies.
    std::vector<double> e(m, 0.0);
    {
      const int64_t rows = m - long_p;
      std::vector<double> a(rows * (long_p + 1));
      std::vector<double> b(rows);
      for (int64_t t = 0; t < rows; ++t) {
        a[t * (long_p + 1)] = 1.0;
        for (int j = 0; j < long_p; ++j) {
          a[t * (long_p + 1) + 1 + j] = w[long_p + t - 1 - j];
        }
        b[t] = w[long_p + t];
      }
      std::vector<double> coef =
          SolveLeastSquares(a, rows, long_p + 1, b);
      for (int64_t t = long_p; t < m; ++t) {
        double pred = coef[0];
        for (int j = 0; j < long_p; ++j) pred += coef[1 + j] * w[t - 1 - j];
        e[t] = w[t] - pred;
      }
    }

    // Stage 2: OLS of w_t on [1, w lags, e lags].
    RegionModel model;
    {
      const int64_t start = long_p + q;
      const int64_t rows = m - start;
      const int64_t cols = 1 + p + q;
      std::vector<double> a(rows * cols);
      std::vector<double> b(rows);
      for (int64_t t = 0; t < rows; ++t) {
        const int64_t ti = start + t;
        a[t * cols] = 1.0;
        for (int j = 0; j < p; ++j) a[t * cols + 1 + j] = w[ti - 1 - j];
        for (int j = 0; j < q; ++j) a[t * cols + 1 + p + j] = e[ti - 1 - j];
        b[t] = w[ti];
      }
      std::vector<double> coef = SolveLeastSquares(a, rows, cols, b);
      model.intercept = coef[0];
      model.ar.assign(coef.begin() + 1, coef.begin() + 1 + p);
      model.ma.assign(coef.begin() + 1 + p, coef.end());
    }
    models_[r] = model;

    // Materialize honest one-step-ahead forecasts over the full series:
    // walk forward, updating the MA residuals with realized errors.
    std::vector<double> y_full(total);
    for (int64_t s = 0; s < total; ++s) y_full[s] = series.At(r, s);
    // Guard rail against unstable coefficient estimates: forecasts may not
    // leave [0, 3x the largest training value].
    double y_cap = 1.0;
    for (int64_t s = 0; s < split.train_end; ++s) {
      y_cap = std::max(y_cap, y_full[s]);
    }
    y_cap *= 3.0;
    std::vector<double> w_full = Difference(y_full, d);
    const int64_t mf = static_cast<int64_t>(w_full.size());
    std::vector<double> e_full(mf, 0.0);
    for (int64_t t = 0; t < mf; ++t) {
      double pred_w = model.intercept;
      for (int j = 0; j < p; ++j) {
        if (t - 1 - j >= 0) pred_w += model.ar[j] * w_full[t - 1 - j];
      }
      for (int j = 0; j < q; ++j) {
        if (t - 1 - j >= 0) pred_w += model.ma[j] * e_full[t - 1 - j];
      }
      e_full[t] = std::clamp(w_full[t] - pred_w, -y_cap, y_cap);
      // Undifference: forecast of y_t adds back the last observed levels.
      double pred_y = pred_w;
      if (d >= 1) {
        const int64_t yt = t + d;  // index into y_full
        pred_y += y_full[yt - 1];
        if (d >= 2) pred_y += y_full[yt - 1] - y_full[yt - 2];
      }
      forecasts_[r][t + d] = std::clamp(pred_y, 0.0, y_cap);
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> ArimaForecaster::Predict(
    const data::SlidingWindowDataset& dataset, int64_t target_step) {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  const int n = dataset.series().num_regions;
  if (target_step < 0 || target_step >= dataset.series().total_steps()) {
    return Status::OutOfRange("target step out of range");
  }
  std::vector<double> out(n);
  for (int r = 0; r < n; ++r) out[r] = forecasts_[r][target_step];
  return out;
}

}  // namespace ealgap
