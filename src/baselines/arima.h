#ifndef EALGAP_BASELINES_ARIMA_H_
#define EALGAP_BASELINES_ARIMA_H_

#include <string>
#include <vector>

#include "baselines/forecaster.h"

namespace ealgap {

struct ArimaOptions {
  int p = 3;        ///< AR order
  int d = 0;        ///< differencing order
  int q = 2;        ///< MA order
  int long_ar = 12; ///< stage-1 AR order of the Hannan-Rissanen estimator
};

/// Per-region non-seasonal ARIMA(p,d,q), the paper's classical baseline.
///
/// Coefficients are estimated with the two-stage Hannan-Rissanen procedure
/// (long-AR residual proxy, then OLS on lags and lagged residuals). After
/// Fit, one-step-ahead forecasts for the *entire* series are materialized by
/// walking forward through the data — each forecast uses only information
/// up to its own time step, so validation/test predictions are honest.
class ArimaForecaster : public Forecaster {
 public:
  explicit ArimaForecaster(ArimaOptions options = {});

  std::string name() const override { return "ARIMA"; }

  Status Fit(const data::SlidingWindowDataset& dataset,
             const data::StepRanges& split,
             const TrainConfig& config) override;

  Result<std::vector<double>> Predict(const data::SlidingWindowDataset& dataset,
                                      int64_t target_step) override;

  /// Fitted coefficients of one region: intercept, ar[0..p), ma[0..q).
  struct RegionModel {
    double intercept = 0.0;
    std::vector<double> ar;
    std::vector<double> ma;
  };
  const std::vector<RegionModel>& models() const { return models_; }

 private:
  ArimaOptions options_;
  bool fitted_ = false;
  std::vector<RegionModel> models_;
  /// One-step-ahead forecasts, shape (regions x total_steps), in count
  /// space (clamped at 0).
  std::vector<std::vector<double>> forecasts_;
};

/// Solves min ||A x - b||_2 by normal equations with partial-pivot Gaussian
/// elimination. `a` is row-major (rows x cols). Exposed for testing.
std::vector<double> SolveLeastSquares(const std::vector<double>& a,
                                      int64_t rows, int64_t cols,
                                      const std::vector<double>& b);

}  // namespace ealgap

#endif  // EALGAP_BASELINES_ARIMA_H_
