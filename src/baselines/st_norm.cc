#include "baselines/st_norm.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "nn/linear.h"
#include "tensor/ops.h"

namespace ealgap {

namespace {

// z-scores each row of (N, L) in place of a copy.
Tensor TemporalNorm(const Tensor& x) {
  const int64_t n = x.dim(0), l = x.dim(1);
  Tensor out(x.shape());
  const float* p = x.data();
  float* q = out.data();
  for (int64_t r = 0; r < n; ++r) {
    double mean = 0.0;
    for (int64_t j = 0; j < l; ++j) mean += p[r * l + j];
    mean /= l;
    double var = 0.0;
    for (int64_t j = 0; j < l; ++j) {
      var += (p[r * l + j] - mean) * (p[r * l + j] - mean);
    }
    const double sd = std::sqrt(var / l + 1e-5);
    for (int64_t j = 0; j < l; ++j) {
      q[r * l + j] = static_cast<float>((p[r * l + j] - mean) / sd);
    }
  }
  return out;
}

// z-scores each column of (N, L) across regions.
Tensor SpatialNorm(const Tensor& x) {
  const int64_t n = x.dim(0), l = x.dim(1);
  Tensor out(x.shape());
  const float* p = x.data();
  float* q = out.data();
  for (int64_t j = 0; j < l; ++j) {
    double mean = 0.0;
    for (int64_t r = 0; r < n; ++r) mean += p[r * l + j];
    mean /= n;
    double var = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      var += (p[r * l + j] - mean) * (p[r * l + j] - mean);
    }
    const double sd = std::sqrt(var / n + 1e-5);
    for (int64_t r = 0; r < n; ++r) {
      q[r * l + j] = static_cast<float>((p[r * l + j] - mean) / sd);
    }
  }
  return out;
}

}  // namespace

struct StNormForecaster::Net : nn::Module {
  Net(int64_t l, int64_t hidden, Rng& rng)
      : fc1(3 * l, hidden, rng),
        fc2(hidden, hidden / 2, rng),
        fc3(hidden / 2, 1, rng) {
    RegisterModule("fc1", &fc1);
    RegisterModule("fc2", &fc2);
    RegisterModule("fc3", &fc3);
  }
  // features: (rows, 3L) -> (rows, 1)
  Var Forward(const Var& features) const {
    return fc3.Forward(Relu(fc2.Forward(Relu(fc1.Forward(features)))));
  }
  nn::Linear fc1, fc2, fc3;
};

StNormForecaster::StNormForecaster(int64_t hidden_size)
    : hidden_size_(hidden_size) {}

StNormForecaster::~StNormForecaster() = default;

nn::Module* StNormForecaster::module() { return net_.get(); }

void StNormForecaster::Initialize(const data::SlidingWindowDataset& dataset,
                                  const data::StepRanges& split,
                                  const TrainConfig& config) {
  Tensor train_slice =
      ops::Slice(dataset.series().counts, 1, 0, split.train_end);
  scaler_.Fit(train_slice);
  history_length_ = dataset.options().history_length;
  Rng rng(config.seed);
  net_ = std::make_unique<Net>(history_length_, hidden_size_, rng);
}

Var StNormForecaster::ForwardBatch(
    const std::vector<data::WindowSample>& batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t n = batch[0].x.dim(0);
  const int64_t l = batch[0].x.dim(1);
  Tensor features({b * n, 3 * l});
  float* pf = features.data();
  for (int64_t i = 0; i < b; ++i) {
    Tensor raw = scaler_.Transform(batch[i].x);
    Tensor tn = TemporalNorm(batch[i].x);
    Tensor sn = SpatialNorm(batch[i].x);
    const float* pr = raw.data();
    const float* pt = tn.data();
    const float* ps = sn.data();
    for (int64_t r = 0; r < n; ++r) {
      float* row = pf + (i * n + r) * 3 * l;
      std::copy(pr + r * l, pr + (r + 1) * l, row);
      std::copy(pt + r * l, pt + (r + 1) * l, row + l);
      std::copy(ps + r * l, ps + (r + 1) * l, row + 2 * l);
    }
  }
  Var out = net_->Forward(Var::Leaf(std::move(features)));  // (B*N, 1)
  return Reshape(out, {b, n});
}

Tensor StNormForecaster::ScaleTargets(const Tensor& targets) const {
  return scaler_.Transform(targets);
}

Tensor StNormForecaster::InverseScale(const Tensor& predictions) const {
  return scaler_.Inverse(predictions);
}

Status StNormForecaster::EncodeConfig(CheckpointConfig* config) const {
  std::ostringstream mean, stddev;
  mean.precision(std::numeric_limits<float>::max_digits10);
  stddev.precision(std::numeric_limits<float>::max_digits10);
  mean << scaler_.mean();
  stddev << scaler_.stddev();
  config->emplace_back("hidden_size", std::to_string(hidden_size_));
  config->emplace_back("history_length", std::to_string(history_length_));
  config->emplace_back("scaler_mean", mean.str());
  config->emplace_back("scaler_stddev", stddev.str());
  return Status::OK();
}

Status StNormForecaster::DecodeConfig(
    const std::map<std::string, std::string>& config) {
  int64_t hidden = 0, l = 0;
  EALGAP_RETURN_IF_ERROR(
      ConfigInt(config, "hidden_size", 1, 1 << 16, &hidden));
  EALGAP_RETURN_IF_ERROR(
      ConfigInt(config, "history_length", 1, 1 << 16, &l));
  float mean = 0.f, stddev = 1.f;
  EALGAP_RETURN_IF_ERROR(ConfigFloat(config, "scaler_mean", &mean));
  EALGAP_RETURN_IF_ERROR(ConfigFloat(config, "scaler_stddev", &stddev));
  if (!(stddev > 0.f) || !std::isfinite(stddev) || !std::isfinite(mean)) {
    return Status::InvalidArgument("checkpoint scaler state is not finite");
  }
  hidden_size_ = hidden;
  history_length_ = l;
  scaler_.Restore(mean, stddev);
  Rng rng(0);
  net_ = std::make_unique<Net>(history_length_, hidden_size_, rng);
  return Status::OK();
}

}  // namespace ealgap
