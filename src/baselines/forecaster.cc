#include "baselines/forecaster.h"

namespace ealgap {

Result<std::vector<double>> Forecaster::PredictSample(
    const data::WindowSample& sample) {
  (void)sample;
  return Status::NotImplemented(name() +
                                " cannot predict from a bare sample");
}

Status Forecaster::PredictSampleInto(const data::WindowSample& sample,
                                     std::vector<double>* out) {
  EALGAP_ASSIGN_OR_RETURN(std::vector<double> values, PredictSample(sample));
  *out = std::move(values);
  return Status::OK();
}

Status Forecaster::PredictRange(const data::SlidingWindowDataset& dataset,
                                int64_t begin, int64_t end,
                                std::vector<double>* predictions,
                                std::vector<double>* truths) {
  for (int64_t step : dataset.TargetSteps(begin, end)) {
    EALGAP_ASSIGN_OR_RETURN(std::vector<double> pred,
                            Predict(dataset, step));
    const data::WindowSample sample = dataset.MakeSample(step);
    const float* t = sample.target.data();
    for (size_t r = 0; r < pred.size(); ++r) {
      predictions->push_back(pred[r]);
      truths->push_back(t[r]);
    }
  }
  return Status::OK();
}

}  // namespace ealgap
