#include "baselines/st_resnet.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "nn/conv2d.h"
#include "tensor/ops.h"

namespace ealgap {

namespace {

// One pre-activation residual unit: x + conv(relu(conv(relu(x)))).
struct ResUnit : nn::Module {
  ResUnit(int64_t filters, Rng& rng)
      : conv1(filters, filters, 3, rng, 1, 1),
        conv2(filters, filters, 3, rng, 1, 1) {
    RegisterModule("conv1", &conv1);
    RegisterModule("conv2", &conv2);
  }
  Var Forward(const Var& x) const {
    return Add(x, conv2.Forward(Relu(conv1.Forward(Relu(x)))));
  }
  nn::Conv2d conv1, conv2;
};

// One branch: conv-in, res units, conv-out to a single channel.
struct Branch : nn::Module {
  Branch(int64_t in_channels, const StResNetOptions& opts, Rng& rng)
      : conv_in(in_channels, opts.filters, 3, rng, 1, 1),
        conv_out(opts.filters, 1, 3, rng, 1, 1) {
    for (int i = 0; i < opts.res_units; ++i) {
      units.push_back(std::make_unique<ResUnit>(opts.filters, rng));
      RegisterModule("res" + std::to_string(i), units.back().get());
    }
    RegisterModule("conv_in", &conv_in);
    RegisterModule("conv_out", &conv_out);
  }
  Var Forward(const Var& x) const {
    Var h = conv_in.Forward(x);
    for (const auto& u : units) h = u->Forward(h);
    return conv_out.Forward(h);  // (B, 1, H, W)
  }
  nn::Conv2d conv_in;
  std::vector<std::unique_ptr<ResUnit>> units;
  nn::Conv2d conv_out;
};

}  // namespace

struct StResNetForecaster::Net : nn::Module {
  Net(const StResNetOptions& opts, int64_t h, int64_t w, Rng& rng)
      : closeness(opts.closeness, opts, rng),
        period(opts.period, opts, rng),
        trend(opts.trend, opts, rng) {
    RegisterModule("closeness", &closeness);
    RegisterModule("period", &period);
    RegisterModule("trend", &trend);
    // Parametric fusion weights, one map per branch.
    w_c = RegisterParameter("w_c", Tensor::Full({1, 1, h, w}, 0.5f));
    w_p = RegisterParameter("w_p", Tensor::Full({1, 1, h, w}, 0.3f));
    w_t = RegisterParameter("w_t", Tensor::Full({1, 1, h, w}, 0.2f));
  }
  Var Forward(const Var& xc, const Var& xp, const Var& xt) const {
    Var fused = Add(Add(Mul(closeness.Forward(xc), w_c),
                        Mul(period.Forward(xp), w_p)),
                    Mul(trend.Forward(xt), w_t));
    return Tanh(fused);  // (B, 1, H, W) in [-1, 1]
  }
  Branch closeness, period, trend;
  Var w_c, w_p, w_t;
};

StResNetForecaster::StResNetForecaster(
    std::vector<cluster::Point2> region_centers, StResNetOptions options)
    : options_(options), centers_(std::move(region_centers)) {
  const int n = static_cast<int>(centers_.size());
  EALGAP_CHECK_GT(n, 0);
  // Geographic rasterization, as the original ST-ResNet maps a city onto a
  // raster: regions land at their true (lon, lat) cell, most cells stay
  // empty. The raster is sized so roughly half the cells are unoccupied.
  grid_rows_ = std::max(2, static_cast<int>(std::ceil(std::sqrt(2.0 * n))));
  grid_cols_ = grid_rows_;
  double min_x = centers_[0].x, max_x = centers_[0].x;
  double min_y = centers_[0].y, max_y = centers_[0].y;
  for (const auto& c : centers_) {
    min_x = std::min(min_x, c.x);
    max_x = std::max(max_x, c.x);
    min_y = std::min(min_y, c.y);
    max_y = std::max(max_y, c.y);
  }
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  region_cell_.assign(n, 0);
  std::vector<bool> occupied(grid_rows_ * grid_cols_, false);
  for (int r = 0; r < n; ++r) {
    // North at row 0.
    int row = static_cast<int>((max_y - centers_[r].y) / span_y *
                               (grid_rows_ - 1) + 0.5);
    int col = static_cast<int>((centers_[r].x - min_x) / span_x *
                               (grid_cols_ - 1) + 0.5);
    row = std::clamp(row, 0, grid_rows_ - 1);
    col = std::clamp(col, 0, grid_cols_ - 1);
    int cell = row * grid_cols_ + col;
    // Resolve collisions by scanning outward for the nearest free cell.
    if (occupied[cell]) {
      int best = -1;
      int64_t best_d = INT64_MAX;
      for (int rr = 0; rr < grid_rows_; ++rr) {
        for (int cc = 0; cc < grid_cols_; ++cc) {
          if (occupied[rr * grid_cols_ + cc]) continue;
          const int64_t d = static_cast<int64_t>(rr - row) * (rr - row) +
                            static_cast<int64_t>(cc - col) * (cc - col);
          if (d < best_d) {
            best_d = d;
            best = rr * grid_cols_ + cc;
          }
        }
      }
      EALGAP_CHECK_GE(best, 0);
      cell = best;
    }
    occupied[cell] = true;
    region_cell_[r] = cell;
  }
}

StResNetForecaster::~StResNetForecaster() = default;

nn::Module* StResNetForecaster::module() { return net_.get(); }

void StResNetForecaster::Initialize(const data::SlidingWindowDataset& dataset,
                                    const data::StepRanges& split,
                                    const TrainConfig& config) {
  EALGAP_CHECK_EQ(static_cast<int>(centers_.size()),
                  dataset.series().num_regions);
  Tensor train_slice =
      ops::Slice(dataset.series().counts, 1, 0, split.train_end);
  scaler_.Fit(train_slice);
  // Paper protocol: every baseline shares EALGAP's L and M.
  if (options_.closeness <= 0) {
    options_.closeness = static_cast<int>(dataset.options().history_length);
  }
  if (options_.period <= 0) {
    options_.period = static_cast<int>(dataset.options().num_windows);
  }
  if (options_.trend <= 0) {
    options_.trend = static_cast<int>(dataset.options().num_windows);
  }
  Rng rng(config.seed);
  net_ = std::make_unique<Net>(options_, grid_rows_, grid_cols_, rng);
}

Tensor StResNetForecaster::GatherGrid(
    const std::vector<data::WindowSample>& batch,
    const std::vector<int64_t>& offsets) const {
  const data::SlidingWindowDataset* ds = current_dataset();
  EALGAP_CHECK(ds != nullptr);
  const auto& series = ds->series();
  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t c = static_cast<int64_t>(offsets.size());
  const int n = series.num_regions;
  Tensor out = Tensor::Zeros({b, c, grid_rows_, grid_cols_});
  float* po = out.data();
  const int64_t cell_count = static_cast<int64_t>(grid_rows_) * grid_cols_;
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      // Clamp early-history offsets to the series start; only the first
      // few training samples are affected.
      const int64_t step =
          std::max<int64_t>(batch[i].target_step - offsets[ch], 0);
      for (int r = 0; r < n; ++r) {
        po[(i * c + ch) * cell_count + region_cell_[r]] = series.At(r, step);
      }
    }
  }
  return scaler_.Transform(out);
}

Var StResNetForecaster::ForwardBatch(
    const std::vector<data::WindowSample>& batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t day = current_dataset()->series().steps_per_day;
  std::vector<int64_t> off_c, off_p, off_t;
  for (int i = 1; i <= options_.closeness; ++i) off_c.push_back(i);
  for (int i = 1; i <= options_.period; ++i) off_p.push_back(i * day);
  for (int i = 1; i <= options_.trend; ++i) off_t.push_back(i * day * 7);
  Var xc = Var::Leaf(GatherGrid(batch, off_c));
  Var xp = Var::Leaf(GatherGrid(batch, off_p));
  Var xt = Var::Leaf(GatherGrid(batch, off_t));
  Var grid = net_->Forward(xc, xp, xt);  // (B, 1, H, W)
  // Read region cells back out into (B, N).
  const int n = static_cast<int>(region_cell_.size());
  const int64_t cell_count = static_cast<int64_t>(grid_rows_) * grid_cols_;
  Var flat = Reshape(grid, {b, cell_count});
  std::vector<Var> cols;
  cols.reserve(n);
  for (int r = 0; r < n; ++r) {
    cols.push_back(Slice(flat, 1, region_cell_[r], region_cell_[r] + 1));
  }
  return Concat(cols, 1);  // (B, N)
}

Tensor StResNetForecaster::ScaleTargets(const Tensor& targets) const {
  return scaler_.Transform(targets);
}

Tensor StResNetForecaster::InverseScale(const Tensor& predictions) const {
  return scaler_.Inverse(predictions);
}

}  // namespace ealgap
