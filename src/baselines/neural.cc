#include "baselines/neural.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/float_bits.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/loss.h"
#include "nn/quant.h"
#include "nn/serialize.h"

namespace ealgap {

namespace {

std::vector<data::WindowSample> MakeBatch(
    const data::SlidingWindowDataset& dataset,
    const std::vector<int64_t>& steps, size_t begin, size_t end) {
  std::vector<data::WindowSample> batch;
  batch.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    batch.push_back(dataset.MakeSample(steps[i]));
  }
  return batch;
}

/// Key for Adam moment i inside the train state's tensor block. Zero-padded
/// so lexicographic map order equals parameter order.
std::string AdamKey(char which, size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%c.%05zu", which, i);
  return buf;
}

std::map<std::string, Tensor> CloneTensorMap(
    const std::map<std::string, Tensor>& src) {
  std::map<std::string, Tensor> out;
  for (const auto& [name, t] : src) out.emplace(name, t.Clone());
  return out;
}

}  // namespace

Var NeuralForecaster::ComputeLoss(const Var& predictions,
                                  const Tensor& scaled_targets) {
  return nn::MseLoss(predictions, Var::Leaf(scaled_targets));
}

Tensor NeuralForecaster::StackTargets(
    const std::vector<data::WindowSample>& batch) const {
  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t n = batch[0].target.numel();
  Tensor out({b, n});
  float* p = out.data();
  for (int64_t i = 0; i < b; ++i) {
    std::copy(batch[i].target.data(), batch[i].target.data() + n, p + i * n);
  }
  return out;
}

Result<double> NeuralForecaster::EvaluateLoss(
    const data::SlidingWindowDataset& dataset,
    const std::vector<int64_t>& steps, int batch_size) {
  if (steps.empty()) return 0.0;
  // Evaluation batches are independent: forward passes read only const
  // model parameters (grad recording is off, a thread-local flag), so they
  // fan out across the pool. Per-batch losses and errors land in slots
  // indexed by batch and are combined in batch order, keeping both the
  // result and the reported error identical to the serial loop for any
  // thread count: when several batches fail concurrently, the lowest batch
  // index wins deterministically.
  const size_t bs = static_cast<size_t>(batch_size);
  const int64_t nbatches = static_cast<int64_t>((steps.size() + bs - 1) / bs);
  std::vector<double> batch_total(nbatches, 0.0);
  std::vector<Status> batch_status(nbatches);
  ParallelFor(0, nbatches, 1, [&](int64_t b0, int64_t b1) {
    NoGradGuard no_grad;
    for (int64_t bi = b0; bi < b1; ++bi) {
      if (fault::Armed() && fault::ShouldFail("train.eval.error")) {
        batch_status[bi] = Status::Internal(
            "injected evaluation failure in batch " + std::to_string(bi) +
            " of " + name());
        continue;
      }
      const size_t begin = static_cast<size_t>(bi) * bs;
      const size_t end = std::min(steps.size(), begin + bs);
      auto batch = MakeBatch(dataset, steps, begin, end);
      Var pred = ForwardBatch(batch);
      Tensor scaled = ScaleTargets(StackTargets(batch));
      Var loss = ComputeLoss(pred, scaled);
      const double l = static_cast<double>(loss.value().data()[0]);
      if (!std::isfinite(l)) {
        batch_status[bi] = Status::Internal(
            "non-finite evaluation loss in batch " + std::to_string(bi) +
            " of " + name());
        continue;
      }
      batch_total[bi] = l * static_cast<double>(end - begin);
    }
  });
  for (int64_t bi = 0; bi < nbatches; ++bi) {
    if (!batch_status[bi].ok()) return batch_status[bi];
  }
  double total = 0.0;
  for (double v : batch_total) total += v;
  return total / static_cast<double>(steps.size());
}

Result<std::map<std::string, Tensor>> NeuralForecaster::CaptureParams() {
  if (!fitted_) {
    return Status::FailedPrecondition(name() +
                                      " captured before Fit/LoadCheckpoint");
  }
  std::map<std::string, Tensor> out;
  for (const auto& [pname, p] : module()->NamedParameters()) {
    out.emplace(pname, p.value().Clone());
  }
  return out;
}

Status NeuralForecaster::RestoreParams(
    const std::map<std::string, Tensor>& params) {
  if (!fitted_) {
    return Status::FailedPrecondition(name() +
                                      " restored before Fit/LoadCheckpoint");
  }
  return nn::ApplyParameters(*module(), params, "parameter snapshot");
}

Result<double> NeuralForecaster::EvaluateSamplesLoss(
    const std::vector<data::WindowSample>& samples, int batch_size) {
  if (!fitted_) {
    return Status::FailedPrecondition(name() +
                                      " evaluated before Fit/LoadCheckpoint");
  }
  if (samples.empty()) {
    return Status::InvalidArgument("EvaluateSamplesLoss needs samples");
  }
  if (batch_size < 1) {
    return Status::InvalidArgument("EvaluateSamplesLoss batch_size < 1");
  }
  NoGradGuard no_grad;
  const size_t bs = static_cast<size_t>(batch_size);
  double total = 0.0;
  for (size_t begin = 0; begin < samples.size(); begin += bs) {
    const size_t end = std::min(samples.size(), begin + bs);
    std::vector<data::WindowSample> batch(samples.begin() + begin,
                                          samples.begin() + end);
    Var pred = ForwardBatch(batch);
    Tensor scaled = ScaleTargets(StackTargets(batch));
    Var loss = ComputeLoss(pred, scaled);
    const double l = static_cast<double>(loss.value().data()[0]);
    if (!std::isfinite(l)) {
      return Status::Internal("non-finite loss in sample batch " +
                              std::to_string(begin / bs) + " of " + name());
    }
    total += l * static_cast<double>(end - begin);
  }
  return total / static_cast<double>(samples.size());
}

Status NeuralForecaster::MicroFit(
    const std::vector<data::WindowSample>& samples,
    const MicroFitConfig& config) {
  if (!fitted_) {
    return Status::FailedPrecondition(name() +
                                      " micro-fit before Fit/LoadCheckpoint");
  }
  if (samples.empty()) {
    return Status::InvalidArgument("MicroFit needs samples");
  }
  if (config.steps < 1 || config.batch_size < 1) {
    return Status::InvalidArgument("MicroFit steps/batch_size must be >= 1");
  }
  std::vector<Var> params = module()->Parameters();
  nn::Sgd optimizer(params, config.learning_rate);
  const size_t bs = static_cast<size_t>(config.batch_size);
  size_t cursor = 0;
  for (int step = 0; step < config.steps; ++step) {
    std::vector<data::WindowSample> batch;
    batch.reserve(bs);
    for (size_t i = 0; i < bs; ++i) {
      batch.push_back(samples[cursor]);
      cursor = (cursor + 1) % samples.size();
    }
    module()->ZeroGrad();
    Var pred = ForwardBatch(batch);
    Tensor scaled = ScaleTargets(StackTargets(batch));
    Var loss = ComputeLoss(pred, scaled);
    const double loss_val = static_cast<double>(loss.value().data()[0]);
    if (!std::isfinite(loss_val)) {
      return Status::Internal("non-finite micro-fit loss at step " +
                              std::to_string(step) + " of " + name());
    }
    Backward(loss);
    const float norm = nn::ClipGradNorm(params, config.grad_clip);
    if (!std::isfinite(norm)) {
      return Status::Internal("non-finite micro-fit gradient norm at step " +
                              std::to_string(step) + " of " + name());
    }
    optimizer.Step();
  }
  return Status::OK();
}

/// Everything Fit needs to continue from an epoch boundary: parameters,
/// optimizer moments, the RNG stream, loop counters, the best-validation
/// snapshot, and the attribution stats. One struct serves both the
/// in-memory divergence-rollback target and the on-disk train state
/// (format v3), so "roll back" and "resume" are the same restore path.
struct NeuralForecaster::TrainSnapshot {
  int epoch = 0;  ///< next epoch to run (== epochs completed)
  float lr = 0.f;
  double best_val = 1e300;
  int bad_epochs = 0;
  int64_t total_steps = 0;
  double total_step_ms = 0.0;
  RngState rng;
  /// Train-step visit order. The per-epoch shuffle permutes this vector in
  /// place, so the epoch-N order depends on every earlier shuffle — it is
  /// loop state, and a bit-identical resume must restore it along with the
  /// RNG stream.
  std::vector<int64_t> order;
  std::map<std::string, Tensor> params;
  int64_t adam_t = 0;
  std::vector<Tensor> adam_m, adam_v;
  std::map<std::string, Tensor> best_params;  ///< empty: no best epoch yet
  TrainStats stats;
};

Status NeuralForecaster::Fit(const data::SlidingWindowDataset& dataset,
                             const data::StepRanges& split,
                             const TrainConfig& config) {
  current_dataset_ = &dataset;
  Initialize(dataset, split, config);
  fitted_ = true;
  train_stats_ = TrainStats{};

  std::vector<int64_t> train_steps =
      dataset.TargetSteps(split.train_begin, split.train_end);
  std::vector<int64_t> val_steps =
      dataset.TargetSteps(split.val_begin, split.val_end);
  if (train_steps.empty()) {
    return Status::FailedPrecondition("no training steps");
  }

  std::vector<Var> params = module()->Parameters();
  nn::Adam optimizer(params, config.learning_rate);
  Rng rng(config.seed);

  // Loop state that lives in the snapshot at every epoch boundary.
  int epoch = 0;
  double best_val = 1e300;
  int bad_epochs = 0;
  int64_t total_steps = 0;
  double total_step_ms = 0.0;
  std::map<std::string, Tensor> best_params;

  auto capture = [&]() {
    TrainSnapshot snap;
    snap.epoch = epoch;
    snap.lr = optimizer.learning_rate();
    snap.best_val = best_val;
    snap.bad_epochs = bad_epochs;
    snap.total_steps = total_steps;
    snap.total_step_ms = total_step_ms;
    snap.rng = rng.state();
    snap.order = train_steps;
    for (const auto& [pname, p] : module()->NamedParameters()) {
      snap.params.emplace(pname, p.value().Clone());
    }
    optimizer.ExportState(&snap.adam_t, &snap.adam_m, &snap.adam_v);
    snap.best_params = CloneTensorMap(best_params);
    snap.stats = train_stats_;
    return snap;
  };
  auto restore = [&](const TrainSnapshot& snap) -> Status {
    EALGAP_RETURN_IF_ERROR(
        nn::ApplyParameters(*module(), snap.params, "train state"));
    EALGAP_RETURN_IF_ERROR(
        optimizer.ImportState(snap.adam_t, snap.adam_m, snap.adam_v));
    optimizer.set_learning_rate(snap.lr);
    rng.set_state(snap.rng);
    train_steps = snap.order;
    epoch = snap.epoch;
    best_val = snap.best_val;
    bad_epochs = snap.bad_epochs;
    total_steps = snap.total_steps;
    total_step_ms = snap.total_step_ms;
    best_params = CloneTensorMap(snap.best_params);
    return Status::OK();
  };

  // Resume: an existing train state continues the run bit-identically; a
  // missing file is a fresh start (first run of a --resume sweep). A
  // corrupt file is a hard error — silently restarting would overwrite
  // evidence.
  if (config.resume && !config.checkpoint_path.empty() &&
      std::ifstream(config.checkpoint_path).good()) {
    TrainSnapshot snap;
    EALGAP_RETURN_IF_ERROR(LoadTrainState(config.checkpoint_path, &snap));
    // The saved order must be a permutation of this run's training steps;
    // anything else means the state belongs to a different training range
    // (or was corrupted), and resuming from it would be silently wrong.
    std::vector<int64_t> sorted_order = snap.order;
    std::sort(sorted_order.begin(), sorted_order.end());
    std::vector<int64_t> sorted_steps = train_steps;
    std::sort(sorted_steps.begin(), sorted_steps.end());
    if (sorted_order != sorted_steps) {
      return Status::InvalidArgument(
          config.checkpoint_path +
          " was written for a different training range (" +
          std::to_string(snap.order.size()) + " steps vs " +
          std::to_string(train_steps.size()) + " here)");
    }
    EALGAP_RETURN_IF_ERROR(restore(snap));
    train_stats_ = snap.stats;
    train_stats_.resumed_epoch = snap.epoch;
    if (config.verbose) {
      EALGAP_LOG(Info) << name() << " resumed from "
                       << config.checkpoint_path << " at epoch " << epoch;
    }
  }

  // The rollback target: the last good epoch boundary (initially the
  // freshly initialized state).
  TrainSnapshot good = capture();

  while (epoch < config.epochs && bad_epochs <= config.patience) {
    rng.Shuffle(train_steps);
    double train_loss = 0.0;
    int64_t batches = 0;
    int64_t attempt_steps = 0;
    bool diverged = false;
    std::string diverge_why;
    for (size_t i = 0; i < train_steps.size();
         i += static_cast<size_t>(config.batch_size)) {
      const size_t end =
          std::min(train_steps.size(), i + config.batch_size);
      auto batch = MakeBatch(dataset, train_steps, i, end);
      // Fault sites modeling the ways a real train step dies: a stall, a
      // hard error (allocator, accelerator, I/O), and a numerically
      // poisoned loss. The first aborts nothing, the second fails Fit
      // mid-epoch (crash rehearsal for resume tests), the third drives
      // the divergence sentinel below.
      if (fault::Armed()) {
        fault::MaybeDelay("train.step.delay");
        if (fault::ShouldFail("train.step.error")) {
          return Status::Internal("injected train step failure in " + name());
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      module()->ZeroGrad();
      Var pred = ForwardBatch(batch);
      Tensor scaled = ScaleTargets(StackTargets(batch));
      Var loss = ComputeLoss(pred, scaled);
      double loss_val = static_cast<double>(loss.value().data()[0]);
      if (fault::Armed() && fault::ShouldFail("train.step.nan")) {
        loss_val = std::numeric_limits<double>::quiet_NaN();
      }
      // Divergence sentinel: a non-finite loss or gradient norm means the
      // parameters are (or are about to be) poisoned. Stop the epoch and
      // let the rollback policy below decide.
      if (!std::isfinite(loss_val)) {
        diverged = true;
        diverge_why = "non-finite training loss";
        break;
      }
      Backward(loss);
      const float norm = nn::ClipGradNorm(params, config.grad_clip);
      if (!std::isfinite(norm)) {
        diverged = true;
        diverge_why = "non-finite gradient norm";
        break;
      }
      optimizer.Step();
      const auto t1 = std::chrono::steady_clock::now();
      total_step_ms +=
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      ++total_steps;
      ++attempt_steps;
      train_loss += loss_val;
      ++batches;
    }

    if (diverged) {
      // Roll back to the last good epoch boundary with the learning rate
      // backed off, and retry the epoch; give up (attributed, not silent)
      // once the retry budget is spent.
      ++train_stats_.rollbacks;
      ++train_stats_.retries;
      train_stats_.skipped_steps += attempt_steps + 1;
      total_steps -= attempt_steps;  // discarded by the restore below
      if (train_stats_.rollbacks > config.max_rollbacks) {
        return Status::Internal(
            name() + " diverged (" + diverge_why + ") at epoch " +
            std::to_string(epoch) + " after exhausting " +
            std::to_string(config.max_rollbacks) + " rollbacks");
      }
      const float backed_off =
          optimizer.learning_rate() * config.rollback_lr_backoff;
      EALGAP_RETURN_IF_ERROR(restore(good));
      optimizer.set_learning_rate(backed_off);
      if (config.verbose) {
        EALGAP_LOG(Warning)
            << name() << " epoch " << epoch << ": " << diverge_why
            << "; rolled back to last good state, lr -> " << backed_off
            << " (rollback " << train_stats_.rollbacks << "/"
            << config.max_rollbacks << ")";
      }
      continue;
    }

    double val_loss;
    if (val_steps.empty()) {
      val_loss = train_loss / static_cast<double>(std::max<int64_t>(batches, 1));
    } else {
      auto vl = EvaluateLoss(dataset, val_steps, config.batch_size);
      if (!vl.ok()) return vl.status();
      val_loss = *vl;
    }
    if (config.verbose) {
      EALGAP_LOG(Info) << name() << " epoch " << epoch << " train "
                       << train_loss / std::max<int64_t>(batches, 1) << " val "
                       << val_loss;
    }
    train_stats_.steps += attempt_steps;
    ++train_stats_.epochs_completed;
    if (val_loss < best_val - 1e-9) {
      best_val = val_loss;
      bad_epochs = 0;
      best_params.clear();
      for (const auto& [pname, p] : module()->NamedParameters()) {
        best_params.emplace(pname, p.value().Clone());
      }
    } else {
      ++bad_epochs;
    }
    ++epoch;

    const bool checkpoint_due =
        !config.checkpoint_path.empty() && config.checkpoint_every > 0 &&
        epoch % config.checkpoint_every == 0;
    if (checkpoint_due) ++train_stats_.checkpoints_written;
    good = capture();
    if (checkpoint_due) {
      EALGAP_RETURN_IF_ERROR(SaveTrainState(config.checkpoint_path, good));
    }
  }

  best_val_loss_ = best_val;
  train_stats_.final_lr = optimizer.learning_rate();
  mean_step_ms_ = total_steps > 0 ? total_step_ms / total_steps : 0.0;
  // Restore the best-validation parameters.
  if (!best_params.empty()) {
    EALGAP_RETURN_IF_ERROR(
        nn::ApplyParameters(*module(), best_params, "best-validation state"));
  }
  return Status::OK();
}

Result<std::vector<double>> NeuralForecaster::Predict(
    const data::SlidingWindowDataset& dataset, int64_t target_step) {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  current_dataset_ = &dataset;
  NoGradGuard no_grad;
  std::vector<data::WindowSample> batch = {dataset.MakeSample(target_step)};
  Var pred = ForwardBatch(batch);
  Tensor counts = InverseScale(pred.value());
  const float* p = counts.data();
  std::vector<double> out(counts.numel());
  for (int64_t i = 0; i < counts.numel(); ++i) {
    out[i] = std::max(0.0, static_cast<double>(p[i]));
  }
  return out;
}

Result<std::vector<double>> NeuralForecaster::PredictSample(
    const data::WindowSample& sample) {
  std::vector<double> out;
  EALGAP_RETURN_IF_ERROR(PredictSampleInto(sample, &out));
  return out;
}

Status NeuralForecaster::PredictSampleInto(const data::WindowSample& sample,
                                           std::vector<double>* out) {
  if (!fitted_) return Status::FailedPrecondition("PredictSample before Fit");
  // Fault sites modeling the three ways a live forward pass degrades:
  // latency spikes (deadline overruns), hard errors, and numerically
  // poisoned outputs. serve::ResilientPredictor turns each into a fallback.
  if (fault::Armed()) {
    fault::MaybeDelay("nn.predict.delay");
    if (fault::ShouldFail("nn.predict.error")) {
      return Status::Internal("injected model error in " + name());
    }
  }
  NoGradGuard no_grad;
  // Reused one-sample batch. The WindowSample copy is eight tensor
  // refcount bumps, not a data copy; the vector is cleared before
  // returning so no tensor handle outlives a serve-path arena scope.
  static thread_local std::vector<data::WindowSample> batch;
  batch.clear();
  batch.push_back(sample);
  Var pred = ForwardBatch(batch);
  Tensor counts = InverseScale(pred.value());
  batch.clear();
  const float* p = counts.data();
  out->resize(counts.numel());
  for (int64_t i = 0; i < counts.numel(); ++i) {
    (*out)[i] = std::max(0.0, static_cast<double>(p[i]));
  }
  if (fault::Armed() && fault::ShouldFail("nn.predict.nan") && !out->empty()) {
    (*out)[0] = std::numeric_limits<double>::quiet_NaN();
  }
  return Status::OK();
}

// --- Int8 inference packs ---------------------------------------------------

Result<int64_t> NeuralForecaster::PackQuantized() {
  if (!fitted_) return Status::FailedPrecondition("PackQuantized before Fit");
  return nn::quant::PackLinears(*module());
}

namespace {
/// CRC32 of a whole file's bytes — the key tying a quant-pack cache to the
/// exact checkpoint it was derived from.
Result<uint32_t> FileCrc32(const std::string& path) {
  EALGAP_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return Crc32(bytes);
}
}  // namespace

Status NeuralForecaster::SaveQuantPack(const std::string& pack_path,
                                       const std::string& checkpoint_path) {
  if (!fitted_) {
    return Status::FailedPrecondition("SaveQuantPack before Fit");
  }
  EALGAP_ASSIGN_OR_RETURN(uint32_t crc, FileCrc32(checkpoint_path));
  return nn::quant::SavePackCache(*module(), pack_path, crc);
}

Status NeuralForecaster::LoadQuantPack(const std::string& pack_path,
                                       const std::string& checkpoint_path) {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "LoadQuantPack before Fit/LoadCheckpoint");
  }
  EALGAP_ASSIGN_OR_RETURN(uint32_t crc, FileCrc32(checkpoint_path));
  return nn::quant::LoadPackCache(*module(), pack_path, crc);
}

// --- Checkpointing ----------------------------------------------------------

namespace {
constexpr char kCheckpointMagic[] = "ealgap-checkpoint";
constexpr int kCheckpointVersion = 1;
constexpr char kTrainStateMagic[] = "ealgap-train-state";
constexpr int kTrainStateVersion = 3;
}  // namespace

Status NeuralForecaster::EncodeConfig(CheckpointConfig* config) const {
  (void)config;
  return Status::NotImplemented(name() + " does not support checkpointing");
}

Status NeuralForecaster::DecodeConfig(
    const std::map<std::string, std::string>& config) {
  (void)config;
  return Status::NotImplemented(name() + " does not support checkpointing");
}

Status NeuralForecaster::ConfigInt(
    const std::map<std::string, std::string>& config, const std::string& key,
    int64_t lo, int64_t hi, int64_t* out) {
  auto it = config.find(key);
  if (it == config.end()) {
    return Status::ParseError("checkpoint config missing key " + key);
  }
  std::istringstream is(it->second);
  int64_t v = 0;
  if (!(is >> v)) {
    return Status::ParseError("checkpoint config key " + key +
                              " is not an integer: " + it->second);
  }
  if (v < lo || v > hi) {
    return Status::InvalidArgument(
        "checkpoint config key " + key + " out of range: " + it->second);
  }
  *out = v;
  return Status::OK();
}

Status NeuralForecaster::ConfigFloat(
    const std::map<std::string, std::string>& config, const std::string& key,
    float* out) {
  auto it = config.find(key);
  if (it == config.end()) {
    return Status::ParseError("checkpoint config missing key " + key);
  }
  std::istringstream is(it->second);
  float v = 0.f;
  if (!(is >> v)) {
    return Status::ParseError("checkpoint config key " + key +
                              " is not a number: " + it->second);
  }
  *out = v;
  return Status::OK();
}

Status NeuralForecaster::SaveCheckpoint(const std::string& path) {
  if (!fitted_) {
    return Status::FailedPrecondition("SaveCheckpoint before Fit");
  }
  CheckpointConfig config;
  EALGAP_RETURN_IF_ERROR(EncodeConfig(&config));
  std::ostringstream out;
  out << kCheckpointMagic << " " << kCheckpointVersion << "\n";
  out << "model " << name() << "\n";
  out.precision(std::numeric_limits<float>::max_digits10);
  for (const auto& [key, value] : config) {
    out << "config " << key << " " << value << "\n";
  }
  int64_t count = 0;
  LineCrc crc;
  {
    std::ostringstream params;
    nn::WriteParameterBlock(params, *module(), &count, &crc);
    out << "params " << count << "\n" << params.str();
  }
  // Per-block CRC over the parameter lines: catches in-block corruption
  // (bit rot, bad copies) that still parses as valid numbers.
  out << "crc " << Crc32Hex(crc.value()) << "\n";
  out << "end\n";
  // Temp-file + fsync + rename with bounded retry: a reader (or a crash
  // mid-save) can never observe a torn checkpoint.
  return WriteFileAtomic(path, out.str());
}

Status NeuralForecaster::LoadCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kCheckpointMagic) {
    return Status::ParseError(path + " is not an ealgap checkpoint");
  }
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) + " in " +
        path + " (maximum supported: " + std::to_string(kCheckpointVersion) +
        ")");
  }
  std::string key, model;
  if (!(in >> key >> model) || key != "model") {
    return Status::ParseError("missing model line in " + path);
  }
  if (model != name()) {
    return Status::InvalidArgument("checkpoint holds model " + model +
                                   " but this forecaster is " + name());
  }
  // Config echo, then the parameter count.
  std::map<std::string, std::string> config;
  int64_t param_count = -1;
  std::string line;
  std::getline(in, line);  // finish the model line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "config") {
      std::string k;
      if (!(is >> k)) return Status::ParseError("bad config line in " + path);
      std::string v;
      std::getline(is, v);
      const size_t start = v.find_first_not_of(' ');
      config[k] = start == std::string::npos ? "" : v.substr(start);
    } else if (tag == "params") {
      if (!(is >> param_count) || param_count < 0 || param_count > 100000) {
        return Status::ParseError("bad params count in " + path);
      }
      break;
    } else {
      return Status::ParseError("unexpected checkpoint tag '" + tag +
                                "' in " + path);
    }
  }
  if (param_count < 0) {
    return Status::ParseError("truncated checkpoint (no params block) in " +
                              path);
  }
  // Rebuild the network from the config echo, then load the weights.
  EALGAP_RETURN_IF_ERROR(DecodeConfig(config));
  std::map<std::string, Tensor> loaded;
  LineCrc crc;
  EALGAP_RETURN_IF_ERROR(
      nn::ReadParameterBlock(in, param_count, &loaded, path, &crc));
  std::string tail;
  std::string crc_hex;
  uint32_t stored_crc = 0;
  std::istringstream crc_line;
  if (!std::getline(in, tail)) {
    return Status::ParseError("truncated checkpoint (missing crc) in " + path);
  }
  crc_line.str(tail);
  std::string crc_tag;
  if (!(crc_line >> crc_tag >> crc_hex) || crc_tag != "crc" ||
      !ParseCrc32Hex(crc_hex, &stored_crc)) {
    return Status::ParseError("bad crc line in " + path);
  }
  if (stored_crc != crc.value()) {
    return Status::ParseError("parameter block CRC mismatch in " + path +
                              ": stored " + crc_hex + ", computed " +
                              Crc32Hex(crc.value()));
  }
  if (!std::getline(in, tail) || tail != "end") {
    return Status::ParseError("truncated checkpoint (missing end marker) in " +
                              path);
  }
  EALGAP_RETURN_IF_ERROR(nn::ApplyParameters(*module(), loaded, path));
  fitted_ = true;
  return Status::OK();
}

// --- Train-state checkpoints (format v3) ------------------------------------
//
// Layout (one logical field per line; floating-point scalars as raw bit
// patterns in hex so the round-trip is exact to the last ulp):
//
//   ealgap-train-state 3
//   model <name>
//   epoch <int> / lr / best_val / bad_epochs / total_steps / total_step_ms
//   stats <8 TrainStats fields>
//   rng <s0> <s1> <s2> <s3> <have_cached> <cached_bits>
//   order <count> <step...>   (train-step visit order; permutation-checked
//                              against the dataset on resume)
//   params <count>  + tensor lines + crc <hex8>
//   adam <t> <count> + tensor lines (keys m.%05d / v.%05d) + crc <hex8>
//   best <count>    + tensor lines + crc <hex8>
//   end
//
// Written via WriteFileAtomic (temp file + fsync + rename), so a crash at
// any point leaves either the previous complete state or the new one —
// never a torn file. Each tensor block carries its own CRC32; the trailing
// `end` marker makes truncation detectable even after the last block.

Status NeuralForecaster::SaveTrainState(const std::string& path,
                                        const TrainSnapshot& snap) {
  std::ostringstream out;
  out << kTrainStateMagic << " " << kTrainStateVersion << "\n";
  out << "model " << name() << "\n";
  out << "epoch " << snap.epoch << "\n";
  out << "lr " << FloatBitsHex(snap.lr) << "\n";
  out << "best_val " << DoubleBitsHex(snap.best_val) << "\n";
  out << "bad_epochs " << snap.bad_epochs << "\n";
  out << "total_steps " << snap.total_steps << "\n";
  out << "total_step_ms " << DoubleBitsHex(snap.total_step_ms) << "\n";
  const TrainStats& st = snap.stats;
  out << "stats " << st.epochs_completed << " " << st.steps << " "
      << st.rollbacks << " " << st.retries << " " << st.skipped_steps << " "
      << st.checkpoints_written << " " << st.resumed_epoch << " "
      << FloatBitsHex(st.final_lr) << "\n";
  out << "rng " << snap.rng.s[0] << " " << snap.rng.s[1] << " "
      << snap.rng.s[2] << " " << snap.rng.s[3] << " "
      << (snap.rng.have_cached_normal ? 1 : 0) << " "
      << DoubleBitsHex(snap.rng.cached_normal) << "\n";
  out << "order " << snap.order.size();
  for (int64_t step : snap.order) out << " " << step;
  out << "\n";
  {
    std::ostringstream block;
    int64_t count = 0;
    LineCrc crc;
    nn::WriteTensorMapBlock(block, snap.params, &count, &crc);
    out << "params " << count << "\n" << block.str();
    out << "crc " << Crc32Hex(crc.value()) << "\n";
  }
  {
    std::map<std::string, Tensor> adam;
    for (size_t i = 0; i < snap.adam_m.size(); ++i) {
      adam.emplace(AdamKey('m', i), snap.adam_m[i]);
    }
    for (size_t i = 0; i < snap.adam_v.size(); ++i) {
      adam.emplace(AdamKey('v', i), snap.adam_v[i]);
    }
    std::ostringstream block;
    int64_t count = 0;
    LineCrc crc;
    nn::WriteTensorMapBlock(block, adam, &count, &crc);
    out << "adam " << snap.adam_t << " " << count << "\n" << block.str();
    out << "crc " << Crc32Hex(crc.value()) << "\n";
  }
  {
    std::ostringstream block;
    int64_t count = 0;
    LineCrc crc;
    nn::WriteTensorMapBlock(block, snap.best_params, &count, &crc);
    out << "best " << count << "\n" << block.str();
    out << "crc " << Crc32Hex(crc.value()) << "\n";
  }
  out << "end\n";
  return WriteFileAtomic(path, out.str());
}

namespace {

/// Consumes the `crc <hex8>` line that closes a tensor block and verifies
/// it against the running CRC the reader accumulated.
Status CheckBlockCrc(std::istream& in, const LineCrc& crc,
                     const std::string& block, const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("truncated train state (missing crc after " +
                              block + " block) in " + path);
  }
  std::istringstream is(line);
  std::string tag, hex;
  uint32_t stored = 0;
  if (!(is >> tag >> hex) || tag != "crc" || !ParseCrc32Hex(hex, &stored)) {
    return Status::ParseError("bad crc line after " + block + " block in " +
                              path);
  }
  if (stored != crc.value()) {
    return Status::ParseError(block + " block CRC mismatch in " + path +
                              ": stored " + hex + ", computed " +
                              Crc32Hex(crc.value()));
  }
  return Status::OK();
}

}  // namespace

Status NeuralForecaster::LoadTrainState(const std::string& path,
                                        TrainSnapshot* snap) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kTrainStateMagic) {
    return Status::ParseError(path + " is not an ealgap train state");
  }
  if (version != kTrainStateVersion) {
    return Status::InvalidArgument(
        "unsupported train-state version " + std::to_string(version) +
        " in " + path + " (maximum supported: " +
        std::to_string(kTrainStateVersion) + ")");
  }
  std::string tag, model;
  if (!(in >> tag >> model) || tag != "model") {
    return Status::ParseError("missing model line in " + path);
  }
  if (model != name()) {
    return Status::InvalidArgument("train state holds model " + model +
                                   " but this forecaster is " + name());
  }

  auto bad = [&path](const std::string& field) {
    return Status::ParseError("bad '" + field + "' line in " + path);
  };
  std::string hex;
  if (!(in >> tag >> snap->epoch) || tag != "epoch" || snap->epoch < 0 ||
      snap->epoch > 1000000) {
    return bad("epoch");
  }
  if (!(in >> tag >> hex) || tag != "lr" || !ParseFloatBitsHex(hex, &snap->lr)) {
    return bad("lr");
  }
  if (!(in >> tag >> hex) || tag != "best_val" ||
      !ParseDoubleBitsHex(hex, &snap->best_val)) {
    return bad("best_val");
  }
  if (!(in >> tag >> snap->bad_epochs) || tag != "bad_epochs" ||
      snap->bad_epochs < 0) {
    return bad("bad_epochs");
  }
  if (!(in >> tag >> snap->total_steps) || tag != "total_steps" ||
      snap->total_steps < 0) {
    return bad("total_steps");
  }
  if (!(in >> tag >> hex) || tag != "total_step_ms" ||
      !ParseDoubleBitsHex(hex, &snap->total_step_ms)) {
    return bad("total_step_ms");
  }
  TrainStats& st = snap->stats;
  if (!(in >> tag >> st.epochs_completed >> st.steps >> st.rollbacks >>
        st.retries >> st.skipped_steps >> st.checkpoints_written >>
        st.resumed_epoch >> hex) ||
      tag != "stats" || !ParseFloatBitsHex(hex, &st.final_lr)) {
    return bad("stats");
  }
  int have_cached = 0;
  if (!(in >> tag >> snap->rng.s[0] >> snap->rng.s[1] >> snap->rng.s[2] >>
        snap->rng.s[3] >> have_cached >> hex) ||
      tag != "rng" || (have_cached != 0 && have_cached != 1) ||
      !ParseDoubleBitsHex(hex, &snap->rng.cached_normal)) {
    return bad("rng");
  }
  snap->rng.have_cached_normal = have_cached == 1;

  int64_t order_count = -1;
  if (!(in >> tag >> order_count) || tag != "order" || order_count < 0 ||
      order_count > 10000000) {
    return bad("order");
  }
  snap->order.resize(static_cast<size_t>(order_count));
  for (int64_t& step : snap->order) {
    if (!(in >> step) || step < 0) return bad("order");
  }

  std::string line;
  int64_t count = -1;
  if (!(in >> tag >> count) || tag != "params" || count < 0 ||
      count > 100000) {
    return bad("params");
  }
  std::getline(in, line);  // finish the header line
  {
    LineCrc crc;
    EALGAP_RETURN_IF_ERROR(
        nn::ReadParameterBlock(in, count, &snap->params, path, &crc));
    EALGAP_RETURN_IF_ERROR(CheckBlockCrc(in, crc, "params", path));
  }

  if (!(in >> tag >> snap->adam_t >> count) || tag != "adam" ||
      snap->adam_t < 0 || count < 0 || count > 200000 || count % 2 != 0) {
    return bad("adam");
  }
  std::getline(in, line);
  {
    std::map<std::string, Tensor> adam;
    LineCrc crc;
    EALGAP_RETURN_IF_ERROR(nn::ReadParameterBlock(in, count, &adam, path, &crc));
    EALGAP_RETURN_IF_ERROR(CheckBlockCrc(in, crc, "adam", path));
    const size_t n = static_cast<size_t>(count / 2);
    snap->adam_m.clear();
    snap->adam_v.clear();
    snap->adam_m.reserve(n);
    snap->adam_v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto mi = adam.find(AdamKey('m', i));
      auto vi = adam.find(AdamKey('v', i));
      if (mi == adam.end() || vi == adam.end()) {
        return Status::ParseError("missing adam moment pair " +
                                  std::to_string(i) + " in " + path);
      }
      snap->adam_m.push_back(mi->second);
      snap->adam_v.push_back(vi->second);
    }
  }

  if (!(in >> tag >> count) || tag != "best" || count < 0 || count > 100000) {
    return bad("best");
  }
  std::getline(in, line);
  {
    LineCrc crc;
    EALGAP_RETURN_IF_ERROR(
        nn::ReadParameterBlock(in, count, &snap->best_params, path, &crc));
    EALGAP_RETURN_IF_ERROR(CheckBlockCrc(in, crc, "best", path));
  }

  if (!std::getline(in, line) || line != "end") {
    return Status::ParseError("truncated train state (missing end marker) in " +
                              path);
  }
  return Status::OK();
}

}  // namespace ealgap
