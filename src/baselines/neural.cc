#include "baselines/neural.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace ealgap {

namespace {

std::vector<data::WindowSample> MakeBatch(
    const data::SlidingWindowDataset& dataset,
    const std::vector<int64_t>& steps, size_t begin, size_t end) {
  std::vector<data::WindowSample> batch;
  batch.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    batch.push_back(dataset.MakeSample(steps[i]));
  }
  return batch;
}

}  // namespace

Var NeuralForecaster::ComputeLoss(const Var& predictions,
                                  const Tensor& scaled_targets) {
  return nn::MseLoss(predictions, Var::Leaf(scaled_targets));
}

Tensor NeuralForecaster::StackTargets(
    const std::vector<data::WindowSample>& batch) const {
  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t n = batch[0].target.numel();
  Tensor out({b, n});
  float* p = out.data();
  for (int64_t i = 0; i < b; ++i) {
    std::copy(batch[i].target.data(), batch[i].target.data() + n, p + i * n);
  }
  return out;
}

double NeuralForecaster::EvaluateLoss(const data::SlidingWindowDataset& dataset,
                                      const std::vector<int64_t>& steps,
                                      int batch_size) {
  if (steps.empty()) return 0.0;
  // Evaluation batches are independent: forward passes read only const
  // model parameters (grad recording is off, a thread-local flag), so they
  // fan out across the pool. Per-batch losses land in slots indexed by
  // batch and are combined in batch order, keeping the result identical to
  // the serial loop for any thread count.
  const size_t bs = static_cast<size_t>(batch_size);
  const int64_t nbatches = static_cast<int64_t>((steps.size() + bs - 1) / bs);
  std::vector<double> batch_total(nbatches, 0.0);
  ParallelFor(0, nbatches, 1, [&](int64_t b0, int64_t b1) {
    NoGradGuard no_grad;
    for (int64_t bi = b0; bi < b1; ++bi) {
      const size_t begin = static_cast<size_t>(bi) * bs;
      const size_t end = std::min(steps.size(), begin + bs);
      auto batch = MakeBatch(dataset, steps, begin, end);
      Var pred = ForwardBatch(batch);
      Tensor scaled = ScaleTargets(StackTargets(batch));
      Var loss = ComputeLoss(pred, scaled);
      batch_total[bi] = loss.value().data()[0] * static_cast<double>(end - begin);
    }
  });
  double total = 0.0;
  for (double v : batch_total) total += v;
  return total / static_cast<double>(steps.size());
}

Status NeuralForecaster::Fit(const data::SlidingWindowDataset& dataset,
                             const data::StepRanges& split,
                             const TrainConfig& config) {
  current_dataset_ = &dataset;
  Initialize(dataset, split, config);
  fitted_ = true;

  std::vector<int64_t> train_steps =
      dataset.TargetSteps(split.train_begin, split.train_end);
  std::vector<int64_t> val_steps =
      dataset.TargetSteps(split.val_begin, split.val_end);
  if (train_steps.empty()) {
    return Status::FailedPrecondition("no training steps");
  }

  std::vector<Var> params = module()->Parameters();
  nn::Adam optimizer(params, config.learning_rate);
  Rng rng(config.seed);

  // The scratch checkpoint name must be unique per process AND per Fit
  // call: concurrent processes (ctest, benches) and sequential schemes in
  // one binary must never share it.
  static std::atomic<uint64_t> fit_counter{0};
  const std::string best_path =
      "/tmp/ealgap_best_" + std::to_string(::getpid()) + "_" +
      std::to_string(fit_counter.fetch_add(1)) + ".ckpt";
  best_val_loss_ = 1e300;
  int bad_epochs = 0;
  double total_step_ms = 0.0;
  int64_t total_steps = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(train_steps);
    double train_loss = 0.0;
    int64_t batches = 0;
    for (size_t i = 0; i < train_steps.size();
         i += static_cast<size_t>(config.batch_size)) {
      const size_t end =
          std::min(train_steps.size(), i + config.batch_size);
      auto batch = MakeBatch(dataset, train_steps, i, end);
      const auto t0 = std::chrono::steady_clock::now();
      module()->ZeroGrad();
      Var pred = ForwardBatch(batch);
      Tensor scaled = ScaleTargets(StackTargets(batch));
      Var loss = ComputeLoss(pred, scaled);
      // Divergence guard: a non-finite loss poisons every parameter, so
      // the batch is skipped instead of stepped.
      if (!std::isfinite(loss.value().data()[0])) continue;
      Backward(loss);
      const float norm = nn::ClipGradNorm(params, config.grad_clip);
      if (!std::isfinite(norm)) continue;
      optimizer.Step();
      const auto t1 = std::chrono::steady_clock::now();
      total_step_ms +=
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      ++total_steps;
      train_loss += loss.value().data()[0];
      ++batches;
    }
    const double val_loss =
        val_steps.empty() ? train_loss / std::max<int64_t>(batches, 1)
                          : EvaluateLoss(dataset, val_steps, config.batch_size);
    if (config.verbose) {
      EALGAP_LOG(Info) << name() << " epoch " << epoch << " train "
                       << train_loss / std::max<int64_t>(batches, 1) << " val "
                       << val_loss;
    }
    if (val_loss < best_val_loss_ - 1e-9) {
      best_val_loss_ = val_loss;
      bad_epochs = 0;
      EALGAP_RETURN_IF_ERROR(nn::SaveParameters(*module(), best_path));
    } else if (++bad_epochs > config.patience) {
      break;
    }
  }
  mean_step_ms_ = total_steps > 0 ? total_step_ms / total_steps : 0.0;
  // Restore the best-validation parameters.
  if (best_val_loss_ < 1e300) {
    EALGAP_RETURN_IF_ERROR(nn::LoadParameters(*module(), best_path));
    std::remove(best_path.c_str());
  }
  return Status::OK();
}

Result<std::vector<double>> NeuralForecaster::Predict(
    const data::SlidingWindowDataset& dataset, int64_t target_step) {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  current_dataset_ = &dataset;
  NoGradGuard no_grad;
  std::vector<data::WindowSample> batch = {dataset.MakeSample(target_step)};
  Var pred = ForwardBatch(batch);
  Tensor counts = InverseScale(pred.value());
  const float* p = counts.data();
  std::vector<double> out(counts.numel());
  for (int64_t i = 0; i < counts.numel(); ++i) {
    out[i] = std::max(0.0, static_cast<double>(p[i]));
  }
  return out;
}

Result<std::vector<double>> NeuralForecaster::PredictSample(
    const data::WindowSample& sample) {
  if (!fitted_) return Status::FailedPrecondition("PredictSample before Fit");
  // Fault sites modeling the three ways a live forward pass degrades:
  // latency spikes (deadline overruns), hard errors, and numerically
  // poisoned outputs. serve::ResilientPredictor turns each into a fallback.
  if (fault::Armed()) {
    fault::MaybeDelay("nn.predict.delay");
    if (fault::ShouldFail("nn.predict.error")) {
      return Status::Internal("injected model error in " + name());
    }
  }
  NoGradGuard no_grad;
  std::vector<data::WindowSample> batch = {sample};
  Var pred = ForwardBatch(batch);
  Tensor counts = InverseScale(pred.value());
  const float* p = counts.data();
  std::vector<double> out(counts.numel());
  for (int64_t i = 0; i < counts.numel(); ++i) {
    out[i] = std::max(0.0, static_cast<double>(p[i]));
  }
  if (fault::Armed() && fault::ShouldFail("nn.predict.nan") && !out.empty()) {
    out[0] = std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

// --- Checkpointing ----------------------------------------------------------

namespace {
constexpr char kCheckpointMagic[] = "ealgap-checkpoint";
constexpr int kCheckpointVersion = 1;
}  // namespace

Status NeuralForecaster::EncodeConfig(CheckpointConfig* config) const {
  (void)config;
  return Status::NotImplemented(name() + " does not support checkpointing");
}

Status NeuralForecaster::DecodeConfig(
    const std::map<std::string, std::string>& config) {
  (void)config;
  return Status::NotImplemented(name() + " does not support checkpointing");
}

Status NeuralForecaster::ConfigInt(
    const std::map<std::string, std::string>& config, const std::string& key,
    int64_t lo, int64_t hi, int64_t* out) {
  auto it = config.find(key);
  if (it == config.end()) {
    return Status::ParseError("checkpoint config missing key " + key);
  }
  std::istringstream is(it->second);
  int64_t v = 0;
  if (!(is >> v)) {
    return Status::ParseError("checkpoint config key " + key +
                              " is not an integer: " + it->second);
  }
  if (v < lo || v > hi) {
    return Status::InvalidArgument(
        "checkpoint config key " + key + " out of range: " + it->second);
  }
  *out = v;
  return Status::OK();
}

Status NeuralForecaster::ConfigFloat(
    const std::map<std::string, std::string>& config, const std::string& key,
    float* out) {
  auto it = config.find(key);
  if (it == config.end()) {
    return Status::ParseError("checkpoint config missing key " + key);
  }
  std::istringstream is(it->second);
  float v = 0.f;
  if (!(is >> v)) {
    return Status::ParseError("checkpoint config key " + key +
                              " is not a number: " + it->second);
  }
  *out = v;
  return Status::OK();
}

Status NeuralForecaster::SaveCheckpoint(const std::string& path) {
  if (!fitted_) {
    return Status::FailedPrecondition("SaveCheckpoint before Fit");
  }
  CheckpointConfig config;
  EALGAP_RETURN_IF_ERROR(EncodeConfig(&config));
  std::ostringstream out;
  out << kCheckpointMagic << " " << kCheckpointVersion << "\n";
  out << "model " << name() << "\n";
  out.precision(std::numeric_limits<float>::max_digits10);
  for (const auto& [key, value] : config) {
    out << "config " << key << " " << value << "\n";
  }
  int64_t count = 0;
  LineCrc crc;
  {
    std::ostringstream params;
    nn::WriteParameterBlock(params, *module(), &count, &crc);
    out << "params " << count << "\n" << params.str();
  }
  // Per-block CRC over the parameter lines: catches in-block corruption
  // (bit rot, bad copies) that still parses as valid numbers.
  out << "crc " << Crc32Hex(crc.value()) << "\n";
  out << "end\n";
  // Temp-file + fsync + rename with bounded retry: a reader (or a crash
  // mid-save) can never observe a torn checkpoint.
  return WriteFileAtomic(path, out.str());
}

Status NeuralForecaster::LoadCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kCheckpointMagic) {
    return Status::ParseError(path + " is not an ealgap checkpoint");
  }
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version) + " in " + path);
  }
  std::string key, model;
  if (!(in >> key >> model) || key != "model") {
    return Status::ParseError("missing model line in " + path);
  }
  if (model != name()) {
    return Status::InvalidArgument("checkpoint holds model " + model +
                                   " but this forecaster is " + name());
  }
  // Config echo, then the parameter count.
  std::map<std::string, std::string> config;
  int64_t param_count = -1;
  std::string line;
  std::getline(in, line);  // finish the model line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "config") {
      std::string k;
      if (!(is >> k)) return Status::ParseError("bad config line in " + path);
      std::string v;
      std::getline(is, v);
      const size_t start = v.find_first_not_of(' ');
      config[k] = start == std::string::npos ? "" : v.substr(start);
    } else if (tag == "params") {
      if (!(is >> param_count) || param_count < 0 || param_count > 100000) {
        return Status::ParseError("bad params count in " + path);
      }
      break;
    } else {
      return Status::ParseError("unexpected checkpoint tag '" + tag +
                                "' in " + path);
    }
  }
  if (param_count < 0) {
    return Status::ParseError("truncated checkpoint (no params block) in " +
                              path);
  }
  // Rebuild the network from the config echo, then load the weights.
  EALGAP_RETURN_IF_ERROR(DecodeConfig(config));
  std::map<std::string, Tensor> loaded;
  LineCrc crc;
  EALGAP_RETURN_IF_ERROR(
      nn::ReadParameterBlock(in, param_count, &loaded, path, &crc));
  std::string tail;
  std::string crc_hex;
  uint32_t stored_crc = 0;
  std::istringstream crc_line;
  if (!std::getline(in, tail)) {
    return Status::ParseError("truncated checkpoint (missing crc) in " + path);
  }
  crc_line.str(tail);
  std::string crc_tag;
  if (!(crc_line >> crc_tag >> crc_hex) || crc_tag != "crc" ||
      !ParseCrc32Hex(crc_hex, &stored_crc)) {
    return Status::ParseError("bad crc line in " + path);
  }
  if (stored_crc != crc.value()) {
    return Status::ParseError("parameter block CRC mismatch in " + path +
                              ": stored " + crc_hex + ", computed " +
                              Crc32Hex(crc.value()));
  }
  if (!std::getline(in, tail) || tail != "end") {
    return Status::ParseError("truncated checkpoint (missing end marker) in " +
                              path);
  }
  EALGAP_RETURN_IF_ERROR(nn::ApplyParameters(*module(), loaded, path));
  fitted_ = true;
  return Status::OK();
}

}  // namespace ealgap
