#ifndef EALGAP_BASELINES_ST_NORM_H_
#define EALGAP_BASELINES_ST_NORM_H_

#include <memory>
#include <string>

#include "baselines/neural.h"
#include "data/scaler.h"

namespace ealgap {

/// ST-Norm baseline (Deng et al., KDD'21), adapted to region-vector data.
///
/// Two normalization streams factor the input into components:
///  * temporal normalization — z-score each region across the L window
///    (isolates the high-frequency local signal),
///  * spatial normalization — z-score each time step across regions
///    (isolates the citywide "global" level).
/// The raw (z-scaled) window and both streams are concatenated per region
/// and fed to an MLP head that predicts the next step.
class StNormForecaster : public NeuralForecaster {
 public:
  explicit StNormForecaster(int64_t hidden_size = 48);
  ~StNormForecaster() override;

  std::string name() const override { return "ST-Norm"; }

 protected:
  void Initialize(const data::SlidingWindowDataset& dataset,
                  const data::StepRanges& split,
                  const TrainConfig& config) override;
  Var ForwardBatch(const std::vector<data::WindowSample>& batch) override;
  Tensor ScaleTargets(const Tensor& targets) const override;
  Tensor InverseScale(const Tensor& predictions) const override;
  nn::Module* module() override;
  Status EncodeConfig(CheckpointConfig* config) const override;
  Status DecodeConfig(
      const std::map<std::string, std::string>& config) override;

 private:
  struct Net;
  int64_t hidden_size_;
  int64_t history_length_ = 0;  ///< L the net was built for
  data::StandardScaler scaler_;
  std::unique_ptr<Net> net_;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_ST_NORM_H_
