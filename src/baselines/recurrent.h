#ifndef EALGAP_BASELINES_RECURRENT_H_
#define EALGAP_BASELINES_RECURRENT_H_

#include <memory>
#include <string>

#include "baselines/neural.h"
#include "data/scaler.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace ealgap {

/// Which recurrent cell drives the sequence encoder.
enum class RecurrentKind { kRnn, kGru, kLstm };

/// The paper's GRU / LSTM / RNN baselines: a shared-weight per-region
/// sequence-to-one forecaster over the last L steps. Each region's scalar
/// series is z-scored, encoded by the cell, and projected to the next-step
/// value.
class RecurrentForecaster : public NeuralForecaster {
 public:
  explicit RecurrentForecaster(RecurrentKind kind, int64_t hidden_size = 16);
  ~RecurrentForecaster() override;

  std::string name() const override;

 protected:
  void Initialize(const data::SlidingWindowDataset& dataset,
                  const data::StepRanges& split,
                  const TrainConfig& config) override;
  Var ForwardBatch(const std::vector<data::WindowSample>& batch) override;
  Tensor ScaleTargets(const Tensor& targets) const override;
  Tensor InverseScale(const Tensor& predictions) const override;
  nn::Module* module() override;
  /// Checkpointing (inherited by EVL, whose serving state is the same GRU
  /// net + scaler; the EVL loss thresholds only matter during Fit).
  Status EncodeConfig(CheckpointConfig* config) const override;
  Status DecodeConfig(
      const std::map<std::string, std::string>& config) override;

  struct Net;
  RecurrentKind kind_;
  int64_t hidden_size_;
  data::StandardScaler scaler_;
  std::unique_ptr<Net> net_;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_RECURRENT_H_
