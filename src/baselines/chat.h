#ifndef EALGAP_BASELINES_CHAT_H_
#define EALGAP_BASELINES_CHAT_H_

#include <memory>
#include <string>

#include "baselines/neural.h"
#include "data/scaler.h"

namespace ealgap {

struct ChatOptions {
  int64_t embed_dim = 16;   ///< attention feature width
  int64_t context_dim = 8;  ///< hour/day-of-week embedding width
};

/// CHAT baseline (Huang et al., IJCAI'21): Cross-interaction Hierarchical
/// ATtention. Three aspects are modeled and fused:
///  * temporal — MLP attention over the L history steps of each region,
///  * spatial  — attention over the regions' temporal summaries,
///  * contextual — a day-of-week embedding (the original's contextual
///    aspect carried semantic/anomaly features, not a clock on the target).
/// Their cross-interactions (including elementwise products) feed the
/// prediction head.
class ChatForecaster : public NeuralForecaster {
 public:
  explicit ChatForecaster(ChatOptions options = {});
  ~ChatForecaster() override;

  std::string name() const override { return "CHAT"; }

  /// ForwardBatch reads the attached dataset's calendar for the day-of-week
  /// embedding — a bare WindowSample is not enough.
  bool SupportsStreaming() const override { return false; }
  Result<std::vector<double>> PredictSample(
      const data::WindowSample& sample) override {
    (void)sample;
    return Status::NotImplemented(
        "CHAT needs the dataset calendar; it cannot serve from samples");
  }

 protected:
  void Initialize(const data::SlidingWindowDataset& dataset,
                  const data::StepRanges& split,
                  const TrainConfig& config) override;
  Var ForwardBatch(const std::vector<data::WindowSample>& batch) override;
  Tensor ScaleTargets(const Tensor& targets) const override;
  Tensor InverseScale(const Tensor& predictions) const override;
  nn::Module* module() override;

 private:
  struct Net;
  ChatOptions options_;
  data::StandardScaler scaler_;
  std::unique_ptr<Net> net_;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_CHAT_H_
