#include "baselines/evl.h"

#include "stats/descriptive.h"
#include "tensor/ops.h"

namespace ealgap {

EvlForecaster::EvlForecaster(EvlOptions options, int64_t hidden_size)
    : RecurrentForecaster(RecurrentKind::kGru, hidden_size),
      options_(options) {}

void EvlForecaster::Initialize(const data::SlidingWindowDataset& dataset,
                               const data::StepRanges& split,
                               const TrainConfig& config) {
  RecurrentForecaster::Initialize(dataset, split, config);
  // Thresholds in *scaled* space, from the training slice.
  Tensor train_slice =
      ops::Slice(dataset.series().counts, 1, 0, split.train_end);
  Tensor scaled = scaler_.Transform(train_slice);
  std::vector<double> values(scaled.data(), scaled.data() + scaled.numel());
  loss_config_.high_threshold =
      static_cast<float>(stats::Quantile(values, options_.high_quantile));
  loss_config_.low_threshold =
      static_cast<float>(stats::Quantile(values, options_.low_quantile));
  loss_config_.beta = options_.beta;
  loss_config_.gamma = options_.gamma;
}

Var EvlForecaster::ComputeLoss(const Var& predictions,
                               const Tensor& scaled_targets) {
  return nn::EvlLoss(predictions, Var::Leaf(scaled_targets), loss_config_);
}

}  // namespace ealgap
