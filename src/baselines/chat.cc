#include "baselines/chat.h"

#include "common/logging.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace ealgap {

struct ChatForecaster::Net : nn::Module {
  Net(const ChatOptions& opts, Rng& rng)
      : step_proj(1, opts.embed_dim, rng),
        temporal_score(opts.embed_dim, 1, rng),
        spatial_score(opts.embed_dim, 1, rng),
        hour_embed(24, opts.context_dim, rng, /*has_bias=*/false),
        dow_embed(7, opts.context_dim, rng, /*has_bias=*/false),
        fuse1(3 * opts.embed_dim + 2 * opts.context_dim, 32, rng),
        fuse2(32, 1, rng),
        dim(opts.embed_dim) {
    RegisterModule("step_proj", &step_proj);
    RegisterModule("temporal_score", &temporal_score);
    RegisterModule("spatial_score", &spatial_score);
    RegisterModule("hour_embed", &hour_embed);
    RegisterModule("dow_embed", &dow_embed);
    RegisterModule("fuse1", &fuse1);
    RegisterModule("fuse2", &fuse2);
  }

  // One sample: x (N, L) scaled, hour/dow one-hots describing the LAST
  // OBSERVED step (the context of the observation window; the original
  // CHAT's contextual aspect describes its inputs, not the target).
  // Returns (N, 1).
  Var ForwardSample(const Var& x, const Var& hour_onehot,
                    const Var& dow_onehot) const {
    const int64_t n = x.value().dim(0);
    const int64_t l = x.value().dim(1);
    // Temporal attention over each region's history.
    Var u = Tanh(step_proj.Forward(Reshape(x, {n * l, 1})));  // (N*L, d)
    Var scores = temporal_score.Forward(u);                   // (N*L, 1)
    Var alpha = SoftmaxLastDim(Reshape(scores, {n, l}));      // (N, L)
    Var u3 = Reshape(u, {n, l, dim});
    Var summary = SumAxis(Mul(u3, Reshape(alpha, {n, l, 1})), 1,
                          /*keepdim=*/false);  // (N, d)
    // Spatial attention over region summaries.
    Var sscore = spatial_score.Forward(summary);              // (N, 1)
    Var beta = SoftmaxLastDim(Reshape(sscore, {1, n}));       // (1, N)
    Var city = MatMul(beta, summary);                         // (1, d)
    Var city_b = Add(Mul(summary, Var::Leaf(Tensor::Zeros({n, dim}))),
                     city);  // broadcast city to (N, d)
    // Context embeddings, broadcast across regions.
    Var ctx_h = hour_embed.Forward(hour_onehot);  // (1, c)
    Var ctx_d = dow_embed.Forward(dow_onehot);    // (1, c)
    const int64_t c = ctx_d.value().dim(1);
    Var zeros_nc = Var::Leaf(Tensor::Zeros({n, c}));
    Var ctx_hb = Add(zeros_nc, ctx_h);
    Var ctx_db = Add(zeros_nc, ctx_d);
    // Cross-interaction fusion.
    Var cross = Mul(summary, city_b);
    Var features = Concat({summary, city_b, cross, ctx_hb, ctx_db}, 1);
    return fuse2.Forward(Relu(fuse1.Forward(features)));  // (N, 1)
  }

  nn::Linear step_proj, temporal_score, spatial_score;
  nn::Linear hour_embed, dow_embed;
  nn::Linear fuse1, fuse2;
  int64_t dim;
};

ChatForecaster::ChatForecaster(ChatOptions options) : options_(options) {}

ChatForecaster::~ChatForecaster() = default;

nn::Module* ChatForecaster::module() { return net_.get(); }

void ChatForecaster::Initialize(const data::SlidingWindowDataset& dataset,
                                const data::StepRanges& split,
                                const TrainConfig& config) {
  Tensor train_slice =
      ops::Slice(dataset.series().counts, 1, 0, split.train_end);
  scaler_.Fit(train_slice);
  Rng rng(config.seed);
  net_ = std::make_unique<Net>(options_, rng);
}

Var ChatForecaster::ForwardBatch(
    const std::vector<data::WindowSample>& batch) {
  const auto& series = current_dataset()->series();
  std::vector<Var> outs;
  outs.reserve(batch.size());
  for (const data::WindowSample& sample : batch) {
    Var x = Var::Leaf(scaler_.Transform(sample.x));
    const int64_t last_observed = sample.target_step - 1;
    Tensor hour = Tensor::Zeros({1, 24});
    hour.data()[series.HourOfStep(last_observed)] = 1.f;
    Tensor dow = Tensor::Zeros({1, 7});
    dow.data()[DayOfWeek(series.DateOfStep(last_observed))] = 1.f;
    Var out = net_->ForwardSample(x, Var::Leaf(std::move(hour)),
                                  Var::Leaf(std::move(dow)));  // (N, 1)
    outs.push_back(TransposeLast2(out));                       // (1, N)
  }
  return Concat(outs, 0);  // (B, N)
}

Tensor ChatForecaster::ScaleTargets(const Tensor& targets) const {
  return scaler_.Transform(targets);
}

Tensor ChatForecaster::InverseScale(const Tensor& predictions) const {
  return scaler_.Inverse(predictions);
}

}  // namespace ealgap
