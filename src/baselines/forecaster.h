#ifndef EALGAP_BASELINES_FORECASTER_H_
#define EALGAP_BASELINES_FORECASTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"

namespace ealgap {

/// Training hyper-parameters shared by every learned forecaster.
struct TrainConfig {
  int epochs = 30;
  float learning_rate = 2e-4f;  // the paper's 0.0002
  int batch_size = 16;          // samples per step (each sample = N regions)
  int patience = 6;             // early-stop epochs without val improvement
  float grad_clip = 5.f;
  uint64_t seed = 7;
  bool verbose = false;

  // --- crash-safe checkpointing (NeuralForecaster only) ---
  /// Path of the atomic train-state snapshot (format v3: params, optimizer
  /// moments, RNG stream, counters, best-val snapshot). Empty disables
  /// checkpointing entirely.
  std::string checkpoint_path;
  /// Write the train state every this many completed epochs (requires
  /// checkpoint_path). 0 disables periodic snapshots.
  int checkpoint_every = 0;
  /// Continue from checkpoint_path when it exists: the run resumes
  /// bit-identically to the uninterrupted one. A missing file starts
  /// fresh; a corrupt one is a hard error (never a silent restart).
  bool resume = false;

  // --- divergence sentinel ---
  /// A non-finite loss or gradient norm rolls training back to the last
  /// good epoch boundary with the learning rate multiplied by
  /// `rollback_lr_backoff`; after `max_rollbacks` such events Fit gives up
  /// with an error instead of producing garbage.
  int max_rollbacks = 3;
  float rollback_lr_backoff = 0.5f;
};

/// Attribution of what training actually did — rollbacks taken, epochs
/// retried, steps discarded — so a recovered-from divergence is visible
/// instead of silently absorbed. Filled by NeuralForecaster::Fit.
struct TrainStats {
  int64_t epochs_completed = 0;  ///< epochs finished (incl. before resume)
  int64_t steps = 0;             ///< optimizer steps applied and kept
  int64_t rollbacks = 0;         ///< divergence events that restored state
  int64_t retries = 0;           ///< epoch attempts beyond the first
  int64_t skipped_steps = 0;     ///< steps discarded by rollbacks
  int64_t checkpoints_written = 0;  ///< train-state snapshots persisted
  int64_t resumed_epoch = -1;    ///< epoch a resume continued from; -1=fresh
  float final_lr = 0.f;          ///< learning rate after any backoffs
};

/// Common interface of EALGAP and all baselines: fit on the chronological
/// training range, then produce the next-step citywide prediction for any
/// target step.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Scheme name as it appears in the paper's tables ("GRU", "ST-Norm", ...).
  virtual std::string name() const = 0;

  /// Trains on `split.train_*` using `split.val_*` for early stopping.
  virtual Status Fit(const data::SlidingWindowDataset& dataset,
                     const data::StepRanges& split,
                     const TrainConfig& config) = 0;

  /// Predicts X[:, target_step] (one value per region). Requires Fit().
  virtual Result<std::vector<double>> Predict(
      const data::SlidingWindowDataset& dataset, int64_t target_step) = 0;

  /// True when the forecaster can predict from a self-contained
  /// WindowSample (no dataset attached) — the contract serve::OnlinePredictor
  /// relies on. Forecasters that read arbitrary history beyond the sample
  /// (ST-ResNet, CHAT) or bypass windows entirely (ARIMA, HA) return false.
  virtual bool SupportsStreaming() const { return false; }

  /// Predicts from one assembled sample. Unlike Predict(), this reads no
  /// shared forecaster state besides the (const) fitted parameters, so
  /// concurrent calls from different threads are safe. Default:
  /// NotImplemented (see SupportsStreaming()).
  virtual Result<std::vector<double>> PredictSample(
      const data::WindowSample& sample);

  /// PredictSample() into a caller-owned buffer: `out` is resized to one
  /// value per region and overwritten, so a caller that reuses the same
  /// vector pays no steady-state allocation (serve::OnlinePredictor's
  /// zero-allocation contract). The default wraps PredictSample() and
  /// copies; allocation-free forecasters override both coherently.
  virtual Status PredictSampleInto(const data::WindowSample& sample,
                                   std::vector<double>* out);

  /// Convenience: predictions and truths flattened over [begin, end),
  /// ready for stats::ComputeMetrics.
  Status PredictRange(const data::SlidingWindowDataset& dataset,
                      int64_t begin, int64_t end,
                      std::vector<double>* predictions,
                      std::vector<double>* truths);
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_FORECASTER_H_
