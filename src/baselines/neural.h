#ifndef EALGAP_BASELINES_NEURAL_H_
#define EALGAP_BASELINES_NEURAL_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/forecaster.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"

namespace ealgap {

/// Ordered key/value pairs a forecaster echoes into its checkpoint header.
using CheckpointConfig = std::vector<std::pair<std::string, std::string>>;

/// Shared skeleton for every gradient-trained forecaster (the recurrent
/// family, ST-Norm, ST-ResNet, EVL, CHAT, and EALGAP itself).
///
/// Subclasses implement the model pieces; this class owns the loop:
/// shuffled mini-batches, Adam, gradient clipping, early stopping on the
/// validation range, and restoring the best-validation parameters.
class NeuralForecaster : public Forecaster {
 public:
  Status Fit(const data::SlidingWindowDataset& dataset,
             const data::StepRanges& split, const TrainConfig& config) final;

  Result<std::vector<double>> Predict(const data::SlidingWindowDataset& dataset,
                                      int64_t target_step) final;

  /// Every gradient-trained forecaster predicts from a bare sample unless a
  /// subclass (ST-ResNet, CHAT) needs dataset-wide history and opts out.
  bool SupportsStreaming() const override { return true; }

  /// Bit-identical to Predict() on the sample MakeSample would build, but
  /// touches no mutable forecaster state: safe to call concurrently.
  Result<std::vector<double>> PredictSample(
      const data::WindowSample& sample) override;

  /// The real sample-path body: runs the forward pass into `out` (resized,
  /// capacity reused) through thread-local batch scratch, so the steady
  /// state allocates nothing — tensors and graph nodes land on the ambient
  /// arena when serve installed one. PredictSample() wraps this.
  Status PredictSampleInto(const data::WindowSample& sample,
                           std::vector<double>* out) override;

  /// Writes a versioned checkpoint: header, model name, the EncodeConfig
  /// echo, every parameter, and a trailing end marker (so truncation is
  /// detectable). Requires Fit() or LoadCheckpoint() first.
  Status SaveCheckpoint(const std::string& path);

  /// Restores a forecaster from SaveCheckpoint output without a Fit() call:
  /// validates the header version and model name, rebuilds the network from
  /// the config echo (DecodeConfig), and loads the parameters with shape
  /// validation. A corrupted, truncated, or mismatched file yields a Status
  /// error and leaves no partially-initialized state behind on the happy
  /// path's fitted flag.
  Status LoadCheckpoint(const std::string& path);

  /// Builds the int8 inference packs for every Linear in the module tree
  /// (nn/quant.cc; idempotent — repacking replaces the packs). Requires a
  /// fitted model. Returns the number of packed layers. The packs are only
  /// consulted inside a quant::ScopedQuantMode with gradients off, so a
  /// packed model trains and float-serves exactly as before.
  Result<int64_t> PackQuantized();

  /// Pack-cache round trip, keyed to the checkpoint file the packs were
  /// derived from via its CRC32: LoadQuantPack REJECTS a cache whose
  /// recorded source CRC differs from `checkpoint_path`'s current bytes
  /// (stale packs are never silently repacked or served).
  Status SaveQuantPack(const std::string& pack_path,
                       const std::string& checkpoint_path);
  Status LoadQuantPack(const std::string& pack_path,
                       const std::string& checkpoint_path);

  /// Bounded online fine-tune knobs (serve::AdaptivePredictor). Plain SGD,
  /// deliberately: a micro-fit leaves no optimizer moments behind, so
  /// RestoreParams alone rolls the model back bit-exactly.
  struct MicroFitConfig {
    int steps = 4;             ///< SGD steps per adaptation attempt
    int batch_size = 8;        ///< samples per step (cycled in order)
    float learning_rate = 1e-3f;
    float grad_clip = 1.0f;
  };

  /// Snapshot of every module parameter (name -> cloned tensor), the same
  /// capture path Fit's divergence rollback uses. Requires a fitted model.
  Result<std::map<std::string, Tensor>> CaptureParams();

  /// Bit-exact restore of a CaptureParams snapshot (nn::ApplyParameters:
  /// names and shapes validated, bytes copied).
  Status RestoreParams(const std::map<std::string, Tensor>& params);

  /// Mean model-space loss over `samples`, batched serially in order with
  /// gradients off — deterministic for a fixed parameter state regardless
  /// of thread count. Requires a fitted model and a non-empty sample set.
  Result<double> EvaluateSamplesLoss(
      const std::vector<data::WindowSample>& samples, int batch_size);

  /// Bounded SGD fine-tune on `samples` (cycled in order): the Fit train
  /// step body — forward, scaled-target loss, backward, clip, step — minus
  /// Adam, shuffling, and early stopping. Fails (leaving the caller to
  /// RestoreParams) on a non-finite loss or gradient norm.
  Status MicroFit(const std::vector<data::WindowSample>& samples,
                  const MicroFitConfig& config);

  /// Mean validation loss of the best epoch (for diagnostics).
  double best_validation_loss() const { return best_val_loss_; }
  /// Wall-clock milliseconds of one average optimization step.
  double mean_step_ms() const { return mean_step_ms_; }
  /// Attribution of the most recent Fit: rollbacks, retries, skipped
  /// steps, checkpoints written, resume point.
  const TrainStats& train_stats() const { return train_stats_; }

 protected:
  /// Builds modules and fits scalers; called once at the start of Fit.
  virtual void Initialize(const data::SlidingWindowDataset& dataset,
                          const data::StepRanges& split,
                          const TrainConfig& config) = 0;

  /// Model-space predictions for a batch, shape (B, N).
  virtual Var ForwardBatch(const std::vector<data::WindowSample>& batch) = 0;

  /// Converts raw count targets (B, N) to model space.
  virtual Tensor ScaleTargets(const Tensor& targets) const = 0;

  /// Converts model-space predictions (B, N) back to counts, clamped >= 0.
  virtual Tensor InverseScale(const Tensor& predictions) const = 0;

  /// Training loss; defaults to MSE in model space.
  virtual Var ComputeLoss(const Var& predictions, const Tensor& scaled_targets);

  /// The module whose parameters are optimized.
  virtual nn::Module* module() = 0;

  /// Checkpoint hooks. EncodeConfig appends everything DecodeConfig needs
  /// to rebuild the network and scalers without a dataset (options, input
  /// dims, scaler state); DecodeConfig validates the echoed values and
  /// reconstructs the model. Defaults return NotImplemented, which makes
  /// SaveCheckpoint/LoadCheckpoint report the forecaster as
  /// non-checkpointable instead of writing a half-restorable file.
  virtual Status EncodeConfig(CheckpointConfig* config) const;
  virtual Status DecodeConfig(const std::map<std::string, std::string>& config);

  /// Range-checked lookups for DecodeConfig implementations: missing keys,
  /// unparseable values, and out-of-range numbers all become Status errors.
  static Status ConfigInt(const std::map<std::string, std::string>& config,
                          const std::string& key, int64_t lo, int64_t hi,
                          int64_t* out);
  static Status ConfigFloat(const std::map<std::string, std::string>& config,
                            const std::string& key, float* out);

  /// The dataset of the in-flight Fit/Predict call; valid inside
  /// ForwardBatch for forecasters (ST-ResNet) that need more history than
  /// a WindowSample carries.
  const data::SlidingWindowDataset* current_dataset() const {
    return current_dataset_;
  }

 private:
  struct TrainSnapshot;

  const data::SlidingWindowDataset* current_dataset_ = nullptr;
  Tensor StackTargets(const std::vector<data::WindowSample>& batch) const;
  /// Mean loss over `steps`, fanned out across the pool. The first error —
  /// an injected fault or a non-finite batch loss — wins deterministically
  /// by lowest batch index, regardless of which pool thread hit it.
  Result<double> EvaluateLoss(const data::SlidingWindowDataset& dataset,
                              const std::vector<int64_t>& steps,
                              int batch_size);

  /// Atomic train-state checkpoint (format v3): serializes `snap` with
  /// per-block CRCs and lands it via WriteFileAtomic, or restores it with
  /// full validation (model name, shapes, CRCs, end marker).
  Status SaveTrainState(const std::string& path, const TrainSnapshot& snap);
  Status LoadTrainState(const std::string& path, TrainSnapshot* snap);

  bool fitted_ = false;
  double best_val_loss_ = 0.0;
  double mean_step_ms_ = 0.0;
  TrainStats train_stats_;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_NEURAL_H_
