#ifndef EALGAP_BASELINES_NEURAL_H_
#define EALGAP_BASELINES_NEURAL_H_

#include <memory>
#include <vector>

#include "baselines/forecaster.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"

namespace ealgap {

/// Shared skeleton for every gradient-trained forecaster (the recurrent
/// family, ST-Norm, ST-ResNet, EVL, CHAT, and EALGAP itself).
///
/// Subclasses implement the model pieces; this class owns the loop:
/// shuffled mini-batches, Adam, gradient clipping, early stopping on the
/// validation range, and restoring the best-validation parameters.
class NeuralForecaster : public Forecaster {
 public:
  Status Fit(const data::SlidingWindowDataset& dataset,
             const data::StepRanges& split, const TrainConfig& config) final;

  Result<std::vector<double>> Predict(const data::SlidingWindowDataset& dataset,
                                      int64_t target_step) final;

  /// Mean validation loss of the best epoch (for diagnostics).
  double best_validation_loss() const { return best_val_loss_; }
  /// Wall-clock milliseconds of one average optimization step.
  double mean_step_ms() const { return mean_step_ms_; }

 protected:
  /// Builds modules and fits scalers; called once at the start of Fit.
  virtual void Initialize(const data::SlidingWindowDataset& dataset,
                          const data::StepRanges& split,
                          const TrainConfig& config) = 0;

  /// Model-space predictions for a batch, shape (B, N).
  virtual Var ForwardBatch(const std::vector<data::WindowSample>& batch) = 0;

  /// Converts raw count targets (B, N) to model space.
  virtual Tensor ScaleTargets(const Tensor& targets) const = 0;

  /// Converts model-space predictions (B, N) back to counts, clamped >= 0.
  virtual Tensor InverseScale(const Tensor& predictions) const = 0;

  /// Training loss; defaults to MSE in model space.
  virtual Var ComputeLoss(const Var& predictions, const Tensor& scaled_targets);

  /// The module whose parameters are optimized.
  virtual nn::Module* module() = 0;

  /// The dataset of the in-flight Fit/Predict call; valid inside
  /// ForwardBatch for forecasters (ST-ResNet) that need more history than
  /// a WindowSample carries.
  const data::SlidingWindowDataset* current_dataset() const {
    return current_dataset_;
  }

 private:
  const data::SlidingWindowDataset* current_dataset_ = nullptr;
  Tensor StackTargets(const std::vector<data::WindowSample>& batch) const;
  double EvaluateLoss(const data::SlidingWindowDataset& dataset,
                      const std::vector<int64_t>& steps, int batch_size);

  bool fitted_ = false;
  double best_val_loss_ = 0.0;
  double mean_step_ms_ = 0.0;
};

}  // namespace ealgap

#endif  // EALGAP_BASELINES_NEURAL_H_
