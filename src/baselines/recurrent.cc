#include "baselines/recurrent.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "tensor/ops.h"

namespace ealgap {

struct RecurrentForecaster::Net : nn::Module {
  Net(RecurrentKind kind, int64_t hidden, Rng& rng) {
    switch (kind) {
      case RecurrentKind::kRnn:
        rnn = std::make_unique<nn::RnnCell>(1, hidden, rng);
        RegisterModule("rnn", rnn.get());
        break;
      case RecurrentKind::kGru:
        gru = std::make_unique<nn::GruCell>(1, hidden, rng);
        RegisterModule("gru", gru.get());
        break;
      case RecurrentKind::kLstm:
        lstm = std::make_unique<nn::LstmCell>(1, hidden, rng);
        RegisterModule("lstm", lstm.get());
        break;
    }
    head = std::make_unique<nn::Linear>(hidden, 1, rng);
    RegisterModule("head", head.get());
  }

  // x: (rows, L) of scaled scalars -> (rows, 1)
  Var Forward(const Var& x) const {
    const int64_t rows = x.value().dim(0);
    const int64_t l = x.value().dim(1);
    std::vector<Var> steps;
    steps.reserve(l);
    for (int64_t t = 0; t < l; ++t) {
      steps.push_back(Slice(x, 1, t, t + 1));  // (rows, 1)
    }
    Var h;
    if (rnn) {
      h = RunRnn(*rnn, steps, nn::ZeroState(rows, rnn->hidden_size()));
    } else if (gru) {
      h = RunGru(*gru, steps, nn::ZeroState(rows, gru->hidden_size()));
    } else {
      h = RunLstm(*lstm, steps,
                  {nn::ZeroState(rows, lstm->hidden_size()),
                   nn::ZeroState(rows, lstm->hidden_size())});
    }
    return head->Forward(h);
  }

  std::unique_ptr<nn::RnnCell> rnn;
  std::unique_ptr<nn::GruCell> gru;
  std::unique_ptr<nn::LstmCell> lstm;
  std::unique_ptr<nn::Linear> head;
};

RecurrentForecaster::RecurrentForecaster(RecurrentKind kind,
                                         int64_t hidden_size)
    : kind_(kind), hidden_size_(hidden_size) {}

RecurrentForecaster::~RecurrentForecaster() = default;

nn::Module* RecurrentForecaster::module() { return net_.get(); }

std::string RecurrentForecaster::name() const {
  switch (kind_) {
    case RecurrentKind::kRnn:
      return "RNN";
    case RecurrentKind::kGru:
      return "GRU";
    case RecurrentKind::kLstm:
      return "LSTM";
  }
  return "?";
}

void RecurrentForecaster::Initialize(const data::SlidingWindowDataset& dataset,
                                     const data::StepRanges& split,
                                     const TrainConfig& config) {
  // Fit the scaler on the training portion of the series only.
  const auto& series = dataset.series();
  Tensor train_slice = ops::Slice(series.counts, 1, 0, split.train_end);
  scaler_.Fit(train_slice);
  Rng rng(config.seed);
  net_ = std::make_unique<Net>(kind_, hidden_size_, rng);
}

Var RecurrentForecaster::ForwardBatch(
    const std::vector<data::WindowSample>& batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t n = batch[0].x.dim(0);
  const int64_t l = batch[0].x.dim(1);
  // Stack to (B*N, L): regions are rows sharing the cell weights.
  Tensor x({b * n, l});
  float* px = x.data();
  for (int64_t i = 0; i < b; ++i) {
    std::copy(batch[i].x.data(), batch[i].x.data() + n * l, px + i * n * l);
  }
  Var scaled = Var::Leaf(scaler_.Transform(x));
  Var out = net_->Forward(scaled);        // (B*N, 1)
  return Reshape(out, {b, n});
}

Tensor RecurrentForecaster::ScaleTargets(const Tensor& targets) const {
  return scaler_.Transform(targets);
}

Tensor RecurrentForecaster::InverseScale(const Tensor& predictions) const {
  return scaler_.Inverse(predictions);
}

namespace {

const char* KindName(RecurrentKind kind) {
  switch (kind) {
    case RecurrentKind::kRnn:
      return "rnn";
    case RecurrentKind::kGru:
      return "gru";
    case RecurrentKind::kLstm:
      return "lstm";
  }
  return "?";
}

std::string FloatString(float v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<float>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

Status RecurrentForecaster::EncodeConfig(CheckpointConfig* config) const {
  config->emplace_back("kind", KindName(kind_));
  config->emplace_back("hidden_size", std::to_string(hidden_size_));
  config->emplace_back("scaler_mean", FloatString(scaler_.mean()));
  config->emplace_back("scaler_stddev", FloatString(scaler_.stddev()));
  return Status::OK();
}

Status RecurrentForecaster::DecodeConfig(
    const std::map<std::string, std::string>& config) {
  auto kind = config.find("kind");
  if (kind == config.end()) {
    return Status::ParseError("checkpoint config missing key kind");
  }
  // The cell kind is structural: loading e.g. an LSTM checkpoint into a GRU
  // forecaster is an error even though the model line may agree (EVL).
  if (kind->second != KindName(kind_)) {
    return Status::InvalidArgument("checkpoint cell kind " + kind->second +
                                   " does not match this forecaster's " +
                                   KindName(kind_));
  }
  int64_t hidden = 0;
  EALGAP_RETURN_IF_ERROR(
      ConfigInt(config, "hidden_size", 1, 1 << 16, &hidden));
  float mean = 0.f, stddev = 1.f;
  EALGAP_RETURN_IF_ERROR(ConfigFloat(config, "scaler_mean", &mean));
  EALGAP_RETURN_IF_ERROR(ConfigFloat(config, "scaler_stddev", &stddev));
  if (!(stddev > 0.f) || !std::isfinite(stddev) || !std::isfinite(mean)) {
    return Status::InvalidArgument("checkpoint scaler state is not finite");
  }
  hidden_size_ = hidden;
  scaler_.Restore(mean, stddev);
  Rng rng(0);
  net_ = std::make_unique<Net>(kind_, hidden_size_, rng);
  return Status::OK();
}

}  // namespace ealgap
