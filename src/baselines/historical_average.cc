#include "baselines/historical_average.h"

namespace ealgap {

Status HistoricalAverageForecaster::Fit(
    const data::SlidingWindowDataset& dataset, const data::StepRanges& split,
    const TrainConfig& config) {
  (void)dataset;
  (void)split;
  (void)config;
  return Status::OK();
}

Result<std::vector<double>> HistoricalAverageForecaster::Predict(
    const data::SlidingWindowDataset& dataset, int64_t target_step) {
  const auto& series = dataset.series();
  if (target_step < 0 || target_step >= series.total_steps()) {
    return Status::OutOfRange("target step out of range");
  }
  const int64_t day = series.steps_per_day;
  const bool weekend = series.IsWeekendStep(target_step);
  std::vector<double> out(series.num_regions, 0.0);
  int found = 0;
  for (int64_t back = target_step - day; back >= 0 && found < history_;
       back -= day) {
    if (series.IsWeekendStep(back) != weekend) continue;
    for (int r = 0; r < series.num_regions; ++r) out[r] += series.At(r, back);
    ++found;
  }
  if (found > 0) {
    for (double& v : out) v /= found;
  }
  return out;
}

}  // namespace ealgap
