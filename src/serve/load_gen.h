#ifndef EALGAP_SERVE_LOAD_GEN_H_
#define EALGAP_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ealgap {
namespace serve {

/// One phase of the open-loop arrival process: `ticks` daemon ticks at a
/// mean of `predict_rate` PredictNext requests per shard per tick. Phases
/// cycle, so a {steady, burst} pair produces the periodic overload waves
/// the admission-control and shed paths are tested against.
struct LoadPhase {
  int64_t ticks = 32;
  double predict_rate = 2.0;
};

struct LoadGenConfig {
  /// Cycled in order. Empty falls back to one steady phase.
  std::vector<LoadPhase> phases;
  uint64_t seed = 17;
  int num_shards = 1;
};

/// Deterministic open-loop load generator. Arrivals are OPEN loop: the
/// process emits requests at its own seeded pace regardless of whether the
/// daemon keeps up — which is exactly what makes overload reproducible
/// (a closed-loop generator would politely slow down and never fill a
/// queue). Per-shard arrival streams come from independent forked RNGs,
/// so adding a shard never perturbs another shard's schedule, and the
/// whole schedule is a pure function of (seed, tick): two runs with the
/// same config replay bit-identical arrival sequences.
class LoadGen {
 public:
  explicit LoadGen(LoadGenConfig config);

  /// Number of PredictNext arrivals at each shard for tick `tick`.
  /// Must be called with strictly increasing ticks (the RNG streams
  /// advance one draw per shard per call); `out` is resized to
  /// num_shards.
  void ArrivalsAt(int64_t tick, std::vector<int>* out);

  /// Mean predict rate of the phase containing `tick` (cycled).
  double RateAt(int64_t tick) const;

  const LoadGenConfig& config() const { return config_; }

 private:
  LoadGenConfig config_;
  std::vector<Rng> rngs_;   // one independent stream per shard
  int64_t cycle_ticks_ = 0;  // sum of phase lengths
};

}  // namespace serve
}  // namespace ealgap

#endif  // EALGAP_SERVE_LOAD_GEN_H_
