#ifndef EALGAP_SERVE_RESILIENT_PREDICTOR_H_
#define EALGAP_SERVE_RESILIENT_PREDICTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/online_predictor.h"

namespace ealgap {
namespace serve {

/// Where a served prediction came from, strongest first. The degradation
/// chain walks down this list until a source yields finite values.
enum class FallbackLevel {
  kFullModel = 0,       ///< the neural forward pass
  kMatchedMean = 1,     ///< matched same-slot mean (time-of-day aware)
  kRecentMean = 2,      ///< mean over the live L-window (level tracking)
  kPersistence = 3,     ///< last observed counts
};
constexpr int kNumFallbackLevels = 4;
const char* FallbackLevelName(FallbackLevel level);

/// Why a step was served degraded.
enum class DegradeCause {
  kNone = 0,        ///< served by the full model
  kNonFinite = 1,   ///< model output contained NaN/Inf
  kModelError = 2,  ///< model returned a Status error
  kDeadline = 3,    ///< model answered after the deadline
  kProbation = 4,   ///< model healthy again, hysteresis not yet satisfied
};
constexpr int kNumDegradeCauses = 5;
const char* DegradeCauseName(DegradeCause cause);

/// Degradation-chain configuration.
struct ResilienceOptions {
  /// Model answers slower than this are discarded and the step degrades
  /// (cause kDeadline). <= 0 disables the deadline.
  double deadline_ms = 0.0;
  /// Hysteresis: the model must answer this many consecutive probes
  /// healthily (finite, within deadline) before it is promoted back to
  /// serving. 1 = recover on the first healthy answer.
  int recovery_successes = 3;
};

/// Queryable degradation telemetry. total_steps counts PredictNext calls;
/// degraded_steps those not served by the full model; by_cause/by_level
/// attribute each degraded step to why and to which fallback served it.
struct DegradationState {
  FallbackLevel level = FallbackLevel::kFullModel;
  DegradeCause last_cause = DegradeCause::kNone;
  int consecutive_healthy = 0;  ///< healthy probes since last failure
  int64_t total_steps = 0;
  int64_t degraded_steps = 0;
  std::array<int64_t, kNumDegradeCauses> by_cause{};
  std::array<int64_t, kNumFallbackLevels> by_level{};

  bool degraded() const { return level != FallbackLevel::kFullModel; }
};

/// One served prediction with its provenance.
struct ServedPrediction {
  std::vector<double> values;
  FallbackLevel source = FallbackLevel::kFullModel;
  DegradeCause cause = DegradeCause::kNone;  ///< kNone iff source is model
  double model_latency_ms = 0.0;  ///< time spent in the model attempt
};

/// Wraps an OnlinePredictor in a graceful-degradation chain so serving
/// survives a misbehaving model instead of propagating its failure:
///
///   full model -> matched mean -> recent mean -> persistence
///
/// Every PredictNext() attempts the model (a degraded chain keeps probing
/// so it can recover). A healthy answer — finite values, within the
/// deadline — is served directly when the chain is healthy; after a
/// failure the chain serves fallbacks until `recovery_successes`
/// consecutive healthy probes accumulate (hysteresis, so one good answer
/// amid a flapping model does not bounce the chain), then promotes back
/// to the model on the same step. Fallback sources are computed from the
/// OnlinePredictor's incremental statistics and never touch the model, so
/// they cannot fail; if one still produces a non-finite value it is
/// skipped for the next level. Persistence is always finite.
///
/// On a healthy chain with a healthy model the served values are the
/// model's own output, bit-identical to calling inner->PredictNext()
/// directly — wrapping is free until something breaks.
class ResilientPredictor {
 public:
  /// Wraps `inner` (not owned; must outlive this object).
  ResilientPredictor(OnlinePredictor* inner, ResilienceOptions options = {});

  /// Never returns a model failure: the only error cases are a null inner
  /// predictor at construction or guard-rejected geometry (empty chain).
  Result<ServedPrediction> PredictNext();

  /// PredictNext() into a caller-owned ServedPrediction: `out->values` is
  /// overwritten in place (capacity reused), so a serving loop that holds
  /// one ServedPrediction performs zero steady-state heap allocations on
  /// both the healthy and the degraded path (tests/alloc_guard_test.cc).
  /// The value-returning form wraps this.
  Status PredictNextInto(ServedPrediction* out);

  /// Stream advancement passes through to the inner predictor (with its
  /// input guards).
  Status Observe(const std::vector<double>& counts);
  Status ObserveAt(int64_t step, const std::vector<double>& counts);

  const DegradationState& degradation() const { return state_; }
  const ResilienceOptions& options() const { return options_; }
  OnlinePredictor* inner() { return inner_; }

  /// Rebinds the model-attempt deadline before a step. The serving daemon
  /// uses this to propagate each request's *remaining* budget into the
  /// chain: a request that has already burned most of its deadline in the
  /// queue gets a tighter model cap, so a late answer degrades instead of
  /// blocking the serve loop. <= 0 disables the deadline.
  void set_deadline_ms(double ms) { options_.deadline_ms = ms; }

 private:
  /// First fallback level at or below `from` whose values are all finite,
  /// written into `out` (values overwritten, capacity reused).
  void FallbackInto(FallbackLevel from, DegradeCause cause,
                    ServedPrediction* out) const;

  OnlinePredictor* inner_;  // not owned
  ResilienceOptions options_;
  DegradationState state_;
  /// Reused buffer for the per-step model attempt; swapped into the served
  /// prediction on a healthy serve so neither side reallocates.
  std::vector<double> attempt_values_;
};

}  // namespace serve
}  // namespace ealgap

#endif  // EALGAP_SERVE_RESILIENT_PREDICTOR_H_
