#ifndef EALGAP_SERVE_SHARD_H_
#define EALGAP_SERVE_SHARD_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "common/bounded_queue.h"
#include "common/result.h"
#include "data/dataset.h"
#include "serve/adaptive_predictor.h"
#include "serve/online_predictor.h"
#include "serve/resilient_predictor.h"

namespace ealgap {
namespace serve {

/// One unit of work flowing through a shard's bounded queue. Requests are
/// plain values (no heap payload) so the queue cells never allocate:
/// an Observe carries the feed step it reports and the daemon resolves
/// the actual counts from the shard's feed at service time.
enum class RequestKind : uint8_t { kObserve = 0, kPredict = 1 };

struct Request {
  RequestKind kind = RequestKind::kPredict;
  int64_t id = 0;            ///< globally unique, for attribution
  int64_t arrival_tick = 0;  ///< virtual tick the request arrived
  int64_t deadline_tick = -1;  ///< absolute tick budget; < 0 = none
  int64_t feed_step = 0;     ///< kObserve: stream step being reported
};

/// Why a request was shed instead of served. Every rejected request is
/// attributed to exactly one cause — the SLO report's conservation law
/// (served + shed == ingested) depends on it.
enum class RejectCause {
  kOverload = 0,    ///< bounded queue full: admission control shed it
  kQuarantined = 1, ///< shard is quarantined/restarting
  kExpired = 2,     ///< deadline passed while queued; answered by fallback
};
constexpr int kNumRejectCauses = 3;
const char* RejectCauseName(RejectCause cause);

/// Watchdog health of a shard, supervised by the daemon.
///  kServing     normal operation.
///  kProbation   restarted recently; must serve `probation_steps` healthy
///               model steps before it counts as recovered (hysteresis,
///               so a flapping shard cannot bounce serving<->quarantine
///               every tick).
///  kQuarantined fenced off: requests are shed, a restart is scheduled.
enum class ShardHealth { kServing = 0, kProbation = 1, kQuarantined = 2 };
const char* ShardHealthName(ShardHealth health);

/// Watchdog thresholds. All counters are step/tick-based (virtual time),
/// never wall-clock, so supervised runs replay deterministically.
struct WatchdogPolicy {
  /// Consecutive model failures (non-finite / error / deadline) before
  /// the shard is declared sick and quarantined.
  int max_consecutive_failures = 4;
  /// Consecutive degraded-served steps (any fallback source) tolerated
  /// before quarantine — catches a model that is "up" but useless.
  int max_degraded_steps = 32;
  /// Consecutive stalled ticks (queue not drained) before quarantine.
  int max_stalled_ticks = 4;
  /// Healthy full-model steps required to leave probation.
  int probation_steps = 3;
  /// Virtual ticks a quarantined shard stays down before its restart
  /// (simulated process respawn + checkpoint load time).
  int restart_ticks = 2;
};

struct ShardConfig {
  std::string name = "shard";
  size_t queue_capacity = 128;
  /// Directory for this shard's CRC'd checkpoints (model + predictor
  /// state). Empty => restarts re-seed from the original dataset instead
  /// of loading from disk (in-memory restart; still deterministic).
  std::string state_dir;
  /// Predictor-state checkpoint cadence in applied observes. The initial
  /// checkpoint is always written at creation so a restart can never find
  /// nothing.
  int checkpoint_every_steps = 16;
  WatchdogPolicy watchdog;
  /// Guard policy applied to every (re)created predictor. Daemons default
  /// to impute with a generous max_gap_steps: steps lost while a shard was
  /// quarantined come back as a gap on the first post-restart observe, and
  /// the guard must absorb it instead of rejecting the feed forever.
  GuardPolicy guard;
  ResilienceOptions resilience;
};

/// Reloads a fitted model from a checkpoint path (the daemon tool passes
/// core::LoadForecasterFromCheckpoint; serve cannot link core). When
/// absent, restarts reuse the in-memory model object — parameters never
/// change while serving, so this is behaviorally identical, it just
/// skips rehearsing the model-file load path.
using ModelReloader =
    std::function<Result<std::unique_ptr<Forecaster>>(const std::string&)>;

/// Per-shard lifetime counters, accumulated ACROSS restarts (the live
/// predictor/chain counters die with each incarnation).
struct ShardTotals {
  int64_t crashes = 0;            ///< injected daemon.shard.crash fires
  int64_t stall_ticks = 0;        ///< injected daemon.shard.stall ticks
  int64_t quarantines = 0;        ///< watchdog + crash fences
  int64_t restarts = 0;
  int64_t restarts_from_checkpoint = 0;  ///< vs cold re-seeds
  int64_t checkpoints_written = 0;
  int64_t checkpoint_failures = 0;
  int64_t observes_applied = 0;
  int64_t observes_rejected = 0;  ///< guard-rejected (attributed)
  int64_t predicts_model = 0;
  int64_t predicts_degraded = 0;
  std::array<int64_t, kNumDegradeCauses> degraded_by_cause{};
  std::array<int64_t, kNumFallbackLevels> served_by_level{};
  /// Guard repair/quarantine counters folded in from every incarnation.
  int64_t repaired_values = 0;
  int64_t gap_steps_filled = 0;
  std::vector<int64_t> quarantine_by_region;
  /// Test-time adaptation attribution folded in from every incarnation
  /// (all-zero unless the shard serves through an AdaptivePredictor).
  AdaptStats adapt;
};

/// One serving shard: a ResilientPredictor chain over an OnlinePredictor,
/// fed through a bounded MPSC queue, supervised by the daemon's watchdog,
/// and restartable from its last CRC'd checkpoint. The shard owns its
/// dataset slice — it doubles as the replay feed (the synthetic sensor)
/// and as the cold-restart seed.
///
/// Thread contract: Enqueue() is safe from any thread (that is the
/// queue's job); everything else is called by the daemon loop — either
/// from the single supervisor thread, or (ServePredictStep only) from at
/// most one pool worker at a time during the cross-shard fan-out.
class Shard {
 public:
  /// `serve_begin` is the stream step serving starts at (usually the
  /// dataset's test_begin). Writes the initial checkpoint when state_dir
  /// is set. The dataset must outlive nothing — it is moved in.
  static Result<std::unique_ptr<Shard>> Create(
      data::SlidingWindowDataset dataset, std::unique_ptr<Forecaster> model,
      int64_t serve_begin, ShardConfig config,
      ModelReloader reloader = nullptr);

  const std::string& name() const { return config_.name; }
  const ShardConfig& config() const { return config_; }
  ShardHealth health() const { return health_; }
  int64_t restart_at_tick() const { return restart_at_tick_; }
  BoundedQueue<Request>& queue() { return *queue_; }

  // --- feed (the synthetic sensor stream) ----------------------------------
  /// Returns the next stream step the feed reports, advancing the cursor.
  /// The feed advances regardless of shard health: a quarantined shard's
  /// sensor keeps measuring, which is what creates the post-restart gap.
  int64_t TakeFeedStep() { return next_feed_step_++; }
  /// Counts for stream step `step`, cycled over the dataset's serve range
  /// (long soaks outlive the recorded series). Returns a reference to
  /// member scratch.
  const std::vector<double>& FeedCounts(int64_t step);

  // --- serving -------------------------------------------------------------
  /// Applies one Observe through the guard chain. A guard rejection is
  /// counted (observes_rejected) and reported OK here: the feed is
  /// advancing, the rejection is attributed, the loop must not stop.
  void ApplyObserve(const Request& request);

  /// One coalesced model step: every pending Predict popped this tick is
  /// answered from this single forward pass. `deadline_ms` is the
  /// propagated remaining budget (<= 0 disables). The result lands in
  /// last_served(). Returns false only on an internal chain error (the
  /// daemon then quarantines the shard).
  bool ServePredictStep(double deadline_ms);
  const ServedPrediction& last_served() const { return last_served_; }

  /// Fallback-only answer for requests whose deadline already expired at
  /// dequeue: matched-mean (never touches the model, never blocks).
  const std::vector<double>& ExpiredFallback();

  // --- watchdog (driven by the daemon, single-threaded) --------------------
  /// Folds the last served step into the health counters. Returns true
  /// when the watchdog verdict is "quarantine this shard now".
  bool NoteServedStep();
  /// Counts a stalled tick; true when the stall streak trips the watchdog.
  bool NoteStalledTick();
  void NoteDrainedTick() { stalled_streak_ = 0; }

  /// Fences the shard and schedules its restart. Folds the dying
  /// incarnation's counters into totals.
  void BeginQuarantine(int64_t now_tick, bool injected_crash);

  /// Restores the shard from its last CRC'd checkpoint (or re-seeds from
  /// the dataset when there is none / no state_dir) and enters probation.
  Status Restart();

  /// Writes the periodic predictor-state checkpoint when the cadence says
  /// so. Failures are counted, never fatal (the previous checkpoint
  /// survives — that is WriteFileAtomic's contract). When the shard serves
  /// through an AdaptivePredictor, committed adaptations also re-save the
  /// model checkpoint (so a quarantine-restart resumes the adapted
  /// weights) and the adapt state rides along on the same cadence.
  void MaybeCheckpoint();

  /// Runs at most one deferred adaptation attempt (no-op unless the model
  /// is an AdaptivePredictor and the shard is healthy). Called by the
  /// daemon's single-threaded supervisor phase, never during the serve
  /// fan-out.
  Result<AdaptEvent> MaybeAdapt();

  /// Lifetime totals + the live incarnation's counters folded together.
  ShardTotals Totals() const;

  ResilientPredictor* resilient() { return resilient_.get(); }
  OnlinePredictor* predictor() { return predictor_.get(); }
  /// The served model (e.g. for quantized-serving telemetry). May be
  /// replaced by a restart-from-checkpoint; do not hold across ticks.
  Forecaster* model() { return model_.get(); }
  /// Non-null when serving through a test-time-adaptation wrapper. Same
  /// lifetime caveat as model().
  AdaptivePredictor* adaptive() {
    return dynamic_cast<AdaptivePredictor*>(model_.get());
  }

 private:
  Shard() = default;

  std::string StatePath() const { return config_.state_dir + "/predictor.state"; }
  std::string ModelPath() const { return config_.state_dir + "/model.ckpt"; }
  std::string AdaptStatePath() const {
    return config_.state_dir + "/adapt.state";
  }

  /// Builds predictor+chain around `model_` from a fresh dataset seed.
  Status SeedPredictor();
  /// Folds the live incarnation's guard/degradation counters into totals_.
  void AccumulateIncarnation();

  ShardConfig config_;
  data::SlidingWindowDataset dataset_;
  std::unique_ptr<Forecaster> model_;
  ModelReloader reloader_;
  int64_t serve_begin_ = 0;

  std::unique_ptr<BoundedQueue<Request>> queue_;
  std::unique_ptr<OnlinePredictor> predictor_;
  std::unique_ptr<ResilientPredictor> resilient_;

  ShardHealth health_ = ShardHealth::kServing;
  int64_t restart_at_tick_ = -1;
  int consecutive_model_failures_ = 0;
  int degraded_streak_ = 0;
  int stalled_streak_ = 0;
  int probation_healthy_ = 0;

  int64_t next_feed_step_ = 0;
  int64_t observes_since_checkpoint_ = 0;
  /// Commits already persisted into ModelPath(); a difference at the next
  /// checkpoint cadence re-saves the model file.
  int64_t adapt_commits_checkpointed_ = 0;

  ServedPrediction last_served_;
  std::vector<double> feed_scratch_;
  std::vector<double> expired_scratch_;

  ShardTotals totals_;
};

}  // namespace serve
}  // namespace ealgap

#endif  // EALGAP_SERVE_SHARD_H_
