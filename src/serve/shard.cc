#include "serve/shard.h"

#include <filesystem>
#include <utility>

#include "baselines/neural.h"
#include "serve/quantized_forecaster.h"

namespace ealgap {
namespace serve {

namespace {

/// The checkpointable model behind a served Forecaster: the adaptive
/// wrapper checkpoints its trainee (detector state has its own file), a
/// quantized wrapper its inner float model (the packs are derived state,
/// rebuilt from the checkpoint).
NeuralForecaster* CheckpointableModel(Forecaster* model) {
  if (auto* adaptive = dynamic_cast<AdaptivePredictor*>(model)) {
    return adaptive->trainee();
  }
  if (auto* quant = dynamic_cast<QuantizedForecaster*>(model)) {
    return quant->inner();
  }
  return dynamic_cast<NeuralForecaster*>(model);
}

}  // namespace

const char* RejectCauseName(RejectCause cause) {
  switch (cause) {
    case RejectCause::kOverload: return "overload";
    case RejectCause::kQuarantined: return "quarantined";
    case RejectCause::kExpired: return "expired";
  }
  return "unknown";
}

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kServing: return "serving";
    case ShardHealth::kProbation: return "probation";
    case ShardHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

Result<std::unique_ptr<Shard>> Shard::Create(
    data::SlidingWindowDataset dataset, std::unique_ptr<Forecaster> model,
    int64_t serve_begin, ShardConfig config, ModelReloader reloader) {
  if (model == nullptr) {
    return Status::InvalidArgument("Shard needs a fitted model");
  }
  if (config.queue_capacity < 2) config.queue_capacity = 2;
  auto shard = std::unique_ptr<Shard>(new Shard());
  shard->config_ = std::move(config);
  shard->dataset_ = std::move(dataset);
  shard->model_ = std::move(model);
  shard->reloader_ = std::move(reloader);
  shard->serve_begin_ = serve_begin;
  shard->next_feed_step_ = serve_begin;
  shard->queue_ =
      std::make_unique<BoundedQueue<Request>>(shard->config_.queue_capacity);
  EALGAP_RETURN_IF_ERROR(shard->SeedPredictor());

  if (!shard->config_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(shard->config_.state_dir, ec);
    if (ec) {
      return Status::IoError("cannot create shard state dir " +
                             shard->config_.state_dir + ": " + ec.message());
    }
    // The model checkpoint is written at creation; without adaptation the
    // parameters never change while serving, and with it MaybeCheckpoint
    // re-saves the file after committed adaptations. Non-neural models
    // have no checkpoint format; their restarts reuse the in-memory
    // object.
    if (auto* neural = CheckpointableModel(shard->model_.get())) {
      Status saved = neural->SaveCheckpoint(shard->ModelPath());
      if (!saved.ok()) ++shard->totals_.checkpoint_failures;
    }
    // The initial predictor-state checkpoint guarantees a restart always
    // finds SOMETHING on disk — a crash in the first cadence window must
    // not force a cold re-seed.
    Status saved = shard->predictor_->SaveState(shard->StatePath());
    if (saved.ok()) {
      ++shard->totals_.checkpoints_written;
    } else {
      ++shard->totals_.checkpoint_failures;
    }
  }
  return shard;
}

Status Shard::SeedPredictor() {
  auto predictor =
      OnlinePredictor::Create(model_.get(), dataset_, serve_begin_);
  EALGAP_RETURN_IF_ERROR(predictor.status());
  predictor_ =
      std::make_unique<OnlinePredictor>(std::move(predictor).value());
  predictor_->SetGuardPolicy(config_.guard);
  resilient_ =
      std::make_unique<ResilientPredictor>(predictor_.get(),
                                           config_.resilience);
  return Status::OK();
}

const std::vector<double>& Shard::FeedCounts(int64_t step) {
  // Long soaks outlive the recorded series: cycle the serve range. The
  // stream step keeps advancing (the calendar is synthetic anyway); only
  // the VALUES repeat.
  const int64_t total = dataset_.series().total_steps();
  const int64_t range = total - serve_begin_;
  const int64_t mapped =
      serve_begin_ + (range > 0 ? (step - serve_begin_) % range : 0);
  const std::vector<float> row = dataset_.StepCounts(mapped);
  feed_scratch_.assign(row.begin(), row.end());
  return feed_scratch_;
}

void Shard::ApplyObserve(const Request& request) {
  const std::vector<double>& counts = FeedCounts(request.feed_step);
  const Status st = resilient_->ObserveAt(request.feed_step, counts);
  if (st.ok()) {
    ++totals_.observes_applied;
    ++observes_since_checkpoint_;
  } else {
    // Guard rejection (stale step, oversized gap, ...): attributed and
    // survivable — the feed keeps flowing, the loop keeps serving.
    ++totals_.observes_rejected;
  }
}

bool Shard::ServePredictStep(double deadline_ms) {
  resilient_->set_deadline_ms(deadline_ms);
  return resilient_->PredictNextInto(&last_served_).ok();
}

const std::vector<double>& Shard::ExpiredFallback() {
  predictor_->MatchedMeanNextInto(&expired_scratch_);
  return expired_scratch_;
}

bool Shard::NoteServedStep() {
  const ServedPrediction& served = last_served_;
  const bool degraded = served.source != FallbackLevel::kFullModel;
  const bool model_failure = served.cause == DegradeCause::kNonFinite ||
                             served.cause == DegradeCause::kModelError ||
                             served.cause == DegradeCause::kDeadline;
  if (degraded) {
    ++totals_.predicts_degraded;
    ++totals_.degraded_by_cause[static_cast<int>(served.cause)];
  } else {
    ++totals_.predicts_model;
  }
  ++totals_.served_by_level[static_cast<int>(served.source)];

  consecutive_model_failures_ =
      model_failure ? consecutive_model_failures_ + 1 : 0;
  degraded_streak_ = degraded ? degraded_streak_ + 1 : 0;

  if (health_ == ShardHealth::kProbation) {
    if (model_failure) return true;  // relapse: back to quarantine
    if (!degraded && ++probation_healthy_ >= config_.watchdog.probation_steps) {
      health_ = ShardHealth::kServing;
    }
    return false;
  }
  return consecutive_model_failures_ >=
             config_.watchdog.max_consecutive_failures ||
         degraded_streak_ >= config_.watchdog.max_degraded_steps;
}

bool Shard::NoteStalledTick() {
  ++totals_.stall_ticks;
  return ++stalled_streak_ >= config_.watchdog.max_stalled_ticks;
}

void Shard::BeginQuarantine(int64_t now_tick, bool injected_crash) {
  health_ = ShardHealth::kQuarantined;
  restart_at_tick_ = now_tick + config_.watchdog.restart_ticks;
  ++totals_.quarantines;
  if (injected_crash) ++totals_.crashes;
  consecutive_model_failures_ = 0;
  degraded_streak_ = 0;
  stalled_streak_ = 0;
  probation_healthy_ = 0;
}

void Shard::AccumulateIncarnation() {
  if (auto* ap = adaptive()) totals_.adapt.Accumulate(ap->stats());
  const GuardStats& gs = predictor_->guard_stats();
  totals_.repaired_values += gs.repaired_values;
  totals_.gap_steps_filled += gs.gap_steps_filled;
  if (totals_.quarantine_by_region.size() < gs.quarantine.size()) {
    totals_.quarantine_by_region.resize(gs.quarantine.size(), 0);
  }
  for (size_t r = 0; r < gs.quarantine.size(); ++r) {
    totals_.quarantine_by_region[r] += gs.quarantine[r];
  }
}

Status Shard::Restart() {
  AccumulateIncarnation();  // the dying incarnation's guard counters

  bool restored = false;
  if (!config_.state_dir.empty()) {
    if (reloader_) {
      auto model = reloader_(ModelPath());
      if (model.ok()) model_ = std::move(model).value();
      // A failed model reload falls back to the in-memory object: the
      // parameters are identical, only the load-path rehearsal is lost.
    }
    auto state = OnlinePredictor::LoadState(StatePath(), model_.get());
    if (state.ok()) {
      predictor_ =
          std::make_unique<OnlinePredictor>(std::move(state).value());
      predictor_->SetGuardPolicy(config_.guard);
      resilient_ = std::make_unique<ResilientPredictor>(predictor_.get(),
                                                        config_.resilience);
      restored = true;
      ++totals_.restarts_from_checkpoint;
    }
  }
  if (!restored) {
    // No state dir, or the checkpoint is missing/corrupt (CRC validation
    // rejected it): cold re-seed from the original dataset. The feed gap
    // back to the live stream position is then absorbed by the guard.
    EALGAP_RETURN_IF_ERROR(SeedPredictor());
  }

  // A reloaded adaptive wrapper starts a fresh incarnation (zero stats,
  // frozen A/B arm rebaselined to the reloaded — possibly adapted —
  // weights); its drift posture resumes from the persisted adapt state.
  adapt_commits_checkpointed_ = 0;
  if (auto* ap = adaptive()) {
    if (!config_.state_dir.empty() &&
        std::filesystem::exists(AdaptStatePath())) {
      // A corrupt adapt state is survivable: the detector restarts cold,
      // exactly like a missing file. The CRC rejected it, nothing loaded.
      (void)ap->LoadState(AdaptStatePath());
    }
  }

  health_ = ShardHealth::kProbation;
  restart_at_tick_ = -1;
  probation_healthy_ = 0;
  observes_since_checkpoint_ = 0;
  ++totals_.restarts;
  return Status::OK();
}

Result<AdaptEvent> Shard::MaybeAdapt() {
  if (health_ == ShardHealth::kQuarantined) return AdaptEvent{};
  auto* ap = adaptive();
  if (ap == nullptr) return AdaptEvent{};
  return ap->MaybeAdapt();
}

void Shard::MaybeCheckpoint() {
  if (config_.state_dir.empty() || config_.checkpoint_every_steps <= 0) return;
  if (observes_since_checkpoint_ < config_.checkpoint_every_steps) return;
  observes_since_checkpoint_ = 0;  // keep the cadence even when writes fail
  const Status saved = predictor_->SaveState(StatePath());
  if (saved.ok()) {
    ++totals_.checkpoints_written;
  } else {
    ++totals_.checkpoint_failures;
  }
  if (auto* ap = adaptive()) {
    // Committed adaptations changed the weights since the last model save:
    // without this re-save a quarantine-restart would silently serve the
    // pre-adaptation parameters.
    if (ap->stats().commits != adapt_commits_checkpointed_) {
      if (auto* neural = CheckpointableModel(model_.get())) {
        const Status model_saved = neural->SaveCheckpoint(ModelPath());
        if (model_saved.ok()) {
          adapt_commits_checkpointed_ = ap->stats().commits;
          ++totals_.checkpoints_written;
        } else {
          ++totals_.checkpoint_failures;
        }
      }
    }
    const Status adapt_saved = ap->SaveState(AdaptStatePath());
    if (adapt_saved.ok()) {
      ++totals_.checkpoints_written;
    } else {
      ++totals_.checkpoint_failures;
    }
  }
}

ShardTotals Shard::Totals() const {
  ShardTotals out = totals_;
  if (auto* ap = dynamic_cast<const AdaptivePredictor*>(model_.get())) {
    out.adapt.Accumulate(ap->stats());
  }
  const GuardStats& gs = predictor_->guard_stats();
  out.repaired_values += gs.repaired_values;
  out.gap_steps_filled += gs.gap_steps_filled;
  if (out.quarantine_by_region.size() < gs.quarantine.size()) {
    out.quarantine_by_region.resize(gs.quarantine.size(), 0);
  }
  for (size_t r = 0; r < gs.quarantine.size(); ++r) {
    out.quarantine_by_region[r] += gs.quarantine[r];
  }
  return out;
}

}  // namespace serve
}  // namespace ealgap
