#ifndef EALGAP_SERVE_DAEMON_H_
#define EALGAP_SERVE_DAEMON_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/load_gen.h"
#include "serve/shard.h"

namespace ealgap {
namespace serve {

/// Daemon-level policy. Everything that decides WHAT happens is virtual
/// (ticks, counts, seeds) so runs replay bit-identically; wall-clock
/// enters only as the model-attempt latency cap — which, absent injected
/// delays, a healthy in-process model never reaches.
struct DaemonConfig {
  /// Max requests popped per shard per tick. Backlog beyond this stays
  /// queued (and may expire) — the serve loop's work per tick is bounded
  /// no matter how deep the queues run.
  int batch_max = 64;
  /// Per-request deadline budget in ticks (admission stamp). A request
  /// not served within its budget is answered from the fallback chain,
  /// never by a late model answer. <= 0 disables deadlines.
  int64_t deadline_ticks = 8;
  /// Wall-clock milliseconds one tick's budget is worth when propagating
  /// the REMAINING budget into ResilientPredictor::deadline_ms.
  double ms_per_tick = 10.0;
  /// Hard cap on any single model attempt (ms); the propagated deadline
  /// is min(cap, remaining budget). <= 0 means only the budget applies.
  double model_deadline_ms = 50.0;
};

/// The daemon's SLO accounting. Conservation law: every ingested request
/// is served, shed, expired-to-fallback, or still queued at report time —
/// Unattributed*() must be zero, and the chaos harness asserts it.
struct SloReport {
  int64_t ticks = 0;

  // Predict requests.
  int64_t predict_requests = 0;
  int64_t served_model = 0;      ///< answered by the full model
  int64_t served_degraded = 0;   ///< answered by the degradation chain
  int64_t expired_fallback = 0;  ///< deadline blown in queue; fallback answer
  int64_t shed_overload_predict = 0;
  int64_t shed_quarantine_predict = 0;
  int64_t queued_predict = 0;  ///< still in queues at report time
  std::array<int64_t, kNumDegradeCauses> degraded_by_cause{};
  std::array<int64_t, kNumFallbackLevels> served_by_level{};

  // Observe requests.
  int64_t observe_requests = 0;
  int64_t observes_applied = 0;
  int64_t observes_guard_rejected = 0;
  int64_t shed_overload_observe = 0;
  int64_t shed_quarantine_observe = 0;
  int64_t queued_observe = 0;

  /// Test-time adaptation attribution, folded from every shard across
  /// restarts (all-zero when serving without --adapt). Its own
  /// conservation law — attempts == commits + rollbacks — rides along
  /// with the request law: adapt.UnattributedAdaptations() must be zero.
  AdaptStats adapt;

  // Supervisor.
  int64_t crashes_injected = 0;
  int64_t stall_ticks_injected = 0;
  int64_t watchdog_quarantines = 0;
  int64_t restarts = 0;
  int64_t restarts_from_checkpoint = 0;
  int64_t checkpoints_written = 0;
  int64_t checkpoint_failures = 0;

  // Wall-clock telemetry (reported, never part of the replay digest).
  double mean_ms = 0.0, p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< predict answers per wall second

  int64_t UnattributedPredicts() const {
    return predict_requests -
           (served_model + served_degraded + expired_fallback +
            shed_overload_predict + shed_quarantine_predict + queued_predict);
  }
  int64_t UnattributedObserves() const {
    return observe_requests -
           (observes_applied + observes_guard_rejected +
            shed_overload_observe + shed_quarantine_observe + queued_observe);
  }
  int64_t DegradedCauseMismatch() const {
    int64_t by_cause = 0;
    for (int64_t c : degraded_by_cause) by_cause += c;
    return served_degraded - by_cause;
  }
};

/// Overload-safe sharded serving daemon (DESIGN.md §8f).
///
/// Owns many Shards and advances them in discrete virtual-time ticks:
///
///   supervisor: due restarts run; daemon.shard.crash / daemon.shard.stall
///               fault sites fire (per shard, in index order — replayable);
///   ingest:     one feed Observe per shard plus the load generator's
///               Predict arrivals are admitted through each shard's
///               bounded queue. Full queue (or daemon.queue.full) =>
///               deterministic shed, attributed kOverload; quarantined
///               shard => shed kQuarantined. Nothing ever grows unbounded.
///   drain:      up to batch_max requests pop per shard; observes apply
///               through the guards; predicts coalesce;
///   serve:      one forward pass per shard answers every coalesced
///               predict, fanned across shards on the process thread pool
///               (per-shard work is independent, so the fan-out is
///               bit-identical at any thread count). Each pass carries the
///               coalesced batch's tightest remaining deadline budget.
///               Requests already past their deadline get the matched-mean
///               fallback instead — late answers degrade, they never block;
///   watchdog:   each served step feeds the shard's health counters;
///               tripping thresholds quarantines the shard, drains its
///               queue as attributed sheds, and schedules a restart from
///               the last CRC'd checkpoint with probation hysteresis;
///   checkpoint: periodic predictor-state snapshots per cadence.
///
/// digest() is a CRC over everything the daemon decided and served —
/// values, sources, causes, sheds, restarts, in deterministic order, with
/// wall-clock telemetry excluded — so a no-fault replay with the same
/// seed is bit-identical across runs and thread counts (asserted by
/// tests/daemon_test.cc), and a fault-armed single-thread replay is too.
class Daemon {
 public:
  explicit Daemon(DaemonConfig config);

  void AddShard(std::unique_ptr<Shard> shard);
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Shard* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }

  /// One virtual tick; `predict_arrivals[s]` Predict requests arrive at
  /// shard s (usually from LoadGen::ArrivalsAt).
  void Tick(const std::vector<int>& predict_arrivals);

  /// Drives `ticks` ticks from the load generator (which must have
  /// num_shards streams) and returns the finalized SLO report.
  SloReport Run(LoadGen* gen, int64_t ticks);

  /// Running totals + queue occupancy + latency percentiles, finalized
  /// on demand (Run() returns the same thing).
  SloReport Report() const;

  /// Deterministic replay digest (see class comment).
  uint32_t digest() const { return digest_; }
  int64_t now_tick() const { return tick_; }

 private:
  void DigestAdd(uint64_t word);
  void DigestAddValues(const std::vector<double>& values);

  void Shed(int shard_index, const Request& request, RejectCause cause);
  void DrainQueueAsShed(int shard_index, RejectCause cause);
  void Quarantine(int shard_index, bool injected_crash);
  void EnqueueOrShed(int shard_index, const Request& request);

  DaemonConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  int64_t tick_ = 0;
  int64_t next_request_id_ = 0;
  uint32_t digest_ = 0;
  /// Live queue occupancy by kind, maintained at push/pop time on the
  /// supervisor thread — deliberately independent of the SLO counters so
  /// the conservation law is a cross-check, not a definition.
  int64_t inq_predict_ = 0;
  int64_t inq_observe_ = 0;

  SloReport stats_;  ///< running counters (queue/latency fields unset)
  std::vector<double> latency_ms_;
  double wall_seconds_ = 0.0;

  // Per-tick scratch, reused.
  std::vector<uint8_t> stalled_;
  std::vector<std::vector<Request>> pending_;  // popped predicts per shard
  std::vector<int> active_;                    // shards with pending work
  std::vector<double> deadline_ms_;            // propagated budget per active
  std::vector<uint8_t> serve_ok_;
  std::vector<double> serve_ms_;
  std::vector<uint8_t> has_live_;  // active shard has unexpired predicts
};

}  // namespace serve
}  // namespace ealgap

#endif  // EALGAP_SERVE_DAEMON_H_
