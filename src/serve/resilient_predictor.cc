#include "serve/resilient_predictor.h"

#include <chrono>
#include <cmath>

namespace ealgap {
namespace serve {

namespace {

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

const char* FallbackLevelName(FallbackLevel level) {
  switch (level) {
    case FallbackLevel::kFullModel: return "full-model";
    case FallbackLevel::kMatchedMean: return "matched-mean";
    case FallbackLevel::kRecentMean: return "recent-mean";
    case FallbackLevel::kPersistence: return "persistence";
  }
  return "unknown";
}

const char* DegradeCauseName(DegradeCause cause) {
  switch (cause) {
    case DegradeCause::kNone: return "none";
    case DegradeCause::kNonFinite: return "non-finite";
    case DegradeCause::kModelError: return "model-error";
    case DegradeCause::kDeadline: return "deadline";
    case DegradeCause::kProbation: return "probation";
  }
  return "unknown";
}

ResilientPredictor::ResilientPredictor(OnlinePredictor* inner,
                                       ResilienceOptions options)
    : inner_(inner), options_(options) {}

void ResilientPredictor::FallbackInto(FallbackLevel from, DegradeCause cause,
                                      ServedPrediction* out) const {
  out->cause = cause;
  if (from <= FallbackLevel::kMatchedMean) {
    inner_->MatchedMeanNextInto(&out->values);
    out->source = FallbackLevel::kMatchedMean;
    if (AllFinite(out->values)) return;
  }
  if (from <= FallbackLevel::kRecentMean) {
    inner_->RecentMeanNextInto(&out->values);
    out->source = FallbackLevel::kRecentMean;
    if (AllFinite(out->values)) return;
  }
  // Persistence re-serves values the guards already admitted (finite by
  // construction) — the chain's floor.
  inner_->LastObservedInto(&out->values);
  out->source = FallbackLevel::kPersistence;
}

Status ResilientPredictor::PredictNextInto(ServedPrediction* out) {
  if (inner_ == nullptr) {
    return Status::InvalidArgument("ResilientPredictor needs a predictor");
  }
  ++state_.total_steps;

  // Always attempt the model: when healthy it serves the step, when
  // degraded it is the recovery probe.
  const auto t0 = std::chrono::steady_clock::now();
  const Status attempt = inner_->PredictNextInto(&attempt_values_);
  const auto t1 = std::chrono::steady_clock::now();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  DegradeCause failure = DegradeCause::kNone;
  if (!attempt.ok()) {
    failure = DegradeCause::kModelError;
  } else if (!AllFinite(attempt_values_)) {
    failure = DegradeCause::kNonFinite;
  } else if (options_.deadline_ms > 0.0 && latency_ms > options_.deadline_ms) {
    failure = DegradeCause::kDeadline;
  }

  if (failure != DegradeCause::kNone) {
    // Unhealthy answer: (re)enter degraded serving and reset hysteresis.
    state_.consecutive_healthy = 0;
    FallbackInto(FallbackLevel::kMatchedMean, failure, out);
  } else if (!state_.degraded()) {
    // Healthy chain, healthy model: serve the model output untouched.
    // Swap, not move: both buffers stay warm, so neither side reallocates.
    std::swap(out->values, attempt_values_);
    out->source = FallbackLevel::kFullModel;
    out->cause = DegradeCause::kNone;
  } else if (++state_.consecutive_healthy >= options_.recovery_successes) {
    // Hysteresis satisfied: promote back to the model on this very step —
    // the probe answer is healthy, so it is served, not discarded.
    std::swap(out->values, attempt_values_);
    out->source = FallbackLevel::kFullModel;
    out->cause = DegradeCause::kNone;
    state_.consecutive_healthy = 0;
  } else {
    // Healthy probe, hysteresis not yet satisfied: keep serving fallback.
    FallbackInto(FallbackLevel::kMatchedMean, DegradeCause::kProbation, out);
  }
  out->model_latency_ms = latency_ms;

  state_.level = out->source;
  state_.last_cause = out->cause;
  if (out->source != FallbackLevel::kFullModel) {
    ++state_.degraded_steps;
    ++state_.by_cause[static_cast<int>(out->cause)];
    ++state_.by_level[static_cast<int>(out->source)];
  }
  return Status::OK();
}

Result<ServedPrediction> ResilientPredictor::PredictNext() {
  ServedPrediction served;
  EALGAP_RETURN_IF_ERROR(PredictNextInto(&served));
  return served;
}

Status ResilientPredictor::Observe(const std::vector<double>& counts) {
  if (inner_ == nullptr) {
    return Status::InvalidArgument("ResilientPredictor needs a predictor");
  }
  return inner_->Observe(counts);
}

Status ResilientPredictor::ObserveAt(int64_t step,
                                     const std::vector<double>& counts) {
  if (inner_ == nullptr) {
    return Status::InvalidArgument("ResilientPredictor needs a predictor");
  }
  return inner_->ObserveAt(step, counts);
}

}  // namespace serve
}  // namespace ealgap
