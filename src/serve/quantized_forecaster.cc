#include "serve/quantized_forecaster.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/fault_injection.h"
#include "nn/quant.h"

namespace ealgap {
namespace serve {

namespace {

/// Lock-free max over non-negative doubles (their bit patterns order like
/// their values).
void AtomicMax(std::atomic<uint64_t>& bits, double d) {
  uint64_t cur = bits.load(std::memory_order_relaxed);
  const uint64_t nb = std::bit_cast<uint64_t>(d);
  while (std::bit_cast<double>(cur) < d &&
         !bits.compare_exchange_weak(cur, nb, std::memory_order_relaxed)) {
  }
}

}  // namespace

QuantizedForecaster::QuantizedForecaster(NeuralForecaster* inner,
                                         QuantOptions options)
    : inner_(inner), options_(options) {}

Result<std::unique_ptr<QuantizedForecaster>> QuantizedForecaster::Create(
    NeuralForecaster* inner, QuantOptions options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("QuantizedForecaster needs a model");
  }
  EALGAP_ASSIGN_OR_RETURN(int64_t packed, inner->PackQuantized());
  if (packed == 0) {
    return Status::InvalidArgument(
        inner->name() +
        " has no quantizable Linear layers (every layer is narrower than "
        "nn::quant::kQuantMinDim on some side)");
  }
  return std::unique_ptr<QuantizedForecaster>(
      new QuantizedForecaster(inner, options));
}

Result<std::unique_ptr<QuantizedForecaster>> QuantizedForecaster::Create(
    std::unique_ptr<NeuralForecaster> inner, QuantOptions options) {
  EALGAP_ASSIGN_OR_RETURN(std::unique_ptr<QuantizedForecaster> wrapper,
                          Create(inner.get(), options));
  wrapper->owned_inner_ = std::move(inner);
  return wrapper;
}

std::string QuantizedForecaster::name() const { return inner_->name(); }

bool QuantizedForecaster::SupportsStreaming() const {
  return inner_->SupportsStreaming();
}

Status QuantizedForecaster::Fit(const data::SlidingWindowDataset& dataset,
                                const data::StepRanges& split,
                                const TrainConfig& config) {
  EALGAP_RETURN_IF_ERROR(inner_->Fit(dataset, split, config));
  // Weights changed: the packs must be rebuilt before the next serve.
  EALGAP_ASSIGN_OR_RETURN(int64_t packed, inner_->PackQuantized());
  (void)packed;
  return Status::OK();
}

Result<std::vector<double>> QuantizedForecaster::Predict(
    const data::SlidingWindowDataset& dataset, int64_t target_step) {
  // Routed through the sample path so offline evaluation exercises the
  // same quantized forward + drift guard the serve loop runs.
  return PredictSample(dataset.MakeSample(target_step));
}

Result<std::vector<double>> QuantizedForecaster::PredictSample(
    const data::WindowSample& sample) {
  std::vector<double> out;
  EALGAP_RETURN_IF_ERROR(PredictSampleInto(sample, &out));
  return out;
}

Status QuantizedForecaster::PredictSampleInto(const data::WindowSample& sample,
                                              std::vector<double>* out) {
  if (tripped_.load(std::memory_order_relaxed)) {
    float_steps_.fetch_add(1, std::memory_order_relaxed);
    return inner_->PredictSampleInto(sample, out);
  }
  {
    nn::quant::ScopedQuantMode quant_mode;
    EALGAP_RETURN_IF_ERROR(inner_->PredictSampleInto(sample, out));
  }
  const bool scheduled_probe =
      options_.check_every > 0 &&
      sample.target_step % options_.check_every == 0;
  const bool forced_trip =
      fault::Armed() && fault::ShouldFail("nn.quant.drift");
  if (!scheduled_probe && !forced_trip) {
    quant_steps_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // Shadow parity probe: the float forward runs too and the quantized
  // output's worst per-region relative drift is measured against it. The
  // buffer is thread-local with reused capacity, so probing keeps the
  // zero-allocation steady state.
  static thread_local std::vector<double> float_values;
  EALGAP_RETURN_IF_ERROR(inner_->PredictSampleInto(sample, &float_values));
  probes_.fetch_add(1, std::memory_order_relaxed);
  double drift = 0.0;
  const size_t n = std::min(out->size(), float_values.size());
  for (size_t i = 0; i < n; ++i) {
    const double f = float_values[i];
    const double denom = std::max(std::fabs(f), options_.abs_floor);
    const double d = std::fabs((*out)[i] - f) / denom;
    if (d > drift) drift = d;
  }
  AtomicMax(max_drift_bits_, drift);

  if (forced_trip || drift > options_.drift_threshold) {
    drift_trips_.fetch_add(1, std::memory_order_relaxed);
    tripped_.store(true, std::memory_order_relaxed);
    // The tripping step itself is served from the float values, so the
    // fallback boundary is exact: quantized output never ships once drift
    // is detected.
    std::copy(float_values.begin(), float_values.begin() + n, out->begin());
    float_steps_.fetch_add(1, std::memory_order_relaxed);
  } else {
    quant_steps_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

QuantStats QuantizedForecaster::stats() const {
  QuantStats s;
  s.quant_steps = quant_steps_.load(std::memory_order_relaxed);
  s.float_steps = float_steps_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.drift_trips = drift_trips_.load(std::memory_order_relaxed);
  s.max_drift =
      std::bit_cast<double>(max_drift_bits_.load(std::memory_order_relaxed));
  s.tripped = tripped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace ealgap
