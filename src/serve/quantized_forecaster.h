#ifndef EALGAP_SERVE_QUANTIZED_FORECASTER_H_
#define EALGAP_SERVE_QUANTIZED_FORECASTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/neural.h"
#include "common/result.h"

namespace ealgap {
namespace serve {

/// Drift-guard configuration for QuantizedForecaster.
struct QuantOptions {
  /// Shadow parity probe cadence: on steps with target_step divisible by
  /// this, the float forward also runs and the per-region drift of the
  /// quantized output is measured against it. 0 disables probing (the
  /// quantized path then serves unconditionally). The probe predicate is
  /// input-determined, so replays are deterministic at any thread count.
  int64_t check_every = 64;
  /// Maximum tolerated per-region relative drift |q - f| / max(|f|,
  /// abs_floor). A probe above this trips the guard: the step is served
  /// from the float values and every later step serves float — a
  /// deterministic, sticky fallback. The default is loose on purpose:
  /// near-zero counts quantize coarsely under per-tensor activation
  /// scales (relative drift ~0.4 on real trip data is normal and does
  /// not move ER/MSLE), so the guard's job is catching genuine
  /// quantization blowups, not enforcing tight parity on tiny counts.
  double drift_threshold = 0.5;
  /// Denominator floor of the relative drift (counts near zero would
  /// otherwise turn rounding noise into huge ratios).
  double abs_floor = 1.0;
};

/// Drift-guard telemetry, attributed in the serve/daemon reports.
struct QuantStats {
  int64_t quant_steps = 0;   ///< steps served by the int8 path
  int64_t float_steps = 0;   ///< steps served float (post-trip or probes' serve)
  int64_t probes = 0;        ///< shadow parity probes run
  int64_t drift_trips = 0;   ///< probes whose drift exceeded the threshold
  double max_drift = 0.0;    ///< largest per-region relative drift probed
  bool tripped = false;      ///< guard is tripped (serving float)
};

/// Wraps a fitted NeuralForecaster so the serve path runs its forward
/// passes through the int8 quantized kernels (nn/quant.cc), guarded by a
/// shadow float-parity probe:
///
///   - healthy: every PredictSample* runs under quant mode — bit-identical
///     across SIMD backends and thread counts (int32 accumulation);
///   - probe steps (target_step % check_every == 0): the float forward
///     runs too; drift above the threshold (or an armed `nn.quant.drift`
///     fault) trips the guard;
///   - tripped: this step and all later steps serve the float model — the
///     fallback is sticky and deterministic, and the serving chain above
///     (ResilientPredictor) keeps its own independent degradation logic.
///
/// The wrapper implements Forecaster, so it slots directly under
/// OnlinePredictor/ResilientPredictor; name() delegates to the inner model
/// so serve-state files stay interchangeable between float and quantized
/// serving. Concurrent PredictSample calls are safe (stats are atomic);
/// streams sharing one wrapper share its trip state, so bit-exact replay
/// guarantees apply per single-stream predictor.
class QuantizedForecaster : public Forecaster {
 public:
  /// `inner` must be fitted (Fit or LoadCheckpoint) and outlive the
  /// wrapper; its Linears are packed here (repacking is idempotent).
  static Result<std::unique_ptr<QuantizedForecaster>> Create(
      NeuralForecaster* inner, QuantOptions options = {});

  /// Owning variant for callers that hand the model over wholesale (the
  /// daemon's shards own their models).
  static Result<std::unique_ptr<QuantizedForecaster>> Create(
      std::unique_ptr<NeuralForecaster> inner, QuantOptions options = {});

  std::string name() const override;
  bool SupportsStreaming() const override;

  /// Refits the inner model, then rebuilds the int8 packs.
  Status Fit(const data::SlidingWindowDataset& dataset,
             const data::StepRanges& split, const TrainConfig& config) override;

  Result<std::vector<double>> Predict(const data::SlidingWindowDataset& dataset,
                                      int64_t target_step) override;

  Result<std::vector<double>> PredictSample(
      const data::WindowSample& sample) override;

  /// Zero-allocation serve step (same contract as the inner forecaster's):
  /// quantized forward, shadow probe on schedule, sticky float fallback.
  Status PredictSampleInto(const data::WindowSample& sample,
                           std::vector<double>* out) override;

  /// Snapshot of the drift-guard counters.
  QuantStats stats() const;

  /// Guard state; once true every step serves float.
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

  /// Trips the guard from outside the probe path (sticky, attributed in
  /// drift_trips): AdaptivePredictor calls this when a committed adaptation
  /// invalidates the int8 packs and the repack fails — serving a stale pack
  /// is never an option, so the wrapper degrades to float.
  void TripFloatFallback() {
    if (!tripped_.exchange(true, std::memory_order_relaxed)) {
      drift_trips_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  NeuralForecaster* inner() { return inner_; }
  const QuantOptions& options() const { return options_; }

 private:
  QuantizedForecaster(NeuralForecaster* inner, QuantOptions options);

  NeuralForecaster* inner_;  // owned iff owned_inner_ holds it
  std::unique_ptr<NeuralForecaster> owned_inner_;
  QuantOptions options_;

  std::atomic<bool> tripped_{false};
  std::atomic<int64_t> quant_steps_{0};
  std::atomic<int64_t> float_steps_{0};
  std::atomic<int64_t> probes_{0};
  std::atomic<int64_t> drift_trips_{0};
  /// max drift as a CAS-max over the double's bit pattern (non-negative
  /// doubles order like their bits).
  std::atomic<uint64_t> max_drift_bits_{0};
};

}  // namespace serve
}  // namespace ealgap

#endif  // EALGAP_SERVE_QUANTIZED_FORECASTER_H_
