#ifndef EALGAP_SERVE_ADAPTIVE_PREDICTOR_H_
#define EALGAP_SERVE_ADAPTIVE_PREDICTOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/neural.h"
#include "common/result.h"
#include "serve/quantized_forecaster.h"

namespace ealgap {
namespace serve {

/// Online test-time adaptation knobs. Every trigger, cooldown, and freeze
/// decision is driven by observed-step counters and per-region residual
/// state — virtual time only — so a replay with the same stream makes the
/// same adaptation decisions at any thread count.
struct AdaptOptions {
  // --- drift detector (per-region CUSUM over matched-stat residuals) ---
  /// CUSUM allowance: per-step slack, in matched-sigma units, subtracted
  /// from |z| before accumulating. Ordinary prediction error stays below
  /// it; sustained drift does not.
  double cusum_k = 1.0;
  /// CUSUM trip threshold: an adaptation is triggered when any region's
  /// accumulated excess residual exceeds this many sigma units.
  double cusum_h = 12.0;
  /// EWMA smoothing for the per-region |z| telemetry stream.
  double ewma_alpha = 0.05;
  /// Floor of the matched-sigma denominator (near-constant regions would
  /// otherwise turn count noise into huge z-scores).
  double sigma_floor = 1.0;

  // --- micro-fine-tune window ---
  /// Ring capacity of completed (observation-backfilled) samples.
  int window = 64;
  /// Held-out validation tail: the most recent `holdout` completed samples
  /// are never trained on; they decide commit vs rollback.
  int holdout = 8;
  /// No adaptation before the ring holds this many samples (must exceed
  /// `holdout` so the train split is non-empty).
  int min_window = 24;
  /// Observed steps that must pass between adaptation attempts.
  int cooldown = 32;
  NeuralForecaster::MicroFitConfig micro;

  // --- freeze + hysteresis (mirrors the quant drift guard) ---
  /// Consecutive rolled-back attempts that trip the sticky freeze.
  int freeze_after = 3;
  /// Observed steps a freeze must age before one probe attempt is allowed;
  /// a failed probe re-arms the full cooldown, a committed probe unfreezes.
  int frozen_probe_after = 256;

  // --- shadow A/B harness ---
  /// Frozen-arm forward cadence (every Nth target step) once the adapted
  /// arm has diverged from the frozen one; 0 disables the shadow forward.
  /// Before the first commit the arms are identical and the frozen arm is
  /// scored from the adapted prediction at zero cost.
  int shadow_every = 1;
};

/// What one MaybeAdapt call did, for digest records and logs.
enum class AdaptOutcome {
  kNone = 0,       ///< no attempt (no trigger, cooldown, frozen, short ring)
  kCommitted = 1,  ///< validation improved; adapted weights are live
  kRejected = 2,   ///< validation did not improve; rolled back bit-exactly
  kNan = 3,        ///< non-finite validation loss; rolled back bit-exactly
  kError = 4,      ///< micro-fit/infra failure; rolled back bit-exactly
};

struct AdaptEvent {
  AdaptOutcome outcome = AdaptOutcome::kNone;
  bool froze = false;    ///< this attempt's failure tripped the freeze
  bool unfroze = false;  ///< this attempt was a successful frozen probe
};

/// Adaptation attribution, folded into the serve/daemon reports. The
/// conservation law mirrors the SLO report's: every attempt is a commit or
/// exactly one kind of rollback — UnattributedAdaptations() must be 0.
struct AdaptStats {
  int64_t steps = 0;      ///< model predictions served through the wrapper
  int64_t observed = 0;   ///< samples completed with a realized observation
  int64_t triggers = 0;   ///< CUSUM trips (one pending attempt each)
  int64_t attempts = 0;
  int64_t commits = 0;
  int64_t rollbacks_reject = 0;  ///< validation not improved (incl. injected)
  int64_t rollbacks_nan = 0;     ///< non-finite validation loss
  int64_t rollbacks_error = 0;   ///< micro-fit/infra failure
  int64_t freezes = 0;
  int64_t unfreezes = 0;         ///< successful probes out of a freeze
  int64_t repacks = 0;           ///< int8 packs rebuilt after a commit
  int64_t repack_failures = 0;   ///< commit whose repack failed -> float trip
  int64_t shadow_forwards = 0;   ///< frozen-arm forwards actually run
  int64_t shadow_failures = 0;   ///< frozen-arm forwards that errored (skipped)
  bool frozen = false;
  double max_cusum = 0.0;        ///< largest per-region CUSUM value seen
  double last_val_before = 0.0;  ///< holdout loss before the last attempt
  double last_val_after = 0.0;   ///< holdout loss after the last attempt

  /// Shadow A/B accumulators: paired scores of both arms on the same
  /// realized observations. `pairs` counts scored steps, `values` scored
  /// (step, region) elements.
  int64_t pairs = 0;
  int64_t values = 0;
  double truth_sum = 0.0;
  double adapted_abs_err = 0.0;
  double frozen_abs_err = 0.0;
  double adapted_log_err = 0.0;  ///< sum |log2(pred+1) - log2(truth+1)|
  double frozen_log_err = 0.0;

  int64_t Rollbacks() const {
    return rollbacks_reject + rollbacks_nan + rollbacks_error;
  }
  int64_t UnattributedAdaptations() const {
    return attempts - commits - Rollbacks();
  }
  double AdaptedEr() const {
    return adapted_abs_err / (truth_sum > 1.0 ? truth_sum : 1.0);
  }
  double FrozenEr() const {
    return frozen_abs_err / (truth_sum > 1.0 ? truth_sum : 1.0);
  }
  double AdaptedMsle() const {
    return values > 0 ? adapted_log_err / static_cast<double>(values) : 0.0;
  }
  double FrozenMsle() const {
    return values > 0 ? frozen_log_err / static_cast<double>(values) : 0.0;
  }

  /// Folds another incarnation's counters in (daemon restart accounting;
  /// max/last fields take the newer incarnation's values when it saw any
  /// activity, sticky state is OR'd).
  void Accumulate(const AdaptStats& other);
};

/// Test-time adaptation layer for the serving chain. Implements Forecaster
/// and wraps either a fitted NeuralForecaster or a QuantizedForecaster, so
/// it slots between ResilientPredictor/OnlinePredictor and the model
/// exactly like the quant wrapper (and stacks on top of it):
///
///   ResilientPredictor -> OnlinePredictor -> AdaptivePredictor
///       -> [QuantizedForecaster ->] NeuralForecaster
///
/// Serving path (PredictSampleInto): consecutive samples carry last step's
/// realized observation (`x[:, L-1]` of the next sample), so the wrapper
/// backfills its previous sample's target and matched stats, updates a
/// per-region EWMA/CUSUM drift detector on |pred - obs| / max(sigma,
/// floor), scores both A/B arms, and keeps the completed sample in a
/// bounded ring. All of it is input-determined: no clocks, no RNG.
///
/// Adaptation (MaybeAdapt) is deferred — the serving loop calls it OUTSIDE
/// the timed predict path (the daemon runs it single-threaded from the
/// supervisor phase) so a micro-fine-tune never eats a request's deadline
/// budget. An attempt snapshots the parameters (PR 5's capture path),
/// micro-fits on the ring minus a held-out tail, re-validates on the tail,
/// and commits only if the validation loss strictly improved — otherwise
/// the snapshot is restored bit-exactly. Repeated failures trip a sticky
/// freeze with probe-based hysteresis recovery. On commit over a quant
/// wrapper the int8 packs are invalidated and rebuilt (attributed); a
/// failed repack trips the quant guard's float fallback — a stale pack is
/// never served.
///
/// Fault sites: serve.adapt.delay (attempt stall), serve.adapt.error
/// (micro-fit failure), serve.adapt.nan (poisoned validation loss),
/// serve.adapt.reject (forced validation rejection).
///
/// Single-stream, like OnlinePredictor: one wrapper serves one stream, and
/// MaybeAdapt must not run concurrently with PredictSampleInto (the daemon
/// phases them; the serve tool interleaves them on one thread).
class AdaptivePredictor : public Forecaster {
 public:
  /// `serving` must be a fitted NeuralForecaster or a QuantizedForecaster
  /// over one, and must outlive the wrapper.
  static Result<std::unique_ptr<AdaptivePredictor>> Create(
      Forecaster* serving, AdaptOptions options = {});

  /// Owning variant (the daemon's shards hand their model over wholesale).
  static Result<std::unique_ptr<AdaptivePredictor>> Create(
      std::unique_ptr<Forecaster> serving, AdaptOptions options = {});

  std::string name() const override;
  bool SupportsStreaming() const override;

  Status Fit(const data::SlidingWindowDataset& dataset,
             const data::StepRanges& split, const TrainConfig& config) override;

  Result<std::vector<double>> Predict(const data::SlidingWindowDataset& dataset,
                                      int64_t target_step) override;

  Result<std::vector<double>> PredictSample(
      const data::WindowSample& sample) override;

  /// Serve step: backfill + detector update for the previous sample, then
  /// the wrapped forward (quantized when wrapped), then the shadow frozen
  /// forward on cadence. The adapt ring's clones live on the heap (not the
  /// caller's arena), so adaptation mode trades the zero-allocation serve
  /// contract for the ring — by design.
  Status PredictSampleInto(const data::WindowSample& sample,
                           std::vector<double>* out) override;

  /// Runs at most one adaptation attempt if the detector has a pending
  /// trigger and every gate (ring fill, cooldown, freeze hysteresis)
  /// passes. Returns what happened; errors only on unrecoverable snapshot
  /// restore failure (the model would otherwise be corrupted).
  Result<AdaptEvent> MaybeAdapt();

  const AdaptStats& stats() const { return stats_; }
  const AdaptOptions& options() const { return options_; }
  bool frozen() const { return frozen_; }

  /// The float model that is micro-fine-tuned (the quant wrapper's inner
  /// model when serving quantized).
  NeuralForecaster* trainee() { return trainee_; }
  /// The wrapped serving model (quant wrapper or the trainee itself).
  Forecaster* serving() { return serving_; }
  /// Non-null when serving through an int8 wrapper.
  QuantizedForecaster* quant() { return quant_; }

  /// Persists the detector + freeze state (CRC'd, atomic) so a restarted
  /// shard resumes its drift posture along with the adapted weights in the
  /// model checkpoint. The sample ring and the A/B baseline are per
  /// incarnation: a restart rebaselines the frozen arm to the reloaded
  /// (possibly adapted) weights.
  Status SaveState(const std::string& path) const;
  Status LoadState(const std::string& path);

 private:
  AdaptivePredictor(Forecaster* serving, QuantizedForecaster* quant,
                    NeuralForecaster* trainee, AdaptOptions options);

  /// Backfills `pending_` from the next step's sample, updates the
  /// detector and A/B accumulators, and pushes it into the ring.
  void CompletePending(const data::WindowSample& next);
  void EnsureDetector(int64_t num_regions);
  /// Frozen-arm forward: swap in the frozen snapshot, run the float
  /// forward (its status lands in `forward`), swap the live parameters
  /// back. The returned status covers the swaps only — a swap failure is
  /// unrecoverable, a forward failure just skips this step's A/B pair.
  Status FrozenForward(const data::WindowSample& sample,
                       std::vector<double>* out, Status* forward);
  Result<AdaptEvent> RunAttempt();

  Forecaster* serving_;            // owned iff owned_serving_ holds it
  std::unique_ptr<Forecaster> owned_serving_;
  QuantizedForecaster* quant_;     // non-null when serving quantized
  NeuralForecaster* trainee_;
  AdaptOptions options_;

  AdaptStats stats_;
  bool frozen_ = false;
  bool probing_ = false;           ///< current attempt is a frozen probe
  int failed_streak_ = 0;
  bool pending_trigger_ = false;
  int64_t observed_since_attempt_ = 0;
  int64_t observed_since_freeze_ = 0;

  std::vector<double> ewma_;   ///< per-region EWMA of |z|
  std::vector<double> cusum_;  ///< per-region CUSUM of max(0, |z| - k)

  /// Completed samples, oldest first; heap-backed clones.
  std::deque<data::WindowSample> ring_;

  /// The last served sample awaiting its observation, plus both arms'
  /// predictions for it.
  data::WindowSample pending_;
  bool have_pending_ = false;
  std::vector<double> pending_adapted_;
  std::vector<double> pending_frozen_;
  bool pending_frozen_valid_ = false;
  bool diverged_at_pending_ = false;

  /// A/B parameter snapshots: frozen_ arm = weights at wrapper creation,
  /// live = weights after the latest commit. `diverged_` flips on the
  /// first commit; until then the arms are identical and no shadow
  /// forward runs.
  std::map<std::string, Tensor> frozen_params_;
  std::map<std::string, Tensor> live_params_;
  bool diverged_ = false;

  std::vector<double> shadow_buf_;
};

}  // namespace serve
}  // namespace ealgap

#endif  // EALGAP_SERVE_ADAPTIVE_PREDICTOR_H_
