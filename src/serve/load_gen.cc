#include "serve/load_gen.h"

namespace ealgap {
namespace serve {

LoadGen::LoadGen(LoadGenConfig config) : config_(std::move(config)) {
  if (config_.phases.empty()) config_.phases.push_back(LoadPhase{});
  if (config_.num_shards < 1) config_.num_shards = 1;
  for (const LoadPhase& phase : config_.phases) {
    cycle_ticks_ += phase.ticks > 0 ? phase.ticks : 1;
  }
  // Independent per-shard streams forked off one seeded parent, so the
  // schedule for shard s is invariant to the total shard count up to s.
  Rng parent(config_.seed);
  rngs_.reserve(config_.num_shards);
  for (int s = 0; s < config_.num_shards; ++s) {
    rngs_.push_back(parent.Fork());
  }
}

double LoadGen::RateAt(int64_t tick) const {
  int64_t offset = tick % cycle_ticks_;
  for (const LoadPhase& phase : config_.phases) {
    const int64_t len = phase.ticks > 0 ? phase.ticks : 1;
    if (offset < len) return phase.predict_rate;
    offset -= len;
  }
  return config_.phases.back().predict_rate;
}

void LoadGen::ArrivalsAt(int64_t tick, std::vector<int>* out) {
  const double rate = RateAt(tick);
  out->resize(static_cast<size_t>(config_.num_shards));
  for (int s = 0; s < config_.num_shards; ++s) {
    (*out)[s] = static_cast<int>(rngs_[static_cast<size_t>(s)].Poisson(rate));
  }
}

}  // namespace serve
}  // namespace ealgap
