#include "serve/adaptive_predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/arena.h"
#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/float_bits.h"
#include "nn/serialize.h"

namespace ealgap {
namespace serve {

namespace {

constexpr const char* kAdaptStateMagic = "ealgap-adapt-state";
constexpr int kAdaptStateVersion = 1;

data::WindowSample CloneSample(const data::WindowSample& s) {
  data::WindowSample out;
  out.x = s.x.Clone();
  out.f = s.f.Clone();
  out.f_mu = s.f_mu.Clone();
  out.f_sigma = s.f_sigma.Clone();
  out.target = s.target.Clone();
  out.w_next = s.w_next.Clone();
  out.w_next_mu = s.w_next_mu.Clone();
  out.w_next_sigma = s.w_next_sigma.Clone();
  out.target_step = s.target_step;
  return out;
}

double Log2Err(double pred, double truth) {
  return std::fabs(std::log2(std::max(pred, 0.0) + 1.0) -
                   std::log2(std::max(truth, 0.0) + 1.0));
}

}  // namespace

void AdaptStats::Accumulate(const AdaptStats& other) {
  steps += other.steps;
  observed += other.observed;
  triggers += other.triggers;
  attempts += other.attempts;
  commits += other.commits;
  rollbacks_reject += other.rollbacks_reject;
  rollbacks_nan += other.rollbacks_nan;
  rollbacks_error += other.rollbacks_error;
  freezes += other.freezes;
  unfreezes += other.unfreezes;
  repacks += other.repacks;
  repack_failures += other.repack_failures;
  shadow_forwards += other.shadow_forwards;
  shadow_failures += other.shadow_failures;
  frozen = frozen || other.frozen;
  max_cusum = std::max(max_cusum, other.max_cusum);
  if (other.attempts > 0) {
    last_val_before = other.last_val_before;
    last_val_after = other.last_val_after;
  }
  pairs += other.pairs;
  values += other.values;
  truth_sum += other.truth_sum;
  adapted_abs_err += other.adapted_abs_err;
  frozen_abs_err += other.frozen_abs_err;
  adapted_log_err += other.adapted_log_err;
  frozen_log_err += other.frozen_log_err;
}

AdaptivePredictor::AdaptivePredictor(Forecaster* serving,
                                     QuantizedForecaster* quant,
                                     NeuralForecaster* trainee,
                                     AdaptOptions options)
    : serving_(serving),
      quant_(quant),
      trainee_(trainee),
      options_(options) {}

Result<std::unique_ptr<AdaptivePredictor>> AdaptivePredictor::Create(
    Forecaster* serving, AdaptOptions options) {
  if (serving == nullptr) {
    return Status::InvalidArgument("AdaptivePredictor needs a model");
  }
  auto* quant = dynamic_cast<QuantizedForecaster*>(serving);
  NeuralForecaster* trainee =
      quant != nullptr ? quant->inner()
                       : dynamic_cast<NeuralForecaster*>(serving);
  if (trainee == nullptr) {
    return Status::InvalidArgument(
        serving->name() +
        " is not a gradient-trained forecaster; AdaptivePredictor needs a "
        "NeuralForecaster (optionally behind a QuantizedForecaster)");
  }
  if (!serving->SupportsStreaming()) {
    return Status::InvalidArgument(serving->name() +
                                   " does not support streaming prediction");
  }
  if (options.holdout < 1 || options.min_window <= options.holdout ||
      options.window < options.min_window) {
    return Status::InvalidArgument(
        "AdaptOptions needs window >= min_window > holdout >= 1 (got " +
        std::to_string(options.window) + " / " +
        std::to_string(options.min_window) + " / " +
        std::to_string(options.holdout) + ")");
  }
  if (options.freeze_after < 1 || options.cooldown < 0 ||
      options.frozen_probe_after < 1) {
    return Status::InvalidArgument(
        "AdaptOptions needs freeze_after >= 1, cooldown >= 0, "
        "frozen_probe_after >= 1");
  }
  if (!(options.cusum_k >= 0.0) || !(options.cusum_h > 0.0) ||
      !(options.sigma_floor > 0.0) || !(options.ewma_alpha > 0.0) ||
      !(options.ewma_alpha <= 1.0)) {
    return Status::InvalidArgument(
        "AdaptOptions detector knobs out of range (need cusum_k >= 0, "
        "cusum_h > 0, sigma_floor > 0, ewma_alpha in (0,1])");
  }
  std::unique_ptr<AdaptivePredictor> wrapper(
      new AdaptivePredictor(serving, quant, trainee, options));
  // The frozen A/B arm is the weights at wrapper creation; capturing also
  // verifies the model is fitted.
  EALGAP_ASSIGN_OR_RETURN(wrapper->frozen_params_, trainee->CaptureParams());
  return wrapper;
}

Result<std::unique_ptr<AdaptivePredictor>> AdaptivePredictor::Create(
    std::unique_ptr<Forecaster> serving, AdaptOptions options) {
  EALGAP_ASSIGN_OR_RETURN(std::unique_ptr<AdaptivePredictor> wrapper,
                          Create(serving.get(), options));
  wrapper->owned_serving_ = std::move(serving);
  return wrapper;
}

std::string AdaptivePredictor::name() const { return serving_->name(); }

bool AdaptivePredictor::SupportsStreaming() const {
  return serving_->SupportsStreaming();
}

Status AdaptivePredictor::Fit(const data::SlidingWindowDataset& dataset,
                              const data::StepRanges& split,
                              const TrainConfig& config) {
  return serving_->Fit(dataset, split, config);
}

Result<std::vector<double>> AdaptivePredictor::Predict(
    const data::SlidingWindowDataset& dataset, int64_t target_step) {
  return PredictSample(dataset.MakeSample(target_step));
}

Result<std::vector<double>> AdaptivePredictor::PredictSample(
    const data::WindowSample& sample) {
  std::vector<double> out;
  EALGAP_RETURN_IF_ERROR(PredictSampleInto(sample, &out));
  return out;
}

void AdaptivePredictor::EnsureDetector(int64_t num_regions) {
  if (static_cast<int64_t>(cusum_.size()) == num_regions) return;
  ewma_.assign(static_cast<size_t>(num_regions), 0.0);
  cusum_.assign(static_cast<size_t>(num_regions), 0.0);
}

void AdaptivePredictor::CompletePending(const data::WindowSample& next) {
  const int64_t n = pending_.target.numel();
  const int64_t l = next.x.dim(1);
  const int64_t m = next.f_mu.dim(0);
  if (next.x.dim(0) != n || next.f_mu.dim(1) != n || l < 1 || m < 1) {
    have_pending_ = false;  // geometry changed mid-stream; drop the sample
    return;
  }
  EnsureDetector(n);
  const float* nx = next.x.data();
  const float* nmu = next.f_mu.data();
  const float* nsg = next.f_sigma.data();
  float* tgt = pending_.target.data();
  const int64_t mp = pending_.w_next.dim(0);
  float* pwn = pending_.w_next.data() + (mp - 1) * n;
  float* pwm = pending_.w_next_mu.data() + (mp - 1) * n;
  float* pws = pending_.w_next_sigma.data() + (mp - 1) * n;

  const bool score_pair =
      !pending_adapted_.empty() &&
      static_cast<int64_t>(pending_adapted_.size()) == n &&
      (!diverged_at_pending_ || pending_frozen_valid_);
  double max_c = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    // The next step's sample ends at the pending step: its last x column IS
    // the realized observation, and the last column of its final f window
    // carries the temporally-matched mu/sigma for that step.
    const double obs = static_cast<double>(nx[r * l + l - 1]);
    const double mu = static_cast<double>(nmu[((m - 1) * n + r) * l + l - 1]);
    const double sigma =
        static_cast<double>(nsg[((m - 1) * n + r) * l + l - 1]);
    (void)mu;
    tgt[r] = static_cast<float>(obs);
    pwn[r] = static_cast<float>(obs);
    pwm[r] = nmu[((m - 1) * n + r) * l + l - 1];
    pws[r] = nsg[((m - 1) * n + r) * l + l - 1];
    if (static_cast<int64_t>(pending_adapted_.size()) == n) {
      const double z = (pending_adapted_[static_cast<size_t>(r)] - obs) /
                       std::max(sigma, options_.sigma_floor);
      const double az = std::fabs(z);
      ewma_[static_cast<size_t>(r)] =
          (1.0 - options_.ewma_alpha) * ewma_[static_cast<size_t>(r)] +
          options_.ewma_alpha * az;
      cusum_[static_cast<size_t>(r)] = std::max(
          0.0, cusum_[static_cast<size_t>(r)] + az - options_.cusum_k);
      max_c = std::max(max_c, cusum_[static_cast<size_t>(r)]);
    }
    if (score_pair) {
      const double pa = pending_adapted_[static_cast<size_t>(r)];
      const double pf = diverged_at_pending_
                            ? pending_frozen_[static_cast<size_t>(r)]
                            : pa;
      stats_.truth_sum += obs;
      stats_.adapted_abs_err += std::fabs(pa - obs);
      stats_.frozen_abs_err += std::fabs(pf - obs);
      stats_.adapted_log_err += Log2Err(pa, obs);
      stats_.frozen_log_err += Log2Err(pf, obs);
    }
  }
  if (score_pair) {
    ++stats_.pairs;
    stats_.values += n;
  }
  ++stats_.observed;
  ++observed_since_attempt_;
  ++observed_since_freeze_;
  stats_.max_cusum = std::max(stats_.max_cusum, max_c);
  if (max_c > options_.cusum_h && !pending_trigger_) {
    pending_trigger_ = true;
    ++stats_.triggers;
    // Restart the accumulation so a served adaptation (or a rejection) is
    // judged on fresh evidence, not the residue that tripped it.
    std::fill(cusum_.begin(), cusum_.end(), 0.0);
  }
  ring_.push_back(std::move(pending_));
  while (static_cast<int>(ring_.size()) > options_.window) ring_.pop_front();
  have_pending_ = false;
}

Status AdaptivePredictor::FrozenForward(const data::WindowSample& sample,
                                        std::vector<double>* out,
                                        Status* forward) {
  EALGAP_RETURN_IF_ERROR(trainee_->RestoreParams(frozen_params_));
  *forward = trainee_->PredictSampleInto(sample, out);
  // The live weights must come back even when the forward failed — the
  // frozen arm serving live would corrupt every later step.
  return trainee_->RestoreParams(live_params_);
}

Status AdaptivePredictor::PredictSampleInto(const data::WindowSample& sample,
                                            std::vector<double>* out) {
  // The ring clones and bookkeeping below must survive the caller's arena
  // rewind (OnlinePredictor serves under its per-predictor arena), so all
  // wrapper-owned tensors are allocated under a heap scope.
  if (have_pending_) {
    if (sample.target_step == pending_.target_step + 1) {
      ArenaScope heap(nullptr);
      CompletePending(sample);
    } else {
      // Non-contiguous replay (stream reset); the pending sample's
      // observation never arrived.
      have_pending_ = false;
    }
  }

  Status st = serving_->PredictSampleInto(sample, out);
  if (!st.ok()) {
    // No prediction to pair with the next observation.
    pending_adapted_.clear();
    pending_frozen_valid_ = false;
    return st;
  }
  ++stats_.steps;
  pending_adapted_.assign(out->begin(), out->end());

  pending_frozen_valid_ = false;
  diverged_at_pending_ = diverged_;
  if (diverged_ && options_.shadow_every > 0 &&
      sample.target_step % options_.shadow_every == 0) {
    ++stats_.shadow_forwards;
    Status forward = Status::OK();
    EALGAP_RETURN_IF_ERROR(FrozenForward(sample, &shadow_buf_, &forward));
    if (!forward.ok()) {
      // A failed shadow forward (injected predict fault, transient) skips
      // this step's pair; the harness stays paired by dropping both arms.
      ++stats_.shadow_failures;
    } else {
      pending_frozen_ = shadow_buf_;
      pending_frozen_valid_ = true;
    }
  }

  {
    ArenaScope heap(nullptr);
    pending_ = CloneSample(sample);
  }
  have_pending_ = true;
  return Status::OK();
}

Result<AdaptEvent> AdaptivePredictor::RunAttempt() {
  AdaptEvent event;
  ++stats_.attempts;
  observed_since_attempt_ = 0;
  if (fault::Armed()) fault::MaybeDelay("serve.adapt.delay");

  // Snapshot first: every exit below other than commit restores it, so a
  // failed adaptation is bit-exactly invisible.
  using ParamMap = std::map<std::string, Tensor>;
  EALGAP_ASSIGN_OR_RETURN(ParamMap snapshot, trainee_->CaptureParams());
  std::vector<data::WindowSample> train(
      ring_.begin(), ring_.end() - options_.holdout);
  std::vector<data::WindowSample> holdout(
      ring_.end() - options_.holdout, ring_.end());

  auto rollback = [&](AdaptOutcome outcome) -> Result<AdaptEvent> {
    EALGAP_RETURN_IF_ERROR(trainee_->RestoreParams(snapshot));
    switch (outcome) {
      case AdaptOutcome::kRejected: ++stats_.rollbacks_reject; break;
      case AdaptOutcome::kNan: ++stats_.rollbacks_nan; break;
      default: ++stats_.rollbacks_error; break;
    }
    ++failed_streak_;
    if (!frozen_ && failed_streak_ >= options_.freeze_after) {
      frozen_ = true;
      stats_.frozen = true;
      ++stats_.freezes;
      event.froze = true;
    }
    // Frozen (or just-frozen): a failure re-arms the probe cooldown.
    observed_since_freeze_ = 0;
    event.outcome = outcome;
    return event;
  };

  Result<double> val_before =
      trainee_->EvaluateSamplesLoss(holdout, options_.micro.batch_size);
  if (!val_before.ok()) return rollback(AdaptOutcome::kError);
  stats_.last_val_before = *val_before;

  if (fault::Armed() && fault::ShouldFail("serve.adapt.error")) {
    return rollback(AdaptOutcome::kError);
  }
  Status fit = trainee_->MicroFit(train, options_.micro);
  if (!fit.ok()) return rollback(AdaptOutcome::kError);

  Result<double> val_after =
      trainee_->EvaluateSamplesLoss(holdout, options_.micro.batch_size);
  if (!val_after.ok()) return rollback(AdaptOutcome::kError);
  double after = *val_after;
  if (fault::Armed() && fault::ShouldFail("serve.adapt.nan")) {
    after = std::numeric_limits<double>::quiet_NaN();
  }
  stats_.last_val_after = after;
  if (!std::isfinite(after)) return rollback(AdaptOutcome::kNan);

  const bool forced_reject =
      fault::Armed() && fault::ShouldFail("serve.adapt.reject");
  if (forced_reject || !(after < *val_before)) {
    return rollback(AdaptOutcome::kRejected);
  }

  // Commit: the adapted weights are live. The frozen A/B arm keeps the
  // creation-time snapshot; the live snapshot backs the shadow swap.
  ++stats_.commits;
  failed_streak_ = 0;
  EALGAP_ASSIGN_OR_RETURN(live_params_, trainee_->CaptureParams());
  diverged_ = true;
  if (frozen_) {
    frozen_ = false;
    stats_.frozen = false;
    ++stats_.unfreezes;
    event.unfroze = true;
  }
  // Quant interplay: the packs were built from the pre-adaptation weights
  // and are now stale. Rebuild them (attributed), or degrade to float —
  // a committed adaptation never serves a stale pack.
  if (quant_ != nullptr && !quant_->tripped()) {
    Result<int64_t> packed = trainee_->PackQuantized();
    if (packed.ok()) {
      ++stats_.repacks;
    } else {
      ++stats_.repack_failures;
      quant_->TripFloatFallback();
    }
  }
  event.outcome = AdaptOutcome::kCommitted;
  return event;
}

Result<AdaptEvent> AdaptivePredictor::MaybeAdapt() {
  if (!pending_trigger_) return AdaptEvent{};
  if (static_cast<int>(ring_.size()) < options_.min_window) {
    return AdaptEvent{};
  }
  if (frozen_) {
    // Hysteresis: a frozen wrapper allows one probe attempt per aged
    // cooldown window.
    if (observed_since_freeze_ < options_.frozen_probe_after) {
      return AdaptEvent{};
    }
  } else if (stats_.attempts > 0 &&
             observed_since_attempt_ < options_.cooldown) {
    return AdaptEvent{};
  }
  pending_trigger_ = false;
  return RunAttempt();
}

Status AdaptivePredictor::SaveState(const std::string& path) const {
  std::ostringstream body;
  body << "model " << name() << "\n";
  body << "regions " << cusum_.size() << "\n";
  body << "guard " << (frozen_ ? 1 : 0) << " " << failed_streak_ << " "
       << observed_since_attempt_ << " " << observed_since_freeze_ << " "
       << (pending_trigger_ ? 1 : 0) << "\n";
  std::ostringstream line;
  line << "ewma";
  for (double v : ewma_) line << " " << DoubleBitsHex(v);
  body << line.str() << "\n";
  line.str("");
  line << "cusum";
  for (double v : cusum_) line << " " << DoubleBitsHex(v);
  body << line.str() << "\n";

  std::ostringstream out;
  out << kAdaptStateMagic << " " << kAdaptStateVersion << "\n";
  out << body.str();
  out << "crc " << Crc32Hex(Crc32(body.str())) << "\n";
  out << "end\n";
  return WriteFileAtomic(path, out.str());
}

Status AdaptivePredictor::LoadState(const std::string& path) {
  EALGAP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kAdaptStateMagic) {
    return Status::ParseError(path + " is not an adapt-state file");
  }
  if (version != kAdaptStateVersion) {
    return Status::InvalidArgument("unsupported adapt-state version " +
                                   std::to_string(version) + " in " + path);
  }
  // Everything between the magic line and the crc line is checksummed.
  const size_t body_begin = text.find('\n');
  const size_t body_end = text.find("\ncrc ");
  if (body_begin == std::string::npos || body_end == std::string::npos ||
      body_end < body_begin) {
    return Status::ParseError("missing crc line in " + path);
  }
  const std::string body =
      text.substr(body_begin + 1, body_end - body_begin);

  std::string tag, model_name;
  if (!(in >> tag >> model_name) || tag != "model") {
    return Status::ParseError("missing model line in " + path);
  }
  if (model_name != name()) {
    return Status::InvalidArgument("adapt state was captured for model " +
                                   model_name + " but this model is " +
                                   name());
  }
  int64_t regions = 0;
  if (!(in >> tag >> regions) || tag != "regions") {
    return Status::ParseError("missing regions line in " + path);
  }
  if (regions < 0 || regions > (1 << 20)) {
    return Status::ParseError("regions count " + std::to_string(regions) +
                              " out of range [0, 2^20] in " + path);
  }
  int frozen = 0, trigger = 0;
  int streak = 0;
  int64_t since_attempt = 0, since_freeze = 0;
  if (!(in >> tag >> frozen >> streak >> since_attempt >> since_freeze >>
        trigger) ||
      tag != "guard" || frozen < 0 || frozen > 1 || streak < 0 ||
      since_attempt < 0 || since_freeze < 0 || trigger < 0 || trigger > 1) {
    return Status::ParseError("bad guard line in " + path);
  }
  std::vector<double> ewma(static_cast<size_t>(regions));
  std::vector<double> cusum(static_cast<size_t>(regions));
  for (auto* vec : {&ewma, &cusum}) {
    const char* want = vec == &ewma ? "ewma" : "cusum";
    if (!(in >> tag) || tag != want) {
      return Status::ParseError(std::string("missing ") + want + " line in " +
                                path);
    }
    for (double& v : *vec) {
      std::string hex;
      if (!(in >> hex) || !ParseDoubleBitsHex(hex, &v)) {
        return Status::ParseError(std::string("bad ") + want + " value in " +
                                  path);
      }
    }
  }
  std::string crc_hex;
  uint32_t want_crc = 0;
  if (!(in >> tag >> crc_hex) || tag != "crc" ||
      !ParseCrc32Hex(crc_hex, &want_crc)) {
    return Status::ParseError("missing crc line in " + path);
  }
  if (Crc32(body) != want_crc) {
    return Status::ParseError("adapt-state checksum mismatch in " + path);
  }
  if (!(in >> tag) || tag != "end") {
    return Status::ParseError("missing end marker in " + path +
                              " (truncated file)");
  }

  frozen_ = frozen == 1;
  stats_.frozen = frozen_;
  failed_streak_ = streak;
  observed_since_attempt_ = since_attempt;
  observed_since_freeze_ = since_freeze;
  pending_trigger_ = trigger == 1;
  ewma_ = std::move(ewma);
  cusum_ = std::move(cusum);
  return Status::OK();
}

}  // namespace serve
}  // namespace ealgap
