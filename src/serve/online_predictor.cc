#include "serve/online_predictor.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ealgap {
namespace serve {

namespace {
constexpr char kStateMagic[] = "ealgap-serve-state";
constexpr int kStateVersion = 1;
}  // namespace

bool OnlinePredictor::IsWeekendStep(int64_t s) const {
  return IsWeekend(AddDays(start_date_, s / steps_per_day_));
}

int64_t OnlinePredictor::MinFirstTarget() const {
  const int64_t t_day = steps_per_day_;
  const int64_t window_floor =
      t_day * (options_.num_windows - 1) + options_.history_length;
  const int64_t norm_floor = t_day * (options_.norm_history + 2);
  return std::max(window_floor, norm_floor);
}

Result<OnlinePredictor> OnlinePredictor::Create(
    Forecaster* model, const data::SlidingWindowDataset& history,
    int64_t history_end) {
  if (model == nullptr) {
    return Status::InvalidArgument("OnlinePredictor needs a model");
  }
  if (!model->SupportsStreaming()) {
    return Status::InvalidArgument(model->name() +
                                   " does not support streaming prediction");
  }
  const auto& series = history.series();
  OnlinePredictor p;
  p.model_ = model;
  p.options_ = history.options();
  p.num_regions_ = series.num_regions;
  p.steps_per_day_ = series.steps_per_day;
  p.start_date_ = series.start_date;
  p.window_span_ = static_cast<int64_t>(p.steps_per_day_) *
                       (p.options_.num_windows - 1) +
                   p.options_.history_length;
  if (history_end < history.MinTargetStep() ||
      history_end > series.total_steps()) {
    return Status::OutOfRange(
        "history_end must lie in [MinTargetStep, total_steps]");
  }
  p.next_step_ = history_end;
  const int n = p.num_regions_;
  p.ring_x_.assign(p.window_span_ * n, 0.f);
  p.ring_mu_.assign(p.window_span_ * n, 0.f);
  p.ring_sigma_.assign(p.window_span_ * n, 0.f);
  p.slots_.assign(2 * p.steps_per_day_, {});
  p.window_sum_.assign(n, 0.0);

  for (int64_t s = 0; s < history_end; ++s) {
    std::vector<float> x_row = history.StepCounts(s);
    if (s >= history_end - p.window_span_) {
      std::vector<float> mu_row = history.StepMu(s);
      std::vector<float> sigma_row = history.StepSigma(s);
      const int64_t base = p.RingIndex(s);
      std::copy(x_row.begin(), x_row.end(), p.ring_x_.begin() + base);
      std::copy(mu_row.begin(), mu_row.end(), p.ring_mu_.begin() + base);
      std::copy(sigma_row.begin(), sigma_row.end(),
                p.ring_sigma_.begin() + base);
    }
    if (s >= history_end - p.options_.history_length) {
      for (int r = 0; r < n; ++r) p.window_sum_[r] += x_row[r];
    }
    auto& slot = p.slots_[(s % p.steps_per_day_) * 2 +
                          (p.IsWeekendStep(s) ? 1 : 0)];
    slot.push_back(std::move(x_row));
    if (static_cast<int>(slot.size()) > p.options_.norm_history) {
      slot.erase(slot.begin());
    }
  }
  return p;
}

void OnlinePredictor::MatchedStats(int64_t s, const std::vector<float>& x_row,
                                   std::vector<float>* mu_row,
                                   std::vector<float>* sigma_row) const {
  // Mirrors SlidingWindowDataset::RefreshMatchedStats: the matched set is
  // the step itself plus the newest `norm_history` same-slot observations,
  // accumulated newest-to-oldest in double precision — the identical
  // floating-point summation order is what makes streaming bit-identical
  // to the batch pipeline.
  const auto& slot =
      slots_[(s % steps_per_day_) * 2 + (IsWeekendStep(s) ? 1 : 0)];
  const int prior = std::min<int>(options_.norm_history,
                                  static_cast<int>(slot.size()));
  const double inv = 1.0 / static_cast<double>(1 + prior);
  const int n = num_regions_;
  mu_row->resize(n);
  sigma_row->resize(n);
  for (int r = 0; r < n; ++r) {
    double m = x_row[r];
    for (int k = 0; k < prior; ++k) {
      m += slot[slot.size() - 1 - k][r];
    }
    m *= inv;
    double ss = 0.0;
    {
      const double d = x_row[r] - m;
      ss += d * d;
    }
    for (int k = 0; k < prior; ++k) {
      const double d = slot[slot.size() - 1 - k][r] - m;
      ss += d * d;
    }
    (*mu_row)[r] = static_cast<float>(m);
    (*sigma_row)[r] = static_cast<float>(std::sqrt(ss * inv));
  }
}

Status OnlinePredictor::Observe(const std::vector<double>& counts) {
  const int n = num_regions_;
  if (static_cast<int>(counts.size()) != n) {
    return Status::InvalidArgument("expected one count per region");
  }
  const int64_t s = next_step_;
  std::vector<float> x_row(n);
  for (int r = 0; r < n; ++r) x_row[r] = static_cast<float>(counts[r]);

  std::vector<float> mu_row, sigma_row;
  MatchedStats(s, x_row, &mu_row, &sigma_row);

  // O(1) exponential-MLE refresh: slide the L-window sum before the ring
  // slot of step s-L is overwritten (they coincide when M == 1).
  const int64_t leaving = RingIndex(s - options_.history_length);
  for (int r = 0; r < n; ++r) {
    // Widen before subtracting: float arithmetic here would round each
    // slide and drift the sum off the exact value.
    window_sum_[r] += static_cast<double>(x_row[r]) -
                      static_cast<double>(ring_x_[leaving + r]);
  }

  const int64_t base = RingIndex(s);
  std::copy(x_row.begin(), x_row.end(), ring_x_.begin() + base);
  std::copy(mu_row.begin(), mu_row.end(), ring_mu_.begin() + base);
  std::copy(sigma_row.begin(), sigma_row.end(), ring_sigma_.begin() + base);

  auto& slot =
      slots_[(s % steps_per_day_) * 2 + (IsWeekendStep(s) ? 1 : 0)];
  slot.push_back(std::move(x_row));
  if (static_cast<int>(slot.size()) > options_.norm_history) {
    slot.erase(slot.begin());
  }
  ++next_step_;
  return Status::OK();
}

Result<std::vector<double>> OnlinePredictor::PredictNext() {
  const int64_t t = next_step_;  // target step
  const int n = num_regions_;
  const int64_t l = options_.history_length;
  const int64_t m = options_.num_windows;
  const int64_t t_day = steps_per_day_;

  // Assemble the exact WindowSample MakeSample(t) would build, reading the
  // ring buffer instead of the full series.
  data::WindowSample sample;
  sample.target_step = t;
  sample.x = Tensor::Zeros({n, l});
  sample.f = Tensor::Zeros({m, n, l});
  sample.f_mu = Tensor::Zeros({m, n, l});
  sample.f_sigma = Tensor::Zeros({m, n, l});
  sample.target = Tensor::Zeros({n});
  sample.w_next = Tensor::Zeros({m, n});
  sample.w_next_mu = Tensor::Zeros({m, n});
  sample.w_next_sigma = Tensor::Zeros({m, n});

  float* px = sample.x.data();
  for (int r = 0; r < n; ++r) {
    for (int64_t j = 0; j < l; ++j) {
      px[r * l + j] = ring_x_[RingIndex(t - l + j) + r];
    }
  }
  float* pf = sample.f.data();
  float* pfm = sample.f_mu.data();
  float* pfs = sample.f_sigma.data();
  float* pwn = sample.w_next.data();
  float* pwm = sample.w_next_mu.data();
  float* pws = sample.w_next_sigma.data();
  for (int64_t w = 0; w < m; ++w) {
    const int64_t offset = t_day * (m - 1 - w);
    const int64_t begin = t - offset - l;
    for (int r = 0; r < n; ++r) {
      for (int64_t j = 0; j < l; ++j) {
        const int64_t src = RingIndex(begin + j) + r;
        const int64_t dst = (w * n + r) * l + j;
        pf[dst] = ring_x_[src];
        pfm[dst] = ring_mu_[src];
        pfs[dst] = ring_sigma_[src];
      }
      // Step following window w. For the last window that is the target
      // itself — unobserved, and unused by the no-grad sample path; it
      // stays zero exactly as sample.target does.
      if (offset > 0) {
        const int64_t src = RingIndex(t - offset) + r;
        pwn[w * n + r] = ring_x_[src];
        pwm[w * n + r] = ring_mu_[src];
        pws[w * n + r] = ring_sigma_[src];
      }
    }
  }
  return model_->PredictSample(sample);
}

std::vector<Result<std::vector<double>>> OnlinePredictor::PredictMany(
    const std::vector<OnlinePredictor*>& predictors) {
  const int64_t k = static_cast<int64_t>(predictors.size());
  std::vector<std::optional<Result<std::vector<double>>>> scratch(k);
  // Each slot is written by exactly one index, so the result cannot depend
  // on how the pool splits the range; the model's internal kernels detect
  // the nested region and run serially per request.
  ParallelFor(0, k, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      if (predictors[i] == nullptr) {
        scratch[i].emplace(Status::InvalidArgument("null predictor"));
      } else {
        scratch[i].emplace(predictors[i]->PredictNext());
      }
    }
  });
  std::vector<Result<std::vector<double>>> out;
  out.reserve(k);
  for (auto& s : scratch) out.push_back(std::move(*s));
  return out;
}

double OnlinePredictor::ExponentialRate(int region) const {
  EALGAP_CHECK_GE(region, 0);
  EALGAP_CHECK_LT(region, num_regions_);
  const double mean = std::max(
      window_sum_[region] / static_cast<double>(options_.history_length),
      1e-12);
  return 1.0 / mean;
}

Status OnlinePredictor::SaveState(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << kStateMagic << " " << kStateVersion << "\n";
  out << "model " << model_->name() << "\n";
  out << "geometry " << num_regions_ << " " << steps_per_day_ << " "
      << options_.history_length << " " << options_.num_windows << " "
      << options_.norm_history << "\n";
  out << "start " << start_date_.year << " " << start_date_.month << " "
      << start_date_.day << "\n";
  out << "next_step " << next_step_ << "\n";
  out.precision(std::numeric_limits<float>::max_digits10);
  // Ring rows for steps [next_step - W, next_step), oldest first.
  for (int64_t s = next_step_ - window_span_; s < next_step_; ++s) {
    const int64_t base = RingIndex(s);
    out << "ring";
    for (int r = 0; r < num_regions_; ++r) out << " " << ring_x_[base + r];
    for (int r = 0; r < num_regions_; ++r) out << " " << ring_mu_[base + r];
    for (int r = 0; r < num_regions_; ++r) out << " " << ring_sigma_[base + r];
    out << "\n";
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    out << "slot " << i << " " << slots_[i].size();
    for (const auto& row : slots_[i]) {
      for (float v : row) out << " " << v;
    }
    out << "\n";
  }
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "window_sum";
  for (double v : window_sum_) out << " " << v;
  out << "\nend\n";
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<OnlinePredictor> OnlinePredictor::LoadState(const std::string& path,
                                                   Forecaster* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("OnlinePredictor needs a model");
  }
  if (!model->SupportsStreaming()) {
    return Status::InvalidArgument(model->name() +
                                   " does not support streaming prediction");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic, tag;
  int version = 0;
  if (!(in >> magic >> version) || magic != kStateMagic) {
    return Status::ParseError(path + " is not a serve-state file");
  }
  if (version != kStateVersion) {
    return Status::InvalidArgument("unsupported serve-state version " +
                                   std::to_string(version) + " in " + path);
  }
  std::string model_name;
  if (!(in >> tag >> model_name) || tag != "model") {
    return Status::ParseError("missing model line in " + path);
  }
  if (model_name != model->name()) {
    return Status::InvalidArgument("state was captured for model " +
                                   model_name + " but this model is " +
                                   model->name());
  }
  OnlinePredictor p;
  p.model_ = model;
  int64_t l = 0, m = 0, nh = 0;
  if (!(in >> tag >> p.num_regions_ >> p.steps_per_day_ >> l >> m >> nh) ||
      tag != "geometry" || p.num_regions_ < 1 || p.num_regions_ > (1 << 20) ||
      p.steps_per_day_ < 1 || p.steps_per_day_ > 1440 || l < 1 || l > 4096 ||
      m < 1 || m > 4096 || nh < 1 || nh > 4096) {
    return Status::ParseError("bad geometry line in " + path);
  }
  p.options_.history_length = static_cast<int>(l);
  p.options_.num_windows = static_cast<int>(m);
  p.options_.norm_history = static_cast<int>(nh);
  if (!(in >> tag >> p.start_date_.year >> p.start_date_.month >>
        p.start_date_.day) ||
      tag != "start" || p.start_date_.month < 1 || p.start_date_.month > 12 ||
      p.start_date_.day < 1 || p.start_date_.day > 31) {
    return Status::ParseError("bad start line in " + path);
  }
  if (!(in >> tag >> p.next_step_) || tag != "next_step") {
    return Status::ParseError("bad next_step line in " + path);
  }
  p.window_span_ = static_cast<int64_t>(p.steps_per_day_) * (m - 1) + l;
  if (p.next_step_ < p.MinFirstTarget()) {
    return Status::InvalidArgument("serve state has too little history");
  }
  const int n = p.num_regions_;
  p.ring_x_.assign(p.window_span_ * n, 0.f);
  p.ring_mu_.assign(p.window_span_ * n, 0.f);
  p.ring_sigma_.assign(p.window_span_ * n, 0.f);
  for (int64_t s = p.next_step_ - p.window_span_; s < p.next_step_; ++s) {
    if (!(in >> tag) || tag != "ring") {
      return Status::ParseError("truncated ring block in " + path);
    }
    const int64_t base = p.RingIndex(s);
    for (int r = 0; r < n; ++r) {
      if (!(in >> p.ring_x_[base + r])) {
        return Status::ParseError("truncated ring row in " + path);
      }
    }
    for (int r = 0; r < n; ++r) {
      if (!(in >> p.ring_mu_[base + r])) {
        return Status::ParseError("truncated ring row in " + path);
      }
    }
    for (int r = 0; r < n; ++r) {
      if (!(in >> p.ring_sigma_[base + r])) {
        return Status::ParseError("truncated ring row in " + path);
      }
    }
  }
  p.slots_.assign(2 * p.steps_per_day_, {});
  for (size_t i = 0; i < p.slots_.size(); ++i) {
    size_t idx = 0, count = 0;
    if (!(in >> tag >> idx >> count) || tag != "slot" || idx != i ||
        count > static_cast<size_t>(nh)) {
      return Status::ParseError("bad slot header in " + path);
    }
    p.slots_[i].assign(count, std::vector<float>(n));
    for (auto& row : p.slots_[i]) {
      for (int r = 0; r < n; ++r) {
        if (!(in >> row[r])) {
          return Status::ParseError("truncated slot row in " + path);
        }
      }
    }
  }
  if (!(in >> tag) || tag != "window_sum") {
    return Status::ParseError("missing window_sum in " + path);
  }
  p.window_sum_.assign(n, 0.0);
  for (int r = 0; r < n; ++r) {
    if (!(in >> p.window_sum_[r])) {
      return Status::ParseError("truncated window_sum in " + path);
    }
  }
  if (!(in >> tag) || tag != "end") {
    return Status::ParseError("truncated serve state (missing end marker) in " +
                              path);
  }
  return p;
}

}  // namespace serve
}  // namespace ealgap
