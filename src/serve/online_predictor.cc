#include "serve/online_predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/checksum.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace ealgap {
namespace serve {

namespace {
constexpr char kStateMagic[] = "ealgap-serve-state";
// v2: the ring/slot/window_sum body is preceded by a `body <lines> <crc>`
// header and the file is written atomically; v1 files are no longer read.
constexpr int kStateVersion = 2;
}  // namespace

Result<RepairPolicy> ParseRepairPolicy(const std::string& name) {
  if (name == "reject") return RepairPolicy::kReject;
  if (name == "hold-last") return RepairPolicy::kHoldLast;
  if (name == "impute") return RepairPolicy::kImpute;
  return Status::InvalidArgument(
      "unknown repair policy '" + name +
      "' (expected reject, hold-last, or impute)");
}

const char* RepairPolicyName(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kReject: return "reject";
    case RepairPolicy::kHoldLast: return "hold-last";
    case RepairPolicy::kImpute: return "impute";
  }
  return "unknown";
}

bool OnlinePredictor::IsWeekendStep(int64_t s) const {
  return IsWeekend(AddDays(start_date_, s / steps_per_day_));
}

int64_t OnlinePredictor::MinFirstTarget() const {
  const int64_t t_day = steps_per_day_;
  const int64_t window_floor =
      t_day * (options_.num_windows - 1) + options_.history_length;
  const int64_t norm_floor = t_day * (options_.norm_history + 2);
  return std::max(window_floor, norm_floor);
}

void OnlinePredictor::InitSlotStorage() {
  const int64_t nh = options_.norm_history;
  slot_data_.Reset(2 * static_cast<int64_t>(steps_per_day_) * nh *
                   num_regions_);
  slot_head_.assign(2 * steps_per_day_, 0);
  slot_count_.assign(2 * steps_per_day_, 0);
}

void OnlinePredictor::InitScratch() {
  const int n = num_regions_;
  scratch_x_.resize(n);
  scratch_mu_.resize(n);
  scratch_sigma_.resize(n);
  scratch_synth_.resize(n);
  slot_rows_.resize(options_.norm_history);
  arena_ = std::make_unique<Arena>();
}

void OnlinePredictor::SlotPush(int slot, const float* row) {
  const int nh = options_.norm_history;
  const int idx = (slot_head_[slot] + slot_count_[slot]) % nh;
  float* dst = slot_data_.data() +
               (static_cast<int64_t>(slot) * nh + idx) * num_regions_;
  std::copy(row, row + num_regions_, dst);
  if (slot_count_[slot] < nh) {
    ++slot_count_[slot];
  } else {
    slot_head_[slot] = (slot_head_[slot] + 1) % nh;
  }
}

Result<OnlinePredictor> OnlinePredictor::Create(
    Forecaster* model, const data::SlidingWindowDataset& history,
    int64_t history_end) {
  if (model == nullptr) {
    return Status::InvalidArgument("OnlinePredictor needs a model");
  }
  if (!model->SupportsStreaming()) {
    return Status::InvalidArgument(model->name() +
                                   " does not support streaming prediction");
  }
  const auto& series = history.series();
  OnlinePredictor p;
  p.model_ = model;
  p.options_ = history.options();
  p.num_regions_ = series.num_regions;
  p.steps_per_day_ = series.steps_per_day;
  p.start_date_ = series.start_date;
  p.window_span_ = static_cast<int64_t>(p.steps_per_day_) *
                       (p.options_.num_windows - 1) +
                   p.options_.history_length;
  if (history_end < history.MinTargetStep() ||
      history_end > series.total_steps()) {
    return Status::OutOfRange(
        "history_end must lie in [MinTargetStep, total_steps]");
  }
  p.next_step_ = history_end;
  const int n = p.num_regions_;
  p.ring_x_.Reset(p.window_span_ * n);
  p.ring_mu_.Reset(p.window_span_ * n);
  p.ring_sigma_.Reset(p.window_span_ * n);
  p.InitSlotStorage();
  p.window_sum_.assign(n, 0.0);
  p.guard_stats_.quarantine.assign(n, 0);

  for (int64_t s = 0; s < history_end; ++s) {
    std::vector<float> x_row = history.StepCounts(s);
    if (s >= history_end - p.window_span_) {
      std::vector<float> mu_row = history.StepMu(s);
      std::vector<float> sigma_row = history.StepSigma(s);
      const int64_t base = p.RingIndex(s);
      std::copy(x_row.begin(), x_row.end(), p.ring_x_.begin() + base);
      std::copy(mu_row.begin(), mu_row.end(), p.ring_mu_.begin() + base);
      std::copy(sigma_row.begin(), sigma_row.end(),
                p.ring_sigma_.begin() + base);
    }
    if (s >= history_end - p.options_.history_length) {
      for (int r = 0; r < n; ++r) p.window_sum_[r] += x_row[r];
    }
    p.SlotPush(p.SlotIndex(s), x_row.data());
  }
  p.InitScratch();
  return p;
}

void OnlinePredictor::MatchedStats(int64_t s, const std::vector<float>& x_row,
                                   std::vector<float>* mu_row,
                                   std::vector<float>* sigma_row) const {
  // Mirrors SlidingWindowDataset::RefreshMatchedStats: the matched set is
  // the step itself plus the newest `norm_history` same-slot observations,
  // accumulated newest-to-oldest in double precision — the identical
  // floating-point summation order is what makes streaming bit-identical
  // to the batch pipeline.
  const int slot = SlotIndex(s);
  const int prior = slot_count_[slot];
  const double inv = 1.0 / static_cast<double>(1 + prior);
  const int n = num_regions_;
  // Resolve the circular-window ages once: SlotRowNewest costs a modulo
  // and a 64-bit multiply, which must not run per region in this loop.
  const float** rows = slot_rows_.data();
  for (int k = 0; k < prior; ++k) rows[k] = SlotRowNewest(slot, k);
  mu_row->resize(n);
  sigma_row->resize(n);
  for (int r = 0; r < n; ++r) {
    double m = x_row[r];
    for (int k = 0; k < prior; ++k) {
      m += rows[k][r];
    }
    m *= inv;
    double ss = 0.0;
    {
      const double d = x_row[r] - m;
      ss += d * d;
    }
    for (int k = 0; k < prior; ++k) {
      const double d = rows[k][r] - m;
      ss += d * d;
    }
    (*mu_row)[r] = static_cast<float>(m);
    (*sigma_row)[r] = static_cast<float>(std::sqrt(ss * inv));
  }
}

float OnlinePredictor::HoldLastValue(int r) const {
  return ring_x_[RingIndex(next_step_ - 1) + r];
}

float OnlinePredictor::SlotMeanOrHold(int64_t s, int r) const {
  const int slot = SlotIndex(s);
  const int count = slot_count_[slot];
  if (count == 0) return HoldLastValue(r);
  // Oldest-first, matching the nested-vector implementation's slot order.
  double m = 0.0;
  for (int j = 0; j < count; ++j) m += SlotRowOldest(slot, j)[r];
  return static_cast<float>(m / static_cast<double>(count));
}

Status OnlinePredictor::GuardRow(const std::vector<double>& counts,
                                 std::vector<float>* x_row) {
  const int n = num_regions_;
  if (static_cast<int>(counts.size()) != n) {
    ++guard_stats_.rejected_observations;
    return Status::InvalidArgument(
        "expected one count per region (" + std::to_string(n) + "), got " +
        std::to_string(counts.size()));
  }
  x_row->resize(n);
  int repaired = 0;
  for (int r = 0; r < n; ++r) {
    const double v = counts[r];
    const float f = static_cast<float>(v);
    // A count is usable only if it is finite (in float too — a 1e300
    // double would overflow to inf and poison the matched statistics)
    // and non-negative.
    if (std::isfinite(v) && std::isfinite(f) && v >= 0.0) {
      (*x_row)[r] = f;
      continue;
    }
    switch (guard_policy_.on_bad_value) {
      case RepairPolicy::kReject:
        ++guard_stats_.rejected_observations;
        return Status::InvalidArgument(
            "invalid count " + std::to_string(v) + " for region " +
            std::to_string(r) + " at step " + std::to_string(next_step_));
      case RepairPolicy::kHoldLast:
        (*x_row)[r] = HoldLastValue(r);
        break;
      case RepairPolicy::kImpute:
        (*x_row)[r] = SlotMeanOrHold(next_step_, r);
        break;
    }
    ++repaired;
    ++guard_stats_.quarantine[r];
  }
  if (repaired > 0) {
    guard_stats_.repaired_values += repaired;
    ++guard_stats_.repaired_steps;
  }
  return Status::OK();
}

Status OnlinePredictor::ObserveRow(const std::vector<float>& x_row) {
  const int n = num_regions_;
  const int64_t s = next_step_;
  MatchedStats(s, x_row, &scratch_mu_, &scratch_sigma_);

  // O(1) exponential-MLE refresh: slide the L-window sum before the ring
  // slot of step s-L is overwritten (they coincide when M == 1).
  const int64_t leaving = RingIndex(s - options_.history_length);
  for (int r = 0; r < n; ++r) {
    // Widen before subtracting: float arithmetic here would round each
    // slide and drift the sum off the exact value.
    window_sum_[r] += static_cast<double>(x_row[r]) -
                      static_cast<double>(ring_x_[leaving + r]);
  }

  const int64_t base = RingIndex(s);
  std::copy(x_row.begin(), x_row.end(), ring_x_.begin() + base);
  std::copy(scratch_mu_.begin(), scratch_mu_.end(), ring_mu_.begin() + base);
  std::copy(scratch_sigma_.begin(), scratch_sigma_.end(),
            ring_sigma_.begin() + base);

  SlotPush(SlotIndex(s), x_row.data());
  ++next_step_;
  return Status::OK();
}

Status OnlinePredictor::Observe(const std::vector<double>& counts) {
  EALGAP_RETURN_IF_ERROR(GuardRow(counts, &scratch_x_));
  return ObserveRow(scratch_x_);
}

Status OnlinePredictor::ObserveAt(int64_t step,
                                  const std::vector<double>& counts) {
  if (step < next_step_) {
    ++guard_stats_.rejected_observations;
    return Status::InvalidArgument(
        "stale observation for step " + std::to_string(step) +
        " (stream is at " + std::to_string(next_step_) + ")");
  }
  if (step > next_step_) {
    const int64_t gap = step - next_step_;
    if (guard_policy_.on_gap == RepairPolicy::kReject ||
        gap > guard_policy_.max_gap_steps) {
      ++guard_stats_.rejected_observations;
      return Status::FailedPrecondition(
          "stream gap of " + std::to_string(gap) + " steps before step " +
          std::to_string(step) +
          (gap > guard_policy_.max_gap_steps ? " exceeds max_gap_steps"
                                             : " (gap policy is reject)"));
    }
    // Synthesize the missing steps so the calendar-aligned state stays
    // consistent; every synthetic row is finite by construction.
    while (next_step_ < step) {
      const int n = num_regions_;
      for (int r = 0; r < n; ++r) {
        scratch_synth_[r] = guard_policy_.on_gap == RepairPolicy::kImpute
                                ? SlotMeanOrHold(next_step_, r)
                                : HoldLastValue(r);
      }
      EALGAP_RETURN_IF_ERROR(ObserveRow(scratch_synth_));
      ++guard_stats_.gap_steps_filled;
    }
  }
  return Observe(counts);
}

Status OnlinePredictor::PredictNextInto(std::vector<double>* out) {
  // Everything the forward pass allocates — the sample tensors here, the
  // activations and graph nodes inside the model — lands on this
  // predictor's arena and is rewound when the scope dies. `sample` is
  // declared after `scope` so its arena-backed tensors are released before
  // the rewind.
  ArenaScope scope(arena_.get());

  const int64_t t = next_step_;  // target step
  const int n = num_regions_;
  const int64_t l = options_.history_length;
  const int64_t m = options_.num_windows;
  const int64_t t_day = steps_per_day_;

  // Assemble the exact WindowSample MakeSample(t) would build, reading the
  // ring buffer instead of the full series.
  data::WindowSample sample;
  sample.target_step = t;
  sample.x = Tensor::Zeros({n, l});
  sample.f = Tensor::Zeros({m, n, l});
  sample.f_mu = Tensor::Zeros({m, n, l});
  sample.f_sigma = Tensor::Zeros({m, n, l});
  sample.target = Tensor::Zeros({n});
  sample.w_next = Tensor::Zeros({m, n});
  sample.w_next_mu = Tensor::Zeros({m, n});
  sample.w_next_sigma = Tensor::Zeros({m, n});

  float* px = sample.x.data();
  for (int r = 0; r < n; ++r) {
    for (int64_t j = 0; j < l; ++j) {
      px[r * l + j] = ring_x_[RingIndex(t - l + j) + r];
    }
  }
  float* pf = sample.f.data();
  float* pfm = sample.f_mu.data();
  float* pfs = sample.f_sigma.data();
  float* pwn = sample.w_next.data();
  float* pwm = sample.w_next_mu.data();
  float* pws = sample.w_next_sigma.data();
  for (int64_t w = 0; w < m; ++w) {
    const int64_t offset = t_day * (m - 1 - w);
    const int64_t begin = t - offset - l;
    for (int r = 0; r < n; ++r) {
      for (int64_t j = 0; j < l; ++j) {
        const int64_t src = RingIndex(begin + j) + r;
        const int64_t dst = (w * n + r) * l + j;
        pf[dst] = ring_x_[src];
        pfm[dst] = ring_mu_[src];
        pfs[dst] = ring_sigma_[src];
      }
      // Step following window w. For the last window that is the target
      // itself — unobserved, and unused by the no-grad sample path; it
      // stays zero exactly as sample.target does.
      if (offset > 0) {
        const int64_t src = RingIndex(t - offset) + r;
        pwn[w * n + r] = ring_x_[src];
        pwm[w * n + r] = ring_mu_[src];
        pws[w * n + r] = ring_sigma_[src];
      }
    }
  }
  return model_->PredictSampleInto(sample, out);
}

Result<std::vector<double>> OnlinePredictor::PredictNext() {
  std::vector<double> out;
  EALGAP_RETURN_IF_ERROR(PredictNextInto(&out));
  return out;
}

void OnlinePredictor::PredictManyInto(
    const std::vector<OnlinePredictor*>& predictors,
    std::vector<Status>* statuses, std::vector<std::vector<double>>* outs) {
  const int64_t k = static_cast<int64_t>(predictors.size());
  statuses->resize(k);
  outs->resize(k);
  // Each slot is written by exactly one index, so the result cannot depend
  // on how the pool splits the range; the model's internal kernels detect
  // the nested region and run serially per request.
  ParallelFor(0, k, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      if (predictors[i] == nullptr) {
        (*statuses)[i] = Status::InvalidArgument("null predictor");
      } else {
        (*statuses)[i] = predictors[i]->PredictNextInto(&(*outs)[i]);
      }
    }
  });
}

std::vector<Result<std::vector<double>>> OnlinePredictor::PredictMany(
    const std::vector<OnlinePredictor*>& predictors) {
  std::vector<Status> statuses;
  std::vector<std::vector<double>> values;
  PredictManyInto(predictors, &statuses, &values);
  std::vector<Result<std::vector<double>>> out;
  out.reserve(predictors.size());
  for (size_t i = 0; i < predictors.size(); ++i) {
    if (statuses[i].ok()) {
      out.emplace_back(std::move(values[i]));
    } else {
      out.emplace_back(statuses[i]);
    }
  }
  return out;
}

void OnlinePredictor::MatchedMeanNextInto(std::vector<double>* out) const {
  out->resize(num_regions_);
  for (int r = 0; r < num_regions_; ++r) {
    (*out)[r] = std::max(0.0,
                         static_cast<double>(SlotMeanOrHold(next_step_, r)));
  }
}

void OnlinePredictor::RecentMeanNextInto(std::vector<double>* out) const {
  const double inv = 1.0 / static_cast<double>(options_.history_length);
  out->resize(num_regions_);
  for (int r = 0; r < num_regions_; ++r) {
    (*out)[r] = std::max(0.0, window_sum_[r] * inv);
  }
}

void OnlinePredictor::LastObservedInto(std::vector<double>* out) const {
  out->resize(num_regions_);
  for (int r = 0; r < num_regions_; ++r) {
    (*out)[r] = std::max(0.0, static_cast<double>(HoldLastValue(r)));
  }
}

std::vector<double> OnlinePredictor::MatchedMeanNext() const {
  std::vector<double> out;
  MatchedMeanNextInto(&out);
  return out;
}

std::vector<double> OnlinePredictor::RecentMeanNext() const {
  std::vector<double> out;
  RecentMeanNextInto(&out);
  return out;
}

std::vector<double> OnlinePredictor::LastObserved() const {
  std::vector<double> out;
  LastObservedInto(&out);
  return out;
}

double OnlinePredictor::ExponentialRate(int region) const {
  EALGAP_CHECK_GE(region, 0);
  EALGAP_CHECK_LT(region, num_regions_);
  const double mean = std::max(
      window_sum_[region] / static_cast<double>(options_.history_length),
      1e-12);
  return 1.0 / mean;
}

Status OnlinePredictor::SaveState(const std::string& path) const {
  std::ostringstream header;
  header << kStateMagic << " " << kStateVersion << "\n";
  header << "model " << model_->name() << "\n";
  header << "geometry " << num_regions_ << " " << steps_per_day_ << " "
         << options_.history_length << " " << options_.num_windows << " "
         << options_.norm_history << "\n";
  header << "start " << start_date_.year << " " << start_date_.month << " "
         << start_date_.day << "\n";
  header << "next_step " << next_step_ << "\n";

  // The bulk state goes into a checksummed body block: `body <lines> <crc>`
  // followed by exactly that many lines, CRC32 accumulated per line.
  std::ostringstream body;
  LineCrc crc;
  int64_t lines = 0;
  std::ostringstream line;
  auto emit = [&] {
    const std::string text = line.str();
    body << text << "\n";
    crc.Update(text);
    ++lines;
    line.str("");
  };
  line.precision(std::numeric_limits<float>::max_digits10);
  // Ring rows for steps [next_step - W, next_step), oldest first.
  for (int64_t s = next_step_ - window_span_; s < next_step_; ++s) {
    const int64_t base = RingIndex(s);
    line << "ring";
    for (int r = 0; r < num_regions_; ++r) line << " " << ring_x_[base + r];
    for (int r = 0; r < num_regions_; ++r) line << " " << ring_mu_[base + r];
    for (int r = 0; r < num_regions_; ++r) line << " " << ring_sigma_[base + r];
    emit();
  }
  // Slot rows oldest-first — the order LoadState re-inserts them in, which
  // keeps the circular window's age resolution identical after a restore.
  const int num_slots = 2 * steps_per_day_;
  for (int i = 0; i < num_slots; ++i) {
    line << "slot " << i << " " << slot_count_[i];
    for (int j = 0; j < slot_count_[i]; ++j) {
      const float* row = SlotRowOldest(i, j);
      for (int r = 0; r < num_regions_; ++r) line << " " << row[r];
    }
    emit();
  }
  line.precision(std::numeric_limits<double>::max_digits10);
  line << "window_sum";
  for (double v : window_sum_) line << " " << v;
  emit();

  std::ostringstream out;
  out << header.str();
  out << "body " << lines << " " << Crc32Hex(crc.value()) << "\n";
  out << body.str();
  out << "end\n";
  return WriteFileAtomic(path, out.str());
}

namespace {

/// Reads `tag value...` header tokens, returning ParseError with the file
/// name on mismatch — lets LoadState propagate via EALGAP_RETURN_IF_ERROR
/// instead of hand-rolled if-chains.
Status ExpectTag(std::istream& in, const std::string& want,
                 const std::string& path) {
  std::string tag;
  if (!(in >> tag) || tag != want) {
    return Status::ParseError("missing " + want + " line in " + path);
  }
  return Status::OK();
}

}  // namespace

Result<OnlinePredictor> OnlinePredictor::LoadState(const std::string& path,
                                                   Forecaster* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("OnlinePredictor needs a model");
  }
  if (!model->SupportsStreaming()) {
    return Status::InvalidArgument(model->name() +
                                   " does not support streaming prediction");
  }
  EALGAP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kStateMagic) {
    return Status::ParseError(path + " is not a serve-state file");
  }
  if (version != kStateVersion) {
    return Status::InvalidArgument(
        "unsupported serve-state version " + std::to_string(version) + " in " +
        path + " (maximum supported: " + std::to_string(kStateVersion) + ")");
  }
  EALGAP_RETURN_IF_ERROR(ExpectTag(in, "model", path));
  std::string model_name;
  if (!(in >> model_name)) {
    return Status::ParseError("missing model name in " + path);
  }
  if (model_name != model->name()) {
    return Status::InvalidArgument("state was captured for model " +
                                   model_name + " but this model is " +
                                   model->name());
  }
  OnlinePredictor p;
  p.model_ = model;
  int64_t l = 0, m = 0, nh = 0;
  EALGAP_RETURN_IF_ERROR(ExpectTag(in, "geometry", path));
  if (!(in >> p.num_regions_ >> p.steps_per_day_ >> l >> m >> nh)) {
    return Status::ParseError("bad geometry line in " + path);
  }
  // Each geometry field is validated by name: a zero or negative count from
  // a corrupt header must die here, not as an OOB index or a giant
  // allocation when the rings are sized from it.
  auto field_in_range = [&](const char* field, int64_t v, int64_t lo,
                            int64_t hi) -> Status {
    if (v < lo || v > hi) {
      return Status::ParseError(
          "geometry field " + std::string(field) + " = " + std::to_string(v) +
          " out of range [" + std::to_string(lo) + ", " + std::to_string(hi) +
          "] in " + path);
    }
    return Status::OK();
  };
  EALGAP_RETURN_IF_ERROR(
      field_in_range("num_regions", p.num_regions_, 1, 1 << 20));
  EALGAP_RETURN_IF_ERROR(
      field_in_range("steps_per_day", p.steps_per_day_, 1, 1440));
  EALGAP_RETURN_IF_ERROR(field_in_range("history_length", l, 1, 4096));
  EALGAP_RETURN_IF_ERROR(field_in_range("num_windows", m, 1, 4096));
  EALGAP_RETURN_IF_ERROR(field_in_range("norm_history", nh, 1, 4096));
  p.options_.history_length = static_cast<int>(l);
  p.options_.num_windows = static_cast<int>(m);
  p.options_.norm_history = static_cast<int>(nh);
  EALGAP_RETURN_IF_ERROR(ExpectTag(in, "start", path));
  if (!(in >> p.start_date_.year >> p.start_date_.month >>
        p.start_date_.day) ||
      p.start_date_.month < 1 || p.start_date_.month > 12 ||
      p.start_date_.day < 1 || p.start_date_.day > 31) {
    return Status::ParseError("bad start line in " + path);
  }
  EALGAP_RETURN_IF_ERROR(ExpectTag(in, "next_step", path));
  if (!(in >> p.next_step_)) {
    return Status::ParseError("bad next_step line in " + path);
  }
  p.window_span_ = static_cast<int64_t>(p.steps_per_day_) * (m - 1) + l;
  if (p.next_step_ < p.MinFirstTarget()) {
    return Status::InvalidArgument("serve state has too little history");
  }

  // Body block: verify the CRC over the exact stored lines before parsing
  // a single value — a bit flip anywhere in the bulk state is caught even
  // when it still reads as a valid number.
  EALGAP_RETURN_IF_ERROR(ExpectTag(in, "body", path));
  int64_t body_lines = 0;
  std::string crc_hex;
  uint32_t stored_crc = 0;
  if (!(in >> body_lines >> crc_hex) || body_lines < 0 ||
      !ParseCrc32Hex(crc_hex, &stored_crc)) {
    return Status::ParseError("bad body header in " + path);
  }
  const int64_t expected_lines = p.window_span_ +
                                 2 * static_cast<int64_t>(p.steps_per_day_) +
                                 1;
  if (body_lines != expected_lines) {
    return Status::ParseError("body line count " + std::to_string(body_lines) +
                              " does not match geometry in " + path);
  }
  std::string line;
  std::getline(in, line);  // finish the body header line
  std::ostringstream body_text;
  LineCrc crc;
  for (int64_t i = 0; i < body_lines; ++i) {
    if (!std::getline(in, line)) {
      return Status::ParseError("truncated body block in " + path);
    }
    crc.Update(line);
    body_text << line << "\n";
  }
  if (crc.value() != stored_crc) {
    return Status::ParseError("state body CRC mismatch in " + path +
                              ": stored " + crc_hex + ", computed " +
                              Crc32Hex(crc.value()));
  }

  std::istringstream body(body_text.str());
  const int n = p.num_regions_;
  p.ring_x_.Reset(p.window_span_ * n);
  p.ring_mu_.Reset(p.window_span_ * n);
  p.ring_sigma_.Reset(p.window_span_ * n);
  for (int64_t s = p.next_step_ - p.window_span_; s < p.next_step_; ++s) {
    EALGAP_RETURN_IF_ERROR(ExpectTag(body, "ring", path));
    const int64_t base = p.RingIndex(s);
    for (int r = 0; r < n; ++r) {
      if (!(body >> p.ring_x_[base + r])) {
        return Status::ParseError("truncated ring row in " + path);
      }
    }
    for (int r = 0; r < n; ++r) {
      if (!(body >> p.ring_mu_[base + r])) {
        return Status::ParseError("truncated ring row in " + path);
      }
    }
    for (int r = 0; r < n; ++r) {
      if (!(body >> p.ring_sigma_[base + r])) {
        return Status::ParseError("truncated ring row in " + path);
      }
    }
  }
  p.InitSlotStorage();
  const int num_slots = 2 * p.steps_per_day_;
  for (int i = 0; i < num_slots; ++i) {
    size_t idx = 0, count = 0;
    EALGAP_RETURN_IF_ERROR(ExpectTag(body, "slot", path));
    if (!(body >> idx >> count) || idx != static_cast<size_t>(i) ||
        count > static_cast<size_t>(nh)) {
      return Status::ParseError("bad slot header in " + path);
    }
    // Rows are stored oldest-first; with head at 0 the j-th row read is
    // exactly the j-th oldest, so age resolution survives the round trip.
    p.slot_count_[i] = static_cast<int>(count);
    for (size_t j = 0; j < count; ++j) {
      float* row = p.slot_data_.data() +
                   (static_cast<int64_t>(i) * nh + static_cast<int64_t>(j)) *
                       n;
      for (int r = 0; r < n; ++r) {
        if (!(body >> row[r])) {
          return Status::ParseError("truncated slot row in " + path);
        }
      }
    }
  }
  EALGAP_RETURN_IF_ERROR(ExpectTag(body, "window_sum", path));
  p.window_sum_.assign(n, 0.0);
  for (int r = 0; r < n; ++r) {
    if (!(body >> p.window_sum_[r])) {
      return Status::ParseError("truncated window_sum in " + path);
    }
  }
  EALGAP_RETURN_IF_ERROR(
      ExpectTag(in, "end", path));
  p.guard_stats_.quarantine.assign(n, 0);
  p.InitScratch();
  return p;
}

}  // namespace serve
}  // namespace ealgap
