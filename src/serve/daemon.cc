#include "serve/daemon.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"

namespace ealgap {
namespace serve {
namespace {

double WallMsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(config) {
  if (config_.batch_max < 1) config_.batch_max = 1;
}

void Daemon::AddShard(std::unique_ptr<Shard> shard) {
  shards_.push_back(std::move(shard));
  const size_t n = shards_.size();
  stalled_.resize(n, 0);
  pending_.resize(n);
}

void Daemon::DigestAdd(uint64_t word) {
  digest_ = Crc32(&word, sizeof(word), digest_);
}

void Daemon::DigestAddValues(const std::vector<double>& values) {
  for (double v : values) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    DigestAdd(bits);
  }
}

void Daemon::Shed(int shard_index, const Request& request, RejectCause cause) {
  const bool predict = request.kind == RequestKind::kPredict;
  switch (cause) {
    case RejectCause::kOverload:
      ++(predict ? stats_.shed_overload_predict : stats_.shed_overload_observe);
      break;
    case RejectCause::kQuarantined:
      ++(predict ? stats_.shed_quarantine_predict
                 : stats_.shed_quarantine_observe);
      break;
    case RejectCause::kExpired:
      // Expired predicts are not shed — they get a fallback answer — so
      // this arm only exists to keep the switch exhaustive.
      break;
  }
  // Sheds are decisions: they go into the replay digest.
  DigestAdd(0xD0000000ull | static_cast<uint64_t>(cause));
  DigestAdd(static_cast<uint64_t>(shard_index));
  DigestAdd(static_cast<uint64_t>(request.id));
}

void Daemon::DrainQueueAsShed(int shard_index, RejectCause cause) {
  Shard& sh = *shards_[static_cast<size_t>(shard_index)];
  Request req;
  while (sh.queue().TryPop(&req)) {
    --(req.kind == RequestKind::kPredict ? inq_predict_ : inq_observe_);
    Shed(shard_index, req, cause);
  }
}

void Daemon::Quarantine(int shard_index, bool injected_crash) {
  Shard& sh = *shards_[static_cast<size_t>(shard_index)];
  sh.BeginQuarantine(tick_, injected_crash);
  ++stats_.watchdog_quarantines;
  if (injected_crash) ++stats_.crashes_injected;
  // A fenced shard answers nothing: everything queued is shed, attributed.
  DrainQueueAsShed(shard_index, RejectCause::kQuarantined);
  DigestAdd(0xC0000000ull);
  DigestAdd(static_cast<uint64_t>(shard_index));
  DigestAdd(static_cast<uint64_t>(tick_));
}

void Daemon::EnqueueOrShed(int shard_index, const Request& request) {
  Shard& sh = *shards_[static_cast<size_t>(shard_index)];
  if (sh.health() == ShardHealth::kQuarantined) {
    Shed(shard_index, request, RejectCause::kQuarantined);
    return;
  }
  // daemon.queue.full simulates admission pressure without needing a
  // physically full ring — chaos runs exercise the shed path at any load.
  if (EALGAP_FAULT("daemon.queue.full") || !sh.queue().TryPush(request)) {
    Shed(shard_index, request, RejectCause::kOverload);
    return;
  }
  ++(request.kind == RequestKind::kPredict ? inq_predict_ : inq_observe_);
}

void Daemon::Tick(const std::vector<int>& predict_arrivals) {
  const int n = num_shards();

  // --- supervisor: restarts due this tick, then fault sites, in shard
  // index order from the single daemon thread (replayable) ---------------
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<size_t>(s)];
    if (sh.health() == ShardHealth::kQuarantined &&
        sh.restart_at_tick() <= tick_) {
      const int64_t from_ckpt_before = sh.Totals().restarts_from_checkpoint;
      if (sh.Restart().ok()) {
        ++stats_.restarts;
        stats_.restarts_from_checkpoint +=
            sh.Totals().restarts_from_checkpoint - from_ckpt_before;
        DigestAdd(0xBE000000ull);
        DigestAdd(static_cast<uint64_t>(s));
      } else {
        // Restart failed (it can only fail on a cold re-seed from the
        // immutable dataset, so this is near-impossible) — stay fenced,
        // retry next tick.
        sh.BeginQuarantine(tick_, /*injected_crash=*/false);
        ++stats_.watchdog_quarantines;
      }
    }
    if (sh.health() != ShardHealth::kQuarantined &&
        EALGAP_FAULT("daemon.shard.crash")) {
      Quarantine(s, /*injected_crash=*/true);
    }
    const bool stalled = sh.health() != ShardHealth::kQuarantined &&
                         EALGAP_FAULT("daemon.shard.stall");
    stalled_[static_cast<size_t>(s)] = stalled ? 1 : 0;
    if (stalled) ++stats_.stall_ticks_injected;
  }

  // --- ingest: the feed Observe first, then this tick's Predict arrivals,
  // so every Predict admitted this tick sees the same stream position ----
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<size_t>(s)];
    Request obs;
    obs.kind = RequestKind::kObserve;
    obs.id = next_request_id_++;
    obs.arrival_tick = tick_;
    obs.feed_step = sh.TakeFeedStep();
    ++stats_.observe_requests;
    EnqueueOrShed(s, obs);

    const int arrivals = s < static_cast<int>(predict_arrivals.size())
                             ? predict_arrivals[static_cast<size_t>(s)]
                             : 0;
    for (int a = 0; a < arrivals; ++a) {
      Request req;
      req.kind = RequestKind::kPredict;
      req.id = next_request_id_++;
      req.arrival_tick = tick_;
      req.deadline_tick =
          config_.deadline_ticks > 0 ? tick_ + config_.deadline_ticks : -1;
      ++stats_.predict_requests;
      EnqueueOrShed(s, req);
    }
  }

  // --- drain: pop up to batch_max per shard; observes apply inline (FIFO
  // with respect to the predicts behind them), predicts coalesce ---------
  active_.clear();
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<size_t>(s)];
    pending_[static_cast<size_t>(s)].clear();
    if (sh.health() == ShardHealth::kQuarantined) continue;
    if (stalled_[static_cast<size_t>(s)]) {
      // Stalled: the queue sits undrained this tick; arrivals kept landing
      // on it above, which is exactly how a stall turns into overload.
      if (sh.NoteStalledTick()) Quarantine(s, /*injected_crash=*/false);
      continue;
    }
    sh.NoteDrainedTick();
    Request req;
    int popped = 0;
    while (popped < config_.batch_max && sh.queue().TryPop(&req)) {
      ++popped;
      --(req.kind == RequestKind::kPredict ? inq_predict_ : inq_observe_);
      if (req.kind == RequestKind::kObserve) {
        sh.ApplyObserve(req);
        DigestAdd(0xA0000000ull);
        DigestAdd(static_cast<uint64_t>(req.feed_step));
      } else {
        pending_[static_cast<size_t>(s)].push_back(req);
      }
    }
    if (!pending_[static_cast<size_t>(s)].empty()) active_.push_back(s);
  }

  // --- serve: one coalesced forward pass per active shard, fanned across
  // the pool. Per-shard work is independent => any thread count produces
  // identical answers (same contract PredictManyInto already keeps). -----
  const size_t na = active_.size();
  deadline_ms_.assign(na, 0.0);
  serve_ok_.assign(na, 1);
  serve_ms_.assign(na, 0.0);
  has_live_.assign(na, 0);
  for (size_t i = 0; i < na; ++i) {
    const int s = active_[i];
    int64_t min_remaining = -1;
    for (const Request& req : pending_[static_cast<size_t>(s)]) {
      if (req.deadline_tick >= 0 && req.deadline_tick < tick_) continue;
      has_live_[i] = 1;
      if (req.deadline_tick >= 0) {
        const int64_t remaining = req.deadline_tick - tick_;
        if (min_remaining < 0 || remaining < min_remaining) {
          min_remaining = remaining;
        }
      }
    }
    // The batch's tightest remaining budget, min'd with the per-attempt
    // cap. The model either answers inside the budget or the chain
    // degrades with cause kDeadline — a late answer never ships.
    double budget = config_.model_deadline_ms;
    if (min_remaining >= 0) {
      const double ticks_ms =
          (static_cast<double>(min_remaining) + 1.0) * config_.ms_per_tick;
      budget = budget > 0 ? std::min(budget, ticks_ms) : ticks_ms;
    }
    deadline_ms_[i] = budget;
  }
  ParallelFor(0, static_cast<int64_t>(na), 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      const size_t k = static_cast<size_t>(i);
      if (!has_live_[k]) continue;  // only expired pending: no model step
      Shard& sh = *shards_[static_cast<size_t>(active_[k])];
      const auto t0 = std::chrono::steady_clock::now();
      serve_ok_[k] = sh.ServePredictStep(deadline_ms_[k]) ? 1 : 0;
      serve_ms_[k] = WallMsSince(t0);
    }
  });

  // --- record + watchdog: single-threaded again, shard index order ------
  for (size_t i = 0; i < na; ++i) {
    const int s = active_[i];
    Shard& sh = *shards_[static_cast<size_t>(s)];
    std::vector<Request>& reqs = pending_[static_cast<size_t>(s)];
    if (has_live_[i] && !serve_ok_[i]) {
      // The chain itself errored (not a degraded answer — an error):
      // nobody gets an answer, everything pending is shed, shard fenced.
      for (const Request& req : reqs) Shed(s, req, RejectCause::kQuarantined);
      reqs.clear();
      Quarantine(s, /*injected_crash=*/false);
      continue;
    }
    if (has_live_[i]) DigestAddValues(sh.last_served().values);
    for (const Request& req : reqs) {
      const bool expired = req.deadline_tick >= 0 && req.deadline_tick < tick_;
      if (expired) {
        // Budget blown while queued: answered from matched-mean fallback,
        // never by a (late) model pass.
        ++stats_.expired_fallback;
        DigestAdd(0xE0000000ull);
        DigestAdd(static_cast<uint64_t>(req.id));
        DigestAddValues(sh.ExpiredFallback());
        continue;
      }
      const ServedPrediction& served = sh.last_served();
      if (served.source == FallbackLevel::kFullModel) {
        ++stats_.served_model;
      } else {
        ++stats_.served_degraded;
        ++stats_.degraded_by_cause[static_cast<int>(served.cause)];
      }
      ++stats_.served_by_level[static_cast<int>(served.source)];
      latency_ms_.push_back(serve_ms_[i]);
      DigestAdd(0x5E000000ull | static_cast<uint64_t>(served.source));
      DigestAdd(static_cast<uint64_t>(served.cause));
      DigestAdd(static_cast<uint64_t>(req.id));
    }
    reqs.clear();
    // The coalesced pass is ONE served step for the watchdog no matter how
    // many requests it answered. Quarantining here (after attribution)
    // fences the shard for future ticks; this tick's answers already went
    // out, which is what a real supervisor observes too.
    if (has_live_[i] && sh.NoteServedStep()) {
      Quarantine(s, /*injected_crash=*/false);
    }
  }

  // --- adapt: deferred test-time adaptation, single-threaded in shard
  // index order from the supervisor thread. Runs OUTSIDE the timed serve
  // fan-out, so a micro-fine-tune never eats a request's deadline budget;
  // every decision is driven by observed-step counters (virtual time), so
  // replays make identical adaptation decisions at any thread count. A
  // shard without an AdaptivePredictor no-ops and adds nothing to the
  // digest — adaptation off leaves the replay digest bit-identical. ------
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<size_t>(s)];
    if (sh.health() == ShardHealth::kQuarantined) continue;
    Result<AdaptEvent> event = sh.MaybeAdapt();
    if (!event.ok()) {
      // Only an unrecoverable snapshot-restore failure lands here: the
      // shard's parameters can no longer be trusted — fence it and let the
      // restart path reload the last good checkpoint.
      Quarantine(s, /*injected_crash=*/false);
      continue;
    }
    if (event->outcome != AdaptOutcome::kNone) {
      DigestAdd(0xAD000000ull |
                (static_cast<uint64_t>(event->outcome) << 8) |
                (event->froze ? 2ull : 0ull) | (event->unfroze ? 1ull : 0ull));
      DigestAdd(static_cast<uint64_t>(s));
      DigestAdd(static_cast<uint64_t>(tick_));
    }
  }

  // --- checkpoint cadence ----------------------------------------------
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<size_t>(s)];
    if (sh.health() == ShardHealth::kQuarantined) continue;
    sh.MaybeCheckpoint();
  }

  ++tick_;
  ++stats_.ticks;
}

SloReport Daemon::Run(LoadGen* gen, int64_t ticks) {
  std::vector<int> arrivals;
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t t = 0; t < ticks; ++t) {
    gen->ArrivalsAt(tick_, &arrivals);
    Tick(arrivals);
  }
  wall_seconds_ += WallMsSince(t0) / 1000.0;
  return Report();
}

SloReport Daemon::Report() const {
  SloReport out = stats_;

  // Observe application/rejection and checkpoint outcomes live with the
  // shards (they survive restarts there); fold them in.
  out.observes_applied = 0;
  out.observes_guard_rejected = 0;
  out.checkpoints_written = 0;
  out.checkpoint_failures = 0;
  for (const auto& shard : shards_) {
    const ShardTotals t = shard->Totals();
    out.observes_applied += t.observes_applied;
    out.observes_guard_rejected += t.observes_rejected;
    out.checkpoints_written += t.checkpoints_written;
    out.checkpoint_failures += t.checkpoint_failures;
    out.adapt.Accumulate(t.adapt);
  }

  // Queue occupancy is tracked independently (counted at push/pop on the
  // supervisor thread), NOT derived from the conservation identity — so
  // Unattributed*() is a real invariant check, not a tautology.
  out.queued_predict = inq_predict_;
  out.queued_observe = inq_observe_;

  std::vector<double> sorted = latency_ms_;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  out.mean_ms = sorted.empty() ? 0.0 : sum / static_cast<double>(sorted.size());
  out.p50_ms = Percentile(sorted, 0.50);
  out.p95_ms = Percentile(sorted, 0.95);
  out.p99_ms = Percentile(sorted, 0.99);
  out.wall_seconds = wall_seconds_;
  const double answered = static_cast<double>(
      out.served_model + out.served_degraded + out.expired_fallback);
  out.throughput_rps = wall_seconds_ > 0 ? answered / wall_seconds_ : 0.0;
  return out;
}

}  // namespace serve
}  // namespace ealgap
