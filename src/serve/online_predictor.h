#ifndef EALGAP_SERVE_ONLINE_PREDICTOR_H_
#define EALGAP_SERVE_ONLINE_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "common/aligned_alloc.h"
#include "common/arena.h"
#include "common/result.h"
#include "common/time_util.h"
#include "data/dataset.h"

namespace ealgap {
namespace serve {

/// How an input guard repairs invalid observed values or stream gaps.
///  * kReject:   refuse the observation with a Status error; state unchanged.
///  * kHoldLast: substitute the region's most recent accepted value.
///  * kImpute:   substitute the matched same-slot mean — the average of the
///               `norm_history` most recent observations at the same
///               (time-of-day, day-type) slot, the mu accumulator Observe()
///               already maintains. Falls back to hold-last when the slot
///               is empty.
enum class RepairPolicy { kReject, kHoldLast, kImpute };

/// Maps "reject" / "hold-last" / "impute" to a RepairPolicy (tool flags).
Result<RepairPolicy> ParseRepairPolicy(const std::string& name);
const char* RepairPolicyName(RepairPolicy policy);

/// Input-guard configuration for OnlinePredictor::Observe/ObserveAt.
/// The default rejects everything invalid — bit-for-bit compatible with
/// the unguarded behavior on clean feeds.
struct GuardPolicy {
  RepairPolicy on_bad_value = RepairPolicy::kReject;  ///< NaN/Inf/negative
  RepairPolicy on_gap = RepairPolicy::kReject;        ///< missing steps
  /// Gaps longer than this are rejected regardless of on_gap: synthesizing
  /// a day of data would only launder the outage into the statistics.
  int64_t max_gap_steps = 24;
};

/// Guard observability. Counters are process-local diagnostics: SaveState
/// does not persist them and LoadState starts them at zero.
struct GuardStats {
  int64_t repaired_values = 0;        ///< individual region values replaced
  int64_t repaired_steps = 0;         ///< accepted steps with >=1 repair
  int64_t gap_steps_filled = 0;       ///< synthesized missing steps
  int64_t rejected_observations = 0;  ///< Observe/ObserveAt calls refused
  /// Per-region quarantine counters: how many times each region's value
  /// needed repair. A hot region here means a sensor needs attention.
  std::vector<int64_t> quarantine;
};

/// Streaming next-step prediction around a fitted Forecaster.
///
/// The batch pipeline re-walks a SlidingWindowDataset on every call: the
/// matched instance-norm statistics mu/sigma (Eq. 9) and the exponential-MLE
/// inputs of the global module (Eq. 3-4) are recomputed from raw history.
/// OnlinePredictor instead keeps per-region incremental state:
///
///  * a ring buffer of the last W = T*(M-1) + L observed steps (values plus
///    their matched statistics) — everything a WindowSample reads,
///  * per-(time-of-day, day-type) matched-statistic accumulators holding the
///    `norm_history` most recent same-slot observations, so Observe()
///    refreshes mu/sigma in O(norm_history) work per region — independent of
///    stream length — using the exact summation order of
///    SlidingWindowDataset::RefreshMatchedStats (bit-identical parity),
///  * a rolling per-region sum over the live L-window, giving an O(1)
///    refresh of the exponential MLE rate (lambda = L / sum) that the serve
///    tool reports as a drift diagnostic.
///
/// PredictNext() assembles the same WindowSample MakeSample(next_step())
/// would build and runs the model's sample path, so streaming predictions
/// are bit-identical to the batch pipeline (asserted by
/// tests/serve_parity_test.cc). tests also cover the SaveState/LoadState
/// mid-stream checkpoint boundary and thread-count invariance.
///
/// Memory substrate (DESIGN.md §8e): every per-step buffer lives in
/// pre-sized aligned storage — the ring buffers and the flattened slot
/// accumulator use 64-byte-aligned blocks, row scratch is member-owned, and
/// the model forward runs under this predictor's Arena — so steady-state
/// Observe/ObserveAt/PredictNextInto perform ZERO heap allocations (after a
/// one-step warm-up that sizes the arena), asserted by
/// tests/alloc_guard_test.cc.
///
/// Real feeds degrade: Observe() validates every incoming count
/// (NaN/Inf/negative/wrong length) and ObserveAt() additionally detects
/// stream gaps, repairing either per the configured GuardPolicy; guard_stats()
/// exposes per-region quarantine counters. The matched-mean / recent-mean /
/// persistence accessors feed serve::ResilientPredictor's degradation chain.
class OnlinePredictor {
 public:
  /// Wraps a fitted, streaming-capable `model` (not owned; must outlive the
  /// predictor) and seeds the incremental state from the first
  /// `history_end` steps of `history`. Requires
  /// history_end >= history.MinTargetStep() (so the first PredictNext() has
  /// full windows) and history_end <= total steps.
  static Result<OnlinePredictor> Create(
      Forecaster* model, const data::SlidingWindowDataset& history,
      int64_t history_end);

  /// Appends one observed step (one count per region) and refreshes the
  /// incremental state: ring buffer, matched statistics, rolling MLE sum.
  /// Non-finite or negative counts are repaired per guard_policy(); a
  /// wrong-length row is always rejected (there is nothing to repair).
  Status Observe(const std::vector<double>& counts);

  /// Observe() with explicit stream position, for feeds that can skip:
  /// `step` is the step `counts` was measured at. step == next_step() is a
  /// plain Observe; an older step is rejected as stale; a newer step is a
  /// gap, and the missing steps are synthesized per guard_policy().on_gap
  /// (or rejected) before `counts` is applied.
  Status ObserveAt(int64_t step, const std::vector<double>& counts);

  /// Predicts the next unobserved step (index next_step()) from the
  /// incremental state. Does not advance the stream: call Observe() with
  /// the realized (or, for rollout, the predicted) counts afterwards.
  Result<std::vector<double>> PredictNext();

  /// PredictNext() into a caller-owned buffer (resized to num_regions()).
  /// The sample tensors and the whole model forward run on this
  /// predictor's arena and are rewound before returning, so a caller that
  /// reuses `out` pays zero heap allocations per step.
  Status PredictNextInto(std::vector<double>* out);

  /// Batched prediction for concurrent requests: fans the predictors out
  /// over the process thread pool. Slot i of the result corresponds to
  /// predictors[i]; results are bit-identical to calling PredictNext() on
  /// each predictor serially, for any thread count. Predictors may share
  /// one model: the sample path reads only fitted parameters.
  static std::vector<Result<std::vector<double>>> PredictMany(
      const std::vector<OnlinePredictor*>& predictors);

  /// PredictMany() into caller-owned buffers: statuses/outs are resized to
  /// predictors.size() and slot i is overwritten in place. With reused
  /// buffers the steady state allocates nothing (each predictor's forward
  /// runs on its own arena; the pool dispatch is allocation-free).
  static void PredictManyInto(const std::vector<OnlinePredictor*>& predictors,
                              std::vector<Status>* statuses,
                              std::vector<std::vector<double>>* outs);

  /// Index of the step PredictNext() predicts (== number of steps the
  /// stream has, counted from the seed dataset's origin).
  int64_t next_step() const { return next_step_; }
  int num_regions() const { return num_regions_; }

  void SetGuardPolicy(const GuardPolicy& policy) { guard_policy_ = policy; }
  const GuardPolicy& guard_policy() const { return guard_policy_; }
  const GuardStats& guard_stats() const { return guard_stats_; }

  /// Model-free fallback predictions for the degradation chain, all
  /// computed from already-maintained incremental state:
  ///  * MatchedMeanNext: the matched same-slot mean for next_step() — the
  ///    strongest model-free estimate (time-of-day + day-type aware).
  ///  * RecentMeanNext: per-region mean over the live L-window (the same
  ///    statistic behind ExponentialRate) — calendar-free, tracks level.
  ///  * LastObserved: persistence — the final, always-available resort.
  /// MatchedMeanNext falls back per-region to LastObserved when a slot has
  /// no history yet, so every accessor returns finite values. The *Into
  /// variants overwrite a caller-owned buffer (zero-allocation serving);
  /// the value-returning forms are conveniences that wrap them.
  std::vector<double> MatchedMeanNext() const;
  std::vector<double> RecentMeanNext() const;
  std::vector<double> LastObserved() const;
  void MatchedMeanNextInto(std::vector<double>* out) const;
  void RecentMeanNextInto(std::vector<double>* out) const;
  void LastObservedInto(std::vector<double>* out) const;

  /// O(1)-maintained exponential-MLE rate lambda = 1/mean over the region's
  /// live L-window (the Eq. 3 fit the global module recomputes internally);
  /// exposed as a serving-time drift diagnostic.
  double ExponentialRate(int region) const;

  /// This predictor's scratch arena (sizing/diagnostics; tests read the
  /// high-water mark).
  const Arena* arena() const { return arena_.get(); }

  /// Serializes the incremental state (ring, accumulators, calendar) to a
  /// plain-text file, CRC-checksummed and written atomically (temp file +
  /// fsync + rename), so a crash mid-save can never leave a torn file.
  /// Together with the model's SaveCheckpoint this makes a serving node
  /// restartable mid-stream with bit-identical predictions.
  Status SaveState(const std::string& path) const;

  /// Restores a predictor saved by SaveState around `model` (not owned),
  /// which must already be fitted/loaded and report SupportsStreaming().
  /// Corrupted, truncated, or checksum-mismatched files yield a Status
  /// error, never a crash. Guard counters restart at zero.
  static Result<OnlinePredictor> LoadState(const std::string& path,
                                           Forecaster* model);

 private:
  OnlinePredictor() = default;

  /// Ring slot of step s (valid while next_step_ - W <= s < next_step_).
  int64_t RingIndex(int64_t s) const { return (s % window_span_) * num_regions_; }
  bool IsWeekendStep(int64_t s) const;
  int64_t MinFirstTarget() const;
  int SlotIndex(int64_t s) const {
    return static_cast<int>(s % steps_per_day_) * 2 +
           (IsWeekendStep(s) ? 1 : 0);
  }

  // --- flattened matched-statistic accumulator -----------------------------
  // slot_data_ holds 2T circular slots of up to norm_history rows of N
  // floats each, in one aligned block: row j of slot i lives at
  // slot_data_[(i * norm_history + j) * N]. slot_head_[i]/slot_count_[i]
  // give the circular window; ages are resolved by SlotRowNewest /
  // SlotRowOldest so the summation orders of the nested-vector
  // implementation are preserved bit-for-bit.
  const float* SlotRowNewest(int slot, int k) const {
    const int nh = options_.norm_history;
    const int idx = (slot_head_[slot] + slot_count_[slot] - 1 - k + nh) % nh;
    return slot_data_.data() + (static_cast<int64_t>(slot) * nh + idx) *
                                   num_regions_;
  }
  const float* SlotRowOldest(int slot, int j) const {
    const int nh = options_.norm_history;
    const int idx = (slot_head_[slot] + j) % nh;
    return slot_data_.data() + (static_cast<int64_t>(slot) * nh + idx) *
                                   num_regions_;
  }
  /// Appends a row to the slot's circular window, evicting the oldest when
  /// the window is full. Equivalent to push_back + erase(begin()) of the
  /// old nested-vector representation, without touching the heap.
  void SlotPush(int slot, const float* row);
  /// Allocates/zeroes the flattened slot storage for the current geometry.
  void InitSlotStorage();

  /// Pre-sizes the member scratch rows and the arena so the steady state
  /// allocates nothing.
  void InitScratch();

  /// Computes mu/sigma rows for step s from x_row and the slot accumulator,
  /// mirroring SlidingWindowDataset::RefreshMatchedStats bit-for-bit.
  void MatchedStats(int64_t s, const std::vector<float>& x_row,
                    std::vector<float>* mu_row,
                    std::vector<float>* sigma_row) const;
  /// Matched same-slot mean of region r at step s (prior observations
  /// only), or the hold-last value when the slot is empty.
  float SlotMeanOrHold(int64_t s, int r) const;
  /// The region's most recent accepted value (ring row of next_step_ - 1).
  float HoldLastValue(int r) const;
  /// Validates/repairs `counts` into a float row per guard_policy().
  Status GuardRow(const std::vector<double>& counts,
                  std::vector<float>* x_row);
  /// Core Observe body: advances all incremental state with a clean row.
  Status ObserveRow(const std::vector<float>& x_row);

  Forecaster* model_ = nullptr;  // not owned

  // Stream geometry/calendar (copied from the seed dataset).
  data::DatasetOptions options_;
  int num_regions_ = 0;
  int steps_per_day_ = 24;
  CivilDate start_date_;
  int64_t window_span_ = 0;  ///< W = T*(M-1) + L ring capacity in steps
  int64_t next_step_ = 0;    ///< first unobserved step

  // Ring buffers over the last W steps; slot (s % W) holds step s's rows.
  // Aligned so kernel reads of whole rows can take the aligned fast path.
  AlignedBuffer<float> ring_x_, ring_mu_, ring_sigma_;  // each W * N

  // Flattened matched-statistic accumulator (see SlotRow* above).
  AlignedBuffer<float> slot_data_;  // [2T * norm_history * N]
  std::vector<int> slot_head_;     // oldest row index per slot
  std::vector<int> slot_count_;    // valid rows per slot (<= norm_history)

  // Rolling sum over the live L-window per region (exponential MLE state).
  std::vector<double> window_sum_;

  // Member scratch rows (pre-sized; never reallocated in steady state).
  std::vector<float> scratch_x_, scratch_mu_, scratch_sigma_, scratch_synth_;
  /// Scratch for MatchedStats' resolved slot-row pointers (norm_history
  /// entries); mutable because const stat readers share it. Predictors are
  /// single-stream objects (PredictMany fans out across predictors, never
  /// within one), so unsynchronized scratch is safe.
  mutable std::vector<const float*> slot_rows_;

  /// Per-predictor scratch arena: every tensor and autograd node of a
  /// PredictNextInto forward lands here and is rewound when the call
  /// returns.
  std::unique_ptr<Arena> arena_;

  GuardPolicy guard_policy_;
  GuardStats guard_stats_;
};

}  // namespace serve
}  // namespace ealgap

#endif  // EALGAP_SERVE_ONLINE_PREDICTOR_H_
