#ifndef EALGAP_CORE_EXTREME_DEGREE_H_
#define EALGAP_CORE_EXTREME_DEGREE_H_

#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace core {

/// Extreme Degree and Local Impact Modeling Module (paper Sec. V-B, Fig. 9).
///
/// B-1: the extreme degree of each (region, step) is the temporally-matched
/// instance normalization of Eq. (9):
///     D[n,l] = gamma_n * (X[n,l] - mu[n,l]) / sqrt(sigma^2[n,l] + eps_n)
/// followed by tanh; mu/sigma come from the same time step of day on the
/// same day type (precomputed by the dataset), and gamma_n / eps_n are
/// learnable per-region parameters.
///
/// B-2: the extreme degrees E_1..E_M of the M day-offset windows feed a GRU
/// (regions as batch, one window per GRU step, hidden state carried across
/// windows, Eq. 10); a linear head with tanh emits D̂[:, t+1] in [-1, 1].
class ExtremeDegreeModule : public nn::Module {
 public:
  ExtremeDegreeModule(int64_t num_regions, int64_t history_length,
                      int64_t gru_hidden, Rng& rng);

  struct Output {
    Var d_next;               ///< (N) predicted extreme degree at t+1
    std::vector<Var> e;       ///< per-window extreme degrees, each (N, L)
    /// Eq. (10): after consuming window m the GRU predicts the extreme
    /// degree one step past that window, D[:, t - T(M-m) + 1]. The last
    /// entry equals d_next.
    std::vector<Var> d_steps;
  };

  /// f, f_mu, f_sigma: (M, N, L) windows with aligned matched statistics
  /// (model space; the degree is scale-invariant).
  Output Forward(const Var& f, const Var& f_mu, const Var& f_sigma) const;

  /// Forward() into a caller-owned Output whose vectors are cleared and
  /// refilled (capacity reused) — the serve path passes one scratch Output
  /// per thread so the per-step forward performs no vector allocations.
  /// Callers that run under an ArenaScope must clear the Output again
  /// before the scope rewinds (the Vars inside are arena-backed).
  void ForwardInto(const Var& f, const Var& f_mu, const Var& f_sigma,
                   Output* out) const;

  /// Eq. (9) + tanh for one window (exposed for tests).
  Var ExtremeDegree(const Var& x, const Var& mu, const Var& sigma) const;

 private:
  int64_t n_;
  Var gamma_;    // (N, 1)
  Var epsilon_;  // (N, 1), used as |eps| + floor inside the sqrt
  nn::GruCell gru_;
  nn::Linear head_;
};

}  // namespace core
}  // namespace ealgap

#endif  // EALGAP_CORE_EXTREME_DEGREE_H_
