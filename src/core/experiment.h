#ifndef EALGAP_CORE_EXPERIMENT_H_
#define EALGAP_CORE_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "data/cleaning.h"
#include "data/dataset.h"
#include "data/dataset_configs.h"
#include "data/synthetic_city.h"
#include "stats/metrics.h"

namespace ealgap {
namespace core {

/// The full data pipeline output for one (dataset, period) experiment.
struct PreparedData {
  data::SyntheticCity city;
  data::CleaningReport cleaning;
  /// Stations surviving the cleaning stage, aligned with
  /// partition.station_region.
  std::vector<data::Station> stations;
  data::RegionPartition partition;
  data::SlidingWindowDataset dataset;
  data::StepRanges split;
};

/// Runs generate -> clean -> partition -> aggregate -> window/split.
/// `partition_override` replaces the config's partition options (used by
/// the clustering ablations); `count_kind` selects pick-ups (default) or
/// drop-offs (the arrivals view).
Result<PreparedData> PrepareData(
    const data::PeriodConfig& config,
    std::optional<data::PartitionOptions> partition_override = std::nullopt,
    data::CountKind count_kind = data::CountKind::kPickups);

/// The paper's scheme roster, in table order.
std::vector<std::string> PaperSchemes();

/// Builds a forecaster by scheme name ("ARIMA", "GRU", "LSTM", "RNN",
/// "ST-Norm", "ST-ResNet", "EVL", "CHAT", "EALGAP", plus extras "HA",
/// "EALGAP-G" (global only), "EALGAP-E" (extreme only),
/// "EALGAP-N" (normal distribution)).
Result<std::unique_ptr<Forecaster>> MakeForecaster(const std::string& scheme,
                                                   const PreparedData& data);

/// Reconstructs a fitted forecaster from a checkpoint written by
/// NeuralForecaster::SaveCheckpoint: peeks the `model` line of the header,
/// constructs the matching forecaster ("EALGAP", "GRU", "LSTM", "RNN",
/// "EVL", "ST-Norm"), and loads configuration plus parameters. Corrupted
/// or unknown-model files yield a Status error.
Result<std::unique_ptr<Forecaster>> LoadForecasterFromCheckpoint(
    const std::string& path);

/// One table cell group: a scheme evaluated on the test range.
struct SchemeResult {
  std::string scheme;
  stats::MetricReport metrics;
  double fit_seconds = 0.0;
  double train_step_ms = 0.0;  ///< 0 for non-neural schemes
};

struct PeriodResult {
  std::string label;  ///< "Normal" / "Hurricane" / ...
  std::vector<SchemeResult> rows;
};

struct ExperimentOptions {
  std::vector<std::string> schemes = PaperSchemes();
  TrainConfig train;
  uint64_t seed = 7;
  double data_scale = 1.0;
  bool verbose = false;
};

/// Trains and evaluates every scheme on one (dataset, period).
Result<PeriodResult> RunPeriod(const data::PeriodConfig& config,
                               const ExperimentOptions& options);

/// Fits one scheme on prepared data and evaluates it on the test range.
Result<SchemeResult> RunScheme(const std::string& scheme,
                               const PreparedData& data,
                               const TrainConfig& train);

}  // namespace core
}  // namespace ealgap

#endif  // EALGAP_CORE_EXPERIMENT_H_
