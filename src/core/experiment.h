#ifndef EALGAP_CORE_EXPERIMENT_H_
#define EALGAP_CORE_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "core/journal.h"
#include "data/cleaning.h"
#include "data/dataset.h"
#include "data/dataset_configs.h"
#include "data/synthetic_city.h"
#include "stats/metrics.h"

namespace ealgap {
namespace core {

/// The full data pipeline output for one (dataset, period) experiment.
struct PreparedData {
  data::SyntheticCity city;
  data::CleaningReport cleaning;
  /// Stations surviving the cleaning stage, aligned with
  /// partition.station_region.
  std::vector<data::Station> stations;
  data::RegionPartition partition;
  data::SlidingWindowDataset dataset;
  data::StepRanges split;
};

/// Runs generate -> clean -> partition -> aggregate -> window/split.
/// `partition_override` replaces the config's partition options (used by
/// the clustering ablations); `count_kind` selects pick-ups (default) or
/// drop-offs (the arrivals view).
Result<PreparedData> PrepareData(
    const data::PeriodConfig& config,
    std::optional<data::PartitionOptions> partition_override = std::nullopt,
    data::CountKind count_kind = data::CountKind::kPickups);

/// The paper's scheme roster, in table order.
std::vector<std::string> PaperSchemes();

/// Builds a forecaster by scheme name ("ARIMA", "GRU", "LSTM", "RNN",
/// "ST-Norm", "ST-ResNet", "EVL", "CHAT", "EALGAP", plus extras "HA",
/// "EALGAP-G" (global only), "EALGAP-E" (extreme only),
/// "EALGAP-N" (normal distribution)).
Result<std::unique_ptr<Forecaster>> MakeForecaster(const std::string& scheme,
                                                   const PreparedData& data);

/// Reconstructs a fitted forecaster from a checkpoint written by
/// NeuralForecaster::SaveCheckpoint: peeks the `model` line of the header,
/// constructs the matching forecaster ("EALGAP", "GRU", "LSTM", "RNN",
/// "EVL", "ST-Norm"), and loads configuration plus parameters. Corrupted
/// or unknown-model files yield a Status error.
Result<std::unique_ptr<Forecaster>> LoadForecasterFromCheckpoint(
    const std::string& path);

/// One table cell group: a scheme evaluated on the test range. A scheme
/// that failed (diverged past its rollback budget, hit an injected fault,
/// rejected its config) still occupies its row — `status` carries the
/// cause and `metrics` is all zeros — so table indexing by scheme position
/// stays valid and one bad cell never aborts a sweep.
struct SchemeResult {
  std::string scheme;
  Status status = Status::OK();
  stats::MetricReport metrics;
  double fit_seconds = 0.0;
  double train_step_ms = 0.0;   ///< 0 for non-neural schemes
  TrainStats train_stats;       ///< rollback/retry attribution (neural only)
};

struct PeriodResult {
  std::string label;  ///< "Normal" / "Hurricane" / ...
  std::vector<SchemeResult> rows;
};

struct ExperimentOptions {
  std::vector<std::string> schemes = PaperSchemes();
  TrainConfig train;
  uint64_t seed = 7;
  double data_scale = 1.0;
  bool verbose = false;
};

/// Trains and evaluates every scheme on one (dataset, period). Schemes are
/// isolated: a failing scheme yields a row with a non-OK status (and a log
/// line) while the remaining schemes still run. Only data preparation
/// failures — which doom every scheme equally — abort the period.
Result<PeriodResult> RunPeriod(const data::PeriodConfig& config,
                               const ExperimentOptions& options);

/// Fits one scheme on prepared data and evaluates it on the test range.
Result<SchemeResult> RunScheme(const std::string& scheme,
                               const PreparedData& data,
                               const TrainConfig& train);

/// A multi-(city, period) sweep with crash-safe progress journaling.
struct SweepOptions {
  std::vector<data::City> cities = data::AllCities();
  std::vector<data::Period> periods = data::AllPeriods();
  ExperimentOptions experiment;
  /// Journal file recording every finished cell; empty disables journaling
  /// (and with it, resume).
  std::string journal_path;
  /// Skip cells already present in the journal instead of starting over.
  bool resume = false;
  /// Directory for per-cell train-state checkpoints (see
  /// TrainConfig::checkpoint_path); empty disables them.
  std::string state_dir;
  /// TrainConfig::checkpoint_every for neural schemes when state_dir is set.
  int checkpoint_every = 0;
};

struct SweepResult {
  int64_t cells_run = 0;      ///< cells trained and evaluated this process
  int64_t cells_skipped = 0;  ///< cells satisfied from the journal (resume)
  int64_t cells_failed = 0;   ///< cells whose scheme failed (isolated)
  std::vector<JournalEntry> entries;  ///< final journal content, in order
};

/// Runs cities x periods x schemes. Each finished cell is journaled
/// atomically before the next begins, so an interrupted sweep restarts
/// with `resume` and re-runs only the missing cells. Scheme failures are
/// recorded as failed cells and do not abort the sweep; journal I/O
/// failures do (progress the journal cannot vouch for is not progress).
Result<SweepResult> RunSweep(const SweepOptions& options);

}  // namespace core
}  // namespace ealgap

#endif  // EALGAP_CORE_EXPERIMENT_H_
