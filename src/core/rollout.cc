#include "core/rollout.h"

namespace ealgap {
namespace core {

Result<std::vector<std::vector<double>>> RolloutForecast(
    Forecaster& model, const data::SlidingWindowDataset& dataset,
    int64_t start_step, int horizon) {
  if (horizon <= 0) return Status::InvalidArgument("horizon must be > 0");
  if (start_step < dataset.MinTargetStep() ||
      start_step + horizon > dataset.series().total_steps()) {
    return Status::OutOfRange("rollout window out of range");
  }
  data::SlidingWindowDataset working = dataset.Clone();
  std::vector<std::vector<double>> out;
  out.reserve(horizon);
  for (int h = 0; h < horizon; ++h) {
    const int64_t step = start_step + h;
    EALGAP_ASSIGN_OR_RETURN(std::vector<double> pred,
                            model.Predict(working, step));
    EALGAP_RETURN_IF_ERROR(working.OverwriteStep(step, pred));
    out.push_back(std::move(pred));
  }
  return out;
}

}  // namespace core
}  // namespace ealgap
