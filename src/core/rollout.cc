#include "core/rollout.h"

#include "serve/online_predictor.h"

namespace ealgap {
namespace core {

namespace {

/// Streaming rollout: O(norm_history) incremental state refresh per step
/// instead of cloning the whole dataset and re-walking matched statistics.
Result<std::vector<std::vector<double>>> RolloutStreaming(
    Forecaster& model, const data::SlidingWindowDataset& dataset,
    int64_t start_step, int horizon) {
  EALGAP_ASSIGN_OR_RETURN(
      serve::OnlinePredictor predictor,
      serve::OnlinePredictor::Create(&model, dataset, start_step));
  std::vector<std::vector<double>> out;
  out.reserve(horizon);
  for (int h = 0; h < horizon; ++h) {
    EALGAP_ASSIGN_OR_RETURN(std::vector<double> pred, predictor.PredictNext());
    EALGAP_RETURN_IF_ERROR(predictor.Observe(pred));
    out.push_back(std::move(pred));
  }
  return out;
}

/// Legacy rollout for models whose prediction needs the whole dataset
/// (ARIMA, HA, ST-ResNet, CHAT): clone, overwrite, re-predict.
Result<std::vector<std::vector<double>>> RolloutByCloning(
    Forecaster& model, const data::SlidingWindowDataset& dataset,
    int64_t start_step, int horizon) {
  data::SlidingWindowDataset working = dataset.Clone();
  std::vector<std::vector<double>> out;
  out.reserve(horizon);
  for (int h = 0; h < horizon; ++h) {
    const int64_t step = start_step + h;
    EALGAP_ASSIGN_OR_RETURN(std::vector<double> pred,
                            model.Predict(working, step));
    EALGAP_RETURN_IF_ERROR(working.OverwriteStep(step, pred));
    out.push_back(std::move(pred));
  }
  return out;
}

}  // namespace

Result<std::vector<std::vector<double>>> RolloutForecast(
    Forecaster& model, const data::SlidingWindowDataset& dataset,
    int64_t start_step, int horizon) {
  if (horizon <= 0) return Status::InvalidArgument("horizon must be > 0");
  if (start_step < dataset.MinTargetStep() ||
      start_step + horizon > dataset.series().total_steps()) {
    return Status::OutOfRange("rollout window out of range");
  }
  if (model.SupportsStreaming()) {
    return RolloutStreaming(model, dataset, start_step, horizon);
  }
  return RolloutByCloning(model, dataset, start_step, horizon);
}

}  // namespace core
}  // namespace ealgap
