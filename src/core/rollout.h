#ifndef EALGAP_CORE_ROLLOUT_H_
#define EALGAP_CORE_ROLLOUT_H_

#include <vector>

#include "baselines/forecaster.h"

namespace ealgap {
namespace core {

/// Recursive multi-step forecast (extension beyond the paper's one-step
/// setting): starting at `start_step`, predicts `horizon` consecutive
/// steps, feeding each prediction back into a working copy of the dataset
/// so later steps condition on the model's own outputs.
///
/// Returns `horizon` rows of per-region predictions. `model` must already
/// be fitted on `dataset` (or an identically-shaped one).
Result<std::vector<std::vector<double>>> RolloutForecast(
    Forecaster& model, const data::SlidingWindowDataset& dataset,
    int64_t start_step, int horizon);

}  // namespace core
}  // namespace ealgap

#endif  // EALGAP_CORE_ROLLOUT_H_
