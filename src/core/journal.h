#ifndef EALGAP_CORE_JOURNAL_H_
#define EALGAP_CORE_JOURNAL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stats/metrics.h"

namespace ealgap {
namespace core {

/// One completed sweep cell: a (city, period, scheme) triple with either
/// its test metrics or the error that failed it. Deliberately carries no
/// wall-clock fields, so the journal of a clean sweep and the journal of an
/// interrupted-then-resumed sweep are byte-identical (the CI resume stage
/// diffs them).
struct JournalEntry {
  std::string city;    ///< data::CityName, e.g. "nyc_bike"
  std::string period;  ///< data::PeriodName, e.g. "weather"
  std::string scheme;  ///< table scheme, e.g. "EALGAP"
  bool ok = true;
  std::string error;            ///< status summary when !ok (single line)
  stats::MetricReport metrics;  ///< valid only when ok
};

/// Crash-safe progress record of an experiment sweep.
///
/// One line per completed cell; metric doubles are stored as raw bit
/// patterns so a reloaded journal reproduces them exactly; every cell line
/// carries its own CRC32. Record() rewrites the whole file atomically
/// (temp + fsync + rename through WriteFileAtomic), so a crash at any
/// point — including mid-record — leaves a loadable journal describing
/// exactly the cells that finished. `ealgap_tool experiment --resume`
/// loads it and skips every cell already present.
class ExperimentJournal {
 public:
  explicit ExperimentJournal(std::string path) : path_(std::move(path)) {}

  /// Loads the journal at the path. A missing file is an empty journal
  /// (fresh sweep); a malformed or corrupt one is an error — silently
  /// restarting over bad state would hide the corruption.
  Status Load();

  bool Has(const std::string& city, const std::string& period,
           const std::string& scheme) const;
  const JournalEntry* Find(const std::string& city, const std::string& period,
                           const std::string& scheme) const;

  /// Appends one finished cell and atomically rewrites the file. An I/O
  /// failure here must abort the sweep (the caller cannot claim progress it
  /// did not persist).
  Status Record(const JournalEntry& entry);

  const std::vector<JournalEntry>& entries() const { return entries_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<JournalEntry> entries_;
};

}  // namespace core
}  // namespace ealgap

#endif  // EALGAP_CORE_JOURNAL_H_
