#include "core/ealgap.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/extreme_degree.h"
#include "core/global_impact.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace ealgap {
namespace core {

struct EalgapForecaster::Net : nn::Module {
  Net(const EalgapOptions& opts, int64_t n, int64_t l, Rng& rng) {
    if (opts.use_global_attention) {
      global = std::make_unique<GlobalImpactModule>(
          n, l, opts.hidden, rng, opts.family, opts.attention_dim);
      RegisterModule("global", global.get());
    } else {
      // Ablation (iii): two Dense layers with ReLU predict the global
      // impacts (paper Sec. VI-C).
      mlp1 = std::make_unique<nn::Linear>(l, opts.hidden, rng);
      mlp2 = std::make_unique<nn::Linear>(opts.hidden, 1, rng);
      RegisterModule("mlp1", mlp1.get());
      RegisterModule("mlp2", mlp2.get());
    }
    if (opts.use_extreme) {
      extreme =
          std::make_unique<ExtremeDegreeModule>(n, l, opts.gru_hidden, rng);
      RegisterModule("extreme", extreme.get());
    }
  }

  struct ForwardOutput {
    Var prediction;            // (N)
    std::vector<Var> d_steps;  // per-window degree predictions, each (N)
  };

  // All inputs in model space. Returns the (N) prediction plus Eq. (10)'s
  // per-window degree predictions for auxiliary supervision.
  ForwardOutput Forward(const Var& x, const Var& f, const Var& f_mu,
                        const Var& f_sigma) const {
    const int64_t n = x.value().dim(0);
    Var xg_next;
    if (global) {
      xg_next = global->Forward(x).xg_next;
    } else {
      xg_next = Reshape(mlp2->Forward(Relu(mlp1->Forward(x))), {n});
    }
    if (!extreme) {
      return {Relu(xg_next), {}};  // ablation (ii): global impacts only
    }
    auto ed = extreme->Forward(f, f_mu, f_sigma);
    // Eq. (11): X̂ = ReLU(X̂g + X̂g ⊙ D̂).
    return {Relu(Add(xg_next, Mul(xg_next, ed.d_next))),
            std::move(ed.d_steps)};
  }

  std::unique_ptr<GlobalImpactModule> global;
  std::unique_ptr<nn::Linear> mlp1, mlp2;
  std::unique_ptr<ExtremeDegreeModule> extreme;
};

EalgapForecaster::EalgapForecaster(EalgapOptions options)
    : options_(options) {
  EALGAP_CHECK(options.use_global_attention || options.use_extreme ||
               true);  // model always has a global-impact path
}

EalgapForecaster::~EalgapForecaster() = default;

nn::Module* EalgapForecaster::module() { return net_.get(); }

void EalgapForecaster::Initialize(const data::SlidingWindowDataset& dataset,
                                  const data::StepRanges& split,
                                  const TrainConfig& config) {
  // Scale = std of the training slice (no centering: the global module
  // needs non-negative inputs for the exponential fit).
  Tensor train_slice =
      ops::Slice(dataset.series().counts, 1, 0, split.train_end);
  const float* p = train_slice.data();
  double ss = 0.0;
  for (int64_t i = 0; i < train_slice.numel(); ++i) ss += double(p[i]) * p[i];
  scale_ = static_cast<float>(
      std::sqrt(std::max(ss / train_slice.numel(), 1e-12)));
  Rng rng(config.seed);
  net_ = std::make_unique<Net>(options_, dataset.series().num_regions,
                               dataset.options().history_length, rng);
}

Var EalgapForecaster::ForwardBatch(
    const std::vector<data::WindowSample>& batch) {
  const float inv = 1.f / scale_;
  std::vector<Var> outs;
  std::vector<Var> degree_losses;
  outs.reserve(batch.size());
  for (const data::WindowSample& sample : batch) {
    Var x = Var::Leaf(ops::MulScalar(sample.x, inv));
    Var f = Var::Leaf(ops::MulScalar(sample.f, inv));
    Var f_mu = Var::Leaf(ops::MulScalar(sample.f_mu, inv));
    Var f_sigma = Var::Leaf(ops::MulScalar(sample.f_sigma, inv));
    auto out = net_->Forward(x, f, f_mu, f_sigma);
    outs.push_back(Reshape(out.prediction, {1, out.prediction.value().numel()}));
    // Eq. (10) supervision: each window's degree prediction is pulled
    // toward the realized degree one step past the window (computed with
    // the current gamma/eps, treated as a constant target).
    if (net_->extreme && options_.degree_loss_weight > 0.f &&
        GradEnabled()) {
      const int64_t m = sample.w_next.dim(0);
      const int64_t n = sample.w_next.dim(1);
      for (int64_t w = 0; w < m; ++w) {
        Var xw = Var::Leaf(
            ops::MulScalar(ops::Slice(sample.w_next, 0, w, w + 1), inv)
                .Reshape({n, 1}));
        Var mw = Var::Leaf(
            ops::MulScalar(ops::Slice(sample.w_next_mu, 0, w, w + 1), inv)
                .Reshape({n, 1}));
        Var sw = Var::Leaf(
            ops::MulScalar(ops::Slice(sample.w_next_sigma, 0, w, w + 1), inv)
                .Reshape({n, 1}));
        Var target = net_->extreme->ExtremeDegree(xw, mw, sw).Detach();
        Var diff = Sub(Reshape(out.d_steps[w], {n, 1}), target);
        degree_losses.push_back(MeanAll(Mul(diff, diff)));
      }
    }
  }
  if (!degree_losses.empty()) {
    Var total = degree_losses[0];
    for (size_t i = 1; i < degree_losses.size(); ++i) {
      total = Add(total, degree_losses[i]);
    }
    pending_degree_loss_ =
        MulScalar(total, 1.f / static_cast<float>(degree_losses.size()));
  } else {
    pending_degree_loss_ = Var();
  }
  return Concat(outs, 0);  // (B, N)
}

Var EalgapForecaster::ComputeLoss(const Var& predictions,
                                  const Tensor& scaled_targets) {
  Var loss = NeuralForecaster::ComputeLoss(predictions, scaled_targets);
  if (pending_degree_loss_.defined()) {
    loss = Add(loss,
               MulScalar(pending_degree_loss_, options_.degree_loss_weight));
    pending_degree_loss_ = Var();
  }
  return loss;
}

Tensor EalgapForecaster::ScaleTargets(const Tensor& targets) const {
  return ops::MulScalar(targets, 1.f / scale_);
}

Tensor EalgapForecaster::InverseScale(const Tensor& predictions) const {
  return ops::MaximumScalar(ops::MulScalar(predictions, scale_), 0.f);
}

}  // namespace core
}  // namespace ealgap
