#include "core/ealgap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "core/extreme_degree.h"
#include "core/global_impact.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace ealgap {
namespace core {

struct EalgapForecaster::Net : nn::Module {
  Net(const EalgapOptions& opts, int64_t n, int64_t l, Rng& rng) {
    if (opts.use_global_attention) {
      global = std::make_unique<GlobalImpactModule>(
          n, l, opts.hidden, rng, opts.family, opts.attention_dim);
      RegisterModule("global", global.get());
    } else {
      // Ablation (iii): two Dense layers with ReLU predict the global
      // impacts (paper Sec. VI-C).
      mlp1 = std::make_unique<nn::Linear>(l, opts.hidden, rng);
      mlp2 = std::make_unique<nn::Linear>(opts.hidden, 1, rng);
      RegisterModule("mlp1", mlp1.get());
      RegisterModule("mlp2", mlp2.get());
    }
    if (opts.use_extreme) {
      extreme =
          std::make_unique<ExtremeDegreeModule>(n, l, opts.gru_hidden, rng);
      RegisterModule("extreme", extreme.get());
    }
  }

  // All inputs in model space. Returns the (N) prediction; when `d_steps`
  // is non-null (training with degree supervision) it receives Eq. (10)'s
  // per-window degree predictions. The serve path passes nullptr, so the
  // per-step forward builds no vectors at all: the extreme module fills a
  // thread-local scratch Output that is cleared before returning (its Vars
  // are arena-backed under a serve ArenaScope and must not outlive it).
  Var Forward(const Var& x, const Var& f, const Var& f_mu, const Var& f_sigma,
              std::vector<Var>* d_steps) const {
    const int64_t n = x.value().dim(0);
    Var xg_next;
    if (global) {
      xg_next = global->Forward(x).xg_next;
    } else {
      xg_next = Reshape(mlp2->Forward(ReluInPlace(mlp1->Forward(x))), {n});
    }
    if (!extreme) {
      // ablation (ii): global impacts only
      return ReluInPlace(std::move(xg_next));
    }
    static thread_local ExtremeDegreeModule::Output ed;
    extreme->ForwardInto(f, f_mu, f_sigma, &ed);
    // Eq. (11): X̂ = ReLU(X̂g + X̂g ⊙ D̂). In serving (no grad) the ReLU
    // overwrites the sum's buffer instead of allocating a per-step temporary.
    Var result = ReluInPlace(Add(xg_next, Mul(xg_next, ed.d_next)));
    if (d_steps != nullptr) *d_steps = ed.d_steps;
    ed.d_next = Var();
    ed.e.clear();
    ed.d_steps.clear();
    return result;
  }

  std::unique_ptr<GlobalImpactModule> global;
  std::unique_ptr<nn::Linear> mlp1, mlp2;
  std::unique_ptr<ExtremeDegreeModule> extreme;
};

EalgapForecaster::EalgapForecaster(EalgapOptions options)
    : options_(options) {
  EALGAP_CHECK(options.use_global_attention || options.use_extreme ||
               true);  // model always has a global-impact path
}

EalgapForecaster::~EalgapForecaster() = default;

nn::Module* EalgapForecaster::module() { return net_.get(); }

void EalgapForecaster::Initialize(const data::SlidingWindowDataset& dataset,
                                  const data::StepRanges& split,
                                  const TrainConfig& config) {
  // Scale = std of the training slice (no centering: the global module
  // needs non-negative inputs for the exponential fit).
  Tensor train_slice =
      ops::Slice(dataset.series().counts, 1, 0, split.train_end);
  const float* p = train_slice.data();
  double ss = 0.0;
  for (int64_t i = 0; i < train_slice.numel(); ++i) ss += double(p[i]) * p[i];
  scale_ = static_cast<float>(
      std::sqrt(std::max(ss / train_slice.numel(), 1e-12)));
  num_regions_ = dataset.series().num_regions;
  history_length_ = dataset.options().history_length;
  Rng rng(config.seed);
  net_ = std::make_unique<Net>(options_, num_regions_, history_length_, rng);
}

Var EalgapForecaster::ForwardBatch(
    const std::vector<data::WindowSample>& batch) {
  const float inv = 1.f / scale_;
  // Thread-local scratch (ForwardBatch runs concurrently from EvaluateLoss
  // pool threads): capacity is reused across calls and every vector is
  // cleared before returning, so no Var survives a serve-path arena rewind
  // and the steady-state serve step performs zero heap allocations.
  static thread_local std::vector<Var> outs;
  static thread_local std::vector<Var> degree_losses;
  static thread_local std::vector<Var> d_steps;
  outs.clear();
  degree_losses.clear();
  outs.reserve(batch.size());
  const bool want_degree =
      net_->extreme && options_.degree_loss_weight > 0.f && GradEnabled();
  for (const data::WindowSample& sample : batch) {
    Var x = Var::Leaf(ops::MulScalar(sample.x, inv));
    Var f = Var::Leaf(ops::MulScalar(sample.f, inv));
    Var f_mu = Var::Leaf(ops::MulScalar(sample.f_mu, inv));
    Var f_sigma = Var::Leaf(ops::MulScalar(sample.f_sigma, inv));
    Var prediction = net_->Forward(x, f, f_mu, f_sigma,
                                   want_degree ? &d_steps : nullptr);
    outs.push_back(Reshape(prediction, {1, prediction.value().numel()}));
    // Eq. (10) supervision: each window's degree prediction is pulled
    // toward the realized degree one step past the window (computed with
    // the current gamma/eps, treated as a constant target).
    if (want_degree) {
      const int64_t m = sample.w_next.dim(0);
      const int64_t n = sample.w_next.dim(1);
      for (int64_t w = 0; w < m; ++w) {
        Var xw = Var::Leaf(
            ops::MulScalar(ops::Slice(sample.w_next, 0, w, w + 1), inv)
                .Reshape({n, 1}));
        Var mw = Var::Leaf(
            ops::MulScalar(ops::Slice(sample.w_next_mu, 0, w, w + 1), inv)
                .Reshape({n, 1}));
        Var sw = Var::Leaf(
            ops::MulScalar(ops::Slice(sample.w_next_sigma, 0, w, w + 1), inv)
                .Reshape({n, 1}));
        Var target = net_->extreme->ExtremeDegree(xw, mw, sw).Detach();
        Var diff = Sub(Reshape(d_steps[w], {n, 1}), target);
        degree_losses.push_back(MeanAll(Mul(diff, diff)));
      }
    }
  }
  // pending_degree_loss_ is only touched while gradients are recorded: the
  // no-grad evaluation/serving paths (EvaluateLoss, PredictSample) call
  // ForwardBatch concurrently from the thread pool, and an unconditional
  // reset here would be a data race.
  if (!degree_losses.empty()) {
    Var total = degree_losses[0];
    for (size_t i = 1; i < degree_losses.size(); ++i) {
      total = Add(total, degree_losses[i]);
    }
    pending_degree_loss_ =
        MulScalar(total, 1.f / static_cast<float>(degree_losses.size()));
  } else if (GradEnabled()) {
    pending_degree_loss_ = Var();
  }
  Var result = Concat(outs, 0);  // (B, N)
  outs.clear();
  degree_losses.clear();
  d_steps.clear();
  return result;
}

Var EalgapForecaster::ComputeLoss(const Var& predictions,
                                  const Tensor& scaled_targets) {
  Var loss = NeuralForecaster::ComputeLoss(predictions, scaled_targets);
  if (pending_degree_loss_.defined()) {
    loss = Add(loss,
               MulScalar(pending_degree_loss_, options_.degree_loss_weight));
    pending_degree_loss_ = Var();
  }
  return loss;
}

Tensor EalgapForecaster::ScaleTargets(const Tensor& targets) const {
  return ops::MulScalar(targets, 1.f / scale_);
}

Tensor EalgapForecaster::InverseScale(const Tensor& predictions) const {
  return ops::MaximumScalar(ops::MulScalar(predictions, scale_), 0.f);
}

Status EalgapForecaster::EncodeConfig(CheckpointConfig* config) const {
  std::ostringstream scale;
  scale.precision(std::numeric_limits<float>::max_digits10);
  scale << scale_;
  std::ostringstream dlw;
  dlw.precision(std::numeric_limits<float>::max_digits10);
  dlw << options_.degree_loss_weight;
  config->emplace_back("use_global_attention",
                       options_.use_global_attention ? "1" : "0");
  config->emplace_back("use_extreme", options_.use_extreme ? "1" : "0");
  config->emplace_back(
      "family", options_.family == stats::DistributionFamily::kNormal
                    ? "normal"
                    : "exponential");
  config->emplace_back("hidden", std::to_string(options_.hidden));
  config->emplace_back("gru_hidden", std::to_string(options_.gru_hidden));
  config->emplace_back("attention_dim",
                       std::to_string(options_.attention_dim));
  config->emplace_back("degree_loss_weight", dlw.str());
  config->emplace_back("num_regions", std::to_string(num_regions_));
  config->emplace_back("history_length", std::to_string(history_length_));
  config->emplace_back("scale", scale.str());
  return Status::OK();
}

Status EalgapForecaster::DecodeConfig(
    const std::map<std::string, std::string>& config) {
  EalgapOptions opts;
  int64_t v = 0;
  EALGAP_RETURN_IF_ERROR(ConfigInt(config, "use_global_attention", 0, 1, &v));
  opts.use_global_attention = v == 1;
  EALGAP_RETURN_IF_ERROR(ConfigInt(config, "use_extreme", 0, 1, &v));
  opts.use_extreme = v == 1;
  auto family = config.find("family");
  if (family == config.end()) {
    return Status::ParseError("checkpoint config missing key family");
  }
  if (family->second == "exponential") {
    opts.family = stats::DistributionFamily::kExponential;
  } else if (family->second == "normal") {
    opts.family = stats::DistributionFamily::kNormal;
  } else {
    return Status::InvalidArgument("unknown distribution family " +
                                   family->second);
  }
  EALGAP_RETURN_IF_ERROR(ConfigInt(config, "hidden", 1, 1 << 16, &opts.hidden));
  EALGAP_RETURN_IF_ERROR(
      ConfigInt(config, "gru_hidden", 1, 1 << 16, &opts.gru_hidden));
  EALGAP_RETURN_IF_ERROR(
      ConfigInt(config, "attention_dim", 1, 1 << 10, &opts.attention_dim));
  EALGAP_RETURN_IF_ERROR(
      ConfigFloat(config, "degree_loss_weight", &opts.degree_loss_weight));
  int64_t n = 0, l = 0;
  EALGAP_RETURN_IF_ERROR(ConfigInt(config, "num_regions", 1, 1 << 20, &n));
  EALGAP_RETURN_IF_ERROR(ConfigInt(config, "history_length", 1, 1 << 16, &l));
  float scale = 1.f;
  EALGAP_RETURN_IF_ERROR(ConfigFloat(config, "scale", &scale));
  if (!(scale > 0.f) || !std::isfinite(scale)) {
    return Status::InvalidArgument("checkpoint scale must be positive");
  }
  options_ = opts;
  num_regions_ = n;
  history_length_ = l;
  scale_ = scale;
  // The initializer RNG is irrelevant: every parameter is overwritten by
  // the checkpoint's values right after this rebuild.
  Rng rng(0);
  net_ = std::make_unique<Net>(options_, num_regions_, history_length_, rng);
  return Status::OK();
}

}  // namespace core
}  // namespace ealgap
