#include "core/experiment.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "baselines/arima.h"
#include "baselines/chat.h"
#include "baselines/evl.h"
#include "baselines/historical_average.h"
#include "baselines/neural.h"
#include "baselines/recurrent.h"
#include "baselines/st_norm.h"
#include "baselines/st_resnet.h"
#include "common/logging.h"
#include "core/ealgap.h"

namespace ealgap {
namespace core {

Result<PreparedData> PrepareData(
    const data::PeriodConfig& config,
    std::optional<data::PartitionOptions> partition_override,
    data::CountKind count_kind) {
  PreparedData out;
  EALGAP_ASSIGN_OR_RETURN(out.city, data::GenerateCity(config.generator));
  out.stations = out.city.stations;
  std::vector<data::TripRecord> clean = data::CleanTrips(
      out.city.trips, out.stations, config.cleaning, &out.cleaning);
  const data::PartitionOptions& popts =
      partition_override.has_value() ? *partition_override : config.partition;
  EALGAP_ASSIGN_OR_RETURN(out.partition,
                          data::PartitionStations(out.stations, popts));
  EALGAP_ASSIGN_OR_RETURN(
      data::MobilitySeries series,
      data::AggregateTrips(clean, out.stations, out.partition,
                           config.generator.start_date,
                           config.generator.num_days,
                           /*dropped=*/nullptr, count_kind));
  EALGAP_ASSIGN_OR_RETURN(
      out.dataset,
      data::SlidingWindowDataset::Create(std::move(series), config.dataset));
  EALGAP_ASSIGN_OR_RETURN(out.split, data::MakeChronoSplit(out.dataset));
  return out;
}

std::vector<std::string> PaperSchemes() {
  return {"ARIMA", "GRU",       "LSTM", "RNN",  "ST-Norm",
          "ST-ResNet", "EVL",  "CHAT", "EALGAP"};
}

Result<std::unique_ptr<Forecaster>> MakeForecaster(const std::string& scheme,
                                                   const PreparedData& data) {
  if (scheme == "ARIMA") {
    return std::unique_ptr<Forecaster>(new ArimaForecaster());
  }
  if (scheme == "GRU") {
    return std::unique_ptr<Forecaster>(
        new RecurrentForecaster(RecurrentKind::kGru));
  }
  if (scheme == "LSTM") {
    return std::unique_ptr<Forecaster>(
        new RecurrentForecaster(RecurrentKind::kLstm));
  }
  if (scheme == "RNN") {
    return std::unique_ptr<Forecaster>(
        new RecurrentForecaster(RecurrentKind::kRnn));
  }
  if (scheme == "ST-Norm") {
    return std::unique_ptr<Forecaster>(new StNormForecaster());
  }
  if (scheme == "ST-ResNet") {
    return std::unique_ptr<Forecaster>(
        new StResNetForecaster(data.partition.region_centers));
  }
  if (scheme == "EVL") {
    return std::unique_ptr<Forecaster>(new EvlForecaster());
  }
  if (scheme == "CHAT") {
    return std::unique_ptr<Forecaster>(new ChatForecaster());
  }
  if (scheme == "EALGAP") {
    return std::unique_ptr<Forecaster>(new EalgapForecaster());
  }
  if (scheme == "HA") {
    return std::unique_ptr<Forecaster>(new HistoricalAverageForecaster());
  }
  if (scheme == "EALGAP-G") {  // ablation (ii): global module only
    EalgapOptions opts;
    opts.use_extreme = false;
    return std::unique_ptr<Forecaster>(new EalgapForecaster(opts));
  }
  if (scheme == "EALGAP-E") {  // ablation (iii): extreme module + MLP global
    EalgapOptions opts;
    opts.use_global_attention = false;
    return std::unique_ptr<Forecaster>(new EalgapForecaster(opts));
  }
  if (scheme == "EALGAP-N") {  // ablation (iv): normal distribution
    EalgapOptions opts;
    opts.family = stats::DistributionFamily::kNormal;
    return std::unique_ptr<Forecaster>(new EalgapForecaster(opts));
  }
  if (scheme == "EALGAP-BIG") {  // capacity probe
    EalgapOptions opts;
    opts.hidden = 64;
    opts.gru_hidden = 32;
    return std::unique_ptr<Forecaster>(new EalgapForecaster(opts));
  }
  if (scheme == "EALGAP-A0") {  // alias of the default (no Eq. 10 aux loss)
    EalgapOptions opts;
    opts.degree_loss_weight = 0.f;
    return std::unique_ptr<Forecaster>(new EalgapForecaster(opts));
  }
  if (scheme == "EALGAP-AUX") {  // design ablation: Eq. (10) supervision on
    EalgapOptions opts;
    opts.degree_loss_weight = 0.3f;
    return std::unique_ptr<Forecaster>(new EalgapForecaster(opts));
  }
  if (scheme == "EALGAP-J4") {  // extension: J = 4 attention
    EalgapOptions opts;
    opts.attention_dim = 4;
    return std::unique_ptr<Forecaster>(new EalgapForecaster(opts));
  }
  return Status::InvalidArgument("unknown scheme: " + scheme);
}

Result<std::unique_ptr<Forecaster>> LoadForecasterFromCheckpoint(
    const std::string& path) {
  // Peek the header to learn which forecaster wrote the file; the model
  // itself re-validates the full header in LoadCheckpoint.
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic, tag, model_name;
  int version = 0;
  if (!(in >> magic >> version >> tag >> model_name) ||
      magic != "ealgap-checkpoint" || tag != "model") {
    return Status::ParseError(path + " is not an ealgap checkpoint");
  }
  in.close();

  std::unique_ptr<NeuralForecaster> model;
  if (model_name == "EALGAP") {
    model = std::make_unique<EalgapForecaster>();
  } else if (model_name == "GRU") {
    model = std::make_unique<RecurrentForecaster>(RecurrentKind::kGru);
  } else if (model_name == "LSTM") {
    model = std::make_unique<RecurrentForecaster>(RecurrentKind::kLstm);
  } else if (model_name == "RNN") {
    model = std::make_unique<RecurrentForecaster>(RecurrentKind::kRnn);
  } else if (model_name == "EVL") {
    model = std::make_unique<EvlForecaster>();
  } else if (model_name == "ST-Norm") {
    model = std::make_unique<StNormForecaster>();
  } else {
    return Status::InvalidArgument("checkpoint is for model " + model_name +
                                   ", which has no checkpoint loader");
  }
  EALGAP_RETURN_IF_ERROR(model->LoadCheckpoint(path));
  return std::unique_ptr<Forecaster>(std::move(model));
}

Result<SchemeResult> RunScheme(const std::string& scheme,
                               const PreparedData& data,
                               const TrainConfig& train) {
  EALGAP_ASSIGN_OR_RETURN(std::unique_ptr<Forecaster> model,
                          MakeForecaster(scheme, data));
  SchemeResult result;
  result.scheme = scheme;
  const auto t0 = std::chrono::steady_clock::now();
  Status fit_status = model->Fit(data.dataset, data.split, train);
  if (auto* neural = dynamic_cast<NeuralForecaster*>(model.get())) {
    // Rollback/retry attribution survives even a failed fit, so the caller
    // can report *why* a cell died (e.g. retries exhausted).
    result.train_stats = neural->train_stats();
    result.train_step_ms = neural->mean_step_ms();
  }
  if (!fit_status.ok()) return fit_status;
  const auto t1 = std::chrono::steady_clock::now();
  result.fit_seconds = std::chrono::duration<double>(t1 - t0).count();
  std::vector<double> pred, truth;
  EALGAP_RETURN_IF_ERROR(model->PredictRange(
      data.dataset, data.split.test_begin, data.split.test_end, &pred,
      &truth));
  result.metrics = stats::ComputeMetrics(pred, truth);
  return result;
}

namespace {

/// Runs one scheme with per-scheme isolation: an error becomes a row with
/// a non-OK status (keeping one row per scheme) instead of propagating.
SchemeResult RunSchemeIsolated(const std::string& scheme,
                               const PreparedData& data,
                               const TrainConfig& train,
                               const std::string& context) {
  auto row_or = RunScheme(scheme, data, train);
  if (row_or.ok()) return std::move(*row_or);
  SchemeResult row;
  row.scheme = scheme;
  row.status = row_or.status();
  EALGAP_LOG(Warning) << context << " " << scheme
                      << " failed (isolated): " << row.status.ToString();
  return row;
}

}  // namespace

Result<PeriodResult> RunPeriod(const data::PeriodConfig& config,
                               const ExperimentOptions& options) {
  EALGAP_ASSIGN_OR_RETURN(PreparedData data, PrepareData(config));
  PeriodResult out;
  out.label = config.label;
  for (const std::string& scheme : options.schemes) {
    TrainConfig train = options.train;
    train.seed = options.seed;
    train.verbose = options.verbose;
    SchemeResult row = RunSchemeIsolated(scheme, data, train, config.label);
    if (options.verbose && row.status.ok()) {
      EALGAP_LOG(Info) << config.label << " " << scheme << ": ER "
                       << row.metrics.er << " MSLE " << row.metrics.msle
                       << " R2 " << row.metrics.r2 << " (fit "
                       << row.fit_seconds << "s)";
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

namespace {

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("cannot create directory " + path + ": " +
                         std::strerror(errno));
}

}  // namespace

Result<SweepResult> RunSweep(const SweepOptions& options) {
  ExperimentJournal journal(options.journal_path);
  const bool journaling = !options.journal_path.empty();
  if (journaling && options.resume) {
    EALGAP_RETURN_IF_ERROR(journal.Load());
  }
  if (!options.state_dir.empty()) {
    EALGAP_RETURN_IF_ERROR(EnsureDirectory(options.state_dir));
  }

  SweepResult out;
  for (data::City city : options.cities) {
    for (data::Period period : options.periods) {
      const std::string city_name = data::CityName(city);
      const std::string period_name = data::PeriodName(period);
      // Skip data preparation entirely when every cell of this (city,
      // period) is already journaled.
      bool all_done = journaling && options.resume;
      for (const std::string& scheme : options.experiment.schemes) {
        all_done = all_done && journal.Has(city_name, period_name, scheme);
      }
      std::optional<PreparedData> data;
      if (!all_done) {
        const data::PeriodConfig config = data::MakePeriodConfig(
            city, period, options.experiment.seed,
            options.experiment.data_scale);
        EALGAP_ASSIGN_OR_RETURN(data, PrepareData(config));
      }
      for (const std::string& scheme : options.experiment.schemes) {
        if (journaling && options.resume &&
            journal.Has(city_name, period_name, scheme)) {
          ++out.cells_skipped;
          continue;
        }
        TrainConfig train = options.experiment.train;
        train.seed = options.experiment.seed;
        train.verbose = options.experiment.verbose;
        if (!options.state_dir.empty()) {
          train.checkpoint_path = options.state_dir + "/" + city_name + "." +
                                  period_name + "." + scheme + ".train";
          train.checkpoint_every = options.checkpoint_every;
          train.resume = options.resume;
        }
        const std::string context = city_name + "/" + period_name;
        SchemeResult row = RunSchemeIsolated(scheme, *data, train, context);
        ++out.cells_run;
        JournalEntry entry;
        entry.city = city_name;
        entry.period = period_name;
        entry.scheme = scheme;
        entry.ok = row.status.ok();
        if (entry.ok) {
          entry.metrics = row.metrics;
          if (options.experiment.verbose) {
            EALGAP_LOG(Info) << context << " " << scheme << ": ER "
                             << row.metrics.er << " MSLE " << row.metrics.msle
                             << " R2 " << row.metrics.r2;
          }
        } else {
          entry.error = row.status.ToString();
          ++out.cells_failed;
        }
        if (journaling) {
          // A journal write failure aborts the sweep: the cell's result is
          // not durably recorded, so continuing would let a later resume
          // double-count or lose it.
          EALGAP_RETURN_IF_ERROR(journal.Record(entry));
        } else {
          out.entries.push_back(entry);
        }
      }
    }
  }
  if (journaling) {
    // Resume consistency check: the final journal covers exactly the
    // requested grid (entries from an older, different grid stay listed
    // but are not re-validated here).
    out.entries = journal.entries();
  }
  return out;
}

}  // namespace core
}  // namespace ealgap
