#ifndef EALGAP_CORE_GLOBAL_IMPACT_H_
#define EALGAP_CORE_GLOBAL_IMPACT_H_

#include <memory>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "stats/distribution.h"
#include "tensor/autograd.h"

namespace ealgap {
namespace core {

/// Global Impact Modeling Module (paper Sec. V-A, Fig. 8).
///
/// A-1 ("Global Dominant Spatial Dependencies Generation"): the mobility of
/// each region over the last L steps is fitted to an exponential
/// distribution (MLE, Eq. 3); the probability densities Z (Eq. 4) of ALL
/// regions are decoded jointly by three Softmax-interleaved FC layers into
/// *temporally-varying* per-region attention parameters W^Q, W^K, W^V
/// (Eq. 5, I = J = 1 in the paper's study). Decoding from the citywide Z
/// is what makes the parameters spatial dependencies: each region's
/// attention is conditioned on every region's density pattern.
///
/// A-2: per-region temporal self-attention (Eq. 6) re-weights the recent
/// history into global impacts Xg[:, t-L+1:t], and three ReLU-interleaved
/// FC layers predict the next-step global impact X̂g[:, t+1] (Eq. 7).
class GlobalImpactModule : public nn::Module {
 public:
  /// `attention_dim` is the paper's J (Eq. 2): each region's query/key/value
  /// projections are J-dimensional; the study fixes J = 1, and J > 1 adds a
  /// learned combine layer over the J attention outputs (extension bench
  /// ext_attention_dim sweeps it).
  GlobalImpactModule(int64_t num_regions, int64_t history_length,
                     int64_t hidden, Rng& rng,
                     stats::DistributionFamily family =
                         stats::DistributionFamily::kExponential,
                     int64_t attention_dim = 1);

  struct Output {
    Var xg_history;  ///< (N, L) global impacts over the input window
    Var xg_next;     ///< (N)    predicted global impact at t+1
  };

  /// x: (N, L) model-space mobility (non-negative). The distribution fit
  /// and PDF evaluation are data (not differentiated through), matching
  /// the paper's data-driven parameter generation.
  Output Forward(const Var& x) const;

  stats::DistributionFamily family() const { return family_; }

 private:
  int64_t n_;
  int64_t l_;
  int64_t j_;
  stats::DistributionFamily family_;
  // Decoder: Z -> [W^Q, W^K, W^V]
  nn::Linear dec1_, dec2_, dec3_;
  // Combines the J attention outputs when J > 1.
  std::unique_ptr<nn::Linear> combine_;
  // Predictor: Xg[:, t-L+1:t] -> X̂g[:, t+1]
  nn::Linear pred1_, pred2_, pred3_;
};

}  // namespace core
}  // namespace ealgap

#endif  // EALGAP_CORE_GLOBAL_IMPACT_H_
