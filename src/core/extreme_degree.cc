#include "core/extreme_degree.h"

#include "common/logging.h"

namespace ealgap {
namespace core {

ExtremeDegreeModule::ExtremeDegreeModule(int64_t num_regions,
                                         int64_t history_length,
                                         int64_t gru_hidden, Rng& rng)
    : n_(num_regions),
      gru_(history_length, gru_hidden, rng),
      head_(gru_hidden, 1, rng) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({num_regions, 1}));
  epsilon_ = RegisterParameter("epsilon",
                               Tensor::Full({num_regions, 1}, 1e-2f));
  RegisterModule("gru", &gru_);
  RegisterModule("head", &head_);
}

Var ExtremeDegreeModule::ExtremeDegree(const Var& x, const Var& mu,
                                       const Var& sigma) const {
  // sqrt(sigma^2 + |eps| + floor): |eps| keeps the learnable offset
  // positive, the floor keeps constant histories finite.
  Var var = Add(Mul(sigma, sigma), AddScalar(Abs(epsilon_), 1e-4f));
  Var d = Div(Sub(x, mu), Sqrt(var));  // broadcasts eps (N,1) over (N,L)
  return Tanh(Mul(d, gamma_));
}

ExtremeDegreeModule::Output ExtremeDegreeModule::Forward(
    const Var& f, const Var& f_mu, const Var& f_sigma) const {
  Output out;
  ForwardInto(f, f_mu, f_sigma, &out);
  return out;
}

void ExtremeDegreeModule::ForwardInto(const Var& f, const Var& f_mu,
                                      const Var& f_sigma, Output* out) const {
  EALGAP_CHECK_EQ(f.value().ndim(), 3);
  const int64_t m = f.value().dim(0);
  const int64_t n = f.value().dim(1);
  const int64_t l = f.value().dim(2);
  EALGAP_CHECK_EQ(n, n_);

  out->e.clear();
  out->d_steps.clear();
  out->e.reserve(m);
  out->d_steps.reserve(m);
  Var h = nn::ZeroState(n, gru_.hidden_size());
  for (int64_t w = 0; w < m; ++w) {
    Var fw = Reshape(Slice(f, 0, w, w + 1), {n, l});
    Var mw = Reshape(Slice(f_mu, 0, w, w + 1), {n, l});
    Var sw = Reshape(Slice(f_sigma, 0, w, w + 1), {n, l});
    Var e = ExtremeDegree(fw, mw, sw);  // (N, L)
    out->e.push_back(e);
    // Eq. (10): the hidden state of window m seeds window m+1, and each
    // window emits a prediction of the degree one step past its end.
    h = gru_.Forward(e, h);
    out->d_steps.push_back(Reshape(Tanh(head_.Forward(h)), {n}));
  }
  out->d_next = out->d_steps.back();
}

}  // namespace core
}  // namespace ealgap
