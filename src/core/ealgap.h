#ifndef EALGAP_CORE_EALGAP_H_
#define EALGAP_CORE_EALGAP_H_

#include <memory>
#include <string>

#include "baselines/neural.h"
#include "stats/distribution.h"

namespace ealgap {
namespace core {

/// Configuration of the EALGAP model, including the ablation switches of
/// the paper's Fig. 11.
struct EalgapOptions {
  /// (ii)/(iii): which modules participate. At least one must be true.
  bool use_global_attention = true;  ///< false = ablation (iii): plain MLP
  bool use_extreme = true;           ///< false = ablation (ii): global only
  /// (iv): distribution family fitted in the Global Impact Module.
  stats::DistributionFamily family = stats::DistributionFamily::kExponential;
  int64_t hidden = 32;      ///< FC width in the global module
  int64_t gru_hidden = 16;  ///< GRU width in the extreme-degree module
  int64_t attention_dim = 1;  ///< the paper's J (study uses 1)
  /// Weight of the per-window extreme-degree supervision (Eq. 10): each
  /// window's GRU output is trained toward the realized extreme degree one
  /// step past the window. Disabled by default — the ext_design_ablations
  /// bench shows end-to-end training of D̂ works better on this data.
  float degree_loss_weight = 0.f;
};

/// EALGAP: Extreme-Aware Local-Global Attention mobility predictor
/// (the paper's contribution, Sec. V).
///
/// Prediction (Eq. 11):
///   X̂[:, t+1] = ReLU( X̂g[:, t+1] + X̂g[:, t+1] ⊙ D̂[:, t+1] )
/// where X̂g comes from the Global Impact Modeling Module and D̂ from the
/// Extreme Degree and Local Impact Modeling Module. Trained end-to-end with
/// MSE. Internally the series is divided by its training standard deviation
/// (the extreme degree is invariant to this; the exponential fit stays
/// exponential), which stabilizes optimization on raw counts.
class EalgapForecaster : public NeuralForecaster {
 public:
  explicit EalgapForecaster(EalgapOptions options = {});
  ~EalgapForecaster() override;

  std::string name() const override { return "EALGAP"; }

  const EalgapOptions& options() const { return options_; }

 protected:
  void Initialize(const data::SlidingWindowDataset& dataset,
                  const data::StepRanges& split,
                  const TrainConfig& config) override;
  Var ForwardBatch(const std::vector<data::WindowSample>& batch) override;
  Var ComputeLoss(const Var& predictions,
                  const Tensor& scaled_targets) override;
  Tensor ScaleTargets(const Tensor& targets) const override;
  Tensor InverseScale(const Tensor& predictions) const override;
  nn::Module* module() override;
  Status EncodeConfig(CheckpointConfig* config) const override;
  Status DecodeConfig(
      const std::map<std::string, std::string>& config) override;

 private:
  struct Net;
  EalgapOptions options_;
  int64_t num_regions_ = 0;      ///< N the net was built for
  int64_t history_length_ = 0;   ///< L the net was built for
  float scale_ = 1.f;  ///< training-data std used to normalize counts
  /// Auxiliary Eq. (10) loss from the most recent ForwardBatch; consumed by
  /// the immediately following ComputeLoss call.
  Var pending_degree_loss_;
  std::unique_ptr<Net> net_;
};

}  // namespace core
}  // namespace ealgap

#endif  // EALGAP_CORE_EALGAP_H_
