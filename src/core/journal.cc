#include "core/journal.h"

#include <fstream>
#include <sstream>

#include "common/checksum.h"
#include "common/file_util.h"
#include "common/float_bits.h"

namespace ealgap {
namespace core {

namespace {

constexpr char kJournalMagic[] = "ealgap-journal";
constexpr int kJournalVersion = 1;

/// A journal entry must stay one line: fold any embedded control
/// characters (newlines in a wrapped error message, tabs that would split
/// the CRC field) into spaces.
std::string OneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return out;
}

/// Body of one cell line, without the per-line CRC field.
std::string CellBody(const JournalEntry& e) {
  std::ostringstream os;
  os << "cell " << e.city << " " << e.period << " " << e.scheme << " ";
  if (e.ok) {
    os << "ok " << DoubleBitsHex(e.metrics.er) << " "
       << DoubleBitsHex(e.metrics.msle) << " " << DoubleBitsHex(e.metrics.r2)
       << " " << DoubleBitsHex(e.metrics.rmse) << " "
       << DoubleBitsHex(e.metrics.mae);
  } else {
    os << "fail " << OneLine(e.error);
  }
  return os.str();
}

std::string Serialize(const std::vector<JournalEntry>& entries) {
  std::ostringstream out;
  out << kJournalMagic << " " << kJournalVersion << "\n";
  for (const JournalEntry& e : entries) {
    const std::string body = CellBody(e);
    out << body << "\t" << Crc32Hex(Crc32(body)) << "\n";
  }
  out << "end\n";
  return out.str();
}

Status ParseCell(const std::string& line, const std::string& path,
                 JournalEntry* entry) {
  const size_t tab = line.rfind('\t');
  if (tab == std::string::npos) {
    return Status::ParseError("journal cell line missing CRC field in " + path +
                              ": " + line);
  }
  const std::string body = line.substr(0, tab);
  uint32_t stored = 0;
  if (!ParseCrc32Hex(line.substr(tab + 1), &stored)) {
    return Status::ParseError("bad journal cell CRC in " + path + ": " + line);
  }
  if (stored != Crc32(body)) {
    return Status::ParseError("journal cell CRC mismatch in " + path + ": " +
                              body);
  }
  std::istringstream is(body);
  std::string tag, status;
  if (!(is >> tag >> entry->city >> entry->period >> entry->scheme >>
        status) ||
      tag != "cell" || (status != "ok" && status != "fail")) {
    return Status::ParseError("malformed journal cell in " + path + ": " +
                              body);
  }
  entry->ok = status == "ok";
  if (entry->ok) {
    std::string er, msle, r2, rmse, mae;
    if (!(is >> er >> msle >> r2 >> rmse >> mae) ||
        !ParseDoubleBitsHex(er, &entry->metrics.er) ||
        !ParseDoubleBitsHex(msle, &entry->metrics.msle) ||
        !ParseDoubleBitsHex(r2, &entry->metrics.r2) ||
        !ParseDoubleBitsHex(rmse, &entry->metrics.rmse) ||
        !ParseDoubleBitsHex(mae, &entry->metrics.mae)) {
      return Status::ParseError("bad journal metrics in " + path + ": " + body);
    }
  } else {
    std::getline(is, entry->error);
    const size_t start = entry->error.find_first_not_of(' ');
    entry->error =
        start == std::string::npos ? "" : entry->error.substr(start);
  }
  return Status::OK();
}

}  // namespace

Status ExperimentJournal::Load() {
  entries_.clear();
  std::ifstream in(path_);
  if (!in) return Status::OK();  // fresh sweep: nothing recorded yet
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty journal file " + path_);
  }
  std::istringstream header(line);
  std::string magic;
  int version = 0;
  if (!(header >> magic >> version) || magic != kJournalMagic) {
    return Status::ParseError(path_ + " is not an ealgap experiment journal");
  }
  if (version != kJournalVersion) {
    return Status::InvalidArgument(
        "unsupported journal version " + std::to_string(version) + " in " +
        path_ + " (maximum supported: " + std::to_string(kJournalVersion) +
        ")");
  }
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    JournalEntry entry;
    EALGAP_RETURN_IF_ERROR(ParseCell(line, path_, &entry));
    entries_.push_back(std::move(entry));
  }
  if (!saw_end) {
    return Status::ParseError("truncated journal (missing end marker) in " +
                              path_);
  }
  return Status::OK();
}

bool ExperimentJournal::Has(const std::string& city, const std::string& period,
                            const std::string& scheme) const {
  return Find(city, period, scheme) != nullptr;
}

const JournalEntry* ExperimentJournal::Find(const std::string& city,
                                            const std::string& period,
                                            const std::string& scheme) const {
  for (const JournalEntry& e : entries_) {
    if (e.city == city && e.period == period && e.scheme == scheme) return &e;
  }
  return nullptr;
}

Status ExperimentJournal::Record(const JournalEntry& entry) {
  entries_.push_back(entry);
  Status st = WriteFileAtomic(path_, Serialize(entries_));
  if (!st.ok()) {
    // The cell is not durably recorded; do not pretend otherwise in memory.
    entries_.pop_back();
  }
  return st;
}

}  // namespace core
}  // namespace ealgap
