#include "core/global_impact.h"

#include <cmath>

#include "common/logging.h"

namespace ealgap {
namespace core {

GlobalImpactModule::GlobalImpactModule(int64_t num_regions,
                                       int64_t history_length, int64_t hidden,
                                       Rng& rng,
                                       stats::DistributionFamily family,
                                       int64_t attention_dim)
    : n_(num_regions),
      l_(history_length),
      j_(attention_dim),
      family_(family),
      dec1_(num_regions * history_length, hidden, rng),
      dec2_(hidden, hidden, rng),
      dec3_(hidden, num_regions * 3 * attention_dim, rng),
      pred1_(history_length, hidden, rng),
      pred2_(hidden, hidden, rng),
      pred3_(hidden, 1, rng) {
  EALGAP_CHECK_GE(attention_dim, 1);
  RegisterModule("dec1", &dec1_);
  RegisterModule("dec2", &dec2_);
  RegisterModule("dec3", &dec3_);
  if (j_ > 1) {
    combine_ = std::make_unique<nn::Linear>(j_, 1, rng);
    RegisterModule("combine", combine_.get());
  }
  RegisterModule("pred1", &pred1_);
  RegisterModule("pred2", &pred2_);
  RegisterModule("pred3", &pred3_);
  // Start the attention parameters near identity (W^Q=W^K=W^V ~ 1) and the
  // prediction head positive, so Eq. (11)'s outer ReLU does not begin in
  // its dead zone on non-negative count data.
  const_cast<Tensor&>(dec3_.bias().value()).Fill(1.f);
  const_cast<Tensor&>(pred3_.bias().value()).Fill(1.f);
}

GlobalImpactModule::Output GlobalImpactModule::Forward(const Var& x) const {
  EALGAP_CHECK_EQ(x.value().ndim(), 2);
  const int64_t n = x.value().dim(0);
  const int64_t l = x.value().dim(1);
  EALGAP_CHECK_EQ(n, n_);
  EALGAP_CHECK_EQ(l, l_);

  // A-1: densities under the per-region fitted distribution (Eqs. 3-4).
  // The fit is a data transformation: gradients flow through the attention
  // parameters produced from Z, not through the fit itself.
  Tensor z = stats::RowwisePdf(x.value(), family_);
  Var zv = Var::Leaf(std::move(z));
  // Three FC layers interleaved with Softmax decode the citywide density
  // pattern into per-region attention parameters (Eq. 5).
  Var h = SoftmaxLastDim(dec1_.Forward(Reshape(zv, {1, n * l})));
  h = SoftmaxLastDim(dec2_.Forward(h));
  Var w = Reshape(dec3_.Forward(h), {n, 3 * j_});  // per-region W^Q/K/V
  Var wq = Slice(w, 1, 0, j_);
  Var wk = Slice(w, 1, j_, 2 * j_);
  Var wv = Slice(w, 1, 2 * j_, 3 * j_);

  // A-2: per-region temporal self-attention (Eq. 6). Q[n,l,:] is the
  // scalar history value projected by the region's J-vector (I = 1):
  // outer products via batched matmul.
  Var x3 = Reshape(x, {n, l, 1});
  Var q = BMatMul(x3, Reshape(wq, {n, 1, j_}));  // (N, L, J)
  Var k = BMatMul(x3, Reshape(wk, {n, 1, j_}));
  Var v = BMatMul(x3, Reshape(wv, {n, 1, j_}));
  Var logits = MulScalar(BMatMul(q, TransposeLast2(k)),
                         1.f / std::sqrt(static_cast<float>(j_)));
  Var scores = SoftmaxLastDim(logits);  // (N, L, L)
  Var xg3 = BMatMul(scores, v);         // (N, L, J)
  Output out;
  if (j_ == 1) {
    out.xg_history = Reshape(xg3, {n, l});
  } else {
    out.xg_history = Reshape(combine_->Forward(xg3), {n, l});
  }

  // Eq. 7: three FC layers with ReLU predict X̂g[:, t+1].
  Var p = ReluInPlace(pred1_.Forward(out.xg_history));
  p = ReluInPlace(pred2_.Forward(p));
  out.xg_next = Reshape(pred3_.Forward(p), {n});
  return out;
}

}  // namespace core
}  // namespace ealgap
