#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace ealgap {
namespace stats {

Result<Histogram> Histogram::Build(const std::vector<double>& values,
                                   int bins) {
  if (values.empty()) return Status::InvalidArgument("empty sample");
  if (bins <= 0) return Status::InvalidArgument("bins must be positive");
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  Histogram h;
  h.lo_ = *mn;
  const double span = std::max(*mx - *mn, 1e-12);
  h.width_ = span / bins;
  h.counts_.assign(bins, 0);
  h.total_ = static_cast<int64_t>(values.size());
  for (double v : values) {
    int idx = static_cast<int>((v - h.lo_) / h.width_);
    idx = std::clamp(idx, 0, bins - 1);
    ++h.counts_[idx];
  }
  return h;
}

double Histogram::BinCenter(int i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::Density(int i) const {
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total_) * width_);
}

}  // namespace stats
}  // namespace ealgap
