#ifndef EALGAP_STATS_TIMESERIES_H_
#define EALGAP_STATS_TIMESERIES_H_

#include <algorithm>
#include <vector>

#include "common/result.h"

namespace ealgap {
namespace stats {

/// Sample autocorrelation at the given lags (lag 0 -> 1.0). Used by the
/// data-analysis benches to characterize mobility persistence.
Result<std::vector<double>> Autocorrelation(const std::vector<double>& series,
                                            int max_lag);

/// One-sample Kolmogorov-Smirnov statistic sup_x |F_n(x) - F(x)| against a
/// reference CDF. Smaller = better fit; the distribution-selection bench
/// uses it to compare the exponential and normal families (paper Sec. V-A
/// chose the exponential empirically).
template <typename Cdf>
double KolmogorovSmirnovStatistic(std::vector<double> sample, Cdf cdf) {
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, f - lo, hi - f});
  }
  return d;
}

/// Seasonal-naive one-step error scale: mean |x_t - x_{t-period}| — the
/// denominator of MASE-style comparisons.
Result<double> SeasonalNaiveError(const std::vector<double>& series,
                                  int period);

}  // namespace stats
}  // namespace ealgap

#endif  // EALGAP_STATS_TIMESERIES_H_
