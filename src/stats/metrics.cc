#include "stats/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace ealgap {
namespace stats {

double ErrorRate(const std::vector<double>& pred,
                 const std::vector<double>& truth) {
  EALGAP_CHECK_EQ(pred.size(), truth.size());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    num += std::fabs(truth[i] - pred[i]);
    den += truth[i];
  }
  return num / std::max(den, 1.0);
}

double Msle(const std::vector<double>& pred, const std::vector<double>& truth) {
  EALGAP_CHECK_EQ(pred.size(), truth.size());
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double lp = std::log2(std::max(pred[i], 0.0) + 1.0);
    const double lt = std::log2(std::max(truth[i], 0.0) + 1.0);
    s += std::fabs(lp - lt);
  }
  return s / static_cast<double>(pred.size());
}

double RSquared(const std::vector<double>& pred,
                const std::vector<double>& truth) {
  EALGAP_CHECK_EQ(pred.size(), truth.size());
  if (truth.empty()) return 0.0;
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 0.0) return -1e9;
  return 1.0 - ss_res / ss_tot;
}

double Rmse(const std::vector<double>& pred, const std::vector<double>& truth) {
  EALGAP_CHECK_EQ(pred.size(), truth.size());
  if (pred.empty()) return 0.0;
  double ss = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    ss += (pred[i] - truth[i]) * (pred[i] - truth[i]);
  }
  return std::sqrt(ss / static_cast<double>(pred.size()));
}

double MeanAbsoluteError(const std::vector<double>& pred,
                         const std::vector<double>& truth) {
  EALGAP_CHECK_EQ(pred.size(), truth.size());
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) s += std::fabs(pred[i] - truth[i]);
  return s / static_cast<double>(pred.size());
}

MetricReport ComputeMetrics(const std::vector<double>& pred,
                            const std::vector<double>& truth) {
  MetricReport r;
  r.er = ErrorRate(pred, truth);
  r.msle = Msle(pred, truth);
  r.r2 = RSquared(pred, truth);
  r.rmse = Rmse(pred, truth);
  r.mae = MeanAbsoluteError(pred, truth);
  return r;
}

}  // namespace stats
}  // namespace ealgap
