#include "stats/distribution.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace ealgap {
namespace stats {

namespace {
constexpr double kMinMean = 1e-6;
constexpr double kMinStddev = 1e-6;
}  // namespace

ExponentialDistribution::ExponentialDistribution(double lambda)
    : lambda_(lambda) {
  EALGAP_CHECK_GT(lambda, 0.0);
}

Result<ExponentialDistribution> ExponentialDistribution::Fit(
    const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("exponential fit on empty sample");
  }
  double sum = 0.0;
  for (double v : values) {
    if (v < 0.0) {
      return Status::InvalidArgument("exponential fit on negative value");
    }
    sum += v;
  }
  const double mean = std::max(sum / static_cast<double>(values.size()),
                               kMinMean);
  return ExponentialDistribution(1.0 / mean);
}

double ExponentialDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  return lambda_ * std::exp(-lambda_ * x);
}

double ExponentialDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.0;
  return 1.0 - std::exp(-lambda_ * x);
}

double ExponentialDistribution::LogLikelihood(
    const std::vector<double>& values) const {
  double ll = 0.0;
  for (double v : values) {
    ll += std::log(lambda_) - lambda_ * std::max(v, 0.0);
  }
  return ll;
}

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  EALGAP_CHECK_GT(stddev, 0.0);
}

Result<NormalDistribution> NormalDistribution::Fit(
    const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("normal fit on empty sample");
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  const double stddev =
      std::max(std::sqrt(ss / static_cast<double>(values.size())), kMinStddev);
  return NormalDistribution(mean, stddev);
}

double NormalDistribution::Pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return std::exp(-0.5 * z * z) / (stddev_ * std::sqrt(2.0 * M_PI));
}

double NormalDistribution::Cdf(double x) const {
  return 0.5 * std::erfc(-(x - mean_) / (stddev_ * std::sqrt(2.0)));
}

double NormalDistribution::LogLikelihood(
    const std::vector<double>& values) const {
  double ll = 0.0;
  for (double v : values) ll += std::log(std::max(Pdf(v), 1e-300));
  return ll;
}

Tensor RowwisePdf(const Tensor& x, DistributionFamily family) {
  EALGAP_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0), l = x.dim(1);
  const kernels::KernelTable& t = kernels::Active();
  Tensor z(x.shape());
  const float* px = x.data();
  float* pz = z.data();
  // Reused across calls: RowwisePdf sits on the per-step serve path, where
  // a fresh row buffer every call would be the only heap allocation left.
  static thread_local std::vector<double> row;
  row.resize(l);
  // Parameter fits stay in double (exact per row); the per-element PDF
  // evaluation runs on the float32 SIMD kernels — bit-identical across
  // backends by the kernel-layer contract.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < l; ++j) row[j] = px[i * l + j];
    if (family == DistributionFamily::kExponential) {
      auto fit = ExponentialDistribution::Fit(row);
      EALGAP_CHECK(fit.ok()) << fit.status().ToString();
      t.exp_pdf_row(px + i * l, static_cast<float>(fit->lambda()), pz + i * l,
                    l);
    } else {
      auto fit = NormalDistribution::Fit(row);
      EALGAP_CHECK(fit.ok()) << fit.status().ToString();
      const double stddev = fit->stddev();
      t.normal_pdf_row(px + i * l, static_cast<float>(fit->mean()),
                       static_cast<float>(1.0 / stddev),
                       static_cast<float>(1.0 / (stddev * std::sqrt(2.0 * M_PI))),
                       pz + i * l, l);
    }
  }
  return z;
}

}  // namespace stats
}  // namespace ealgap
