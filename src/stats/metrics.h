#ifndef EALGAP_STATS_METRICS_H_
#define EALGAP_STATS_METRICS_H_

#include <vector>

namespace ealgap {
namespace stats {

/// The paper's evaluation metrics (Sec. VI-B). `pred` and `truth` are
/// flattened over regions and predicted time steps.

/// Error Rate: sum |truth - pred| / sum truth. The denominator is floored
/// at 1 to stay defined on all-zero windows.
double ErrorRate(const std::vector<double>& pred,
                 const std::vector<double>& truth);

/// The paper's "MSLE": mean over samples of |log2(pred+1) - log2(truth+1)|.
/// (Despite the name, the paper's formula is a mean absolute log2 error;
/// we implement the formula as printed.)
double Msle(const std::vector<double>& pred, const std::vector<double>& truth);

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot. Returns -inf
/// guard value (-1e9) when the truth is constant.
double RSquared(const std::vector<double>& pred,
                const std::vector<double>& truth);

double Rmse(const std::vector<double>& pred, const std::vector<double>& truth);
double MeanAbsoluteError(const std::vector<double>& pred,
                         const std::vector<double>& truth);

/// Bundle of all paper metrics for one (scheme, period) cell.
struct MetricReport {
  double er = 0.0;
  double msle = 0.0;
  double r2 = 0.0;
  double rmse = 0.0;
  double mae = 0.0;
};

MetricReport ComputeMetrics(const std::vector<double>& pred,
                            const std::vector<double>& truth);

}  // namespace stats
}  // namespace ealgap

#endif  // EALGAP_STATS_METRICS_H_
