#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace ealgap {
namespace stats {

Result<std::vector<double>> Autocorrelation(const std::vector<double>& series,
                                            int max_lag) {
  if (series.size() < 2) return Status::InvalidArgument("series too short");
  if (max_lag < 0 || static_cast<size_t>(max_lag) >= series.size()) {
    return Status::InvalidArgument("max_lag out of range");
  }
  const double mean = Mean(series);
  double denom = 0.0;
  for (double v : series) denom += (v - mean) * (v - mean);
  if (denom <= 0.0) return Status::FailedPrecondition("constant series");
  std::vector<double> acf(max_lag + 1);
  for (int lag = 0; lag <= max_lag; ++lag) {
    double num = 0.0;
    for (size_t t = lag; t < series.size(); ++t) {
      num += (series[t] - mean) * (series[t - lag] - mean);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

Result<double> SeasonalNaiveError(const std::vector<double>& series,
                                  int period) {
  if (period <= 0 || series.size() <= static_cast<size_t>(period)) {
    return Status::InvalidArgument("period out of range");
  }
  double total = 0.0;
  for (size_t t = period; t < series.size(); ++t) {
    total += std::fabs(series[t] - series[t - period]);
  }
  return total / static_cast<double>(series.size() - period);
}

}  // namespace stats
}  // namespace ealgap
