#ifndef EALGAP_STATS_DISTRIBUTION_H_
#define EALGAP_STATS_DISTRIBUTION_H_

#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace ealgap {
namespace stats {

/// Exponential distribution with rate `lambda` (mean 1/lambda).
///
/// The Global Impact Modeling Module (paper Sec. V-A, Eq. 3-4) fits one per
/// region over the recent L time steps and evaluates the PDF of the
/// observations under it.
class ExponentialDistribution {
 public:
  explicit ExponentialDistribution(double lambda);

  /// Maximum-likelihood fit: lambda = 1 / mean(values). Fails on empty
  /// input or non-positive mean. A tiny epsilon keeps all-zero windows
  /// (a station with no trips overnight) finite.
  static Result<ExponentialDistribution> Fit(const std::vector<double>& values);

  double lambda() const { return lambda_; }
  double Mean() const { return 1.0 / lambda_; }
  double Pdf(double x) const;
  double Cdf(double x) const;
  double LogLikelihood(const std::vector<double>& values) const;

 private:
  double lambda_;
};

/// Normal distribution (used by ablation (iv): replacing the exponential in
/// the Global Impact Modeling Module).
class NormalDistribution {
 public:
  NormalDistribution(double mean, double stddev);

  /// MLE fit; stddev is floored at a small epsilon for constant inputs.
  static Result<NormalDistribution> Fit(const std::vector<double>& values);

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double Pdf(double x) const;
  double Cdf(double x) const;
  double LogLikelihood(const std::vector<double>& values) const;

 private:
  double mean_;
  double stddev_;
};

/// Which distribution family the Global Impact Modeling Module fits.
enum class DistributionFamily { kExponential, kNormal };

/// Row-wise PDF transform for Module A: fits the chosen family to each row
/// (region) of `x` (N x L) and returns the matrix of probability densities
/// Z (N x L), Eq. (3)-(4) of the paper.
Tensor RowwisePdf(const Tensor& x, DistributionFamily family);

}  // namespace stats
}  // namespace ealgap

#endif  // EALGAP_STATS_DISTRIBUTION_H_
