#ifndef EALGAP_STATS_DESCRIPTIVE_H_
#define EALGAP_STATS_DESCRIPTIVE_H_

#include <vector>

namespace ealgap {
namespace stats {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Population variance (divides by n); 0 for fewer than 1 element.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Linear-interpolation quantile, q in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> v, double q);

/// Median (Quantile 0.5).
double Median(std::vector<double> v);

/// Pearson correlation of two equal-length series; 0 when degenerate.
double Correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Skewness (population); heavy-tail indicator used by the data analysis.
double Skewness(const std::vector<double>& v);

}  // namespace stats
}  // namespace ealgap

#endif  // EALGAP_STATS_DESCRIPTIVE_H_
