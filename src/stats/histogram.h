#ifndef EALGAP_STATS_HISTOGRAM_H_
#define EALGAP_STATS_HISTOGRAM_H_

#include <vector>

#include "common/result.h"

namespace ealgap {
namespace stats {

/// Equal-width histogram (used to regenerate Fig. 7: empirical pick-up
/// density vs. fitted exponential PDF).
class Histogram {
 public:
  /// Builds `bins` equal-width bins spanning [min, max] of `values`.
  /// Fails on empty input or non-positive bin count.
  static Result<Histogram> Build(const std::vector<double>& values, int bins);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  double bin_width() const { return width_; }
  double lo() const { return lo_; }

  /// Center of bin i.
  double BinCenter(int i) const;
  /// Raw count of bin i.
  int64_t Count(int i) const { return counts_[i]; }
  /// Empirical probability density of bin i (counts normalized so the
  /// histogram integrates to 1).
  double Density(int i) const;

  int64_t total() const { return total_; }

 private:
  Histogram() = default;
  double lo_ = 0.0;
  double width_ = 1.0;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;
};

}  // namespace stats
}  // namespace ealgap

#endif  // EALGAP_STATS_HISTOGRAM_H_
