#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ealgap {
namespace stats {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 1) return 0.0;
  const double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Min(const std::vector<double>& v) {
  EALGAP_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  EALGAP_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double Quantile(std::vector<double> v, double q) {
  EALGAP_CHECK(!v.empty());
  EALGAP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  EALGAP_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a), mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom > 0.0 ? cov / denom : 0.0;
}

double Skewness(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  const double sd = StdDev(v);
  if (sd == 0.0) return 0.0;
  double s3 = 0.0;
  for (double x : v) s3 += std::pow((x - m) / sd, 3.0);
  return s3 / static_cast<double>(v.size());
}

}  // namespace stats
}  // namespace ealgap
