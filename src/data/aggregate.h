#ifndef EALGAP_DATA_AGGREGATE_H_
#define EALGAP_DATA_AGGREGATE_H_

#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "data/partition.h"
#include "data/trip.h"
#include "tensor/tensor.h"

namespace ealgap {
namespace data {

/// The region x time-step mobility matrix X plus its calendar, the form all
/// forecasters consume (paper Sec. IV-A: T = 24 steps/day).
struct MobilitySeries {
  Tensor counts;  ///< (num_regions, total_steps) pick-up volumes
  int num_regions = 0;
  int steps_per_day = 24;
  CivilDate start_date;
  int num_days = 0;

  int64_t total_steps() const {
    return static_cast<int64_t>(num_days) * steps_per_day;
  }
  /// Calendar helpers for a step index.
  CivilDate DateOfStep(int64_t step) const;
  int HourOfStep(int64_t step) const;
  bool IsWeekendStep(int64_t step) const;

  /// Value accessor.
  float At(int region, int64_t step) const;
};

/// Which trip endpoint a series counts: pick-ups (paper default) or
/// drop-offs (the "arrivals" view mentioned in the paper's introduction).
enum class CountKind { kPickups, kDropoffs };

/// Counts trip starts (or ends) into (region, hourly step) cells. Trips
/// outside [start_date, start_date + num_days) or at unknown stations are
/// ignored (and tallied in `dropped` when provided).
Result<MobilitySeries> AggregateTrips(const std::vector<TripRecord>& trips,
                                      const std::vector<Station>& stations,
                                      const RegionPartition& partition,
                                      const CivilDate& start_date,
                                      int num_days, size_t* dropped = nullptr,
                                      CountKind kind = CountKind::kPickups);

/// Sub-series holding regions [begin, end) of `series`, same calendar.
/// This is the serving daemon's shard-partitioning primitive: one city
/// series splits into per-shard slices that each get their own model and
/// predictor. The slice owns its counts (a copy), so shards never share
/// mutable state.
Result<MobilitySeries> SliceRegions(const MobilitySeries& series, int begin,
                                    int end);

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_AGGREGATE_H_
