#ifndef EALGAP_DATA_DATASET_H_
#define EALGAP_DATA_DATASET_H_

#include <vector>

#include "common/result.h"
#include "data/aggregate.h"
#include "tensor/tensor.h"

namespace ealgap {
namespace data {

struct DatasetOptions {
  /// L: length of the near-history window (paper Sec. IV-A).
  int history_length = 5;
  /// M: number of day-offset windows F_1..F_M.
  int num_windows = 3;
  /// How many previous same-time-of-day, same-day-type records enter the
  /// extreme-degree mean/std (paper Sec. V-B-1 uses "previous M records";
  /// kept as its own knob for the sensitivity study).
  int norm_history = 3;
};

/// One training/evaluation sample for next-step prediction at target_step.
struct WindowSample {
  Tensor x;        ///< (N, L)    near history X[:, t-L+1 : t]
  Tensor f;        ///< (M, N, L) windows F_m = X[:, t-T(M-m)-L+1 : t-T(M-m)]
  Tensor f_mu;     ///< (M, N, L) same-time-period means aligned with f
  Tensor f_sigma;  ///< (M, N, L) same-time-period std devs aligned with f
  Tensor target;   ///< (N)       ground truth X[:, t+1]
  int64_t target_step = 0;  ///< index of t+1 in the series

  /// Per-window next-step supervision for Eq. (10): for each window m the
  /// GRU predicts the extreme degree at step t - T(M-m) + 1; these tensors
  /// carry X, mu, sigma at those M steps (the last row is the target step
  /// itself, whose X equals `target`).
  Tensor w_next;        ///< (M, N)
  Tensor w_next_mu;     ///< (M, N)
  Tensor w_next_sigma;  ///< (M, N)
};

/// Produces EALGAP-ready samples from a MobilitySeries.
///
/// On construction it precomputes, for every (region, step), the mean and
/// standard deviation over {the step itself and the `norm_history` previous
/// records at the same time step of day on the same day type
/// (weekday/weekend)} — the temporally-matched statistics of the paper's
/// Eq. (9), which avoid flagging rush hours as extremes.
class SlidingWindowDataset {
 public:
  /// An empty dataset; only valid as an assignment target for Create().
  SlidingWindowDataset() = default;

  static Result<SlidingWindowDataset> Create(MobilitySeries series,
                                             DatasetOptions options);

  /// Smallest target step with fully in-range windows and meaningful
  /// normalization statistics.
  int64_t MinTargetStep() const;

  /// Valid target steps in [begin, end) (clamped to the feasible range).
  std::vector<int64_t> TargetSteps(int64_t begin, int64_t end) const;

  /// Builds the sample predicting step `target_step`. Requires
  /// target_step in [MinTargetStep(), total_steps).
  WindowSample MakeSample(int64_t target_step) const;

  /// Deep copy (fresh tensor storage). Use before OverwriteStep so the
  /// original stays intact.
  SlidingWindowDataset Clone() const;

  /// Replaces the counts of every region at `step` and refreshes the
  /// matched statistics that depend on that value (same hour of day, at
  /// and after `step`). Enables recursive multi-step rollout: write the
  /// model's own prediction, then predict the next step.
  Status OverwriteStep(int64_t step, const std::vector<double>& values);

  const MobilitySeries& series() const { return series_; }
  const DatasetOptions& options() const { return options_; }
  /// Precomputed per-(region, step) matched statistics.
  const Tensor& mu() const { return mu_; }
  const Tensor& sigma() const { return sigma_; }

  /// Dense per-region rows of one step — counts and the matched Eq. (9)
  /// statistics. The seeding interface of serve::OnlinePredictor, which
  /// copies a history prefix into its incremental accumulators. Requires
  /// step in [0, total_steps).
  std::vector<float> StepCounts(int64_t step) const;
  std::vector<float> StepMu(int64_t step) const;
  std::vector<float> StepSigma(int64_t step) const;

 private:
  /// Recomputes mu_/sigma_ for all regions at one step.
  void RefreshMatchedStats(int64_t step);

  MobilitySeries series_;
  DatasetOptions options_;
  Tensor mu_;     // (N, total_steps)
  Tensor sigma_;  // (N, total_steps)
};

/// Chronological split of target steps following the paper: the last 15
/// days are held out — 5 for validation, 10 for testing — and everything
/// before is training.
struct SplitSpec {
  int val_days = 5;
  int test_days = 10;
};

struct StepRanges {
  int64_t train_begin = 0, train_end = 0;
  int64_t val_begin = 0, val_end = 0;
  int64_t test_begin = 0, test_end = 0;
};

Result<StepRanges> MakeChronoSplit(const SlidingWindowDataset& dataset,
                                   const SplitSpec& spec = {});

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_DATASET_H_
