#include "data/aggregate.h"

#include <map>
#include <string>

#include "tensor/ops.h"

namespace ealgap {
namespace data {

CivilDate MobilitySeries::DateOfStep(int64_t step) const {
  return AddDays(start_date, step / steps_per_day);
}

int MobilitySeries::HourOfStep(int64_t step) const {
  const int64_t within_day = step % steps_per_day;
  return static_cast<int>(within_day * 24 / steps_per_day);
}

bool MobilitySeries::IsWeekendStep(int64_t step) const {
  return IsWeekend(DateOfStep(step));
}

float MobilitySeries::At(int region, int64_t step) const {
  return counts.data()[region * total_steps() + step];
}

Result<MobilitySeries> AggregateTrips(const std::vector<TripRecord>& trips,
                                      const std::vector<Station>& stations,
                                      const RegionPartition& partition,
                                      const CivilDate& start_date,
                                      int num_days, size_t* dropped,
                                      CountKind kind) {
  if (stations.size() != partition.station_region.size()) {
    return Status::InvalidArgument(
        "partition size does not match station count");
  }
  if (num_days <= 0) return Status::InvalidArgument("num_days must be > 0");

  std::map<int, int> station_to_region;
  for (size_t i = 0; i < stations.size(); ++i) {
    station_to_region[stations[i].id] = partition.station_region[i];
  }

  MobilitySeries series;
  series.num_regions = partition.num_regions;
  series.steps_per_day = 24;
  series.start_date = start_date;
  series.num_days = num_days;
  const int64_t steps = series.total_steps();
  series.counts = Tensor::Zeros({series.num_regions, steps});
  float* counts = series.counts.data();

  const int64_t epoch_start = DaysSinceEpoch(start_date) * 86400;
  const int64_t epoch_end = epoch_start + static_cast<int64_t>(num_days) * 86400;
  size_t local_dropped = 0;
  for (const TripRecord& t : trips) {
    const int64_t when =
        kind == CountKind::kPickups ? t.start_seconds : t.end_seconds;
    const int station =
        kind == CountKind::kPickups ? t.start_station : t.end_station;
    if (when < epoch_start || when >= epoch_end) {
      ++local_dropped;
      continue;
    }
    const auto it = station_to_region.find(station);
    if (it == station_to_region.end()) {
      ++local_dropped;
      continue;
    }
    const int64_t step = (when - epoch_start) / 3600;
    counts[it->second * steps + step] += 1.f;
  }
  if (dropped != nullptr) *dropped = local_dropped;
  return series;
}

Result<MobilitySeries> SliceRegions(const MobilitySeries& series, int begin,
                                    int end) {
  if (begin < 0 || end > series.num_regions || begin >= end) {
    return Status::InvalidArgument(
        "SliceRegions: bad region range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") of " + std::to_string(series.num_regions));
  }
  MobilitySeries out;
  out.counts = ops::Slice(series.counts, 0, begin, end);
  out.num_regions = end - begin;
  out.steps_per_day = series.steps_per_day;
  out.start_date = series.start_date;
  out.num_days = series.num_days;
  return out;
}

}  // namespace data
}  // namespace ealgap
