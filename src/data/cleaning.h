#ifndef EALGAP_DATA_CLEANING_H_
#define EALGAP_DATA_CLEANING_H_

#include <vector>

#include "data/trip.h"

namespace ealgap {
namespace data {

/// The paper's preprocessing rules (Sec. VI-B):
///  1. drop trips with timestamp errors (unparseable, or end <= start),
///  2. drop trips shorter than one minute,
///  3. (bike data) drop stations whose average hourly pick-ups fall below
///     `min_avg_hourly_pickups` and their trips.
struct CleaningOptions {
  int64_t min_duration_seconds = 60;
  /// Disabled when <= 0 (the taxi datasets keep all zones).
  double min_avg_hourly_pickups = 0.0;
  /// Observation window used for rule 3's hourly average.
  int64_t window_hours = 1;
};

struct CleaningReport {
  size_t input_trips = 0;
  size_t removed_bad_timestamps = 0;
  size_t removed_short = 0;
  size_t removed_dead_station = 0;
  size_t kept = 0;
  std::vector<int> removed_station_ids;
};

/// Applies the rules; returns the surviving trips and fills `report`.
/// `stations` is pruned in place when rule 3 removes stations.
std::vector<TripRecord> CleanTrips(const std::vector<TripRecord>& trips,
                                   std::vector<Station>& stations,
                                   const CleaningOptions& options,
                                   CleaningReport* report);

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_CLEANING_H_
