#include "data/dataset_configs.h"

#include "common/logging.h"

namespace ealgap {
namespace data {

const char* CityName(City city) {
  switch (city) {
    case City::kNycBike:
      return "nyc_bike";
    case City::kChicagoBike:
      return "chicago_bike";
    case City::kNycTaxi:
      return "nyc_taxi";
    case City::kChicagoTaxi:
      return "chicago_taxi";
  }
  return "unknown";
}

const char* PeriodName(Period period) {
  switch (period) {
    case Period::kNormal:
      return "normal";
    case Period::kWeather:
      return "weather";
    case Period::kHoliday:
      return "holiday";
  }
  return "unknown";
}

std::vector<City> AllCities() {
  return {City::kNycBike, City::kChicagoBike, City::kNycTaxi,
          City::kChicagoTaxi};
}

std::vector<Period> AllPeriods() {
  return {Period::kNormal, Period::kWeather, Period::kHoliday};
}

std::string PeriodLabel(City city, Period period) {
  if (period == Period::kNormal) return "Normal";
  switch (city) {
    case City::kNycBike:
      return period == Period::kWeather ? "Hurricane" : "Christmas";
    case City::kChicagoBike:
    case City::kChicagoTaxi:
      return period == Period::kWeather ? "Rainstorm" : "Thanksgiving";
    case City::kNycTaxi:
      return period == Period::kWeather ? "WindGust" : "MemorialDay";
  }
  return "Unknown";
}

namespace {

// Adds the light training-period weather days every real dataset contains
// (so training sees some extremes, as the actual feeds do).
void AddTrainingWeather(CityConfig& city) {
  AnomalyEvent mild1;
  mild1.kind = EventKind::kMildWeather;
  mild1.start_date = AddDays(city.start_date, 21);
  mild1.end_date = AddDays(city.start_date, 22);
  mild1.severity = DefaultSeverity(EventKind::kMildWeather);
  AnomalyEvent mild2 = mild1;
  mild2.start_date = AddDays(city.start_date, 47);
  mild2.end_date = AddDays(city.start_date, 47);
  mild2.severity = 0.15;
  city.events.push_back(mild1);
  city.events.push_back(mild2);
}

// Places the headline anomaly inside the 10 test days. `event_day` is the
// day index (0-based) of the event start; 90-day series test window is
// days 80..89.
void AddTestEvent(CityConfig& city, EventKind kind, int event_day,
                  int duration_days) {
  AnomalyEvent e;
  e.kind = kind;
  e.start_date = AddDays(city.start_date, event_day);
  e.end_date = AddDays(city.start_date, event_day + duration_days - 1);
  e.severity = DefaultSeverity(kind);
  city.events.push_back(e);
}

}  // namespace

PeriodConfig MakePeriodConfig(City city, Period period, uint64_t seed,
                              double scale) {
  PeriodConfig cfg;
  cfg.city = city;
  cfg.period = period;
  cfg.label = PeriodLabel(city, period);

  CityConfig& gen = cfg.generator;
  gen.num_days = 90;
  gen.seed = seed + static_cast<uint64_t>(city) * 101 +
             static_cast<uint64_t>(period) * 17;
  gen.dirty_fraction = 0.004;

  switch (city) {
    case City::kNycBike:
      gen.name = "nyc_bike";
      gen.num_stations = 347;
      gen.num_regions = 20;
      gen.center_lon = -73.97;
      gen.center_lat = 40.73;
      gen.base_region_hour_rate = 14.0 * scale;
      gen.taxi_profile = false;
      cfg.dataset.history_length = 5;
      cfg.dataset.num_windows = 3;
      cfg.partition.num_regions = 20;
      cfg.cleaning.min_avg_hourly_pickups = 0.05;
      break;
    case City::kChicagoBike:
      gen.name = "chicago_bike";
      gen.num_stations = 200;  // Divvy's 799 thinned for the 1-core host
      gen.num_regions = 18;
      gen.center_lon = -87.63;
      gen.center_lat = 41.88;
      gen.base_region_hour_rate = 8.0 * scale;
      gen.taxi_profile = false;
      cfg.dataset.history_length = 2;
      cfg.dataset.num_windows = 2;
      cfg.partition.num_regions = 18;
      cfg.cleaning.min_avg_hourly_pickups = 0.05;
      break;
    case City::kNycTaxi:
      gen.name = "nyc_taxi";
      gen.num_stations = 80;  // pick-up zone centroids
      gen.num_regions = 20;
      gen.center_lon = -73.97;
      gen.center_lat = 40.75;
      gen.base_region_hour_rate = 16.0 * scale;
      gen.taxi_profile = true;
      cfg.dataset.history_length = 5;
      cfg.dataset.num_windows = 3;
      cfg.partition.num_regions = 20;
      cfg.cleaning.min_avg_hourly_pickups = 0.0;
      break;
    case City::kChicagoTaxi:
      gen.name = "chicago_taxi";
      gen.num_stations = 77;
      gen.num_regions = 18;
      gen.center_lon = -87.63;
      gen.center_lat = 41.88;
      gen.base_region_hour_rate = 6.0 * scale;
      gen.taxi_profile = true;
      cfg.dataset.history_length = 2;
      cfg.dataset.num_windows = 2;
      cfg.partition.num_regions = 18;
      cfg.cleaning.min_avg_hourly_pickups = 0.0;
      break;
  }
  cfg.dataset.norm_history = cfg.dataset.num_windows;
  cfg.partition.method = PartitionMethod::kKMeans;
  cfg.partition.seed = seed;

  // Start dates chosen so the 90-day series ends on the paper's test
  // period, with the event on its historical date.
  switch (city) {
    case City::kNycBike:
      if (period == Period::kNormal) {
        gen.start_date = {2020, 6, 30};  // ends 09/27; test 09/18-09/27
      } else if (period == Period::kWeather) {
        gen.start_date = {2020, 5, 12};  // ends 08/09; Isaias on 08/04
        AddTestEvent(gen, EventKind::kHurricane, /*event_day=*/84, 1);
      } else {
        gen.start_date = {2020, 10, 3};  // ends 12/31; Christmas 12/24-25
        AddTestEvent(gen, EventKind::kHoliday, 82, 2);
      }
      break;
    case City::kChicagoBike:
      if (period == Period::kNormal) {
        gen.start_date = {2021, 3, 13};  // ends 06/10
      } else if (period == Period::kWeather) {
        gen.start_date = {2021, 8, 3};  // ends 10/31; storm 10/24-25
        AddTestEvent(gen, EventKind::kRainstorm, 82, 2);
      } else {
        gen.start_date = {2021, 9, 2};  // ends 11/30; Thanksgiving 11/25-26
        AddTestEvent(gen, EventKind::kHoliday, 84, 2);
      }
      break;
    case City::kNycTaxi:
      if (period == Period::kNormal) {
        gen.start_date = {2016, 1, 31};  // ends 04/29
      } else if (period == Period::kWeather) {
        gen.start_date = {2016, 1, 11};  // ends 04/09; gusts 04/03-04
        AddTestEvent(gen, EventKind::kWindGust, 83, 2);
      } else {
        gen.start_date = {2016, 3, 7};  // ends 06/04; Memorial Day 05/30
        AddTestEvent(gen, EventKind::kHoliday, 84, 1);
      }
      break;
    case City::kChicagoTaxi:
      if (period == Period::kNormal) {
        gen.start_date = {2021, 3, 13};
      } else if (period == Period::kWeather) {
        gen.start_date = {2021, 8, 3};
        AddTestEvent(gen, EventKind::kRainstorm, 82, 2);
      } else {
        gen.start_date = {2021, 9, 2};
        AddTestEvent(gen, EventKind::kHoliday, 84, 2);
      }
      break;
  }
  AddTrainingWeather(gen);
  return cfg;
}

}  // namespace data
}  // namespace ealgap
