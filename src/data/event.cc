#include "data/event.h"

#include <algorithm>

namespace ealgap {
namespace data {

const char* EventKindToString(EventKind kind) {
  switch (kind) {
    case EventKind::kHurricane:
      return "hurricane";
    case EventKind::kRainstorm:
      return "rainstorm";
    case EventKind::kWindGust:
      return "wind_gust";
    case EventKind::kHoliday:
      return "holiday";
    case EventKind::kMildWeather:
      return "mild_weather";
  }
  return "unknown";
}

bool AnomalyEvent::Covers(const CivilDate& date) const {
  const int64_t d = DaysSinceEpoch(date);
  return d >= DaysSinceEpoch(start_date) && d <= DaysSinceEpoch(end_date);
}

double DefaultSeverity(EventKind kind) {
  switch (kind) {
    case EventKind::kHurricane:
      return 0.27;  // Fig. 5: 19%-34% regional drops, ~26% average
    case EventKind::kRainstorm:
      return 0.30;
    case EventKind::kWindGust:
      return 0.20;
    case EventKind::kHoliday:
      return 0.40;  // Fig. 13c: Christmas peaks ~1/3 of normal peaks
    case EventKind::kMildWeather:
      return 0.12;
  }
  return 0.2;
}

double EventHourMultiplier(const AnomalyEvent& event, double region_severity,
                           int hour, int onset_hour, int end_hour) {
  if (event.kind == EventKind::kHoliday) {
    // Flat volume reduction; the day-shape change is applied by the
    // generator via the weekend profile.
    return 1.0 - region_severity;
  }
  // Weather events: full drop inside [onset, end], linear 2-hour shoulders.
  double intensity = 0.0;
  if (hour >= onset_hour && hour <= end_hour) {
    intensity = 1.0;
  } else if (hour >= onset_hour - 2 && hour < onset_hour) {
    intensity = (hour - (onset_hour - 2)) / 2.0;
  } else if (hour > end_hour && hour <= end_hour + 2) {
    intensity = ((end_hour + 2) - hour) / 2.0;
  }
  return 1.0 - region_severity * std::clamp(intensity, 0.0, 1.0);
}

}  // namespace data
}  // namespace ealgap
