#include "data/scaler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ealgap {
namespace data {

void MinMaxScaler::Fit(const Tensor& t) {
  EALGAP_CHECK(t.defined());
  const float* p = t.data();
  lo_ = p[0];
  hi_ = p[0];
  for (int64_t i = 1; i < t.numel(); ++i) {
    lo_ = std::min(lo_, p[i]);
    hi_ = std::max(hi_, p[i]);
  }
  if (hi_ - lo_ < 1e-6f) hi_ = lo_ + 1e-6f;
}

Tensor MinMaxScaler::Transform(const Tensor& t) const {
  Tensor out(t.shape());
  const float* p = t.data();
  float* q = out.data();
  const float scale = 2.f / (hi_ - lo_);
  for (int64_t i = 0; i < t.numel(); ++i) q[i] = (p[i] - lo_) * scale - 1.f;
  return out;
}

Tensor MinMaxScaler::Inverse(const Tensor& t) const {
  Tensor out(t.shape());
  const float* p = t.data();
  float* q = out.data();
  const float scale = (hi_ - lo_) / 2.f;
  for (int64_t i = 0; i < t.numel(); ++i) q[i] = (p[i] + 1.f) * scale + lo_;
  return out;
}

void StandardScaler::Fit(const Tensor& t) {
  EALGAP_CHECK(t.defined());
  EALGAP_CHECK_GT(t.numel(), 0);
  const float* p = t.data();
  double sum = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) sum += p[i];
  mean_ = static_cast<float>(sum / t.numel());
  double ss = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    ss += (p[i] - mean_) * (p[i] - mean_);
  }
  stddev_ = static_cast<float>(std::sqrt(ss / t.numel()));
  if (stddev_ < 1e-6f) stddev_ = 1e-6f;
}

Tensor StandardScaler::Transform(const Tensor& t) const {
  Tensor out(t.shape());
  const float* p = t.data();
  float* q = out.data();
  for (int64_t i = 0; i < t.numel(); ++i) q[i] = (p[i] - mean_) / stddev_;
  return out;
}

Tensor StandardScaler::Inverse(const Tensor& t) const {
  Tensor out(t.shape());
  const float* p = t.data();
  float* q = out.data();
  for (int64_t i = 0; i < t.numel(); ++i) q[i] = p[i] * stddev_ + mean_;
  return out;
}

}  // namespace data
}  // namespace ealgap
