#ifndef EALGAP_DATA_DATASET_CONFIGS_H_
#define EALGAP_DATA_DATASET_CONFIGS_H_

#include <string>
#include <vector>

#include "data/cleaning.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic_city.h"

namespace ealgap {
namespace data {

/// The paper's four mobility datasets (Sec. VI-A).
enum class City { kNycBike, kChicagoBike, kNycTaxi, kChicagoTaxi };

/// The three evaluation periods per dataset (Sec. VI-B): a quiet stretch, a
/// weather anomaly, and a public holiday.
enum class Period { kNormal, kWeather, kHoliday };

const char* CityName(City city);
/// Machine-readable period name ("normal" / "weather" / "holiday") —
/// city-independent, unlike the table label below. Used as a stable key in
/// experiment journals and per-cell file names.
const char* PeriodName(Period period);
std::vector<City> AllCities();
std::vector<Period> AllPeriods();

/// Column-group label used in the paper's tables, e.g. NYC bike's weather
/// period is "Hurricane", Chicago's is "Rainstorm".
std::string PeriodLabel(City city, Period period);

/// Everything needed to run one (dataset, period) experiment end to end.
struct PeriodConfig {
  City city = City::kNycBike;
  Period period = Period::kNormal;
  std::string label;          ///< e.g. "Hurricane"
  CityConfig generator;       ///< synthetic feed (event lands in test days)
  DatasetOptions dataset;     ///< paper's L and M for this city
  PartitionOptions partition; ///< paper's region counts (20 NYC / 18 Chicago)
  CleaningOptions cleaning;
};

/// Builds the paper-faithful configuration. `scale` multiplies trip volume
/// (1.0 = fast default; larger approaches paper magnitudes); `seed` drives
/// every stochastic choice.
PeriodConfig MakePeriodConfig(City city, Period period, uint64_t seed = 7,
                              double scale = 1.0);

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_DATASET_CONFIGS_H_
