#include "data/cleaning.h"

#include <algorithm>
#include <map>
#include <set>

namespace ealgap {
namespace data {

std::vector<TripRecord> CleanTrips(const std::vector<TripRecord>& trips,
                                   std::vector<Station>& stations,
                                   const CleaningOptions& options,
                                   CleaningReport* report) {
  CleaningReport local;
  local.input_trips = trips.size();

  std::vector<TripRecord> pass1;
  pass1.reserve(trips.size());
  int64_t min_start = INT64_MAX, max_start = INT64_MIN;
  for (const TripRecord& t : trips) {
    if (t.start_seconds <= 0 || t.end_seconds <= 0 ||
        t.end_seconds <= t.start_seconds) {
      ++local.removed_bad_timestamps;
      continue;
    }
    if (t.end_seconds - t.start_seconds < options.min_duration_seconds) {
      ++local.removed_short;
      continue;
    }
    min_start = std::min(min_start, t.start_seconds);
    max_start = std::max(max_start, t.start_seconds);
    pass1.push_back(t);
  }

  if (options.min_avg_hourly_pickups > 0.0 && !pass1.empty()) {
    const double observed_hours = std::max<double>(
        1.0, static_cast<double>(max_start - min_start) / 3600.0);
    std::map<int, int64_t> pickups;
    for (const TripRecord& t : pass1) ++pickups[t.start_station];
    std::set<int> dead;
    for (const Station& s : stations) {
      const auto it = pickups.find(s.id);
      const double avg =
          it == pickups.end()
              ? 0.0
              : static_cast<double>(it->second) / observed_hours;
      if (avg < options.min_avg_hourly_pickups) dead.insert(s.id);
    }
    if (!dead.empty()) {
      local.removed_station_ids.assign(dead.begin(), dead.end());
      stations.erase(std::remove_if(stations.begin(), stations.end(),
                                    [&](const Station& s) {
                                      return dead.count(s.id) > 0;
                                    }),
                     stations.end());
      std::vector<TripRecord> pass2;
      pass2.reserve(pass1.size());
      for (const TripRecord& t : pass1) {
        if (dead.count(t.start_station)) {
          ++local.removed_dead_station;
        } else {
          pass2.push_back(t);
        }
      }
      pass1 = std::move(pass2);
    }
  }

  local.kept = pass1.size();
  if (report != nullptr) *report = std::move(local);
  return pass1;
}

}  // namespace data
}  // namespace ealgap
