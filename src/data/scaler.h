#ifndef EALGAP_DATA_SCALER_H_
#define EALGAP_DATA_SCALER_H_

#include "tensor/tensor.h"

namespace ealgap {
namespace data {

/// Min-max scaler onto [-1, 1] (ST-ResNet trains against a tanh head).
/// Fit on training data only; Transform/Inverse apply everywhere.
class MinMaxScaler {
 public:
  /// Fits to the value range of `t` (any shape).
  void Fit(const Tensor& t);
  Tensor Transform(const Tensor& t) const;
  Tensor Inverse(const Tensor& t) const;
  float lo() const { return lo_; }
  float hi() const { return hi_; }

 private:
  float lo_ = 0.f;
  float hi_ = 1.f;
};

/// Z-score scaler (per-tensor mean/std), used by the recurrent baselines.
class StandardScaler {
 public:
  void Fit(const Tensor& t);
  Tensor Transform(const Tensor& t) const;
  Tensor Inverse(const Tensor& t) const;
  float mean() const { return mean_; }
  float stddev() const { return stddev_; }
  /// Reinstates a previously fitted state (checkpoint restore).
  void Restore(float mean, float stddev) {
    mean_ = mean;
    stddev_ = stddev;
  }

 private:
  float mean_ = 0.f;
  float stddev_ = 1.f;
};

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_SCALER_H_
