#ifndef EALGAP_DATA_EVENT_H_
#define EALGAP_DATA_EVENT_H_

#include <string>
#include <vector>

#include "common/time_util.h"

namespace ealgap {
namespace data {

/// Categories of anomaly events studied in the paper (Sec. VI).
enum class EventKind {
  kHurricane,   ///< e.g. Hurricane Isaias, NYC 08/04/2020
  kRainstorm,   ///< e.g. Chicago heavy rainstorm 10/24-25/2021
  kWindGust,    ///< e.g. NYC wind gust + freezing rain 04/03-04/2016
  kHoliday,     ///< e.g. Christmas, Thanksgiving, Memorial Day
  kMildWeather  ///< minor rain days sprinkled into training periods
};

const char* EventKindToString(EventKind kind);

/// One anomaly event on the calendar. Severity is the citywide average
/// fractional mobility drop at the event's core hours; per-region severity
/// varies around it (the paper observed 19%-34% region drops for Isaias).
struct AnomalyEvent {
  EventKind kind = EventKind::kMildWeather;
  CivilDate start_date;
  CivilDate end_date;  ///< inclusive
  double severity = 0.25;

  /// True when `date` falls inside [start_date, end_date].
  bool Covers(const CivilDate& date) const;
};

/// Default severity per kind (tuned to the magnitudes in the paper's
/// Figs. 4-5 and 13).
double DefaultSeverity(EventKind kind);

/// Multiplicative mobility factor for an event at a given hour of day.
///
/// Weather events (hurricane/rainstorm/wind gust) suppress mobility with a
/// region-specific drop `region_severity`, strongest between the region's
/// onset and end hours (paper Fig. 4: roughly 10am-9pm) and tapering
/// outside. Holidays reshape the day: the commute double-peak collapses
/// (handled by the generator switching to the weekend profile) and overall
/// volume drops by `region_severity`.
double EventHourMultiplier(const AnomalyEvent& event, double region_severity,
                           int hour, int onset_hour, int end_hour);

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_EVENT_H_
