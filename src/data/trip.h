#ifndef EALGAP_DATA_TRIP_H_
#define EALGAP_DATA_TRIP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time_util.h"

namespace ealgap {
namespace data {

/// A mobility station (bike dock group or taxi pick-up zone centroid).
struct Station {
  int id = 0;
  double lon = 0.0;
  double lat = 0.0;
};

/// One trip record, the unit of the raw mobility datasets (Citi/Divvy/TLC).
/// Times are Unix seconds.
struct TripRecord {
  int64_t start_seconds = 0;
  int64_t end_seconds = 0;
  int start_station = 0;
  int end_station = 0;
};

/// Writes trips in the interchange CSV schema:
///   started_at,ended_at,start_station_id,end_station_id
/// with "YYYY-MM-DD HH:MM:SS" timestamps (mirrors the public feeds).
Status WriteTripsCsv(const std::string& path,
                     const std::vector<TripRecord>& trips);

/// Reads trips written by WriteTripsCsv. Rows with malformed timestamps are
/// *kept* with start_seconds = end_seconds = 0 so the cleaning stage (not
/// the parser) decides their fate — matching the paper's pipeline, which
/// filters "trips with errors in the timestamps" as an explicit step.
Result<std::vector<TripRecord>> ReadTripsCsv(const std::string& path);

/// Writes stations as: station_id,lon,lat.
Status WriteStationsCsv(const std::string& path,
                        const std::vector<Station>& stations);

/// Reads stations written by WriteStationsCsv. Parsing is strict: a row
/// whose id or coordinates are not clean finite numbers yields a
/// kParseError naming the line, instead of atof-style silent 0.0 (which
/// used to teleport garbage rows to the Gulf of Guinea).
Result<std::vector<Station>> ReadStationsCsv(const std::string& path);

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_TRIP_H_
