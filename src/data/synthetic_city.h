#ifndef EALGAP_DATA_SYNTHETIC_CITY_H_
#define EALGAP_DATA_SYNTHETIC_CITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/aggregate.h"
#include "data/event.h"
#include "data/trip.h"
#include "tensor/tensor.h"

namespace ealgap {
namespace data {

/// Parameters of the synthetic mobility city.
///
/// This generator substitutes for the paper's real trip feeds (Citi Bike,
/// Divvy, NYC/Chicago taxi); DESIGN.md §2 documents why the substitution
/// preserves the behaviours EALGAP exercises: double-peak commute profiles
/// with region-specific peak times/scales (Fig. 4), exponential-shaped
/// hourly count distributions (Fig. 7), and region-varying event drops
/// (Fig. 5).
struct CityConfig {
  std::string name = "city";
  int num_stations = 300;
  int num_regions = 20;       ///< generative regions (ground truth)
  CivilDate start_date{2020, 5, 12};
  int num_days = 90;
  /// Mean weekday pick-ups per region-hour at profile level 1.
  double base_region_hour_rate = 12.0;
  /// City center (lon, lat) around which regions are laid out.
  double center_lon = -73.97;
  double center_lat = 40.73;
  bool taxi_profile = false;  ///< broader peaks + overnight floor
  std::vector<AnomalyEvent> events;
  /// Fraction of dirty trips injected (bad timestamps, <1min durations) so
  /// the cleaning stage has real work to do.
  double dirty_fraction = 0.004;
  /// Innovation std of the per-region hourly AR(1) turbulence (local
  /// fluctuations the paper's local-impact module targets).
  double turbulence_sigma = 0.09;
  /// Innovation std of the day-level AR(1) weather factor (source of the
  /// heavy-tailed daily volumes).
  double weather_sigma = 0.25;
  uint64_t seed = 7;
};

/// A generated city: stations, raw trips, and generation-time ground truth
/// used by tests and the motivation/figure benches.
struct SyntheticCity {
  CityConfig config;
  std::vector<Station> stations;
  std::vector<TripRecord> trips;  ///< includes injected dirty records
  /// Ground-truth generative region of each station.
  std::vector<int> true_region;
  /// Actual generated pick-up counts per (true region, hour step),
  /// excluding dirty records. Shape (num_regions, num_days * 24).
  Tensor region_counts;
  /// Per-region weather-event severity actually used (empty if no
  /// weather event configured).
  std::vector<double> region_event_severity;
  /// Per-region event onset/end hours (weather events).
  std::vector<int> region_onset_hour;
  std::vector<int> region_end_hour;
};

/// Generates a deterministic synthetic city from `config`.
Result<SyntheticCity> GenerateCity(const CityConfig& config);

/// Parameters of the direct region-level series generator — the scaling
/// path. GenerateCity materializes O(trips) records (≈ regions × rate ×
/// hours), which is infeasible at metropolis scale; this generator writes
/// the (num_regions, steps) count matrix directly in O(regions × steps),
/// so N = 10k regions costs seconds instead of hours. The shape matches
/// the trip-level city where it matters to EALGAP: a double-peak commute
/// profile, per-region scale heterogeneity, and per-region AR(1)
/// turbulence.
struct RegionSeriesConfig {
  int num_regions = 1000;
  int num_days = 40;
  CivilDate start_date{2020, 6, 1};
  double base_rate = 20.0;  ///< diurnal floor (counts per region-hour)
  double am_peak = 15.0;    ///< morning commute peak amplitude (8:30)
  double pm_peak = 18.0;    ///< evening commute peak amplitude (17:30)
  double ar_coeff = 0.9;    ///< per-region AR(1) persistence
  double ar_sigma = 1.5;    ///< AR(1) innovation std
  /// Per-region multiplicative ramp: region r runs at (1 + r * this) ×
  /// the base profile, so large cities span orders of magnitude of volume
  /// (the per-region normalization path has to absorb it).
  double region_scale_step = 0.1;
  uint64_t seed = 5;
};

/// Generates a deterministic region-level count series from `config`.
/// Counts are clamped non-negative and finite by construction.
MobilitySeries GenerateRegionSeries(const RegionSeriesConfig& config);

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_SYNTHETIC_CITY_H_
