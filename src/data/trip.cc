#include "data/trip.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "common/csv.h"

namespace ealgap {
namespace data {

namespace {

/// Strict numeric field parsing: the whole field (modulo surrounding
/// whitespace) must be one finite number. atof-style "garbage parses to
/// 0.0" silently relocated stations to (0, 0) — see the regression test
/// StationCsvGarbageCoordinatesRejected.
bool ParseFieldDouble(const std::string& field, double* out) {
  const char* s = field.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || errno == ERANGE || !std::isfinite(v)) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

bool ParseFieldInt(const std::string& field, int* out) {
  const char* s = field.c_str();
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (end == s || errno == ERANGE || v < INT_MIN || v > INT_MAX) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

Status WriteTripsCsv(const std::string& path,
                     const std::vector<TripRecord>& trips) {
  CsvTable table;
  table.header = {"started_at", "ended_at", "start_station_id",
                  "end_station_id"};
  table.rows.reserve(trips.size());
  for (const TripRecord& t : trips) {
    table.rows.push_back({FormatTimestamp(FromUnixSeconds(t.start_seconds)),
                          FormatTimestamp(FromUnixSeconds(t.end_seconds)),
                          std::to_string(t.start_station),
                          std::to_string(t.end_station)});
  }
  return WriteCsvFile(path, table);
}

Result<std::vector<TripRecord>> ReadTripsCsv(const std::string& path) {
  EALGAP_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  const int c_start = table.ColumnIndex("started_at");
  const int c_end = table.ColumnIndex("ended_at");
  const int c_ss = table.ColumnIndex("start_station_id");
  const int c_es = table.ColumnIndex("end_station_id");
  if (c_start < 0 || c_end < 0 || c_ss < 0 || c_es < 0) {
    return Status::ParseError("trip CSV missing required columns in " + path);
  }
  std::vector<TripRecord> trips;
  trips.reserve(table.rows.size());
  for (const CsvRow& row : table.rows) {
    TripRecord t;
    auto start = ParseTimestamp(row[c_start]);
    auto end = ParseTimestamp(row[c_end]);
    // Malformed timestamps become 0/0 and are dropped by the cleaner.
    t.start_seconds = start.ok() ? ToUnixSeconds(*start) : 0;
    t.end_seconds = end.ok() ? ToUnixSeconds(*end) : 0;
    t.start_station = std::atoi(row[c_ss].c_str());
    t.end_station = std::atoi(row[c_es].c_str());
    trips.push_back(t);
  }
  return trips;
}

Status WriteStationsCsv(const std::string& path,
                        const std::vector<Station>& stations) {
  CsvTable table;
  table.header = {"station_id", "lon", "lat"};
  table.rows.reserve(stations.size());
  char buf[32];
  for (const Station& s : stations) {
    CsvRow row;
    row.push_back(std::to_string(s.id));
    std::snprintf(buf, sizeof(buf), "%.6f", s.lon);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.6f", s.lat);
    row.push_back(buf);
    table.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, table);
}

Result<std::vector<Station>> ReadStationsCsv(const std::string& path) {
  EALGAP_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  const int c_id = table.ColumnIndex("station_id");
  const int c_lon = table.ColumnIndex("lon");
  const int c_lat = table.ColumnIndex("lat");
  if (c_id < 0 || c_lon < 0 || c_lat < 0) {
    return Status::ParseError("station CSV missing required columns in " +
                              path);
  }
  std::vector<Station> stations;
  stations.reserve(table.rows.size());
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const CsvRow& row = table.rows[i];
    Station s;
    const std::string line = std::to_string(i + 2);  // 1-based, after header
    if (!ParseFieldInt(row[c_id], &s.id)) {
      return Status::ParseError("bad station_id '" + row[c_id] + "' on line " +
                                line + " of " + path);
    }
    if (!ParseFieldDouble(row[c_lon], &s.lon)) {
      return Status::ParseError("bad lon '" + row[c_lon] + "' on line " +
                                line + " of " + path);
    }
    if (!ParseFieldDouble(row[c_lat], &s.lat)) {
      return Status::ParseError("bad lat '" + row[c_lat] + "' on line " +
                                line + " of " + path);
    }
    stations.push_back(s);
  }
  return stations;
}

}  // namespace data
}  // namespace ealgap
