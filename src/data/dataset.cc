#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ealgap {
namespace data {

Result<SlidingWindowDataset> SlidingWindowDataset::Create(
    MobilitySeries series, DatasetOptions options) {
  if (options.history_length < 1 || options.num_windows < 1 ||
      options.norm_history < 1) {
    return Status::InvalidArgument("dataset options must be >= 1");
  }
  if (!series.counts.defined() || series.num_regions <= 0) {
    return Status::InvalidArgument("empty mobility series");
  }
  SlidingWindowDataset ds;
  ds.series_ = std::move(series);
  ds.options_ = options;

  const int n = ds.series_.num_regions;
  const int64_t steps = ds.series_.total_steps();
  ds.mu_ = Tensor::Zeros({n, steps});
  ds.sigma_ = Tensor::Zeros({n, steps});
  for (int64_t s = 0; s < steps; ++s) ds.RefreshMatchedStats(s);
  return ds;
}

void SlidingWindowDataset::RefreshMatchedStats(int64_t s) {
  const int n = series_.num_regions;
  const int64_t steps = series_.total_steps();
  const int t_day = series_.steps_per_day;
  const float* x = series_.counts.data();
  float* mu = mu_.data();
  float* sigma = sigma_.data();
  // Matched historical steps: the step itself plus the previous
  // norm_history records at the same time of day on the same day type.
  std::vector<int64_t> matched;
  matched.push_back(s);
  const bool weekend = series_.IsWeekendStep(s);
  for (int64_t back = s - t_day;
       back >= 0 &&
       static_cast<int>(matched.size()) < options_.norm_history + 1;
       back -= t_day) {
    if (series_.IsWeekendStep(back) == weekend) matched.push_back(back);
  }
  const double inv = 1.0 / static_cast<double>(matched.size());
  for (int r = 0; r < n; ++r) {
    double m = 0.0;
    for (int64_t idx : matched) m += x[r * steps + idx];
    m *= inv;
    double ss = 0.0;
    for (int64_t idx : matched) {
      const double d = x[r * steps + idx] - m;
      ss += d * d;
    }
    mu[r * steps + s] = static_cast<float>(m);
    sigma[r * steps + s] = static_cast<float>(std::sqrt(ss * inv));
  }
}

SlidingWindowDataset SlidingWindowDataset::Clone() const {
  SlidingWindowDataset out;
  out.series_ = series_;
  out.series_.counts = series_.counts.Clone();
  out.options_ = options_;
  out.mu_ = mu_.Clone();
  out.sigma_ = sigma_.Clone();
  return out;
}

Status SlidingWindowDataset::OverwriteStep(int64_t step,
                                           const std::vector<double>& values) {
  const int n = series_.num_regions;
  if (step < 0 || step >= series_.total_steps()) {
    return Status::OutOfRange("step out of range");
  }
  if (static_cast<int>(values.size()) != n) {
    return Status::InvalidArgument("expected one value per region");
  }
  float* x = series_.counts.data();
  const int64_t steps = series_.total_steps();
  for (int r = 0; r < n; ++r) {
    x[r * steps + step] = static_cast<float>(values[r]);
  }
  // Matched stats at this step and at later same-hour steps that include
  // it in their history window. Walking forward a generous number of days
  // (history + weekend bridging) covers every dependent step.
  const int t_day = series_.steps_per_day;
  const int64_t horizon =
      static_cast<int64_t>(2 * (options_.norm_history + 2)) * t_day;
  for (int64_t s = step; s < std::min(steps, step + horizon + 1);
       s += t_day) {
    RefreshMatchedStats(s);
  }
  return Status::OK();
}

namespace {
std::vector<float> StepRow(const Tensor& t, int n, int64_t steps,
                           int64_t step) {
  std::vector<float> out(n);
  const float* p = t.data();
  for (int r = 0; r < n; ++r) out[r] = p[r * steps + step];
  return out;
}
}  // namespace

std::vector<float> SlidingWindowDataset::StepCounts(int64_t step) const {
  EALGAP_CHECK_GE(step, 0);
  EALGAP_CHECK_LT(step, series_.total_steps());
  return StepRow(series_.counts, series_.num_regions, series_.total_steps(),
                 step);
}

std::vector<float> SlidingWindowDataset::StepMu(int64_t step) const {
  EALGAP_CHECK_GE(step, 0);
  EALGAP_CHECK_LT(step, series_.total_steps());
  return StepRow(mu_, series_.num_regions, series_.total_steps(), step);
}

std::vector<float> SlidingWindowDataset::StepSigma(int64_t step) const {
  EALGAP_CHECK_GE(step, 0);
  EALGAP_CHECK_LT(step, series_.total_steps());
  return StepRow(sigma_, series_.num_regions, series_.total_steps(), step);
}

int64_t SlidingWindowDataset::MinTargetStep() const {
  const int64_t t_day = series_.steps_per_day;
  const int64_t l = options_.history_length;
  const int64_t m = options_.num_windows;
  // Window m=1 reaches back T*(M-1)+L steps before t+1; normalization
  // statistics want norm_history prior same-type days (+2 days of slack to
  // bridge weekends).
  const int64_t window_floor = t_day * (m - 1) + l;
  const int64_t norm_floor = t_day * (options_.norm_history + 2);
  return std::max(window_floor, norm_floor);
}

std::vector<int64_t> SlidingWindowDataset::TargetSteps(int64_t begin,
                                                       int64_t end) const {
  begin = std::max(begin, MinTargetStep());
  end = std::min(end, series_.total_steps());
  std::vector<int64_t> out;
  for (int64_t s = begin; s < end; ++s) out.push_back(s);
  return out;
}

WindowSample SlidingWindowDataset::MakeSample(int64_t target_step) const {
  EALGAP_CHECK_GE(target_step, MinTargetStep());
  EALGAP_CHECK_LT(target_step, series_.total_steps());
  const int n = series_.num_regions;
  const int64_t steps = series_.total_steps();
  const int64_t l = options_.history_length;
  const int64_t m = options_.num_windows;
  const int64_t t_day = series_.steps_per_day;
  const float* x = series_.counts.data();
  const float* mu = mu_.data();
  const float* sg = sigma_.data();

  WindowSample sample;
  sample.target_step = target_step;
  sample.x = Tensor::Zeros({n, l});
  sample.f = Tensor::Zeros({m, n, l});
  sample.f_mu = Tensor::Zeros({m, n, l});
  sample.f_sigma = Tensor::Zeros({m, n, l});
  sample.target = Tensor::Zeros({n});
  sample.w_next = Tensor::Zeros({m, n});
  sample.w_next_mu = Tensor::Zeros({m, n});
  sample.w_next_sigma = Tensor::Zeros({m, n});

  float* px = sample.x.data();
  float* pf = sample.f.data();
  float* pfm = sample.f_mu.data();
  float* pfs = sample.f_sigma.data();
  float* pt = sample.target.data();

  // Near history X[:, t-L+1 : t] == steps [target_step - L, target_step).
  for (int r = 0; r < n; ++r) {
    for (int64_t j = 0; j < l; ++j) {
      px[r * l + j] = x[r * steps + (target_step - l + j)];
    }
    pt[r] = x[r * steps + target_step];
  }
  // Windows F_m end T*(M-m) steps before t; F_M coincides with x.
  float* pwn = sample.w_next.data();
  float* pwm = sample.w_next_mu.data();
  float* pws = sample.w_next_sigma.data();
  for (int64_t w = 0; w < m; ++w) {
    const int64_t offset = t_day * (m - 1 - w);
    const int64_t begin = target_step - offset - l;
    for (int r = 0; r < n; ++r) {
      for (int64_t j = 0; j < l; ++j) {
        const int64_t src = r * steps + (begin + j);
        const int64_t dst = (w * n + r) * l + j;
        pf[dst] = x[src];
        pfm[dst] = mu[src];
        pfs[dst] = sg[src];
      }
      // Step following window w: t - T(M-m) + 1 == target_step - offset.
      const int64_t next = r * steps + (target_step - offset);
      pwn[w * n + r] = x[next];
      pwm[w * n + r] = mu[next];
      pws[w * n + r] = sg[next];
    }
  }
  return sample;
}

Result<StepRanges> MakeChronoSplit(const SlidingWindowDataset& dataset,
                                   const SplitSpec& spec) {
  const MobilitySeries& series = dataset.series();
  const int64_t t_day = series.steps_per_day;
  const int64_t total = series.total_steps();
  const int64_t holdout = static_cast<int64_t>(spec.val_days + spec.test_days);
  if (series.num_days <= holdout + 10) {
    return Status::InvalidArgument(
        "series too short for the requested split: " +
        std::to_string(series.num_days) + " days");
  }
  StepRanges r;
  r.train_begin = dataset.MinTargetStep();
  r.train_end = total - holdout * t_day;
  r.val_begin = r.train_end;
  r.val_end = total - static_cast<int64_t>(spec.test_days) * t_day;
  r.test_begin = r.val_end;
  r.test_end = total;
  if (r.train_begin >= r.train_end) {
    return Status::InvalidArgument("no training steps after warm-up");
  }
  return r;
}

}  // namespace data
}  // namespace ealgap
