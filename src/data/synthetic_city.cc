#include "data/synthetic_city.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ealgap {
namespace data {

namespace {

/// Per-region diurnal profile parameters drawn once per region.
struct RegionProfile {
  double base_weight = 1.0;    // relative region volume
  double morning_peak = 8.5;   // hour of the morning commute surge
  double evening_peak = 17.5;  // hour of the evening surge
  double morning_width = 1.2;
  double evening_width = 1.5;
  double morning_amp = 1.0;
  double evening_amp = 1.0;
  double midday_amp = 0.35;    // weekend/holiday hump amplitude
  double night_floor = 0.05;
};

double Gauss(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z);
}

// Weekday double-peak commute shape (paper Fig. 4).
double WeekdayProfile(const RegionProfile& p, double hour, bool taxi) {
  double v = p.night_floor +
             p.morning_amp * Gauss(hour, p.morning_peak, p.morning_width) +
             p.evening_amp * Gauss(hour, p.evening_peak, p.evening_width) +
             0.25 * Gauss(hour, 13.0, 3.0);
  if (taxi) {
    // Taxis keep a nightlife tail and broader peaks.
    v += 0.2 * Gauss(hour, 22.5, 2.0) + 0.08;
  }
  return v;
}

// Weekend / holiday single-hump shape.
double WeekendProfile(const RegionProfile& p, double hour, bool taxi) {
  double v = p.night_floor +
             (p.morning_amp + p.evening_amp) * p.midday_amp *
                 Gauss(hour, 14.0, 3.2);
  if (taxi) {
    v += 0.25 * Gauss(hour, 23.0, 2.5) + 0.08;
  }
  return v;
}

}  // namespace

Result<SyntheticCity> GenerateCity(const CityConfig& config) {
  if (config.num_regions <= 0 || config.num_stations < config.num_regions) {
    return Status::InvalidArgument(
        "need at least one station per region: stations=" +
        std::to_string(config.num_stations) +
        " regions=" + std::to_string(config.num_regions));
  }
  if (config.num_days <= 0) {
    return Status::InvalidArgument("num_days must be positive");
  }

  SyntheticCity city;
  city.config = config;
  Rng rng(config.seed);
  Rng layout_rng = rng.Fork();
  Rng profile_rng = rng.Fork();
  Rng count_rng = rng.Fork();
  Rng trip_rng = rng.Fork();
  Rng dirt_rng = rng.Fork();

  const int r = config.num_regions;

  // --- layout: region centers around the city center, stations around them.
  std::vector<double> region_lon(r), region_lat(r);
  for (int i = 0; i < r; ++i) {
    // Ring-plus-jitter placement keeps regions geographically separated so
    // k-means can recover them.
    const double angle = 2.0 * M_PI * i / r + layout_rng.Uniform(-0.05, 0.05);
    const double radius = 0.05 + 0.04 * layout_rng.Uniform();
    region_lon[i] = config.center_lon + radius * std::cos(angle);
    region_lat[i] = config.center_lat + radius * std::sin(angle);
  }
  city.stations.reserve(config.num_stations);
  city.true_region.reserve(config.num_stations);
  for (int s = 0; s < config.num_stations; ++s) {
    const int region = s % r;  // round-robin keeps regions non-empty
    Station st;
    st.id = s + 1;
    st.lon = region_lon[region] + layout_rng.Normal(0.0, 0.005);
    st.lat = region_lat[region] + layout_rng.Normal(0.0, 0.005);
    city.stations.push_back(st);
    city.true_region.push_back(region);
  }
  std::vector<std::vector<int>> region_stations(r);
  for (int s = 0; s < config.num_stations; ++s) {
    region_stations[city.true_region[s]].push_back(s);
  }
  // Station weights within a region (some docks are much busier).
  std::vector<double> station_weight(config.num_stations);
  for (int i = 0; i < r; ++i) {
    double total = 0.0;
    for (int s : region_stations[i]) {
      station_weight[s] = std::exp(layout_rng.Normal(0.0, 0.5));
      total += station_weight[s];
    }
    for (int s : region_stations[i]) station_weight[s] /= total;
  }

  // --- per-region profiles.
  std::vector<RegionProfile> profiles(r);
  for (int i = 0; i < r; ++i) {
    RegionProfile& p = profiles[i];
    p.base_weight = std::exp(profile_rng.Normal(0.0, 0.45));
    p.morning_peak = profile_rng.Uniform(7.0, 10.0);
    p.evening_peak = profile_rng.Uniform(16.0, 19.5);
    p.morning_width = profile_rng.Uniform(1.8, 2.8);
    p.evening_width = profile_rng.Uniform(2.0, 3.0);
    p.morning_amp = profile_rng.Uniform(0.7, 1.3);
    p.evening_amp = profile_rng.Uniform(0.7, 1.3);
    p.midday_amp = profile_rng.Uniform(0.30, 0.45);
    p.night_floor = profile_rng.Uniform(0.03, 0.08);
  }

  // --- per-region weather-event severities and onset/end hours (Fig. 5
  // reports 19%-34% drops with region-varying onset, Fig. 4 ~10am-9pm).
  bool has_weather = false;
  double weather_severity = 0.0;
  for (const AnomalyEvent& e : config.events) {
    if (e.kind != EventKind::kHoliday && e.kind != EventKind::kMildWeather) {
      has_weather = true;
      weather_severity = e.severity;
    }
  }
  city.region_event_severity.resize(r);
  city.region_onset_hour.resize(r);
  city.region_end_hour.resize(r);
  for (int i = 0; i < r; ++i) {
    city.region_event_severity[i] =
        std::clamp(weather_severity + profile_rng.Uniform(-0.08, 0.10), 0.12,
                   0.6);
    city.region_onset_hour[i] = static_cast<int>(profile_rng.Uniform(9, 12));
    city.region_end_hour[i] = static_cast<int>(profile_rng.Uniform(19, 22));
  }
  (void)has_weather;

  // --- per-day citywide factor: weekly seasonality + lognormal weather
  // noise (creates the heavy upper tail of daily volumes).
  // Day-level demand swings are weather-driven and persistent: an AR(1)
  // process in log space (stationary sd ~0.35 -> daily volumes vary by
  // roughly +-70%, as real bike-share demand does across weather). This is
  // the source of the heavy-tailed count distribution of Fig. 7.
  std::vector<double> day_factor(config.num_days);
  double weather_state = 0.0;
  for (int d = 0; d < config.num_days; ++d) {
    const double season =
        1.0 + 0.10 * std::sin(2.0 * M_PI * d / 28.0);  // mild monthly swing
    weather_state =
        0.7 * weather_state + count_rng.Normal(0.0, config.weather_sigma);
    // A severe weather event IS the day's weather: it cannot coincide with
    // a good-weather day, so the state is pulled down (and the depression
    // persists into the following days through the AR chain).
    const CivilDate date = AddDays(config.start_date, d);
    for (const AnomalyEvent& e : config.events) {
      if (e.kind != EventKind::kHoliday && e.kind != EventKind::kMildWeather &&
          e.Covers(date)) {
        weather_state = std::min(weather_state, -0.15);
      }
    }
    day_factor[d] = season * std::exp(weather_state);
  }

  // Per-region hourly turbulence: AR(1) in log space. This is the local
  // "instantaneous fluctuation" the paper's local-impact module targets —
  // it persists over a few hours, so recent history is informative beyond
  // the periodic profile.
  std::vector<double> turbulence(r, 0.0);
  constexpr double kTurbulencePhi = 0.9;
  const double turbulence_sigma = config.turbulence_sigma;

  // --- generate counts and trips.
  const int hours = config.num_days * 24;
  city.region_counts = Tensor::Zeros({r, hours});
  float* counts = city.region_counts.data();
  city.trips.reserve(static_cast<size_t>(
      config.base_region_hour_rate * r * hours * 0.75));

  for (int d = 0; d < config.num_days; ++d) {
    const CivilDate date = AddDays(config.start_date, d);
    const bool weekend = IsWeekend(date);
    // Active events today.
    std::vector<const AnomalyEvent*> active;
    bool holiday_today = false;
    for (const AnomalyEvent& e : config.events) {
      if (e.Covers(date)) {
        active.push_back(&e);
        if (e.kind == EventKind::kHoliday) holiday_today = true;
      }
    }
    for (int h = 0; h < 24; ++h) {
      const int step = d * 24 + h;
      const int64_t hour_start =
          DaysSinceEpoch(date) * 86400 + static_cast<int64_t>(h) * 3600;
      for (int i = 0; i < r; ++i) {
        const RegionProfile& p = profiles[i];
        // Holidays reshape a weekday into a weekend-like day.
        const bool weekend_shape = weekend || holiday_today;
        double shape = weekend_shape
                           ? WeekendProfile(p, h + 0.5, config.taxi_profile)
                           : WeekdayProfile(p, h + 0.5, config.taxi_profile);
        double mult = 1.0;
        for (const AnomalyEvent* e : active) {
          double sev = e->severity;
          if (e->kind != EventKind::kHoliday &&
              e->kind != EventKind::kMildWeather) {
            sev = city.region_event_severity[i];
          }
          mult *= EventHourMultiplier(*e, sev, h, city.region_onset_hour[i],
                                      city.region_end_hour[i]);
        }
        turbulence[i] = kTurbulencePhi * turbulence[i] +
                        count_rng.Normal(0.0, turbulence_sigma);
        const double rate = config.base_region_hour_rate * p.base_weight *
                            shape * day_factor[d] * mult *
                            std::exp(turbulence[i]);
        const int64_t count = count_rng.Poisson(rate);
        counts[i * hours + step] = static_cast<float>(count);
        // Distribute the region's pick-ups over its stations.
        const auto& members = region_stations[i];
        for (int64_t c = 0; c < count; ++c) {
          // Weighted station choice via inverse CDF.
          double u = trip_rng.Uniform();
          int start_station = members.back();
          for (int s : members) {
            u -= station_weight[s];
            if (u <= 0.0) {
              start_station = s;
              break;
            }
          }
          TripRecord t;
          t.start_seconds = hour_start + trip_rng.UniformInt(3600);
          // Trip duration 3-40 minutes (log-uniform-ish).
          const int64_t duration =
              180 + static_cast<int64_t>(trip_rng.Uniform() *
                                         trip_rng.Uniform() * 2220);
          t.end_seconds = t.start_seconds + duration;
          t.start_station = city.stations[start_station].id;
          // Drop-off somewhere in the same or an adjacent region.
          const int end_region =
              trip_rng.Uniform() < 0.7 ? i : static_cast<int>(
                                                 trip_rng.UniformInt(r));
          const auto& ends = region_stations[end_region];
          t.end_station =
              city.stations[ends[trip_rng.UniformInt(ends.size())]].id;
          city.trips.push_back(t);
        }
      }
    }
  }

  // --- inject dirty records the cleaning stage must remove.
  const size_t dirty =
      static_cast<size_t>(city.trips.size() * config.dirty_fraction);
  for (size_t k = 0; k < dirty; ++k) {
    const TripRecord& base =
        city.trips[dirt_rng.UniformInt(city.trips.size())];
    TripRecord bad = base;
    if (k % 2 == 0) {
      // Sub-minute trip (dock re-rack).
      bad.end_seconds = bad.start_seconds + 1 +
                        static_cast<int64_t>(dirt_rng.UniformInt(58));
    } else {
      // Timestamp error: end precedes start.
      std::swap(bad.start_seconds, bad.end_seconds);
    }
    city.trips.push_back(bad);
  }
  // Shuffle so dirty records are interleaved like in a real feed.
  dirt_rng.Shuffle(city.trips);

  return city;
}

MobilitySeries GenerateRegionSeries(const RegionSeriesConfig& config) {
  Rng rng(config.seed);
  MobilitySeries series;
  series.num_regions = config.num_regions;
  series.steps_per_day = 24;
  series.start_date = config.start_date;
  series.num_days = config.num_days;
  const int64_t steps =
      static_cast<int64_t>(config.num_days) * series.steps_per_day;
  series.counts = Tensor::Zeros({config.num_regions, steps});
  float* counts = series.counts.data();
  // Diurnal profile depends only on hour-of-day: precompute one period.
  double profile[24];
  for (int h = 0; h < 24; ++h) {
    profile[h] = config.base_rate +
                 config.am_peak * Gauss(h, 8.5, 2.5) +
                 config.pm_peak * Gauss(h, 17.5, 2.5);
  }
  for (int r = 0; r < config.num_regions; ++r) {
    const double scale = 1.0 + config.region_scale_step * r;
    double ar = 0.0;
    float* row = counts + static_cast<int64_t>(r) * steps;
    for (int64_t s = 0; s < steps; ++s) {
      ar = config.ar_coeff * ar + rng.Normal(0.0, config.ar_sigma);
      row[s] = static_cast<float>(
          std::max(0.0, profile[s % 24] * scale + ar));
    }
  }
  return series;
}

}  // namespace data
}  // namespace ealgap
