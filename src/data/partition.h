#ifndef EALGAP_DATA_PARTITION_H_
#define EALGAP_DATA_PARTITION_H_

#include <vector>

#include "cluster/kmeans.h"
#include "common/result.h"
#include "data/trip.h"

namespace ealgap {
namespace data {

/// Region partitioning algorithm (paper default: k-means; ablations (v) and
/// (vi) swap in DBSCAN / OPTICS).
enum class PartitionMethod { kKMeans, kDbscan, kOptics };

struct PartitionOptions {
  PartitionMethod method = PartitionMethod::kKMeans;
  int num_regions = 20;  ///< k for k-means (ignored by density methods)
  double eps = 0.02;     ///< radius for DBSCAN/OPTICS (degrees)
  int min_points = 3;
  uint64_t seed = 42;
};

/// A station-to-region assignment.
struct RegionPartition {
  std::vector<int> station_region;  ///< region index per station (compacted)
  std::vector<cluster::Point2> region_centers;
  int num_regions = 0;
};

/// Clusters stations geographically. Density methods may produce noise
/// points; these are reassigned to the nearest cluster center and labels
/// are compacted to 0..num_regions-1 so downstream code sees a total
/// assignment either way.
Result<RegionPartition> PartitionStations(const std::vector<Station>& stations,
                                          const PartitionOptions& options);

}  // namespace data
}  // namespace ealgap

#endif  // EALGAP_DATA_PARTITION_H_
