#include "data/partition.h"

#include <limits>
#include <map>

#include "cluster/dbscan.h"
#include "cluster/optics.h"

namespace ealgap {
namespace data {

namespace {

RegionPartition FromLabels(const std::vector<cluster::Point2>& points,
                           std::vector<int> labels) {
  // Compact labels and compute centers.
  std::map<int, int> remap;
  for (int l : labels) {
    if (l >= 0 && !remap.count(l)) {
      const int next = static_cast<int>(remap.size());
      remap[l] = next;
    }
  }
  RegionPartition part;
  part.num_regions = static_cast<int>(remap.size());
  part.region_centers.assign(part.num_regions, {});
  std::vector<int64_t> counts(part.num_regions, 0);
  part.station_region.assign(labels.size(), -1);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) continue;
    const int c = remap[labels[i]];
    part.station_region[i] = c;
    part.region_centers[c].x += points[i].x;
    part.region_centers[c].y += points[i].y;
    ++counts[c];
  }
  for (int c = 0; c < part.num_regions; ++c) {
    part.region_centers[c].x /= counts[c];
    part.region_centers[c].y /= counts[c];
  }
  // Reassign noise points to the nearest center.
  for (size_t i = 0; i < labels.size(); ++i) {
    if (part.station_region[i] >= 0) continue;
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (int c = 0; c < part.num_regions; ++c) {
      const double d =
          cluster::SquaredDistance(points[i], part.region_centers[c]);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    part.station_region[i] = best_c;
  }
  return part;
}

}  // namespace

Result<RegionPartition> PartitionStations(const std::vector<Station>& stations,
                                          const PartitionOptions& options) {
  if (stations.empty()) return Status::InvalidArgument("no stations");
  std::vector<cluster::Point2> points;
  points.reserve(stations.size());
  for (const Station& s : stations) points.push_back({s.lon, s.lat});

  switch (options.method) {
    case PartitionMethod::kKMeans: {
      cluster::KMeansOptions kopts;
      kopts.seed = options.seed;
      EALGAP_ASSIGN_OR_RETURN(
          cluster::KMeansResult km,
          cluster::KMeans(points, options.num_regions, kopts));
      RegionPartition part;
      part.station_region = std::move(km.labels);
      part.region_centers = std::move(km.centers);
      part.num_regions = options.num_regions;
      return part;
    }
    case PartitionMethod::kDbscan: {
      cluster::DbscanOptions dopts;
      dopts.eps = options.eps;
      dopts.min_points = options.min_points;
      EALGAP_ASSIGN_OR_RETURN(cluster::DbscanResult db,
                              cluster::Dbscan(points, dopts));
      if (db.num_clusters == 0) {
        return Status::FailedPrecondition(
            "DBSCAN found no clusters; increase eps");
      }
      return FromLabels(points, std::move(db.labels));
    }
    case PartitionMethod::kOptics: {
      cluster::OpticsOptions oopts;
      oopts.cluster_eps = options.eps;
      oopts.min_points = options.min_points;
      oopts.max_eps = options.eps * 5.0;
      EALGAP_ASSIGN_OR_RETURN(cluster::OpticsResult oc,
                              cluster::Optics(points, oopts));
      if (oc.num_clusters == 0) {
        return Status::FailedPrecondition(
            "OPTICS found no clusters; increase eps");
      }
      return FromLabels(points, std::move(oc.labels));
    }
  }
  return Status::InvalidArgument("unknown partition method");
}

}  // namespace data
}  // namespace ealgap
