#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/fault_injection.h"

namespace ealgap {

namespace {

/// fsyncs the directory containing `path`, so the rename that just
/// published a file inside it is itself durable: POSIX only guarantees
/// the *file contents* survived the pre-rename fsync — the directory
/// entry pointing at them lives in the directory's own metadata, and a
/// crash between rename and the next journal flush can otherwise forget
/// the rename entirely (leaving the old file, or nothing).
Status FsyncParentDir(const std::string& path) {
  if (EALGAP_FAULT("io.dir.fsync.fail")) {
    return Status::IoError("injected directory fsync failure for " + path);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + dir + " for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync of directory " + dir + " failed");
  }
  return Status::OK();
}

/// One write attempt: temp file -> write -> flush -> fsync -> rename ->
/// fsync parent directory. Uses stdio so the fsync can target the real
/// descriptor.
Status TryWriteOnce(const std::string& path, const std::string& tmp,
                    const std::string& content) {
  if (EALGAP_FAULT("io.open.fail")) {
    return Status::IoError("injected open failure for " + tmp);
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + tmp + " for writing");
  }
  size_t to_write = content.size();
  Status failure;
  if (EALGAP_FAULT("io.write.partial")) {
    // Simulated crash mid-write: half the payload lands in the temp file
    // and the attempt dies there. The destination is never touched.
    to_write /= 2;
    failure = Status::IoError("injected partial write for " + tmp);
  } else if (EALGAP_FAULT("io.write.fail")) {
    to_write = 0;
    failure = Status::IoError("injected write failure for " + tmp);
  }
  if (to_write > 0 &&
      std::fwrite(content.data(), 1, to_write, f) != to_write) {
    failure = Status::IoError("short write to " + tmp);
  }
  if (!failure.ok()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return failure;
  }
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("flush failed for " + tmp);
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("close failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  // The rename happened; now make it durable. On failure the destination
  // already holds the new content but its directory entry may not survive
  // a crash, so the attempt reports failure and the retry loop re-runs the
  // whole write (idempotent: same content, same destination).
  return FsyncParentDir(path);
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const AtomicWriteOptions& options) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Status last = Status::Internal("WriteFileAtomic made no attempts");
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && options.backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options.backoff_ms * static_cast<double>(1 << (attempt - 1))));
    }
    last = TryWriteOnce(path, tmp, content);
    if (last.ok()) return last;
  }
  return Status::IoError("atomic write of " + path + " failed after " +
                         std::to_string(attempts) +
                         " attempts: " + last.message());
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  return ss.str();
}

}  // namespace ealgap
