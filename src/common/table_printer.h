#ifndef EALGAP_COMMON_TABLE_PRINTER_H_
#define EALGAP_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ealgap {

/// Builds fixed-width text tables for the bench binaries so that their
/// stdout mirrors the paper's tables (one row per scheme, one column group
/// per test period).
class TablePrinter {
 public:
  /// Creates a table with the given title and column headers.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles to `precision` decimals.
  static std::string Num(double v, int precision = 3);

  /// Renders the table with aligned columns and a rule under the header.
  void Print(std::ostream& os) const;

  /// Renders the same content as CSV (for --out csv piping).
  void PrintCsv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ealgap

#endif  // EALGAP_COMMON_TABLE_PRINTER_H_
