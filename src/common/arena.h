#ifndef EALGAP_COMMON_ARENA_H_
#define EALGAP_COMMON_ARENA_H_

/// Bump-pointer scratch arena with checkpoint/rewind — the allocator behind
/// the zero-allocation serve step (DESIGN.md §8e).
///
/// Lifecycle contract: an ArenaScope installs a thread-local "current"
/// arena; while it is active, Tensor storage and autograd nodes come from
/// the arena instead of the heap. When the scope ends, the arena rewinds to
/// where it was on entry, reclaiming every byte at once. Nothing allocated
/// inside the scope may outlive the scope — callers copy results out into
/// caller-owned (heap) buffers before returning.
///
/// Slabs are 64-byte aligned (common/aligned_alloc.h) and retained across
/// rewinds, so after a warm-up pass the steady state performs no heap
/// allocations at all. Exhaustion grows the arena by appending a bigger
/// slab — correct but counted, which is exactly what the counting-allocator
/// test watches for.

#include <cstddef>
#include <cstdint>

#include "common/aligned_alloc.h"

namespace ealgap {

class Arena {
 public:
  /// `initial_bytes` sizes the first slab (rounded up to kCacheAlign).
  /// Slabs double from there; an oversize request gets a dedicated slab.
  explicit Arena(std::size_t initial_bytes = std::size_t{1} << 20);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 64-byte-aligned bump allocation. Never fails (grows or aborts).
  void* Allocate(std::size_t bytes);

  /// A position in the arena; Rewind(mark) frees everything allocated
  /// after Checkpoint() returned it. Marks nest like a stack: rewinding to
  /// an older mark invalidates newer ones.
  struct Mark {
    std::size_t slab = 0;
    std::size_t offset = 0;
  };

  Mark Checkpoint() const { return Mark{cur_slab_, cur_offset_}; }

  /// Resets the bump pointer to `mark`. Slabs stay allocated (capacity is
  /// retained for the next pass); only the logical contents are discarded.
  void Rewind(Mark mark);

  /// Rewind to empty.
  void Reset() { Rewind(Mark{}); }

  /// Grows capacity so that `bytes` more can be allocated without touching
  /// the heap. Call once at setup (e.g. predictor creation) to keep the
  /// first serve step allocation-free too.
  void Reserve(std::size_t bytes);

  /// Bytes currently allocated (since the last full Reset/Rewind to zero).
  std::size_t allocated_bytes() const { return allocated_bytes_; }
  /// Largest allocated_bytes() ever observed — sizing feedback.
  std::size_t high_water_bytes() const { return high_water_bytes_; }
  /// Total capacity across slabs.
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  /// Number of slabs (1 after construction unless Reserve/growth added more).
  std::size_t slab_count() const { return num_slabs_; }

 private:
  struct Slab {
    char* base;
    std::size_t size;
  };

  /// Appends a slab of at least `min_bytes`.
  void AddSlab(std::size_t min_bytes);

  static constexpr std::size_t kMaxSlabs = 64;
  Slab slabs_[kMaxSlabs];
  std::size_t num_slabs_ = 0;
  std::size_t cur_slab_ = 0;
  std::size_t cur_offset_ = 0;
  std::size_t next_slab_bytes_ = 0;
  std::size_t allocated_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
  std::size_t capacity_bytes_ = 0;
};

/// The arena new allocations on this thread should come from, or nullptr
/// for plain heap. Installed by ArenaScope.
Arena* CurrentArena();

/// RAII: installs `arena` as the thread's current arena, checkpoints it,
/// and on destruction rewinds to the checkpoint and restores the previous
/// current arena. Scopes nest (inner scopes may use the same or another
/// arena). `ArenaScope(nullptr)` installs the plain heap — the escape
/// hatch for code running inside an arena scope that must produce
/// allocations outliving it (e.g. the adaptive ring's sample clones).
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena* prev_;
  Arena::Mark mark_;
};

}  // namespace ealgap

#endif  // EALGAP_COMMON_ARENA_H_
