#ifndef EALGAP_COMMON_STATUS_H_
#define EALGAP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ealgap {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kNotImplemented,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error type used across the library instead of exceptions.
///
/// Functions that can fail return `Status` (or `Result<T>` when they also
/// produce a value). The default-constructed Status is OK. Follow the
/// RocksDB/Arrow idiom: check `ok()` before using dependent results.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>" for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Usage:
///   EALGAP_RETURN_IF_ERROR(DoThing());
#define EALGAP_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::ealgap::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Propagates a non-OK Status with extra context appended to the message,
/// keeping the original code. `context` is any expression streamable into
/// a std::string via operator+ (i.e. a string or string literal). Usage:
///   EALGAP_RETURN_IF_ERROR_CTX(ParseHeader(in), "while loading " + path);
#define EALGAP_RETURN_IF_ERROR_CTX(expr, context)                      \
  do {                                                                 \
    ::ealgap::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                   \
      return ::ealgap::Status(_st.code(),                              \
                              _st.message() + std::string("; ") +      \
                                  (context));                          \
    }                                                                  \
  } while (0)

}  // namespace ealgap

#endif  // EALGAP_COMMON_STATUS_H_
