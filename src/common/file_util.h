#ifndef EALGAP_COMMON_FILE_UTIL_H_
#define EALGAP_COMMON_FILE_UTIL_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace ealgap {

/// Retry policy for WriteFileAtomic: transient I/O failures (including the
/// injected ones) are retried with exponential backoff before giving up.
struct AtomicWriteOptions {
  int max_attempts = 3;
  /// Sleep before retry k (1-based) is backoff_ms << (k-1); kept tiny so
  /// tests that exhaust every attempt stay fast.
  double backoff_ms = 1.0;
};

/// Durably replaces the contents of `path` with `content`, or leaves the
/// previous file untouched — never a torn mix of the two.
///
/// Writes `path`.tmp.<pid>, flushes and fsyncs it, renames over `path`
/// (atomic within a filesystem per POSIX rename), then fsyncs the parent
/// directory so the rename itself survives a crash — without that final
/// step a power cut right after checkpoint publish can forget the rename
/// and resurrect the old file. A reader — or a crash — at any point
/// observes either the complete old file or the complete new one. Failed
/// attempts remove their temp file and retry per `options`; the final
/// failure returns IoError with the cause.
///
/// Fault sites (see common/fault_injection.h). The first three are
/// pre-rename so an injected failure can never tear the destination;
/// the directory-fsync site fires after the rename (the new content is
/// in place but reported non-durable, and the attempt is retried):
///   "io.open.fail"       temp file creation fails
///   "io.write.fail"      the write reports an error
///   "io.write.partial"   only half the bytes reach the temp file before
///                        the write fails (simulated crash mid-write)
///   "io.dir.fsync.fail"  the parent-directory fsync after rename fails
Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const AtomicWriteOptions& options = {});

/// Reads the whole file into a string. NotFound/IoError on failure.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace ealgap

#endif  // EALGAP_COMMON_FILE_UTIL_H_
