#ifndef EALGAP_COMMON_FILE_UTIL_H_
#define EALGAP_COMMON_FILE_UTIL_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace ealgap {

/// Retry policy for WriteFileAtomic: transient I/O failures (including the
/// injected ones) are retried with exponential backoff before giving up.
struct AtomicWriteOptions {
  int max_attempts = 3;
  /// Sleep before retry k (1-based) is backoff_ms << (k-1); kept tiny so
  /// tests that exhaust every attempt stay fast.
  double backoff_ms = 1.0;
};

/// Durably replaces the contents of `path` with `content`, or leaves the
/// previous file untouched — never a torn mix of the two.
///
/// Writes `path`.tmp.<pid>, flushes and fsyncs it, then renames over
/// `path` (atomic within a filesystem per POSIX rename). A reader — or a
/// crash — at any point observes either the complete old file or the
/// complete new one. Failed attempts remove their temp file and retry per
/// `options`; the final failure returns IoError with the cause.
///
/// Fault sites (see common/fault_injection.h), all pre-rename so an
/// injected failure can never tear the destination:
///   "io.open.fail"      temp file creation fails
///   "io.write.fail"     the write reports an error
///   "io.write.partial"  only half the bytes reach the temp file before
///                       the write fails (simulated crash mid-write)
Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const AtomicWriteOptions& options = {});

/// Reads the whole file into a string. NotFound/IoError on failure.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace ealgap

#endif  // EALGAP_COMMON_FILE_UTIL_H_
