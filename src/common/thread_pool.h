#ifndef EALGAP_COMMON_THREAD_POOL_H_
#define EALGAP_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <memory>
#include <type_traits>

namespace ealgap {

/// Process-wide worker-pool size. Initialized on first use from the
/// EALGAP_NUM_THREADS environment variable, falling back to
/// std::thread::hardware_concurrency().
int GetNumThreads();

/// Resizes the process-wide pool; n < 1 is clamped to 1 (fully serial).
void SetNumThreads(int n);

/// True when the calling thread is already executing inside a ParallelFor
/// chunk (on a worker or on a participating caller). Nested ParallelFor
/// calls from such a thread run serially.
bool InParallelRegion();

namespace internal {
/// True when [0, n) with the given grain should be split across the pool:
/// more than one thread, n >= 2 * grain, and not already inside a chunk.
bool ShouldParallelize(int64_t n, int64_t grain);
/// Type-erased chunk callback: a captureless trampoline plus the address
/// of the caller's callable. Chosen over std::function so a threaded
/// dispatch performs no heap allocation — part of the serve path's
/// zero-allocation contract (DESIGN.md §8e).
using ChunkFn = void (*)(void* ctx, int64_t chunk_begin, int64_t chunk_end);
/// Dispatch; only reached when ShouldParallelize said yes. `ctx` must stay
/// valid until the call returns (it does: ParallelFor blocks).
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain, ChunkFn fn,
                     void* ctx);
}  // namespace internal

/// Runs fn(chunk_begin, chunk_end) over a static contiguous partition of
/// [begin, end), blocking until every chunk has run.
///
/// Contract:
///  - Chunks are contiguous, in order, and cover [begin, end) exactly once.
///  - When end - begin < 2 * grain, the pool has one thread, or the caller
///    is already inside a parallel region, fn(begin, end) runs inline on the
///    calling thread — small ranges pay zero threading overhead (no
///    std::function erasure, no pool traffic) and nested parallelism
///    degrades to serial instead of deadlocking.
///  - Chunk boundaries depend on the pool size, so callers must not let the
///    *value* of an output depend on the split: write each output element
///    from exactly one index, and for reductions combine fixed-size blocks
///    in index order (see ops::SumAll for the idiom).
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (!internal::ShouldParallelize(n, grain)) {
    fn(begin, end);
    return;
  }
  using FnT = std::remove_reference_t<Fn>;
  internal::ParallelForImpl(
      begin, end, grain,
      [](void* ctx, int64_t b, int64_t e) { (*static_cast<FnT*>(ctx))(b, e); },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
}

}  // namespace ealgap

#endif  // EALGAP_COMMON_THREAD_POOL_H_
