#include "common/flags.h"

#include <cstdlib>

namespace ealgap {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace ealgap
