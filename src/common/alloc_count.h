#ifndef EALGAP_COMMON_ALLOC_COUNT_H_
#define EALGAP_COMMON_ALLOC_COUNT_H_

/// Heap-allocation counting used by the zero-allocation serve tests.
///
/// The counters live here (always linked, always cheap), but they only
/// tick when a translation unit overriding the global operator new/delete
/// calls RecordAllocation()/RecordDeallocation(). That override TU —
/// tests/alloc_count_hook.cc — is linked ONLY into the allocation tests,
/// so production binaries keep the stock allocator and pay nothing.
///
/// Counters are thread-local: a test measures the allocations of ITS
/// thread's serve calls without interference from pool workers (whose
/// steady-state dispatch is itself allocation-free and covered by running
/// the scenario at several thread counts).

#include <cstdint>

namespace ealgap {
namespace alloc_count {

/// Called by the interposing operator new/delete (if linked).
void RecordAllocation(std::size_t bytes) noexcept;
void RecordDeallocation() noexcept;

/// True when the interposing hook TU is linked into this binary. Lets the
/// counting test fail loudly if mislinked instead of vacuously passing.
bool HookLinked() noexcept;

/// Allocation count on this thread since process start.
std::int64_t ThreadAllocations() noexcept;
/// Deallocation count on this thread since process start.
std::int64_t ThreadDeallocations() noexcept;
/// Bytes requested on this thread since process start.
std::int64_t ThreadAllocatedBytes() noexcept;

/// Scoped measurement: records the counter at construction; delta() is
/// the number of operator-new calls on this thread since then.
class ScopedCounter {
 public:
  ScopedCounter()
      : start_allocs_(ThreadAllocations()),
        start_bytes_(ThreadAllocatedBytes()) {}

  std::int64_t delta() const { return ThreadAllocations() - start_allocs_; }
  std::int64_t delta_bytes() const {
    return ThreadAllocatedBytes() - start_bytes_;
  }

 private:
  std::int64_t start_allocs_;
  std::int64_t start_bytes_;
};

}  // namespace alloc_count
}  // namespace ealgap

#endif  // EALGAP_COMMON_ALLOC_COUNT_H_
