#ifndef EALGAP_COMMON_RESULT_H_
#define EALGAP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ealgap {

/// Either a value of type T or a non-OK Status explaining why it is absent.
///
/// Mirrors arrow::Result: construct implicitly from a T (success) or from a
/// non-OK Status (failure). Accessing the value of a failed Result is a
/// programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Success: wraps a value.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors arrow::Result
      : value_(std::move(value)) {}

  /// Failure: wraps a non-OK status. Passing an OK status is a bug and is
  /// converted to an Internal error to keep the invariant "no value => !ok".
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this Result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
///   EALGAP_ASSIGN_OR_RETURN(auto x, MakeX());
#define EALGAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define EALGAP_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define EALGAP_ASSIGN_OR_RETURN_NAME(a, b) EALGAP_ASSIGN_OR_RETURN_CONCAT(a, b)

#define EALGAP_ASSIGN_OR_RETURN(lhs, expr) \
  EALGAP_ASSIGN_OR_RETURN_IMPL(            \
      EALGAP_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace ealgap

#endif  // EALGAP_COMMON_RESULT_H_
