#include "common/aligned_alloc.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace ealgap {
namespace {

/// Every block carries a kCacheAlign-byte header right before the user
/// pointer, so AlignedFree can route to the right release path without a
/// side table (a side table would itself allocate — unacceptable under
/// the serve path's zero-allocation contract).
struct BlockHeader {
  std::uint64_t magic;   // kHeapMagic or kMmapMagic
  std::size_t total;     // full block size including the header
};
static_assert(sizeof(BlockHeader) <= kCacheAlign);

constexpr std::uint64_t kHeapMagic = 0x45414c47'41503031ull;  // "EALGAP01"
constexpr std::uint64_t kMmapMagic = 0x45414c47'41503032ull;  // "EALGAP02"

/// Blocks at or above this size try the huge-page mmap path when
/// EALGAP_HUGE_PAGES=1 (2 MiB = x86-64 huge page).
constexpr std::size_t kHugePageThreshold = 2u << 20;

std::atomic<std::size_t> g_live_bytes{0};

bool HugePagesEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("EALGAP_HUGE_PAGES");
    return v != nullptr && v[0] == '1';
  }();
  return enabled;
}

std::size_t RoundUp(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

[[noreturn]] void DieOom(std::size_t bytes) {
  std::fprintf(stderr, "ealgap: AlignedAlloc(%zu) failed\n", bytes);
  std::abort();
}

}  // namespace

void* AlignedAlloc(std::size_t bytes) {
  const std::size_t payload = RoundUp(bytes == 0 ? 1 : bytes, kCacheAlign);

#ifdef __linux__
  if (HugePagesEnabled() && payload >= kHugePageThreshold) {
    // align_mm-style path: a private anonymous mapping rounded to whole
    // pages, advised to back with transparent huge pages. The header
    // occupies the first kCacheAlign bytes; the user pointer stays
    // 64-byte aligned because mmap returns page-aligned memory.
    const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    const std::size_t total = RoundUp(kCacheAlign + payload, page);
    void* base = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base != MAP_FAILED) {
#ifdef MADV_HUGEPAGE
      madvise(base, total, MADV_HUGEPAGE);
#endif
      auto* h = static_cast<BlockHeader*>(base);
      h->magic = kMmapMagic;
      h->total = total;
      g_live_bytes.fetch_add(total, std::memory_order_relaxed);
      return static_cast<char*>(base) + kCacheAlign;
    }
    // Fall through to the heap path on mmap failure.
  }
#endif

  const std::size_t total = kCacheAlign + payload;
  void* base = std::aligned_alloc(kCacheAlign, total);
  if (base == nullptr) DieOom(bytes);
  auto* h = static_cast<BlockHeader*>(base);
  h->magic = kHeapMagic;
  h->total = total;
  g_live_bytes.fetch_add(total, std::memory_order_relaxed);
  return static_cast<char*>(base) + kCacheAlign;
}

void AlignedFree(void* p) noexcept {
  if (p == nullptr) return;
  char* base = static_cast<char*>(p) - kCacheAlign;
  auto* h = reinterpret_cast<BlockHeader*>(base);
  const std::uint64_t magic = h->magic;
  h->magic = 0;  // catches double-free as a magic mismatch
  g_live_bytes.fetch_sub(h->total, std::memory_order_relaxed);
  if (magic == kHeapMagic) {
    std::free(base);
    return;
  }
#ifdef __linux__
  if (magic == kMmapMagic) {
    munmap(base, h->total);
    return;
  }
#endif
  std::fprintf(stderr, "ealgap: AlignedFree of foreign pointer %p\n", p);
  std::abort();
}

std::size_t AlignedAllocLiveBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

}  // namespace ealgap
