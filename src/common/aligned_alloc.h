#ifndef EALGAP_COMMON_ALIGNED_ALLOC_H_
#define EALGAP_COMMON_ALIGNED_ALLOC_H_

/// 64-byte-aligned allocation primitives — the memory substrate under
/// Tensor storage, the serve arena, and the flat ring/slot buffers of
/// serve::OnlinePredictor (DESIGN.md §8e).
///
/// Everything hot allocates through AlignedAlloc so that (a) SIMD kernels
/// can take the aligned-load path whenever base pointers line up, and
/// (b) buffers never straddle a cache line boundary mid-vector. Large
/// blocks can opt into transparent huge pages (EALGAP_HUGE_PAGES=1) via a
/// private mmap, which removes dTLB pressure for the N=10k-region rings.

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace ealgap {

/// Cache-line / maximum-vector alignment used across the project. AVX2
/// needs 32; we align to the 64-byte cache line so one constant serves
/// both the SIMD kernels and false-sharing avoidance.
inline constexpr std::size_t kCacheAlign = 64;

/// True when `p` is aligned to `align` bytes (power of two).
inline bool IsAligned(const void* p, std::size_t align = kCacheAlign) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/// Allocates `bytes` with at least kCacheAlign alignment. Never returns
/// nullptr (aborts on OOM like operator new). bytes == 0 returns a valid
/// unique pointer. Free with AlignedFree — NOT free()/delete: blocks above
/// the huge-page threshold may come from mmap when EALGAP_HUGE_PAGES=1.
void* AlignedAlloc(std::size_t bytes);

/// Releases a block from AlignedAlloc.
void AlignedFree(void* p) noexcept;

/// Number of live bytes handed out by AlignedAlloc (diagnostics).
std::size_t AlignedAllocLiveBytes();

/// STL-compatible allocator over AlignedAlloc — gives std::vector-based
/// buffers (serve rings, slot stats) 64-byte base pointers so kernels can
/// prove alignment. Stateless; all instances compare equal.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(AlignedAlloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { AlignedFree(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Fixed-size 64-byte-aligned array of trivially-destructible T. Thin
/// owning wrapper for code that wants "a flat aligned buffer" without
/// vector growth semantics: serve ring buffers, slot stats, scratch rows.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { Reset(n); }
  ~AlignedBuffer() { AlignedFree(p_); }

  AlignedBuffer(AlignedBuffer&& o) noexcept : p_(o.p_), n_(o.n_) {
    o.p_ = nullptr;
    o.n_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      AlignedFree(p_);
      p_ = o.p_;
      n_ = o.n_;
      o.p_ = nullptr;
      o.n_ = 0;
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Reallocates to `n` zero-initialized elements.
  void Reset(std::size_t n) {
    AlignedFree(p_);
    p_ = static_cast<T*>(AlignedAlloc(n * sizeof(T)));
    n_ = n;
    for (std::size_t i = 0; i < n; ++i) p_[i] = T();
  }

  T* data() { return p_; }
  const T* data() const { return p_; }
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  T& operator[](std::size_t i) { return p_[i]; }
  const T& operator[](std::size_t i) const { return p_[i]; }
  T* begin() { return p_; }
  T* end() { return p_ + n_; }
  const T* begin() const { return p_; }
  const T* end() const { return p_ + n_; }

 private:
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer holds trivially-destructible types only");
  T* p_ = nullptr;
  std::size_t n_ = 0;
};

}  // namespace ealgap

#endif  // EALGAP_COMMON_ALIGNED_ALLOC_H_
