#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace ealgap {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

CsvRow SplitCsvLine(const std::string& line, char delim) {
  CsvRow fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && cur.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF input.
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string JoinCsvLine(const CsvRow& row, char delim) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(delim);
    const std::string& f = row[i];
    const bool needs_quotes = f.find(delim) != std::string::npos ||
                              f.find('"') != std::string::npos ||
                              f.find('\n') != std::string::npos;
    if (needs_quotes) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += f;
    }
  }
  return out;
}

Result<CsvTable> ParseCsv(const std::string& text, bool has_header,
                          bool allow_ragged, char delim) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool header_done = !has_header;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    CsvRow row = SplitCsvLine(line, delim);
    if (!header_done) {
      table.header = std::move(row);
      header_done = true;
      continue;
    }
    if (!allow_ragged && !table.header.empty() &&
        row.size() != table.header.size()) {
      return Status::ParseError("CSV line " + std::to_string(line_no) +
                                " has " + std::to_string(row.size()) +
                                " fields, expected " +
                                std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header,
                             bool allow_ragged, char delim) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), has_header, allow_ragged, delim);
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char delim) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  if (!table.header.empty()) out << JoinCsvLine(table.header, delim) << "\n";
  for (const auto& row : table.rows) out << JoinCsvLine(row, delim) << "\n";
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace ealgap
