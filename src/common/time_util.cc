#include "common/time_util.h"

#include <cstdio>

namespace ealgap {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

int64_t DaysSinceEpoch(const CivilDate& d) {
  // Howard Hinnant's days_from_civil algorithm.
  int y = d.year;
  const int m = d.month;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d.day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilDate DateFromDaysSinceEpoch(int64_t z) {
  // Howard Hinnant's civil_from_days algorithm.
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);        // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                             // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                   // [1, 31]
  const unsigned month = mp + (mp < 10 ? 3 : -9);                      // [1, 12]
  return CivilDate{static_cast<int>(y + (month <= 2)),
                   static_cast<int>(month), static_cast<int>(day)};
}

int DayOfWeek(const CivilDate& d) {
  // 1970-01-01 was a Thursday (4).
  const int64_t days = DaysSinceEpoch(d);
  return static_cast<int>(((days % 7) + 7 + 4) % 7);
}

bool IsWeekend(const CivilDate& d) {
  const int dow = DayOfWeek(d);
  return dow == 0 || dow == 6;
}

int64_t ToUnixSeconds(const CivilTime& t) {
  return DaysSinceEpoch(t.date) * 86400 + t.hour * 3600 + t.minute * 60 +
         t.second;
}

CivilTime FromUnixSeconds(int64_t seconds) {
  int64_t days = seconds / 86400;
  int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  CivilTime out;
  out.date = DateFromDaysSinceEpoch(days);
  out.hour = static_cast<int>(rem / 3600);
  out.minute = static_cast<int>((rem % 3600) / 60);
  out.second = static_cast<int>(rem % 60);
  return out;
}

Result<CivilDate> ParseDate(const std::string& s) {
  CivilDate d;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &d.year, &d.month, &d.day) != 3) {
    return Status::ParseError("bad date: " + s);
  }
  if (d.month < 1 || d.month > 12 || d.day < 1 ||
      d.day > DaysInMonth(d.year, d.month)) {
    return Status::ParseError("date out of range: " + s);
  }
  return d;
}

Result<CivilTime> ParseTimestamp(const std::string& s) {
  CivilTime t;
  if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &t.date.year, &t.date.month,
                  &t.date.day, &t.hour, &t.minute, &t.second) != 6) {
    return Status::ParseError("bad timestamp: " + s);
  }
  if (t.date.month < 1 || t.date.month > 12 || t.date.day < 1 ||
      t.date.day > DaysInMonth(t.date.year, t.date.month) || t.hour < 0 ||
      t.hour > 23 || t.minute < 0 || t.minute > 59 || t.second < 0 ||
      t.second > 59) {
    return Status::ParseError("timestamp out of range: " + s);
  }
  return t;
}

std::string FormatDate(const CivilDate& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string FormatTimestamp(const CivilTime& t) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                t.date.year, t.date.month, t.date.day, t.hour, t.minute,
                t.second);
  return buf;
}

CivilDate AddDays(const CivilDate& d, int64_t n) {
  return DateFromDaysSinceEpoch(DaysSinceEpoch(d) + n);
}

}  // namespace ealgap
