#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace ealgap {
namespace {

thread_local bool t_in_parallel = false;

int InitialThreads() {
  if (const char* env = std::getenv("EALGAP_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One dispatched ParallelFor: workers and the caller claim chunk indices
/// with an atomic counter. Jobs are pool-owned and recycled through a
/// freelist instead of heap-allocated per dispatch, so the steady state
/// performs zero allocations. A job returns to the freelist only when its
/// reference count (always mutated under mu_) drops to zero, so a worker
/// that wakes late and still holds an old job never sees its fields
/// rewritten by the next dispatch.
struct Job {
  internal::ChunkFn fn = nullptr;
  void* ctx = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 0;
  int ntasks = 0;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  int refs = 0;  // guarded by Pool::mu_
  Job* free_next = nullptr;
};

class Pool {
 public:
  static Pool& Instance() {
    // Leaked intentionally: worker threads must never outlive the pool, and
    // static destruction order across translation units is unknowable.
    static Pool* pool = new Pool();
    return *pool;
  }

  int num_threads() const { return num_threads_.load(std::memory_order_acquire); }

  void Resize(int n) {
    n = std::max(n, 1);
    // Resizing from inside a chunk would self-deadlock on run_mu_; refuse.
    if (t_in_parallel) return;
    std::lock_guard<std::mutex> resize_lock(resize_mu_);
    if (n == num_threads()) return;
    // Drain any in-flight dispatch before touching the workers.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    StopWorkers();
    num_threads_.store(n, std::memory_order_release);
    StartWorkers();
  }

  /// Runs fn(ctx, b, e) over `ntasks` chunks of [begin, end), the caller
  /// participating. Returns false without running anything when another
  /// dispatch is in flight (concurrent caller); the caller then falls back
  /// to serial.
  bool TryRun(int ntasks, int64_t begin, int64_t end, int64_t chunk,
              internal::ChunkFn fn, void* ctx) {
    std::unique_lock<std::mutex> run_lock(run_mu_, std::try_to_lock);
    if (!run_lock.owns_lock()) return false;
    Job* job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job = AcquireJobLocked();
      job->fn = fn;
      job->ctx = ctx;
      job->begin = begin;
      job->end = end;
      job->chunk = chunk;
      job->ntasks = ntasks;
      job->next.store(0, std::memory_order_relaxed);
      job->done.store(0, std::memory_order_relaxed);
      job->refs = 1;  // the dispatching caller
      job_ = job;
      ++seq_;
    }
    work_cv_.notify_all();
    RunTasks(*job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) >= job->ntasks;
      });
      job_ = nullptr;
      ReleaseJobLocked(job);
    }
    return true;
  }

 private:
  Pool() : num_threads_(InitialThreads()) { StartWorkers(); }

  void StartWorkers() {
    // The dispatching caller counts as one executor.
    for (int i = 0; i < num_threads() - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
  }

  Job* AcquireJobLocked() {
    if (free_jobs_ != nullptr) {
      Job* job = free_jobs_;
      free_jobs_ = job->free_next;
      job->free_next = nullptr;
      return job;
    }
    // Cold path: at most a handful of jobs ever exist (one in flight plus
    // stragglers still referenced by late-waking workers).
    return new Job();
  }

  void ReleaseJobLocked(Job* job) {
    if (--job->refs == 0) {
      job->free_next = free_jobs_;
      free_jobs_ = job;
    }
  }

  void WorkerLoop() {
    uint64_t last_seq = 0;
    for (;;) {
      Job* job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && seq_ != last_seq);
        });
        if (shutdown_) return;
        last_seq = seq_;
        job = job_;
        ++job->refs;
      }
      RunTasks(*job);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ReleaseJobLocked(job);
      }
    }
  }

  void RunTasks(Job& job) {
    t_in_parallel = true;
    for (;;) {
      const int i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.ntasks) break;
      const int64_t b = job.begin + i * job.chunk;
      const int64_t e = std::min(job.end, b + job.chunk);
      if (b < e) job.fn(job.ctx, b, e);
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.ntasks) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    t_in_parallel = false;
  }

  std::mutex resize_mu_;  // serializes Resize calls
  std::mutex run_mu_;     // one dispatch at a time; Resize drains through it
  std::mutex mu_;         // guards job_, seq_, shutdown_, refs, freelist, cvs
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  Job* free_jobs_ = nullptr;
  uint64_t seq_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  std::atomic<int> num_threads_{1};
};

}  // namespace

int GetNumThreads() { return Pool::Instance().num_threads(); }

void SetNumThreads(int n) { Pool::Instance().Resize(n); }

bool InParallelRegion() { return t_in_parallel; }

namespace internal {

bool ShouldParallelize(int64_t n, int64_t grain) {
  // Nested calls must not touch pool state at all.
  if (t_in_parallel) return false;
  return Pool::Instance().num_threads() > 1 && n >= 2 * grain;
}

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain, ChunkFn fn,
                     void* ctx) {
  Pool& pool = Pool::Instance();
  const int64_t n = end - begin;
  const int nt = pool.num_threads();
  const int64_t max_chunks = (n + grain - 1) / grain;
  const int nchunks = static_cast<int>(std::min<int64_t>(nt, max_chunks));
  const int64_t chunk = (n + nchunks - 1) / nchunks;
  if (!pool.TryRun(nchunks, begin, end, chunk, fn, ctx)) fn(ctx, begin, end);
}

}  // namespace internal

}  // namespace ealgap
