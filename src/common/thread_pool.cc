#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ealgap {
namespace {

thread_local bool t_in_parallel = false;

int InitialThreads() {
  if (const char* env = std::getenv("EALGAP_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One dispatched ParallelFor: workers and the caller claim task indices
/// with an atomic counter. Heap-held via shared_ptr so a worker that wakes
/// late and observes an already-finished job never touches freed memory.
struct Job {
  const std::function<void(int)>* fn = nullptr;
  int ntasks = 0;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
};

class Pool {
 public:
  static Pool& Instance() {
    // Leaked intentionally: worker threads must never outlive the pool, and
    // static destruction order across translation units is unknowable.
    static Pool* pool = new Pool();
    return *pool;
  }

  int num_threads() const { return num_threads_.load(std::memory_order_acquire); }

  void Resize(int n) {
    n = std::max(n, 1);
    // Resizing from inside a chunk would self-deadlock on run_mu_; refuse.
    if (t_in_parallel) return;
    std::lock_guard<std::mutex> resize_lock(resize_mu_);
    if (n == num_threads()) return;
    // Drain any in-flight dispatch before touching the workers.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    StopWorkers();
    num_threads_.store(n, std::memory_order_release);
    StartWorkers();
  }

  /// Runs fn(i) for every i in [0, ntasks), the caller participating.
  /// Returns false without running anything when another dispatch is in
  /// flight (concurrent caller); the caller then falls back to serial.
  bool TryRun(int ntasks, const std::function<void(int)>& fn) {
    std::unique_lock<std::mutex> run_lock(run_mu_, std::try_to_lock);
    if (!run_lock.owns_lock()) return false;
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->ntasks = ntasks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++seq_;
    }
    work_cv_.notify_all();
    RunTasks(*job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) >= job->ntasks;
      });
      job_.reset();
    }
    return true;
  }

 private:
  Pool() : num_threads_(InitialThreads()) { StartWorkers(); }

  void StartWorkers() {
    // The dispatching caller counts as one executor.
    for (int i = 0; i < num_threads() - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
  }

  void WorkerLoop() {
    uint64_t last_seq = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && seq_ != last_seq);
        });
        if (shutdown_) return;
        last_seq = seq_;
        job = job_;
      }
      RunTasks(*job);
    }
  }

  void RunTasks(Job& job) {
    t_in_parallel = true;
    for (;;) {
      const int i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.ntasks) break;
      (*job.fn)(i);
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.ntasks) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    t_in_parallel = false;
  }

  std::mutex resize_mu_;  // serializes Resize calls
  std::mutex run_mu_;     // one dispatch at a time; Resize drains through it
  std::mutex mu_;         // guards job_, seq_, shutdown_, and both cvs
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  uint64_t seq_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  std::atomic<int> num_threads_{1};
};

}  // namespace

int GetNumThreads() { return Pool::Instance().num_threads(); }

void SetNumThreads(int n) { Pool::Instance().Resize(n); }

bool InParallelRegion() { return t_in_parallel; }

namespace internal {

bool ShouldParallelize(int64_t n, int64_t grain) {
  // Nested calls must not touch pool state at all.
  if (t_in_parallel) return false;
  return Pool::Instance().num_threads() > 1 && n >= 2 * grain;
}

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  Pool& pool = Pool::Instance();
  const int64_t n = end - begin;
  const int nt = pool.num_threads();
  const int64_t max_chunks = (n + grain - 1) / grain;
  const int nchunks = static_cast<int>(std::min<int64_t>(nt, max_chunks));
  const int64_t chunk = (n + nchunks - 1) / nchunks;
  const auto task = [&](int c) {
    const int64_t b = begin + c * chunk;
    const int64_t e = std::min(end, b + chunk);
    if (b < e) fn(b, e);
  };
  if (!pool.TryRun(nchunks, task)) fn(begin, end);
}

}  // namespace internal

}  // namespace ealgap
