#ifndef EALGAP_COMMON_CSV_H_
#define EALGAP_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ealgap {

/// One parsed CSV record; fields are unescaped strings.
using CsvRow = std::vector<std::string>;

/// An in-memory CSV table: header row plus data rows.
struct CsvTable {
  CsvRow header;
  std::vector<CsvRow> rows;

  /// Index of the named column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// Splits a single CSV line honoring double-quote escaping (RFC 4180 quotes,
/// "" for an embedded quote). Embedded newlines are not supported.
CsvRow SplitCsvLine(const std::string& line, char delim = ',');

/// Escapes and joins fields into one CSV line.
std::string JoinCsvLine(const CsvRow& row, char delim = ',');

/// Parses CSV text. When `has_header` is true the first non-empty line
/// becomes `header`. Fails with ParseError on ragged rows (row length not
/// matching the header) unless `allow_ragged`.
Result<CsvTable> ParseCsv(const std::string& text, bool has_header = true,
                          bool allow_ragged = false, char delim = ',');

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header = true,
                             bool allow_ragged = false, char delim = ',');

/// Writes a CSV table to disk (header first when non-empty).
Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char delim = ',');

}  // namespace ealgap

#endif  // EALGAP_COMMON_CSV_H_
