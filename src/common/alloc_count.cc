#include "common/alloc_count.h"

#include <atomic>

namespace ealgap {
namespace alloc_count {
namespace {

struct Counters {
  std::int64_t allocations = 0;
  std::int64_t deallocations = 0;
  std::int64_t bytes = 0;
};

thread_local Counters t_counters;
std::atomic<bool> g_hook_linked{false};

}  // namespace

void RecordAllocation(std::size_t bytes) noexcept {
  if (!g_hook_linked.load(std::memory_order_relaxed)) {
    g_hook_linked.store(true, std::memory_order_relaxed);
  }
  t_counters.allocations += 1;
  t_counters.bytes += static_cast<std::int64_t>(bytes);
}

void RecordDeallocation() noexcept { t_counters.deallocations += 1; }

bool HookLinked() noexcept {
  return g_hook_linked.load(std::memory_order_relaxed);
}

std::int64_t ThreadAllocations() noexcept { return t_counters.allocations; }
std::int64_t ThreadDeallocations() noexcept { return t_counters.deallocations; }
std::int64_t ThreadAllocatedBytes() noexcept { return t_counters.bytes; }

}  // namespace alloc_count
}  // namespace ealgap
