#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/csv.h"

namespace ealgap {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) os << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << "\n";
  };
  emit_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  os.flush();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  os << JoinCsvLine(columns_) << "\n";
  for (const auto& row : rows_) os << JoinCsvLine(row) << "\n";
  os.flush();
}

}  // namespace ealgap
