#ifndef EALGAP_COMMON_RNG_H_
#define EALGAP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ealgap {

/// Complete serializable state of an Rng: the xoshiro words plus the
/// Box-Muller cache. Restoring a captured state resumes the stream
/// bit-identically, which is what crash-safe training checkpoints rely on.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic pseudo-random number generator (xoshiro256++) with the
/// sampling primitives the library needs.
///
/// Every stochastic component in the library (data generation, weight
/// initialization, shuffling) takes an explicit Rng or seed so that
/// experiments are reproducible bit-for-bit run to run.
class Rng {
 public:
  /// Seeds the generator; identical seeds give identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double Exponential(double lambda);

  /// Poisson draw with the given mean; uses Knuth for small means and a
  /// normal approximation for large ones. Requires mean >= 0.
  int64_t Poisson(double mean);

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

  /// Captures the full generator state; set_state() resumes the stream
  /// exactly where the capture left it (including the cached normal).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ealgap

#endif  // EALGAP_COMMON_RNG_H_
