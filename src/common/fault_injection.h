#ifndef EALGAP_COMMON_FAULT_INJECTION_H_
#define EALGAP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace ealgap {
namespace fault {

/// Deterministic fault-injection harness.
///
/// Production code declares *named sites* at the places where the real
/// world fails — checkpoint writes, the neural forward, deadlines — and
/// asks the harness whether the fault fires on this call:
///
///   if (EALGAP_FAULT("io.write.fail")) return Status::IoError("injected");
///
/// Sites are compiled in always. When nothing is armed the check is a
/// single relaxed atomic load, so the harness costs nothing in normal
/// operation; tests and the CI fault stage arm sites to drive every
/// degraded path that is unreachable with healthy inputs.
///
/// Arming is either ambient — the EALGAP_FAULTS environment variable,
/// parsed once on first use — or programmatic via ArmFromSpec/ScopedFaults
/// (which override the environment and, for ScopedFaults, restore it).
///
/// Spec grammar (also the env-var format): comma-separated site clauses,
/// each a site name followed by colon-separated key=value options:
///
///   EALGAP_FAULTS="nn.predict.nan:p=0.2:seed=11,io.write.fail:every=3:max=2"
///
/// Specs are validated when armed: a site name that is not one of the
/// production sites (nn.predict.*, io.*, train.*, daemon.*) is rejected with a
/// ParseError naming the bad token, so a typo'd EALGAP_FAULTS clause can
/// never silently arm nothing. Sites under the reserved "test." namespace
/// are always accepted (tests use them to probe harness semantics).
/// Unknown option keys are rejected the same way.
///
/// Options (all optional):
///   p=<0..1>   fire probability per call (default 1.0), drawn from a
///              per-site xoshiro RNG — deterministic given the seed and
///              the site's call sequence.
///   seed=<n>   RNG seed for this site (default: a hash of the site name).
///   every=<n>  fire on every n-th eligible call instead of randomly.
///   after=<n>  first n calls never fire.
///   max=<n>    stop firing after n fires (transient faults).
///   ms=<n>     delay in milliseconds; accepted only on latency sites
///              (*.delay, or anything under test.) — arming it on any
///              other site is a ParseError naming the site, so a clause
///              that expects a stall can never silently arm a hard fault.
///
/// Every decision is serialized under one mutex, so concurrent callers are
/// safe; the *order* in which threads consume a probabilistic site's RNG
/// is scheduling-dependent, so tests that assert exact fire patterns use
/// single-threaded replays (or `every=`, which depends only on counts).

/// True when any site is armed. Single relaxed atomic load: this is the
/// only cost paid on hot paths while the harness is disarmed.
bool Armed();

/// Deterministically decides whether `site` fires on this call and bumps
/// the site's call/fire counters. Unarmed sites never fire.
bool ShouldFail(const char* site);

/// Numeric option attached to the site's clause (e.g. "ms"), or `def`.
double Param(const char* site, const char* key, double def);

/// If the latency site fires, sleeps for its ms option (default
/// `default_ms`) and returns true. Convenience wrapper for deadline tests.
bool MaybeDelay(const char* site, double default_ms = 50.0);

/// Per-site observability, for tests and the serve tool's fault report.
struct SiteStats {
  int64_t calls = 0;
  int64_t fires = 0;
};
std::map<std::string, SiteStats> Snapshot();

/// Replaces the armed configuration with `spec` (same grammar as the env
/// var). An empty spec disarms everything. Malformed specs leave the
/// current configuration untouched and return a ParseError.
Status ArmFromSpec(const std::string& spec);

/// Disarms every site and resets all counters.
void DisarmAll();

/// RAII override for tests: arms `spec` on construction and restores the
/// previous configuration (including env-derived arming) on destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec);
  ~ScopedFaults();

  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  std::string saved_spec_;
};

}  // namespace fault
}  // namespace ealgap

/// Zero-cost-when-disarmed fault point. Evaluates to true when `site` is
/// armed and fires on this call.
#define EALGAP_FAULT(site) \
  (::ealgap::fault::Armed() && ::ealgap::fault::ShouldFail(site))

#endif  // EALGAP_COMMON_FAULT_INJECTION_H_
