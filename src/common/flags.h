#ifndef EALGAP_COMMON_FLAGS_H_
#define EALGAP_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace ealgap {

/// Minimal command-line flag parser for the bench/example binaries.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Anything not starting with `--` is collected as a positional argument.
class Flags {
 public:
  /// Parses argv (argv[0] is skipped).
  Flags(int argc, const char* const* argv);

  /// True when the flag appeared at all.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults; malformed numeric values fall back to the
  /// default (the binaries treat flags as a convenience, not an API).
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ealgap

#endif  // EALGAP_COMMON_FLAGS_H_
