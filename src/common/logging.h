#ifndef EALGAP_COMMON_LOGGING_H_
#define EALGAP_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ealgap {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Process-wide minimum severity; messages below it are dropped.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Stream-style log message; emits to stderr on destruction.
/// `fatal` aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the global log threshold (default kInfo).
inline void SetLogLevel(LogLevel level) {
  internal_logging::SetMinLogLevel(level);
}

#define EALGAP_LOG(severity)                                        \
  ::ealgap::internal_logging::LogMessage(                           \
      ::ealgap::LogLevel::k##severity, __FILE__, __LINE__)

/// Unconditional invariant check that logs and aborts on failure. Used for
/// programmer errors (shape mismatches, indexing bugs), never for user input.
#define EALGAP_CHECK(cond)                                               \
  if (!(cond))                                                           \
  ::ealgap::internal_logging::LogMessage(::ealgap::LogLevel::kError,     \
                                         __FILE__, __LINE__,             \
                                         /*fatal=*/true)                 \
      << "Check failed: " #cond " "

#define EALGAP_CHECK_EQ(a, b) EALGAP_CHECK((a) == (b))
#define EALGAP_CHECK_NE(a, b) EALGAP_CHECK((a) != (b))
#define EALGAP_CHECK_LT(a, b) EALGAP_CHECK((a) < (b))
#define EALGAP_CHECK_LE(a, b) EALGAP_CHECK((a) <= (b))
#define EALGAP_CHECK_GT(a, b) EALGAP_CHECK((a) > (b))
#define EALGAP_CHECK_GE(a, b) EALGAP_CHECK((a) >= (b))

}  // namespace ealgap

#endif  // EALGAP_COMMON_LOGGING_H_
