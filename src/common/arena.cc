#include "common/arena.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ealgap {

namespace {
thread_local Arena* t_current_arena = nullptr;

std::size_t RoundUp(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}
}  // namespace

Arena::Arena(std::size_t initial_bytes) {
  next_slab_bytes_ = std::max<std::size_t>(RoundUp(initial_bytes, kCacheAlign),
                                           kCacheAlign);
  AddSlab(next_slab_bytes_);
}

Arena::~Arena() {
  for (std::size_t i = 0; i < num_slabs_; ++i) AlignedFree(slabs_[i].base);
}

void Arena::AddSlab(std::size_t min_bytes) {
  if (num_slabs_ >= kMaxSlabs) {
    std::fprintf(stderr, "ealgap: Arena exceeded %zu slabs\n", kMaxSlabs);
    std::abort();
  }
  const std::size_t size = std::max(RoundUp(min_bytes, kCacheAlign),
                                    next_slab_bytes_);
  slabs_[num_slabs_].base = static_cast<char*>(AlignedAlloc(size));
  slabs_[num_slabs_].size = size;
  ++num_slabs_;
  capacity_bytes_ += size;
  // Geometric growth keeps the slab count logarithmic in total demand.
  next_slab_bytes_ = size * 2;
}

void* Arena::Allocate(std::size_t bytes) {
  const std::size_t need = RoundUp(bytes == 0 ? 1 : bytes, kCacheAlign);
  // Find a slab with room, starting at the current one. Skipped tail
  // space in earlier slabs stays unused until the next rewind — bump
  // allocation trades that slack for O(1) alloc/free.
  while (cur_slab_ < num_slabs_ &&
         cur_offset_ + need > slabs_[cur_slab_].size) {
    ++cur_slab_;
    cur_offset_ = 0;
  }
  if (cur_slab_ == num_slabs_) {
    AddSlab(need);
    cur_offset_ = 0;
  }
  char* p = slabs_[cur_slab_].base + cur_offset_;
  cur_offset_ += need;
  allocated_bytes_ += need;
  high_water_bytes_ = std::max(high_water_bytes_, allocated_bytes_);
  return p;
}

void Arena::Rewind(Mark mark) {
  // Recompute allocated_bytes_ from the mark: full slabs before it plus
  // its offset. (Rewinding partially "forgets" the skipped-tail slack of
  // later slabs, which is fine — the counter is diagnostic.)
  std::size_t used = mark.offset;
  for (std::size_t i = 0; i < mark.slab && i < num_slabs_; ++i) {
    used += slabs_[i].size;
  }
  cur_slab_ = mark.slab;
  cur_offset_ = mark.offset;
  allocated_bytes_ = used;
}

void Arena::Reserve(std::size_t bytes) {
  std::size_t free_tail = 0;
  for (std::size_t i = cur_slab_; i < num_slabs_; ++i) {
    free_tail += slabs_[i].size - (i == cur_slab_ ? cur_offset_ : 0);
  }
  if (free_tail < bytes) AddSlab(bytes - free_tail);
}

Arena* CurrentArena() { return t_current_arena; }

ArenaScope::ArenaScope(Arena* arena)
    : arena_(arena),
      prev_(t_current_arena),
      mark_(arena != nullptr ? arena->Checkpoint() : Arena::Mark{}) {
  t_current_arena = arena_;
}

ArenaScope::~ArenaScope() {
  if (arena_ != nullptr) arena_->Rewind(mark_);
  t_current_arena = prev_;
}

}  // namespace ealgap
