#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace ealgap {

namespace {

// SplitMix64: used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  EALGAP_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return v % n;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  EALGAP_CHECK_GT(lambda, 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double mean) {
  EALGAP_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // synthetic count magnitudes used here.
  const double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

RngState Rng::state() const {
  RngState out;
  for (int i = 0; i < 4; ++i) out.s[i] = s_[i];
  out.have_cached_normal = have_cached_normal_;
  out.cached_normal = cached_normal_;
  return out;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  // Guard against a hand-built all-zero state, same as the constructor.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace ealgap
