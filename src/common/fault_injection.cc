#include "common/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace ealgap {
namespace fault {

namespace {

/// FNV-1a, used to derive a default per-site RNG seed from the site name so
/// two sites armed without explicit seeds still draw independent streams.
uint64_t HashName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Every fault site compiled into production code. Arming validates site
/// names against this list so a typo'd EALGAP_FAULTS clause fails loudly
/// instead of silently never firing. Tests may arm arbitrary sites under
/// the reserved "test." namespace.
constexpr const char* kKnownSites[] = {
    "nn.predict.nan",    "nn.predict.error",  "nn.predict.delay",
    "nn.quant.drift",    "io.open.fail",      "io.write.fail",
    "io.write.partial",  "io.dir.fsync.fail", "train.step.nan",
    "train.step.error",  "train.step.delay",  "train.eval.error",
    "daemon.queue.full", "daemon.shard.stall", "daemon.shard.crash",
    "serve.adapt.nan",   "serve.adapt.error",  "serve.adapt.delay",
    "serve.adapt.reject",
};

/// Only delay sites consume an `ms=` option; arming it anywhere else is a
/// spec bug the harness rejects instead of silently ignoring.
bool IsDelaySite(const std::string& site) {
  if (site.rfind("test.", 0) == 0) return true;
  constexpr const char* kSuffix = ".delay";
  constexpr size_t kSuffixLen = 6;
  return site.size() > kSuffixLen &&
         site.compare(site.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}

bool IsKnownSite(const std::string& site) {
  if (site.rfind("test.", 0) == 0) return true;
  for (const char* known : kKnownSites) {
    if (site == known) return true;
  }
  return false;
}

std::string KnownSiteList() {
  std::string out;
  for (const char* known : kKnownSites) {
    if (!out.empty()) out += ", ";
    out += known;
  }
  return out;
}

/// Option keys the harness (or a site, for "ms") actually reads. A typo'd
/// key would otherwise land in params and silently change nothing.
constexpr const char* kKnownOptionKeys[] = {"p",     "seed", "every",
                                            "after", "max",  "ms"};

bool IsKnownOptionKey(const std::string& key) {
  for (const char* known : kKnownOptionKeys) {
    if (key == known) return true;
  }
  return false;
}

struct SiteConfig {
  double p = 1.0;
  uint64_t seed = 0;
  int64_t every = 0;  // 0 = probabilistic
  int64_t after = 0;
  int64_t max_fires = -1;  // <0 = unlimited
  std::map<std::string, double, std::less<>> params;
};

struct SiteState {
  SiteConfig config;
  Rng rng{0};
  int64_t calls = 0;
  int64_t fires = 0;
};

class Registry {
 public:
  static Registry& Get() {
    static Registry* r = new Registry();
    return *r;
  }

  bool ShouldFail(const char* site) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    SiteState& s = it->second;
    ++s.calls;
    if (s.calls <= s.config.after) return false;
    if (s.config.max_fires >= 0 && s.fires >= s.config.max_fires) return false;
    bool fire;
    if (s.config.every > 0) {
      fire = (s.calls - s.config.after) % s.config.every == 0;
    } else {
      fire = s.rng.Uniform() < s.config.p;
    }
    if (fire) ++s.fires;
    return fire;
  }

  double Param(const char* site, const char* key, double def) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return def;
    auto p = it->second.config.params.find(key);
    return p == it->second.config.params.end() ? def : p->second;
  }

  std::map<std::string, SiteStats> Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, SiteStats> out;
    for (const auto& [name, s] : sites_) {
      out[name] = SiteStats{s.calls, s.fires};
    }
    return out;
  }

  Status Arm(const std::string& spec) {
    std::map<std::string, SiteState, std::less<>> parsed;
    Status st = Parse(spec, &parsed);
    if (!st.ok()) return st;
    std::lock_guard<std::mutex> lock(mu_);
    sites_ = std::move(parsed);
    spec_ = spec;
    armed_flag().store(!sites_.empty(), std::memory_order_relaxed);
    return Status::OK();
  }

  std::string CurrentSpec() {
    std::lock_guard<std::mutex> lock(mu_);
    return spec_;
  }

  /// The global disarmed-fast-path flag lives here so Armed() needs no lock.
  static std::atomic<bool>& armed_flag() {
    static std::atomic<bool> armed{false};
    return armed;
  }

  /// Parses EALGAP_FAULTS exactly once, before the first fault decision.
  void EnsureEnvLoaded() {
    std::call_once(env_once_, [this] {
      const char* env = std::getenv("EALGAP_FAULTS");
      if (env != nullptr && env[0] != '\0') {
        Status st = Arm(env);
        if (!st.ok()) {
          // A malformed env var must not silently disable injection in a
          // fault-testing run; fail loudly instead.
          std::fprintf(stderr, "fatal: bad EALGAP_FAULTS: %s\n",
                       st.ToString().c_str());
          std::abort();
        }
      }
    });
  }

 private:
  static Status Parse(const std::string& spec,
                      std::map<std::string, SiteState, std::less<>>* out) {
    std::stringstream clauses(spec);
    std::string clause;
    while (std::getline(clauses, clause, ',')) {
      if (clause.empty()) continue;
      std::stringstream fields(clause);
      std::string site;
      if (!std::getline(fields, site, ':') || site.empty()) {
        return Status::ParseError("fault spec clause missing site name: " +
                                  clause);
      }
      if (!IsKnownSite(site)) {
        return Status::ParseError(
            "unknown fault site '" + site + "' in clause '" + clause +
            "' (known sites: " + KnownSiteList() +
            "; the test.* namespace is always allowed)");
      }
      SiteState state;
      state.config.seed = HashName(site);
      std::string field;
      while (std::getline(fields, field, ':')) {
        const size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0) {
          return Status::ParseError("fault option is not key=value: " + field);
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "ms" && !IsDelaySite(site)) {
          return Status::ParseError(
              "fault option ms= is only valid on *.delay sites, but site '" +
              site + "' is not a delay site (clause '" + clause + "')");
        }
        if (!IsKnownOptionKey(key)) {
          return Status::ParseError("unknown fault option key '" + key +
                                    "' in clause '" + clause +
                                    "' (known keys: p, seed, every, after, "
                                    "max, ms)");
        }
        std::istringstream vs(value);
        double num = 0.0;
        if (!(vs >> num) || !vs.eof()) {
          return Status::ParseError("fault option " + key +
                                    " has non-numeric value: " + value);
        }
        if (key == "p") {
          if (num < 0.0 || num > 1.0) {
            return Status::ParseError("fault probability out of [0,1]: " +
                                      value);
          }
          state.config.p = num;
        } else if (key == "seed") {
          state.config.seed = static_cast<uint64_t>(num);
        } else if (key == "every") {
          state.config.every = static_cast<int64_t>(num);
        } else if (key == "after") {
          state.config.after = static_cast<int64_t>(num);
        } else if (key == "max") {
          state.config.max_fires = static_cast<int64_t>(num);
        } else {
          state.config.params[key] = num;
        }
      }
      state.rng = Rng(state.config.seed);
      (*out)[site] = std::move(state);
    }
    return Status::OK();
  }

  std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::string spec_;
  std::once_flag env_once_;
};

}  // namespace

bool Armed() {
  Registry::Get().EnsureEnvLoaded();
  return Registry::armed_flag().load(std::memory_order_relaxed);
}

bool ShouldFail(const char* site) { return Registry::Get().ShouldFail(site); }

double Param(const char* site, const char* key, double def) {
  return Registry::Get().Param(site, key, def);
}

bool MaybeDelay(const char* site, double default_ms) {
  if (!EALGAP_FAULT(site)) return false;
  const double ms = Param(site, "ms", default_ms);
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
  return true;
}

std::map<std::string, SiteStats> Snapshot() {
  return Registry::Get().Snapshot();
}

Status ArmFromSpec(const std::string& spec) {
  return Registry::Get().Arm(spec);
}

void DisarmAll() { (void)Registry::Get().Arm(""); }

ScopedFaults::ScopedFaults(const std::string& spec) {
  Registry::Get().EnsureEnvLoaded();
  saved_spec_ = Registry::Get().CurrentSpec();
  Status st = Registry::Get().Arm(spec);
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: bad ScopedFaults spec: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
}

ScopedFaults::~ScopedFaults() { (void)Registry::Get().Arm(saved_spec_); }

}  // namespace fault
}  // namespace ealgap
