#ifndef EALGAP_COMMON_BOUNDED_QUEUE_H_
#define EALGAP_COMMON_BOUNDED_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace ealgap {

/// Bounded lock-free multi-producer queue (Vyukov ring): the daemon's
/// ingest edge. Capacity is fixed at construction — a full queue makes
/// TryPush() return false *immediately*, which is the backpressure signal
/// admission control turns into an attributed shed. Nothing here ever
/// blocks, allocates after construction, or grows: overload cannot
/// translate into unbounded memory, only into rejected pushes.
///
/// The algorithm is the classic sequence-stamped ring (Vyukov MPMC, used
/// here MPSC): each cell carries an atomic sequence number that encodes
/// whether it is free for the producer of ticket `t` (seq == t) or holds
/// the element of ticket `t` (seq == t + 1). Producers claim tickets with
/// a CAS loop on `tail_`; the consumer walks `head_` without contention
/// (single consumer), so TryPop is a load + store on the popped cell.
///
/// Progress/failure semantics:
///  * TryPush returns false only when the queue is full at the claimed
///    ticket (the ring has wrapped onto an unconsumed cell).
///  * TryPop returns false only when the queue is empty (no committed
///    cell at head). A producer that has claimed a ticket but not yet
///    stored its element makes the consumer treat the queue as empty at
///    that cell — pops never observe half-constructed elements.
///  * Elements are consumed in ticket order (FIFO across all producers'
///    committed pushes).
///
/// T must be nothrow-movable; elements are moved in and out.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity is rounded up to the next power of two (masking beats
  /// modulo on the hot path); minimum 2.
  explicit BoundedQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Attempts to enqueue; false means FULL (never spurious). Safe from any
  /// number of threads.
  bool TryPush(T value) {
    size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(ticket);
      if (diff == 0) {
        // Cell free for this ticket: claim it.
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: `ticket` was reloaded, retry with the new one.
      } else if (diff < 0) {
        // The ring wrapped onto a cell the consumer has not drained: full.
        return false;
      } else {
        // Another producer claimed this ticket; chase the tail.
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Attempts to dequeue into *out; false means empty (or the element at
  /// head is still being committed). Single consumer only.
  bool TryPop(T* out) {
    const size_t ticket = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[ticket & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    const intptr_t diff =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(ticket + 1);
    if (diff < 0) return false;  // not yet committed: empty
    *out = std::move(cell.value);
    // Free the cell for the producer one lap ahead.
    cell.seq.store(ticket + capacity_, std::memory_order_release);
    head_.store(ticket + 1, std::memory_order_relaxed);
    return true;
  }

  size_t capacity() const { return capacity_; }

  /// Instantaneous occupancy estimate (exact when producers are quiet;
  /// used for reporting, never for correctness).
  size_t SizeApprox() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  // Head and tail on separate cache lines so the consumer's head updates
  // do not false-share with producer CAS traffic.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace ealgap

#endif  // EALGAP_COMMON_BOUNDED_QUEUE_H_
