#ifndef EALGAP_COMMON_CHECKSUM_H_
#define EALGAP_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ealgap {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over `data`.
/// `seed` is a previous Crc32 result, allowing incremental accumulation:
///   crc = Crc32(a); crc = Crc32(b, crc);  ==  Crc32(a + b)
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

/// Accumulates lines of text into a CRC the way the checkpoint writers do:
/// each Update(line) hashes the line plus a trailing '\n', so writer and
/// reader agree byte for byte regardless of how the reader splits lines.
class LineCrc {
 public:
  void Update(std::string_view line) {
    const char nl = '\n';
    crc_ = Crc32(line, crc_);
    crc_ = Crc32(&nl, 1, crc_);
  }
  uint32_t value() const { return crc_; }

 private:
  uint32_t crc_ = 0;
};

/// Fixed-width lowercase hex rendering of a CRC ("0009abcd").
std::string Crc32Hex(uint32_t crc);

/// Parses a CRC written by Crc32Hex. Returns false on malformed input.
bool ParseCrc32Hex(const std::string& text, uint32_t* crc);

}  // namespace ealgap

#endif  // EALGAP_COMMON_CHECKSUM_H_
