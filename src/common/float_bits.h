#ifndef EALGAP_COMMON_FLOAT_BITS_H_
#define EALGAP_COMMON_FLOAT_BITS_H_

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

namespace ealgap {

/// Exact text round-trip for floating-point scalars in persisted state
/// (train checkpoints, experiment journals): the value's raw bit pattern
/// in hex. Decimal formatting can silently lose the last ulp, and both the
/// resume contract and the clean-vs-resumed journal diff require bit
/// equality — including for NaN payloads and signed zeros.

inline std::string DoubleBitsHex(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  std::ostringstream os;
  os << std::hex << bits;
  return os.str();
}

inline bool ParseDoubleBitsHex(const std::string& text, double* out) {
  std::istringstream is(text);
  uint64_t bits = 0;
  if (!(is >> std::hex >> bits) || !is.eof()) return false;
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

inline std::string FloatBitsHex(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  std::ostringstream os;
  os << std::hex << bits;
  return os.str();
}

inline bool ParseFloatBitsHex(const std::string& text, float* out) {
  std::istringstream is(text);
  uint32_t bits = 0;
  if (!(is >> std::hex >> bits) || !is.eof()) return false;
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

}  // namespace ealgap

#endif  // EALGAP_COMMON_FLOAT_BITS_H_
