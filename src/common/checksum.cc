#include "common/checksum.h"

#include <array>
#include <cstdio>

namespace ealgap {

namespace {

/// Table for the reflected IEEE polynomial 0xEDB88320, built once.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string Crc32Hex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

bool ParseCrc32Hex(const std::string& text, uint32_t* crc) {
  if (text.size() != 8) return false;
  uint32_t v = 0;
  for (char ch : text) {
    int digit;
    if (ch >= '0' && ch <= '9') {
      digit = ch - '0';
    } else if (ch >= 'a' && ch <= 'f') {
      digit = ch - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint32_t>(digit);
  }
  *crc = v;
  return true;
}

}  // namespace ealgap
