#ifndef EALGAP_COMMON_TIME_UTIL_H_
#define EALGAP_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace ealgap {

/// A civil (timezone-less) date, as used by trip timestamps.
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  bool operator==(const CivilDate&) const = default;
};

/// A civil timestamp with second precision.
struct CivilTime {
  CivilDate date;
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59

  bool operator==(const CivilTime&) const = default;
};

/// True for leap years in the proleptic Gregorian calendar.
bool IsLeapYear(int year);

/// Number of days in the given month (1..12).
int DaysInMonth(int year, int month);

/// Days since 1970-01-01 (can be negative). Assumes a valid date.
int64_t DaysSinceEpoch(const CivilDate& d);

/// Inverse of DaysSinceEpoch.
CivilDate DateFromDaysSinceEpoch(int64_t days);

/// Day of week, 0 = Sunday ... 6 = Saturday.
int DayOfWeek(const CivilDate& d);

/// True for Saturday/Sunday.
bool IsWeekend(const CivilDate& d);

/// Seconds since 1970-01-01T00:00:00.
int64_t ToUnixSeconds(const CivilTime& t);

/// Inverse of ToUnixSeconds.
CivilTime FromUnixSeconds(int64_t seconds);

/// Parses "YYYY-MM-DD" into a CivilDate.
Result<CivilDate> ParseDate(const std::string& s);

/// Parses "YYYY-MM-DD HH:MM:SS" (the trip-record timestamp format).
Result<CivilTime> ParseTimestamp(const std::string& s);

/// Formats as "YYYY-MM-DD".
std::string FormatDate(const CivilDate& d);

/// Formats as "YYYY-MM-DD HH:MM:SS".
std::string FormatTimestamp(const CivilTime& t);

/// Date `n` days after `d` (n may be negative).
CivilDate AddDays(const CivilDate& d, int64_t n);

}  // namespace ealgap

#endif  // EALGAP_COMMON_TIME_UTIL_H_
