#include "tensor/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace ealgap {
namespace kernels {

// Defined in kernels_{scalar,sse2,avx2}.cc; null when not compiled in.
const KernelTable* GetScalarTable();
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();

namespace {

const KernelTable* TableOrNull(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return GetScalarTable();
    case Backend::kSse2:
      return GetSse2Table();
    case Backend::kAvx2:
      return GetAvx2Table();
  }
  return nullptr;
}

bool CpuSupports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(__amd64__)
      return true;  // SSE2 is baseline on x86-64
#elif defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__amd64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

Backend BestSupported() {
  if (BackendSupported(Backend::kAvx2)) return Backend::kAvx2;
  if (BackendSupported(Backend::kSse2)) return Backend::kSse2;
  return Backend::kScalar;
}

/// Resolves the startup backend: EALGAP_SIMD override, else the widest
/// table the CPU can run. Unknown override values abort (typo guard);
/// unsupported-but-valid values warn and fall back (results are identical
/// in every backend, so CI scripts can pin a backend unconditionally).
Backend ResolveStartupBackend() {
  const char* env = std::getenv("EALGAP_SIMD");
  if (env == nullptr || env[0] == '\0') return BestSupported();
  Backend want;
  if (std::strcmp(env, "scalar") == 0) {
    want = Backend::kScalar;
  } else if (std::strcmp(env, "sse2") == 0) {
    want = Backend::kSse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = Backend::kAvx2;
  } else {
    EALGAP_CHECK(false) << "EALGAP_SIMD='" << env
                        << "' is not one of scalar|sse2|avx2";
    return BestSupported();  // unreachable
  }
  if (!BackendSupported(want)) {
    const Backend fallback = BestSupported();
    EALGAP_LOG(Warning) << "EALGAP_SIMD=" << env
                        << " not supported on this host/build; using "
                        << BackendName(fallback);
    return fallback;
  }
  return want;
}

std::atomic<const KernelTable*> g_active{nullptr};
std::once_flag g_init_once;

const KernelTable* ActiveSlow() {
  std::call_once(g_init_once, [] {
    g_active.store(TableOrNull(ResolveStartupBackend()),
                   std::memory_order_release);
  });
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool BackendSupported(Backend b) {
  return TableOrNull(b) != nullptr && CpuSupports(b);
}

const KernelTable* Table(Backend b) {
  return BackendSupported(b) ? TableOrNull(b) : nullptr;
}

const KernelTable& Active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  return t != nullptr ? *t : *ActiveSlow();
}

Backend ActiveBackend() { return Active().backend; }

void SetBackendForTesting(Backend b) {
  const KernelTable* t = Table(b);
  EALGAP_CHECK(t != nullptr)
      << "backend " << BackendName(b) << " not supported on this host";
  ActiveSlow();  // make sure call_once has fired so it cannot overwrite us
  g_active.store(t, std::memory_order_release);
}

}  // namespace kernels
}  // namespace ealgap
