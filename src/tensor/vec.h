#ifndef EALGAP_TENSOR_VEC_H_
#define EALGAP_TENSOR_VEC_H_

/// Lane-width-generic SIMD abstraction + deterministic vector math.
///
/// Three backends expose the same static interface — VScalar (1 lane),
/// VSse2 (4 lanes, compiled when __SSE2__), VAvx2 (8 lanes, compiled when
/// __AVX2__) — so every kernel in kernels_impl.h is written ONCE as a
/// template and instantiated per backend (tensor/kernels_{scalar,sse2,
/// avx2}.cc). The math functions VExp/VTanh/VSigmoid below are implemented
/// from the same algorithm in all backends.
///
/// DETERMINISM CONTRACT. A kernel must produce bit-identical results in
/// every backend, at every lane width, for any chunking of its input. The
/// abstraction guarantees this because:
///  - Add/Sub/Mul/Div/Sqrt are IEEE-754 correctly rounded in both scalar
///    and SIMD form, so per-element results match exactly.
///  - SMax/SMin reproduce std::max/std::min semantics bit-for-bit
///    (including NaN and signed-zero behavior) in every backend.
///  - No fused multiply-add anywhere: the kernel TUs are compiled with
///    -ffp-contract=off and no FMA intrinsics are used, so `a*b + c`
///    rounds twice in every backend, identically.
///  - RoundNearest uses the add-magic-number trick (round-to-nearest-even
///    for |x| < 2^22) instead of mode-dependent conversions.
/// Kernels must additionally keep a fixed per-element operation order (see
/// kernels_impl.h) so lane width and thread count never change a result.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include <bit>

namespace ealgap {
namespace vec {

// --- scalar backend (always available; defines the reference semantics) ---

struct VScalar {
  static constexpr int kWidth = 1;
  using V = float;
  using VI = int32_t;

  static V Load(const float* p) { return *p; }
  static void Store(float* p, V v) { *p = v; }
  /// Aligned variants: identical semantics (a scalar load has no alignment
  /// requirement); kept so kernels can template over the access mode.
  static V LoadA(const float* p) { return *p; }
  static void StoreA(float* p, V v) { *p = v; }
  static V Set1(float v) { return v; }

  static V Add(V a, V b) { return a + b; }
  static V Sub(V a, V b) { return a - b; }
  static V Mul(V a, V b) { return a * b; }
  static V Div(V a, V b) { return a / b; }
  /// std::max(a, b): (a < b) ? b : a — NaN operand b is dropped, NaN a wins.
  static V SMax(V a, V b) { return (a < b) ? b : a; }
  /// std::min(a, b): (b < a) ? b : a.
  static V SMin(V a, V b) { return (b < a) ? b : a; }
  static V Sqrt(V a) { return std::sqrt(a); }

  static V And(V a, V b) {
    return std::bit_cast<float>(std::bit_cast<uint32_t>(a) &
                                std::bit_cast<uint32_t>(b));
  }
  static V AndNot(V a, V b) {  // ~a & b
    return std::bit_cast<float>(~std::bit_cast<uint32_t>(a) &
                                std::bit_cast<uint32_t>(b));
  }
  static V Or(V a, V b) {
    return std::bit_cast<float>(std::bit_cast<uint32_t>(a) |
                                std::bit_cast<uint32_t>(b));
  }
  static V Xor(V a, V b) {
    return std::bit_cast<float>(std::bit_cast<uint32_t>(a) ^
                                std::bit_cast<uint32_t>(b));
  }

  /// Comparison masks: all-ones when true, all-zeros when false (like
  /// cmpps). Unordered comparisons (NaN) are false except CmpNeq.
  static V CmpLt(V a, V b) { return MaskOf(a < b); }
  static V CmpGt(V a, V b) { return MaskOf(a > b); }
  static V CmpNeq(V a, V b) { return MaskOf(!(a == b)); }
  /// Bitwise select: mask lanes must be all-ones or all-zeros.
  static V Select(V mask, V a, V b) { return Or(And(mask, a), AndNot(mask, b)); }

  /// Round to nearest (ties to even) for |x| < 2^22, as a float.
  static V RoundNearest(V x) {
    const float magic = 12582912.f;  // 1.5 * 2^23
    return (x + magic) - magic;
  }
  /// Truncating float->int32 conversion; input must be in int32 range.
  static VI ToInt(V x) { return static_cast<int32_t>(x); }
  /// 2^k for integer k in [-126, 127] via exponent-bit construction.
  static V Pow2FromInt(VI k) {
    return std::bit_cast<float>(static_cast<uint32_t>(k + 127) << 23);
  }

  // --- int8 inference support (kernels_impl.h quant kernels) ---
  //
  // The quantized GEMM accumulates int32 exactly, so the scalar semantics
  // here ARE the contract: any vectorization that computes the same sums
  // is bit-identical by integer arithmetic alone. VI holds kWidth int32
  // accumulator lanes; "pairs" pack two adjacent-k int16 values into one
  // int32 word, mirroring [V]PMADDWD's operand shape.
  static VI IZero() { return 0; }
  static VI ISet1(int32_t v) { return v; }
  static VI ILoad(const int32_t* p) { return *p; }
  static VI ILoadA(const int32_t* p) { return *p; }
  static void IStore(int32_t* p, VI v) { *p = v; }
  static void IStoreA(int32_t* p, VI v) { *p = v; }
  /// kWidth packed (lo, hi) int16 pairs, i.e. 2*kWidth int16 values.
  static VI ILoadPairs(const int16_t* p) {
    return static_cast<int32_t>(static_cast<uint16_t>(p[0]) |
                                (static_cast<uint32_t>(
                                     static_cast<uint16_t>(p[1]))
                                 << 16));
  }
  static VI ILoadPairsA(const int16_t* p) { return ILoadPairs(p); }
  /// acc + a.lo*b.lo + a.hi*b.hi per lane (PMADDWD then PADDD). The two
  /// int16 products and their sum are exact in int32; callers bound k so
  /// the running accumulator cannot overflow (nn/quant.cc).
  static VI MAddPairsAcc(VI acc, VI a, VI b) {
    const int32_t alo = static_cast<int16_t>(static_cast<uint32_t>(a) &
                                             0xffffu);
    const int32_t ahi =
        static_cast<int16_t>(static_cast<uint32_t>(a) >> 16);
    const int32_t blo = static_cast<int16_t>(static_cast<uint32_t>(b) &
                                             0xffffu);
    const int32_t bhi =
        static_cast<int16_t>(static_cast<uint32_t>(b) >> 16);
    return acc + (alo * blo + ahi * bhi);
  }
  /// int32 -> float, correctly rounded (CVTDQ2PS semantics).
  static V IToF(VI v) { return static_cast<float>(v); }
  /// Narrows kWidth int32 lanes (already clamped to int8 range) to int8
  /// and stores kWidth bytes.
  static void StoreQ8(int8_t* p, VI v) { *p = static_cast<int8_t>(v); }

  /// Deterministic 4-lane double accumulator: lane (i % 4) owns element i
  /// of a block; DReduce combines lanes in fixed order ((l0+l1)+l2)+l3.
  struct Dacc {
    double lane[4];
  };
  static Dacc DZero() { return {{0.0, 0.0, 0.0, 0.0}}; }
  static void DAcc4(Dacc& acc, const float* p) {
    for (int j = 0; j < 4; ++j) acc.lane[j] += static_cast<double>(p[j]);
  }
  static void DAcc4Sq(Dacc& acc, const float* p) {
    for (int j = 0; j < 4; ++j) {
      acc.lane[j] += static_cast<double>(p[j]) * static_cast<double>(p[j]);
    }
  }
  static void DStore(const Dacc& acc, double* out) {
    for (int j = 0; j < 4; ++j) out[j] = acc.lane[j];
  }

 private:
  static V MaskOf(bool b) {
    return std::bit_cast<float>(b ? 0xFFFFFFFFu : 0u);
  }
};

#if defined(__SSE2__)

struct VSse2 {
  static constexpr int kWidth = 4;
  using V = __m128;
  using VI = __m128i;

  static V Load(const float* p) { return _mm_loadu_ps(p); }
  static void Store(float* p, V v) { _mm_storeu_ps(p, v); }
  /// Aligned load/store (MOVAPS): p must be 16-byte aligned. Loads the
  /// same bits as Load — callers switch on provable alignment only, so
  /// results are identical by construction.
  static V LoadA(const float* p) { return _mm_load_ps(p); }
  static void StoreA(float* p, V v) { _mm_store_ps(p, v); }
  static V Set1(float v) { return _mm_set1_ps(v); }

  static V Add(V a, V b) { return _mm_add_ps(a, b); }
  static V Sub(V a, V b) { return _mm_sub_ps(a, b); }
  static V Mul(V a, V b) { return _mm_mul_ps(a, b); }
  static V Div(V a, V b) { return _mm_div_ps(a, b); }
  // MAXPS(dst, src) = (dst > src) ? dst : src, NaN -> src. With dst=b,
  // src=a this is exactly std::max(a, b) (NaN a wins, +0/-0 order kept).
  static V SMax(V a, V b) { return _mm_max_ps(b, a); }
  static V SMin(V a, V b) { return _mm_min_ps(b, a); }
  static V Sqrt(V a) { return _mm_sqrt_ps(a); }

  static V And(V a, V b) { return _mm_and_ps(a, b); }
  static V AndNot(V a, V b) { return _mm_andnot_ps(a, b); }
  static V Or(V a, V b) { return _mm_or_ps(a, b); }
  static V Xor(V a, V b) { return _mm_xor_ps(a, b); }

  static V CmpLt(V a, V b) { return _mm_cmplt_ps(a, b); }
  static V CmpGt(V a, V b) { return _mm_cmpgt_ps(a, b); }
  static V CmpNeq(V a, V b) { return _mm_cmpneq_ps(a, b); }
  static V Select(V mask, V a, V b) {
    return _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b));
  }

  static V RoundNearest(V x) {
    const V magic = _mm_set1_ps(12582912.f);
    return _mm_sub_ps(_mm_add_ps(x, magic), magic);
  }
  static VI ToInt(V x) { return _mm_cvttps_epi32(x); }
  static V Pow2FromInt(VI k) {
    return _mm_castsi128_ps(
        _mm_slli_epi32(_mm_add_epi32(k, _mm_set1_epi32(127)), 23));
  }

  static VI IZero() { return _mm_setzero_si128(); }
  static VI ISet1(int32_t v) { return _mm_set1_epi32(v); }
  static VI ILoad(const int32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static VI ILoadA(const int32_t* p) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void IStore(int32_t* p, VI v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static void IStoreA(int32_t* p, VI v) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static VI ILoadPairs(const int16_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static VI ILoadPairsA(const int16_t* p) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  }
  static VI MAddPairsAcc(VI acc, VI a, VI b) {
    return _mm_add_epi32(acc, _mm_madd_epi16(a, b));
  }
  static V IToF(VI v) { return _mm_cvtepi32_ps(v); }
  static void StoreQ8(int8_t* p, VI v) {
    // Lanes are pre-clamped to [-127, 127], so the saturating packs are
    // exact narrowing conversions.
    const __m128i p16 = _mm_packs_epi32(v, v);
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    const int32_t packed = _mm_cvtsi128_si32(p8);
    std::memcpy(p, &packed, 4);
  }

  struct Dacc {
    __m128d lo;  // lanes 0,1
    __m128d hi;  // lanes 2,3
  };
  static Dacc DZero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }
  static void DAcc4(Dacc& acc, const float* p) {
    const __m128 v = _mm_loadu_ps(p);
    acc.lo = _mm_add_pd(acc.lo, _mm_cvtps_pd(v));
    acc.hi = _mm_add_pd(acc.hi, _mm_cvtps_pd(_mm_movehl_ps(v, v)));
  }
  static void DAcc4Sq(Dacc& acc, const float* p) {
    const __m128 v = _mm_loadu_ps(p);
    const __m128d dlo = _mm_cvtps_pd(v);
    const __m128d dhi = _mm_cvtps_pd(_mm_movehl_ps(v, v));
    acc.lo = _mm_add_pd(acc.lo, _mm_mul_pd(dlo, dlo));
    acc.hi = _mm_add_pd(acc.hi, _mm_mul_pd(dhi, dhi));
  }
  static void DStore(const Dacc& acc, double* out) {
    _mm_storeu_pd(out, acc.lo);
    _mm_storeu_pd(out + 2, acc.hi);
  }
};

#endif  // __SSE2__

#if defined(__AVX2__)

struct VAvx2 {
  static constexpr int kWidth = 8;
  using V = __m256;
  using VI = __m256i;

  static V Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, V v) { _mm256_storeu_ps(p, v); }
  /// Aligned load/store (VMOVAPS): p must be 32-byte aligned. Same bits as
  /// Load; selected only when alignment is provable.
  static V LoadA(const float* p) { return _mm256_load_ps(p); }
  static void StoreA(float* p, V v) { _mm256_store_ps(p, v); }
  static V Set1(float v) { return _mm256_set1_ps(v); }

  static V Add(V a, V b) { return _mm256_add_ps(a, b); }
  static V Sub(V a, V b) { return _mm256_sub_ps(a, b); }
  static V Mul(V a, V b) { return _mm256_mul_ps(a, b); }
  static V Div(V a, V b) { return _mm256_div_ps(a, b); }
  static V SMax(V a, V b) { return _mm256_max_ps(b, a); }
  static V SMin(V a, V b) { return _mm256_min_ps(b, a); }
  static V Sqrt(V a) { return _mm256_sqrt_ps(a); }

  static V And(V a, V b) { return _mm256_and_ps(a, b); }
  static V AndNot(V a, V b) { return _mm256_andnot_ps(a, b); }
  static V Or(V a, V b) { return _mm256_or_ps(a, b); }
  static V Xor(V a, V b) { return _mm256_xor_ps(a, b); }

  static V CmpLt(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  static V CmpGt(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
  static V CmpNeq(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_NEQ_UQ); }
  static V Select(V mask, V a, V b) { return _mm256_blendv_ps(b, a, mask); }

  static V RoundNearest(V x) {
    const V magic = _mm256_set1_ps(12582912.f);
    return _mm256_sub_ps(_mm256_add_ps(x, magic), magic);
  }
  static VI ToInt(V x) { return _mm256_cvttps_epi32(x); }
  static V Pow2FromInt(VI k) {
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_add_epi32(k, _mm256_set1_epi32(127)), 23));
  }

  static VI IZero() { return _mm256_setzero_si256(); }
  static VI ISet1(int32_t v) { return _mm256_set1_epi32(v); }
  static VI ILoad(const int32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static VI ILoadA(const int32_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void IStore(int32_t* p, VI v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static void IStoreA(int32_t* p, VI v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static VI ILoadPairs(const int16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static VI ILoadPairsA(const int16_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static VI MAddPairsAcc(VI acc, VI a, VI b) {
    return _mm256_add_epi32(acc, _mm256_madd_epi16(a, b));
  }
  static V IToF(VI v) { return _mm256_cvtepi32_ps(v); }
  static void StoreQ8(int8_t* p, VI v) {
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i p16 = _mm_packs_epi32(lo, hi);
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), p8);
  }

  // Still a 4-lane double accumulator (one __m256d): the lane layout must
  // match VScalar/VSse2 exactly, so AVX2 consumes 4 floats per step too.
  struct Dacc {
    __m256d acc;
  };
  static Dacc DZero() { return {_mm256_setzero_pd()}; }
  static void DAcc4(Dacc& acc, const float* p) {
    acc.acc = _mm256_add_pd(acc.acc, _mm256_cvtps_pd(_mm_loadu_ps(p)));
  }
  static void DAcc4Sq(Dacc& acc, const float* p) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(p));
    acc.acc = _mm256_add_pd(acc.acc, _mm256_mul_pd(d, d));
  }
  static void DStore(const Dacc& acc, double* out) {
    _mm256_storeu_pd(out, acc.acc);
  }
};

#endif  // __AVX2__

// --- deterministic vector math (same algorithm in every backend) ---

/// Cephes-style expf. Accuracy ~2 ULP vs libm on [-87.33, 88.02].
/// Out-of-range behavior (part of the determinism contract):
///   x > kExpHi        -> +inf   (true expf stays finite up to 88.72)
///   x < kExpLo        -> 0      (no denormal outputs)
///   NaN               -> the input NaN
/// kExpHi is chosen so the scaling exponent k never exceeds 127.
inline constexpr float kExpHi = 88.02f;
inline constexpr float kExpLo = -87.33654f;

template <class B>
typename B::V VExp(typename B::V x) {
  using V = typename B::V;
  const V zero = B::Set1(0.f);
  const V m_hi = B::CmpGt(x, B::Set1(kExpHi));
  const V m_lo = B::CmpLt(x, B::Set1(kExpLo));
  const V m_nan = B::CmpNeq(x, x);
  // Clamp into range; NaN survives SMax/SMin (first-operand rule), so it
  // is zeroed explicitly to keep the int conversion below well-defined.
  V xc = B::SMin(B::SMax(x, B::Set1(kExpLo)), B::Set1(kExpHi));
  xc = B::Select(m_nan, zero, xc);

  // k = round(x / ln 2); r = x - k*ln2 in extended precision.
  const V kf = B::RoundNearest(B::Mul(xc, B::Set1(1.44269504088896341f)));
  V r = B::Sub(xc, B::Mul(kf, B::Set1(0.693359375f)));
  r = B::Sub(r, B::Mul(kf, B::Set1(-2.12194440e-4f)));

  // e^r on |r| <= 0.5*ln2 (cephes single-precision minimax polynomial).
  V p = B::Set1(1.9875691500e-4f);
  p = B::Add(B::Mul(p, r), B::Set1(1.3981999507e-3f));
  p = B::Add(B::Mul(p, r), B::Set1(8.3334519073e-3f));
  p = B::Add(B::Mul(p, r), B::Set1(4.1665795894e-2f));
  p = B::Add(B::Mul(p, r), B::Set1(1.6666665459e-1f));
  p = B::Add(B::Mul(p, r), B::Set1(5.0000001201e-1f));
  const V rr = B::Mul(r, r);
  V y = B::Add(B::Add(B::Mul(p, rr), r), B::Set1(1.f));

  y = B::Mul(y, B::Pow2FromInt(B::ToInt(kf)));
  y = B::Select(m_lo, zero, y);
  y = B::Select(m_hi, B::Set1(std::numeric_limits<float>::infinity()), y);
  y = B::Select(m_nan, x, y);
  return y;
}

/// Cephes-style tanhf: polynomial on |x| < 0.625, exp-based elsewhere.
/// tanh(±inf) = ±1; NaN propagates.
template <class B>
typename B::V VTanh(typename B::V x) {
  using V = typename B::V;
  const V sign_mask = B::Set1(std::bit_cast<float>(0x80000000u));
  const V sign = B::And(x, sign_mask);
  const V ax = B::AndNot(sign_mask, x);
  const V m_small = B::CmpLt(ax, B::Set1(0.625f));

  // small: x + x^3 * P(x^2)
  const V z = B::Mul(x, x);
  V ps = B::Set1(-5.70498872745e-3f);
  ps = B::Add(B::Mul(ps, z), B::Set1(2.06390887954e-2f));
  ps = B::Add(B::Mul(ps, z), B::Set1(-5.37397155531e-2f));
  ps = B::Add(B::Mul(ps, z), B::Set1(1.33314422036e-1f));
  ps = B::Add(B::Mul(ps, z), B::Set1(-3.33332819422e-1f));
  const V small_r = B::Add(B::Mul(B::Mul(ps, z), x), x);

  // big: sign(x) * (1 - 2 / (e^{2|x|} + 1)); VExp overflow to +inf makes
  // this saturate to ±1 for |x| > 44.
  const V t = VExp<B>(B::Add(ax, ax));
  V big = B::Sub(B::Set1(1.f), B::Div(B::Set1(2.f), B::Add(t, B::Set1(1.f))));
  big = B::Or(big, sign);

  return B::Select(m_small, small_r, big);
}

/// Symmetric int8 quantization of one finite value: round-to-nearest-even
/// of x * inv_scale, clamped to [-127, 127]. This single-element scalar is
/// the contract shared by every backend's vector quantize body and by the
/// offline weight-pack step (nn/quant.cc), so quantized values are
/// bit-identical regardless of who computed them. |x * inv_scale| must be
/// finite (callers derive inv_scale from a finite absmax).
inline int8_t QuantizeOneS8(float x, float inv_scale) {
  float t = VScalar::RoundNearest(x * inv_scale);
  t = VScalar::SMin(VScalar::SMax(t, -127.f), 127.f);
  return static_cast<int8_t>(VScalar::ToInt(t));
}

/// Logistic sigmoid 1 / (1 + e^{-x}), defined through VExp so it shares
/// its determinism contract. sigmoid(+inf)=1, sigmoid(-inf)=0, NaN -> NaN.
template <class B>
typename B::V VSigmoid(typename B::V x) {
  using B_ = B;
  const typename B::V e =
      VExp<B_>(B::Xor(x, B::Set1(std::bit_cast<float>(0x80000000u))));
  return B::Div(B::Set1(1.f), B::Add(B::Set1(1.f), e));
}

}  // namespace vec
}  // namespace ealgap

#endif  // EALGAP_TENSOR_VEC_H_
