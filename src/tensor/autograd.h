#ifndef EALGAP_TENSOR_AUTOGRAD_H_
#define EALGAP_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ealgap {

namespace autograd {

/// A node in the dynamically-built computation graph.
struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily; same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates `gout` (d loss / d value) into the parents' grads.
  std::function<void(const Tensor& gout)> backfn;

  /// Reduces `g` to value's shape (undo broadcasting) and adds it to grad.
  void AccumulateGrad(const Tensor& g);
};

}  // namespace autograd

/// True when new ops record the graph (default). Flip with NoGradGuard.
bool GradEnabled();

/// RAII scope that disables graph recording (inference / data prep).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// A differentiable handle on a Tensor.
///
/// Vars are cheap to copy (shared node). Build expressions with the free
/// functions / operators below, call Backward() on a scalar result, then
/// read leaf gradients via grad().
class Var {
 public:
  Var() = default;

  /// Wraps a tensor as a graph leaf. Parameters pass requires_grad = true.
  static Var Leaf(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  const Shape& shape() const { return value().shape(); }
  bool requires_grad() const;

  /// Gradient accumulated by Backward(); zeros if none was propagated.
  Tensor& grad();

  /// Clears the accumulated gradient (used by optimizers between steps).
  void ZeroGrad();

  /// Detaches from the graph: same value, no history.
  Var Detach() const;

  const std::shared_ptr<autograd::Node>& node() const { return node_; }
  explicit Var(std::shared_ptr<autograd::Node> node) : node_(std::move(node)) {}

 private:
  std::shared_ptr<autograd::Node> node_;
};

/// Runs reverse-mode differentiation from `root` (seeded with ones).
void Backward(const Var& root);

// --- differentiable ops (mirror tensor/ops.h) ---
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);
Var AddScalar(const Var& a, float s);
Var MulScalar(const Var& a, float s);
Var PowScalar(const Var& a, float p);
Var Neg(const Var& a);
Var Exp(const Var& a);
Var Log(const Var& a);
Var Sqrt(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
/// Relu that overwrites `a`'s buffer when provably safe: grad recording off
/// AND `a` (moved in) is the sole owner of its node and storage. Falls back
/// to Relu(a) otherwise, so call sites never change semantics — only
/// allocations. Serve-path use: the Eq. 11 output ReLU.
Var ReluInPlace(Var a);
Var Abs(const Var& a);
Var MatMul(const Var& a, const Var& b);
Var BMatMul(const Var& a, const Var& b);
Var TransposeLast2(const Var& a);
Var SumAll(const Var& a);
Var MeanAll(const Var& a);
Var SumAxis(const Var& a, int64_t axis, bool keepdim = true);
Var MeanAxis(const Var& a, int64_t axis, bool keepdim = true);
Var SoftmaxLastDim(const Var& a);
Var Slice(const Var& a, int64_t axis, int64_t start, int64_t end);
Var Concat(const std::vector<Var>& parts, int64_t axis);
Var Stack(const std::vector<Var>& parts);
Var Reshape(const Var& a, Shape shape);

inline Var operator+(const Var& a, const Var& b) { return Add(a, b); }
inline Var operator-(const Var& a, const Var& b) { return Sub(a, b); }
inline Var operator*(const Var& a, const Var& b) { return Mul(a, b); }
inline Var operator/(const Var& a, const Var& b) { return Div(a, b); }
inline Var operator-(const Var& a) { return Neg(a); }

}  // namespace ealgap

#endif  // EALGAP_TENSOR_AUTOGRAD_H_
