#ifndef EALGAP_TENSOR_KERNELS_IMPL_H_
#define EALGAP_TENSOR_KERNELS_IMPL_H_

/// Generic kernel bodies, templated on a vec.h backend. Each backend TU
/// (kernels_{scalar,sse2,avx2}.cc) instantiates MakeTable<B>() once; the
/// TU carries the ISA compile flags, this header carries the algorithms.
///
/// Determinism rules every kernel here follows (see vec.h for why this
/// yields bit-identical results across backends, lane widths and threads):
///  - elementwise kernels are per-element pure: the main loop runs the
///    backend instantiation, the remainder runs the VScalar instantiation
///    of the SAME functor, so element i's value never depends on lane
///    position or chunk boundaries;
///  - reductions accumulate into 4 interleaved double lanes (lane = i mod
///    4 within the block), remainder elements join their lane after the
///    vector loop, and lanes combine in fixed order;
///  - matmul keeps one fixed expression tree per output element, with the
///    column loop (not the accumulation) vectorized.

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "tensor/kernels.h"
#include "tensor/vec.h"

namespace ealgap {
namespace kernels {
namespace impl {

using vec::VScalar;

// --- aligned-access selection ---
//
// Tensor storage and serve buffers are 64-byte aligned (common/
// aligned_alloc.h), and ops.cc chunks ranges at multiples of large powers
// of two, so in practice most kernel calls see 64-byte-aligned pointers.
// Each dispatching wrapper below checks its operand pointers at runtime
// and, when ALL of them are 64-byte aligned, runs the same skeleton
// instantiated over AlignedIO<B> — identical arithmetic, aligned
// load/store instructions. Results are bit-identical by construction:
// LoadA reads the same bits Load reads; only the instruction encoding
// (and the fault-on-misalignment contract) differs. The parity tests in
// vec_test.cc verify this at offsets 0..3 anyway.

inline bool Aligned64(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 63u) == 0;
}

/// Backend adapter: same arithmetic as B, aligned loads/stores (float and
/// int32/int16-pair accesses alike — the quant kernels below dispatch on
/// the same provable-alignment rule as the float ones).
template <class B>
struct AlignedIO : B {
  static typename B::V Load(const float* p) { return B::LoadA(p); }
  static void Store(float* p, typename B::V v) { B::StoreA(p, v); }
  static typename B::VI ILoad(const int32_t* p) { return B::ILoadA(p); }
  static void IStore(int32_t* p, typename B::VI v) { B::IStoreA(p, v); }
  static typename B::VI ILoadPairs(const int16_t* p) {
    return B::ILoadPairsA(p);
  }
};

// --- elementwise op functors (vector and scalar form via backend B) ---

struct OpAdd {
  template <class B>
  static typename B::V Run(typename B::V a, typename B::V b) {
    return B::Add(a, b);
  }
};
struct OpSub {
  template <class B>
  static typename B::V Run(typename B::V a, typename B::V b) {
    return B::Sub(a, b);
  }
};
struct OpMul {
  template <class B>
  static typename B::V Run(typename B::V a, typename B::V b) {
    return B::Mul(a, b);
  }
};
struct OpDiv {
  template <class B>
  static typename B::V Run(typename B::V a, typename B::V b) {
    return B::Div(a, b);
  }
};
struct OpMax {
  template <class B>
  static typename B::V Run(typename B::V a, typename B::V b) {
    return B::SMax(a, b);
  }
};

struct OpNeg {
  template <class B>
  static typename B::V Run(typename B::V a) {
    return B::Xor(a, B::Set1(std::bit_cast<float>(0x80000000u)));
  }
};
struct OpAbs {
  template <class B>
  static typename B::V Run(typename B::V a) {
    return B::AndNot(B::Set1(std::bit_cast<float>(0x80000000u)), a);
  }
};
struct OpSign {  // x > 0 ? 1 : (x < 0 ? -1 : 0); NaN/±0 -> 0
  template <class B>
  static typename B::V Run(typename B::V a) {
    const typename B::V zero = B::Set1(0.f);
    const typename B::V pos = B::And(B::CmpGt(a, zero), B::Set1(1.f));
    const typename B::V neg = B::And(B::CmpLt(a, zero), B::Set1(-1.f));
    return B::Or(pos, neg);
  }
};
struct OpSqrt {
  template <class B>
  static typename B::V Run(typename B::V a) {
    return B::Sqrt(a);
  }
};
struct OpRelu {  // x > 0 ? x : 0 (NaN -> 0, matching the historical op)
  template <class B>
  static typename B::V Run(typename B::V a) {
    return B::And(B::CmpGt(a, B::Set1(0.f)), a);
  }
};
struct OpExp {
  template <class B>
  static typename B::V Run(typename B::V a) {
    return vec::VExp<B>(a);
  }
};
struct OpTanh {
  template <class B>
  static typename B::V Run(typename B::V a) {
    return vec::VTanh<B>(a);
  }
};
struct OpSigmoid {
  template <class B>
  static typename B::V Run(typename B::V a) {
    return vec::VSigmoid<B>(a);
  }
};
struct OpClamp {  // min(hi, max(lo, x)) with std::min/max semantics
  template <class B>
  static typename B::V Run(typename B::V a, typename B::V lo,
                           typename B::V hi) {
    return B::SMin(B::SMax(lo, a), hi);
  }
};

// --- loop skeletons ---

template <class B, class Op>
void EwBinaryVV(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    B::Store(o + i, Op::template Run<B>(B::Load(a + i), B::Load(b + i)));
  }
  for (; i < n; ++i) o[i] = Op::template Run<VScalar>(a[i], b[i]);
}

template <class B, class Op>
void EwBinaryVS(const float* a, float s, float* o, int64_t n) {
  const typename B::V vs = B::Set1(s);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    B::Store(o + i, Op::template Run<B>(B::Load(a + i), vs));
  }
  for (; i < n; ++i) o[i] = Op::template Run<VScalar>(a[i], s);
}

template <class B, class Op>
void EwBinarySV(float s, const float* b, float* o, int64_t n) {
  const typename B::V vs = B::Set1(s);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    B::Store(o + i, Op::template Run<B>(vs, B::Load(b + i)));
  }
  for (; i < n; ++i) o[i] = Op::template Run<VScalar>(s, b[i]);
}

template <class B, class Op>
void EwUnary(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    B::Store(o + i, Op::template Run<B>(B::Load(a + i)));
  }
  for (; i < n; ++i) o[i] = Op::template Run<VScalar>(a[i]);
}

template <class B>
void ClampK(const float* a, float lo, float hi, float* o, int64_t n) {
  const typename B::V vlo = B::Set1(lo), vhi = B::Set1(hi);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    B::Store(o + i, OpClamp::Run<B>(B::Load(a + i), vlo, vhi));
  }
  for (; i < n; ++i) o[i] = OpClamp::Run<VScalar>(a[i], lo, hi);
}

// --- in-place ---

template <class B>
void AddIp(float* a, const float* b, int64_t n) {
  EwBinaryVV<B, OpAdd>(a, b, a, n);
}

template <class B>
void AxpyIp(float* a, float alpha, const float* b, int64_t n) {
  const typename B::V va = B::Set1(alpha);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    // a[i] + alpha*b[i]: one multiply, one add — never contracted (vec.h).
    B::Store(a + i, B::Add(B::Load(a + i), B::Mul(va, B::Load(b + i))));
  }
  for (; i < n; ++i) a[i] = a[i] + alpha * b[i];
}

template <class B>
void ScaleIp(float* a, float s, int64_t n) {
  EwBinaryVS<B, OpMul>(a, s, a, n);
}

template <class B>
void ReluIp(float* a, int64_t n) {
  EwUnary<B, OpRelu>(a, a, n);
}

template <class B>
void ClampIp(float* a, float lo, float hi, int64_t n) {
  ClampK<B>(a, lo, hi, a, n);
}

// --- reductions ---

/// Sum of p[0..n) with lane (i mod 4) double accumulators, combined in
/// lane order. Bit-identical to the VScalar instantiation by design.
template <class B>
double SumBlock(const float* p, int64_t n) {
  typename B::Dacc acc = B::DZero();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) B::DAcc4(acc, p + i);
  double lanes[4];
  B::DStore(acc, lanes);
  for (; i < n; ++i) lanes[i & 3] += static_cast<double>(p[i]);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

template <class B>
double SumSqBlock(const float* p, int64_t n) {
  typename B::Dacc acc = B::DZero();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) B::DAcc4Sq(acc, p + i);
  double lanes[4];
  B::DStore(acc, lanes);
  for (; i < n; ++i) {
    lanes[i & 3] += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

/// Max of p[0..n), n >= 1. Max over reals is order-insensitive, so the
/// lane tree is free to differ from sequential order — results are still
/// bit-identical across backends for NaN-free input (the documented
/// requirement; guards upstream reject NaN).
template <class B>
float MaxBlock(const float* p, int64_t n) {
  int64_t i = 0;
  float m;
  if (n >= B::kWidth) {
    typename B::V acc = B::Load(p);
    for (i = B::kWidth; i + B::kWidth <= n; i += B::kWidth) {
      acc = B::SMax(acc, B::Load(p + i));
    }
    float lanes[B::kWidth];
    B::Store(lanes, acc);
    m = lanes[0];
    for (int j = 1; j < B::kWidth; ++j) m = VScalar::SMax(m, lanes[j]);
  } else {
    m = p[0];
    i = 1;
  }
  for (; i < n; ++i) m = VScalar::SMax(m, p[i]);
  return m;
}

// --- fused rows ---

template <class B>
void SoftmaxRow(const float* src, float* dst, int64_t n) {
  const float mx = MaxBlock<B>(src, n);
  // dst = exp(src - mx), elementwise pure.
  const typename B::V vmx = B::Set1(mx);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    B::Store(dst + i, vec::VExp<B>(B::Sub(B::Load(src + i), vmx)));
  }
  for (; i < n; ++i) dst[i] = vec::VExp<VScalar>(src[i] - mx);
  // Deterministic double-lane denominator, then an elementwise scale.
  const float inv = static_cast<float>(1.0 / SumBlock<B>(dst, n));
  ScaleIp<B>(dst, inv, n);
}

template <class B>
void ExpPdfRow(const float* x, float lambda, float* o, int64_t n) {
  const typename B::V vneg = B::Set1(-lambda);
  const typename B::V vlam = B::Set1(lambda);
  const typename B::V zero = B::Set1(0.f);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    const typename B::V v = B::Load(x + i);
    const typename B::V pdf = B::Mul(vlam, vec::VExp<B>(B::Mul(vneg, v)));
    B::Store(o + i, B::Select(B::CmpLt(v, zero), zero, pdf));
  }
  for (; i < n; ++i) {
    const float pdf = lambda * vec::VExp<VScalar>(-lambda * x[i]);
    o[i] = x[i] < 0.f ? 0.f : pdf;
  }
}

template <class B>
void NormalPdfRow(const float* x, float mean, float inv_stddev, float inv_norm,
                  float* o, int64_t n) {
  const typename B::V vmean = B::Set1(mean);
  const typename B::V vinv = B::Set1(inv_stddev);
  const typename B::V vnorm = B::Set1(inv_norm);
  const typename B::V vhalf = B::Set1(-0.5f);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    const typename B::V z = B::Mul(B::Sub(B::Load(x + i), vmean), vinv);
    const typename B::V e = vec::VExp<B>(B::Mul(vhalf, B::Mul(z, z)));
    B::Store(o + i, B::Mul(vnorm, e));
  }
  for (; i < n; ++i) {
    const float z = (x[i] - mean) * inv_stddev;
    o[i] = inv_norm * vec::VExp<VScalar>(-0.5f * (z * z));
  }
}

// --- matmul microkernel ---

/// Rows [i0, i1) of the (m,k)x(k,n) product, i-k-j order, k unrolled by 4,
/// vectorized across output columns j. Per output element the expression
/// tree is fixed — ((a0*b0 + a1*b1) + a2*b2) + a3*b3, accumulated onto the
/// running row — so scalar, SSE2 and AVX2 produce identical bits.
template <class B>
void MatMulRows(const float* pa, const float* pb, float* po, int64_t i0,
                int64_t i1, int64_t k, int64_t n) {
  using V = typename B::V;
  constexpr int64_t kColBlock = 256;
  constexpr int W = B::kWidth;
  for (int64_t j0 = 0; j0 < n; j0 += kColBlock) {
    const int64_t j1 = std::min(n, j0 + kColBlock);
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* orow = po + i * n;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = arow[p + 0], a1 = arow[p + 1];
        const float a2 = arow[p + 2], a3 = arow[p + 3];
        const float* b0 = pb + (p + 0) * n;
        const float* b1 = pb + (p + 1) * n;
        const float* b2 = pb + (p + 2) * n;
        const float* b3 = pb + (p + 3) * n;
        const V va0 = B::Set1(a0), va1 = B::Set1(a1);
        const V va2 = B::Set1(a2), va3 = B::Set1(a3);
        int64_t j = j0;
        for (; j + W <= j1; j += W) {
          V t = B::Mul(va0, B::Load(b0 + j));
          t = B::Add(t, B::Mul(va1, B::Load(b1 + j)));
          t = B::Add(t, B::Mul(va2, B::Load(b2 + j)));
          t = B::Add(t, B::Mul(va3, B::Load(b3 + j)));
          B::Store(orow + j, B::Add(B::Load(orow + j), t));
        }
        for (; j < j1; ++j) {
          float t = a0 * b0[j];
          t = t + a1 * b1[j];
          t = t + a2 * b2[j];
          t = t + a3 * b3[j];
          orow[j] = orow[j] + t;
        }
      }
      for (; p < k; ++p) {
        const float av = arow[p];
        const float* brow = pb + p * n;
        const V vav = B::Set1(av);
        int64_t j = j0;
        for (; j + W <= j1; j += W) {
          B::Store(orow + j,
                   B::Add(B::Load(orow + j), B::Mul(vav, B::Load(brow + j))));
        }
        for (; j < j1; ++j) orow[j] = orow[j] + av * brow[j];
      }
    }
  }
}

// --- int8 inference kernels (DESIGN.md §8g) ---

/// Max of |p[i]| over [0, n); n == 0 returns 0. Like MaxBlock, max over
/// NaN-free reals is order-insensitive, so the lane tree is free and the
/// result is bit-identical across backends.
template <class B>
float AbsMaxBlock(const float* p, int64_t n) {
  if (n <= 0) return 0.f;
  int64_t i = 0;
  float m;
  if (n >= B::kWidth) {
    typename B::V acc = OpAbs::Run<B>(B::Load(p));
    for (i = B::kWidth; i + B::kWidth <= n; i += B::kWidth) {
      acc = B::SMax(acc, OpAbs::Run<B>(B::Load(p + i)));
    }
    float lanes[B::kWidth];
    B::Store(lanes, acc);
    m = lanes[0];
    for (int j = 1; j < B::kWidth; ++j) m = VScalar::SMax(m, lanes[j]);
  } else {
    m = OpAbs::Run<VScalar>(p[0]);
    i = 1;
  }
  for (; i < n; ++i) m = VScalar::SMax(m, OpAbs::Run<VScalar>(p[i]));
  return m;
}

/// q[i] = round-nearest-even(x[i] * inv_scale) clamped to [-127, 127], as
/// int8. Per-element pure: the vector body runs the exact operation
/// sequence of vec::QuantizeOneS8, the remainder runs QuantizeOneS8
/// itself.
template <class B>
void QuantizeRowS8(const float* x, float inv_scale, int8_t* q, int64_t n) {
  const typename B::V vinv = B::Set1(inv_scale);
  const typename B::V vlo = B::Set1(-127.f);
  const typename B::V vhi = B::Set1(127.f);
  int64_t i = 0;
  for (; i + B::kWidth <= n; i += B::kWidth) {
    typename B::V t = B::RoundNearest(B::Mul(B::Load(x + i), vinv));
    t = B::SMin(B::SMax(t, vlo), vhi);
    B::StoreQ8(q + i, B::ToInt(t));
  }
  for (; i < n; ++i) q[i] = vec::QuantizeOneS8(x[i], inv_scale);
}

/// Rows [i0, i1) of the quantized (m,k)x(k,n) product with EXACT int32
/// accumulation:
///
///   acc[i*n + j] = sum_p aq[i*k + p] * w[p][j]
///
/// aq is the int8-quantized activation matrix; wpack is the weight pack in
/// pair-interleaved int16 layout (nn/quant.cc): ceil(k/2) rows of n (lo,
/// hi) pairs, pair p2 of column j holding (w[2*p2][j], w[2*p2+1][j]) —
/// [V]PMADDWD's native operand shape, so each step multiplies two k-slices
/// into every output column at once. Integer sums are order-insensitive,
/// so scalar/SSE2/AVX2 and any chunking of rows agree bit for bit; the
/// caller bounds k (<= kQuantMaxK) so the accumulator cannot overflow.
template <class B>
void QuantGemmRows(const int8_t* aq, const int16_t* wpack, int32_t* acc,
                   int64_t i0, int64_t i1, int64_t k, int64_t n) {
  constexpr int W = B::kWidth;
  const int64_t pairs = (k + 1) / 2;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = aq + i * k;
    int32_t* orow = acc + i * n;
    int64_t j = 0;
    for (; j + W <= n; j += W) B::IStore(orow + j, B::IZero());
    for (; j < n; ++j) orow[j] = 0;
    for (int64_t p2 = 0; p2 < pairs; ++p2) {
      const int32_t a0 = arow[2 * p2];
      const int32_t a1 = (2 * p2 + 1 < k) ? arow[2 * p2 + 1] : 0;
      const uint32_t pair =
          (static_cast<uint32_t>(static_cast<uint16_t>(a0))) |
          (static_cast<uint32_t>(static_cast<uint16_t>(a1)) << 16);
      const int16_t* wrow = wpack + p2 * (2 * n);
      const typename B::VI va = B::ISet1(static_cast<int32_t>(pair));
      j = 0;
      for (; j + W <= n; j += W) {
        B::IStore(orow + j, B::MAddPairsAcc(B::ILoad(orow + j), va,
                                            B::ILoadPairs(wrow + 2 * j)));
      }
      for (; j < n; ++j) {
        orow[j] = orow[j] + (a0 * wrow[2 * j] + a1 * wrow[2 * j + 1]);
      }
    }
  }
}

/// Dequantization epilogue: o[j] = float(acc[j]) * (a_scale * w_scale[j])
/// [+ bias[j]]. Fixed three-rounding expression tree per element (scale
/// product, int->float product, bias add), identical in vector and scalar
/// form.
template <class B>
void DequantBiasRow(const int32_t* acc, float a_scale, const float* w_scale,
                    const float* bias, float* o, int64_t n) {
  const typename B::V va = B::Set1(a_scale);
  int64_t i = 0;
  if (bias != nullptr) {
    for (; i + B::kWidth <= n; i += B::kWidth) {
      const typename B::V s = B::Mul(va, B::Load(w_scale + i));
      const typename B::V m = B::Mul(B::IToF(B::ILoad(acc + i)), s);
      B::Store(o + i, B::Add(m, B::Load(bias + i)));
    }
    for (; i < n; ++i) {
      const float s = a_scale * w_scale[i];
      o[i] = static_cast<float>(acc[i]) * s + bias[i];
    }
  } else {
    for (; i + B::kWidth <= n; i += B::kWidth) {
      const typename B::V s = B::Mul(va, B::Load(w_scale + i));
      B::Store(o + i, B::Mul(B::IToF(B::ILoad(acc + i)), s));
    }
    for (; i < n; ++i) {
      const float s = a_scale * w_scale[i];
      o[i] = static_cast<float>(acc[i]) * s;
    }
  }
}

/// Fused rows [i0, i1) of the quantized GEMM + dequantization epilogue:
///
///   o[i*n + j] = float(sum_p aq[i*k + p] * w[p][j]) * (a_scale *
///                w_scale[j]) [+ bias[j]]
///
/// Same pack layout and int32 accumulation as QuantGemmRows and the SAME
/// per-element dequant expression tree as DequantBiasRow — the fused
/// result is bit-identical to the two-kernel composition. The fusion is
/// the serve-path fast lane: the accumulator tile lives in registers for
/// the whole k loop (QuantGemmRows streams an int32 row through memory
/// once per weight pair, and the separate epilogue re-reads it), so
/// tall-activation layers (rows = num_regions) stop paying the acc
/// round trip and the per-row epilogue dispatch.
template <class B>
void QuantGemmDequantRows(const int8_t* aq, const int16_t* wpack,
                          float a_scale, const float* w_scale,
                          const float* bias, float* o, int64_t i0, int64_t i1,
                          int64_t k, int64_t n) {
  constexpr int W = B::kWidth;
  const int64_t pairs = (k + 1) / 2;
  // Small-k fast lane (covers every tall-activation serve shape, where k
  // is the feature width or hidden size): sign-extend the activation row
  // to int16 once per row so each weight-pair broadcast is a single
  // 4-byte load-and-broadcast instead of two scalar byte loads plus
  // shift/or/insert per pair per column tile. Sign extension preserves
  // the low-16-bit pattern exactly, so the int32 sums are unchanged.
  // Deeper reductions (which callers route to the streaming kernels per
  // the kQuantFusedMaxK policy) keep the scalar pair assembly so this
  // kernel stays correct for any k.
  int16_t aq16[kQuantFusedMaxK + 1];
  const bool expand = k <= kQuantFusedMaxK;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = aq + i * k;
    float* orow = o + i * n;
    if (expand) {
      for (int64_t x = 0; x < k; ++x) aq16[x] = arow[x];
      if (k & 1) aq16[k] = 0;
    }
    int64_t j = 0;
    // 4-tile column blocks: one activation-pair broadcast feeds four
    // multiply-accumulates and the four pack loads per pair are
    // consecutive memory — ~30% fewer instructions per MAC than the
    // single-tile loop below, which handles the remainder. Integer sums
    // per output column are identical either way.
    if (expand) {
      for (; j + 4 * W <= n; j += 4 * W) {
        typename B::VI acc0 = B::IZero();
        typename B::VI acc1 = B::IZero();
        typename B::VI acc2 = B::IZero();
        typename B::VI acc3 = B::IZero();
        for (int64_t p2 = 0; p2 < pairs; ++p2) {
          int32_t pair;
          std::memcpy(&pair, aq16 + 2 * p2, sizeof(pair));
          const typename B::VI av = B::ISet1(pair);
          const int16_t* wr = wpack + p2 * (2 * n) + 2 * j;
          acc0 = B::MAddPairsAcc(acc0, av, B::ILoadPairs(wr));
          acc1 = B::MAddPairsAcc(acc1, av, B::ILoadPairs(wr + 2 * W));
          acc2 = B::MAddPairsAcc(acc2, av, B::ILoadPairs(wr + 4 * W));
          acc3 = B::MAddPairsAcc(acc3, av, B::ILoadPairs(wr + 6 * W));
        }
        const typename B::V vs = B::Set1(a_scale);
        const typename B::VI accs[4] = {acc0, acc1, acc2, acc3};
        for (int t = 0; t < 4; ++t) {
          const int64_t jt = j + t * W;
          const typename B::V s = B::Mul(vs, B::Load(w_scale + jt));
          const typename B::V m = B::Mul(B::IToF(accs[t]), s);
          B::Store(orow + jt,
                   bias != nullptr ? B::Add(m, B::Load(bias + jt)) : m);
        }
      }
    }
    for (; j + W <= n; j += W) {
      typename B::VI acc = B::IZero();
      if (expand) {
        for (int64_t p2 = 0; p2 < pairs; ++p2) {
          int32_t pair;
          std::memcpy(&pair, aq16 + 2 * p2, sizeof(pair));
          acc = B::MAddPairsAcc(acc, B::ISet1(pair),
                                B::ILoadPairs(wpack + p2 * (2 * n) + 2 * j));
        }
      } else {
        for (int64_t p2 = 0; p2 < pairs; ++p2) {
          const int32_t a0 = arow[2 * p2];
          const int32_t a1 = (2 * p2 + 1 < k) ? arow[2 * p2 + 1] : 0;
          const uint32_t pair =
              (static_cast<uint32_t>(static_cast<uint16_t>(a0))) |
              (static_cast<uint32_t>(static_cast<uint16_t>(a1)) << 16);
          acc = B::MAddPairsAcc(acc, B::ISet1(static_cast<int32_t>(pair)),
                                B::ILoadPairs(wpack + p2 * (2 * n) + 2 * j));
        }
      }
      const typename B::V s = B::Mul(B::Set1(a_scale), B::Load(w_scale + j));
      const typename B::V m = B::Mul(B::IToF(acc), s);
      B::Store(orow + j, bias != nullptr ? B::Add(m, B::Load(bias + j)) : m);
    }
    for (; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p2 = 0; p2 < pairs; ++p2) {
        const int32_t a0 = arow[2 * p2];
        const int32_t a1 = (2 * p2 + 1 < k) ? arow[2 * p2 + 1] : 0;
        const int16_t* wrow = wpack + p2 * (2 * n);
        acc += a0 * wrow[2 * j] + a1 * wrow[2 * j + 1];
      }
      const float s = a_scale * w_scale[j];
      orow[j] = bias != nullptr ? static_cast<float>(acc) * s + bias[j]
                                : static_cast<float>(acc) * s;
    }
  }
}

// --- contiguous copy ---

/// memcpy in kernel clothing: routes Tensor::Slice / CopyFrom row copies
/// through the dispatch table so they show up in the same profiling layer
/// as everything else. Destination alignment is whatever the caller's
/// buffer has (fresh tensor storage: 64 bytes); the source may be an
/// arbitrary row offset — memcpy has no alignment requirement, so this
/// kernel PRESERVES no alignment guarantee beyond the destination's own.
template <class B>
void CopyK(const float* src, float* dst, int64_t n) {
  std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

// --- aligned-path dispatchers (see AlignedIO above) ---
//
// `if constexpr (B::kWidth > 1)` keeps the scalar table free of a useless
// double instantiation: scalar loads have no alignment requirement.

template <class B, class Op>
void EwBinaryVVD(const float* a, const float* b, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(a) && Aligned64(b) && Aligned64(o)) {
      return EwBinaryVV<AlignedIO<B>, Op>(a, b, o, n);
    }
  }
  EwBinaryVV<B, Op>(a, b, o, n);
}

template <class B, class Op>
void EwBinaryVSD(const float* a, float s, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(a) && Aligned64(o)) {
      return EwBinaryVS<AlignedIO<B>, Op>(a, s, o, n);
    }
  }
  EwBinaryVS<B, Op>(a, s, o, n);
}

template <class B, class Op>
void EwBinarySVD(float s, const float* b, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(b) && Aligned64(o)) {
      return EwBinarySV<AlignedIO<B>, Op>(s, b, o, n);
    }
  }
  EwBinarySV<B, Op>(s, b, o, n);
}

template <class B, class Op>
void EwUnaryD(const float* a, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(a) && Aligned64(o)) {
      return EwUnary<AlignedIO<B>, Op>(a, o, n);
    }
  }
  EwUnary<B, Op>(a, o, n);
}

template <class B>
void ClampKD(const float* a, float lo, float hi, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(a) && Aligned64(o)) {
      return ClampK<AlignedIO<B>>(a, lo, hi, o, n);
    }
  }
  ClampK<B>(a, lo, hi, o, n);
}

template <class B>
void AddIpD(float* a, const float* b, int64_t n) {
  EwBinaryVVD<B, OpAdd>(a, b, a, n);
}

template <class B>
void AxpyIpD(float* a, float alpha, const float* b, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(a) && Aligned64(b)) {
      return AxpyIp<AlignedIO<B>>(a, alpha, b, n);
    }
  }
  AxpyIp<B>(a, alpha, b, n);
}

template <class B>
void ScaleIpD(float* a, float s, int64_t n) {
  EwBinaryVSD<B, OpMul>(a, s, a, n);
}

template <class B>
void ReluIpD(float* a, int64_t n) {
  EwUnaryD<B, OpRelu>(a, a, n);
}

template <class B>
void ClampIpD(float* a, float lo, float hi, int64_t n) {
  ClampKD<B>(a, lo, hi, a, n);
}

template <class B>
void SoftmaxRowD(const float* src, float* dst, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(src) && Aligned64(dst)) {
      return SoftmaxRow<AlignedIO<B>>(src, dst, n);
    }
  }
  SoftmaxRow<B>(src, dst, n);
}

template <class B>
void ExpPdfRowD(const float* x, float lambda, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(x) && Aligned64(o)) {
      return ExpPdfRow<AlignedIO<B>>(x, lambda, o, n);
    }
  }
  ExpPdfRow<B>(x, lambda, o, n);
}

template <class B>
void NormalPdfRowD(const float* x, float mean, float inv_stddev,
                   float inv_norm, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(x) && Aligned64(o)) {
      return NormalPdfRow<AlignedIO<B>>(x, mean, inv_stddev, inv_norm, o, n);
    }
  }
  NormalPdfRow<B>(x, mean, inv_stddev, inv_norm, o, n);
}

/// The B-row loads of MatMulRows walk pb/po at offsets p*n + j with j a
/// multiple of kWidth, so every load is aligned iff the bases are 64-byte
/// aligned AND a row stride of n floats preserves that (n % 16 == 0, i.e.
/// 64 bytes). arow is consumed through Set1 broadcasts — no requirement.
template <class B>
void MatMulRowsD(const float* pa, const float* pb, float* po, int64_t i0,
                 int64_t i1, int64_t k, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(pb) && Aligned64(po) && (n & 15) == 0) {
      return MatMulRows<AlignedIO<B>>(pa, pb, po, i0, i1, k, n);
    }
  }
  MatMulRows<B>(pa, pb, po, i0, i1, k, n);
}

template <class B>
void QuantizeRowS8D(const float* x, float inv_scale, int8_t* q, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(x)) {
      return QuantizeRowS8<AlignedIO<B>>(x, inv_scale, q, n);
    }
  }
  QuantizeRowS8<B>(x, inv_scale, q, n);
}

/// The vector accesses of QuantGemmRows walk acc at j multiples of kWidth
/// (4j bytes) with a row stride of 4n bytes, and wpack at 4j bytes with a
/// pair-row stride of 4n bytes — so all of them stay aligned iff both
/// bases are 64-byte aligned and n % 16 == 0 (the same rule as
/// MatMulRowsD). aq is consumed through ISet1 broadcasts — no requirement.
template <class B>
void QuantGemmRowsD(const int8_t* aq, const int16_t* wpack, int32_t* acc,
                    int64_t i0, int64_t i1, int64_t k, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(wpack) && Aligned64(acc) && (n & 15) == 0) {
      return QuantGemmRows<AlignedIO<B>>(aq, wpack, acc, i0, i1, k, n);
    }
  }
  QuantGemmRows<B>(aq, wpack, acc, i0, i1, k, n);
}

/// Same walk as QuantGemmRowsD for wpack and o (strided at 2j/4j bytes,
/// row strides 4n bytes) plus the packed per-column vectors — aligned
/// iff every base is 64-byte aligned and n % 16 == 0.
template <class B>
void QuantGemmDequantRowsD(const int8_t* aq, const int16_t* wpack,
                           float a_scale, const float* w_scale,
                           const float* bias, float* o, int64_t i0,
                           int64_t i1, int64_t k, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(wpack) && Aligned64(w_scale) && Aligned64(o) &&
        (bias == nullptr || Aligned64(bias)) && (n & 15) == 0) {
      return QuantGemmDequantRows<AlignedIO<B>>(aq, wpack, a_scale, w_scale,
                                                bias, o, i0, i1, k, n);
    }
  }
  QuantGemmDequantRows<B>(aq, wpack, a_scale, w_scale, bias, o, i0, i1, k, n);
}

template <class B>
void DequantBiasRowD(const int32_t* acc, float a_scale, const float* w_scale,
                     const float* bias, float* o, int64_t n) {
  if constexpr (B::kWidth > 1) {
    if (Aligned64(acc) && Aligned64(w_scale) && Aligned64(o) &&
        (bias == nullptr || Aligned64(bias))) {
      return DequantBiasRow<AlignedIO<B>>(acc, a_scale, w_scale, bias, o, n);
    }
  }
  DequantBiasRow<B>(acc, a_scale, w_scale, bias, o, n);
}

template <class B>
KernelTable MakeTable(Backend backend) {
  KernelTable t;
  t.backend = backend;
  t.add_vv = &EwBinaryVVD<B, OpAdd>;
  t.sub_vv = &EwBinaryVVD<B, OpSub>;
  t.mul_vv = &EwBinaryVVD<B, OpMul>;
  t.div_vv = &EwBinaryVVD<B, OpDiv>;
  t.max_vv = &EwBinaryVVD<B, OpMax>;
  t.add_vs = &EwBinaryVSD<B, OpAdd>;
  t.sub_vs = &EwBinaryVSD<B, OpSub>;
  t.sub_sv = &EwBinarySVD<B, OpSub>;
  t.mul_vs = &EwBinaryVSD<B, OpMul>;
  t.div_vs = &EwBinaryVSD<B, OpDiv>;
  t.div_sv = &EwBinarySVD<B, OpDiv>;
  t.max_vs = &EwBinaryVSD<B, OpMax>;
  t.max_sv = &EwBinarySVD<B, OpMax>;
  t.neg = &EwUnaryD<B, OpNeg>;
  t.abs = &EwUnaryD<B, OpAbs>;
  t.sign = &EwUnaryD<B, OpSign>;
  t.sqrt = &EwUnaryD<B, OpSqrt>;
  t.relu = &EwUnaryD<B, OpRelu>;
  t.clamp = &ClampKD<B>;
  t.exp = &EwUnaryD<B, OpExp>;
  t.tanh = &EwUnaryD<B, OpTanh>;
  t.sigmoid = &EwUnaryD<B, OpSigmoid>;
  t.add_ip = &AddIpD<B>;
  t.axpy_ip = &AxpyIpD<B>;
  t.scale_ip = &ScaleIpD<B>;
  t.relu_ip = &ReluIpD<B>;
  t.clamp_ip = &ClampIpD<B>;
  t.sum_block = &SumBlock<B>;
  t.sumsq_block = &SumSqBlock<B>;
  t.max_block = &MaxBlock<B>;
  t.softmax_row = &SoftmaxRowD<B>;
  t.exp_pdf_row = &ExpPdfRowD<B>;
  t.normal_pdf_row = &NormalPdfRowD<B>;
  t.copy = &CopyK<B>;
  t.matmul_rows = &MatMulRowsD<B>;
  t.absmax_block = &AbsMaxBlock<B>;
  t.quantize_s8 = &QuantizeRowS8D<B>;
  t.quant_gemm_rows = &QuantGemmRowsD<B>;
  t.quant_gemm_dequant_rows = &QuantGemmDequantRowsD<B>;
  t.dequant_bias_row = &DequantBiasRowD<B>;
  return t;
}

}  // namespace impl
}  // namespace kernels
}  // namespace ealgap

#endif  // EALGAP_TENSOR_KERNELS_IMPL_H_
