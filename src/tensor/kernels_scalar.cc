// Scalar kernel table: the reference instantiation every SIMD backend must
// match bit-for-bit. Compiled with -ffp-contract=off (see CMakeLists) so
// the compiler cannot fuse multiply-adds that the SIMD TUs keep separate.

#include "tensor/kernels_impl.h"

namespace ealgap {
namespace kernels {

const KernelTable* GetScalarTable() {
  static const KernelTable table =
      impl::MakeTable<vec::VScalar>(Backend::kScalar);
  return &table;
}

}  // namespace kernels
}  // namespace ealgap
