#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace ealgap {

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

bool BroadcastCompatible(const Shape& a, const Shape& b) {
  const size_t na = a.size(), nb = b.size();
  const size_t n = std::max(na, nb);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < na ? a[na - 1 - i] : 1;
    const int64_t db = i < nb ? b[nb - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  EALGAP_CHECK(BroadcastCompatible(a, b))
      << ShapeToString(a) << " vs " << ShapeToString(b);
  const size_t na = a.size(), nb = b.size();
  const size_t n = std::max(na, nb);
  Shape out(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < na ? a[na - 1 - i] : 1;
    const int64_t db = i < nb ? b[nb - 1 - i] : 1;
    out[n - 1 - i] = std::max(da, db);
  }
  return out;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(ShapeNumel(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, 0.f)) {
  for (int64_t d : shape_) EALGAP_CHECK_GE(d, 0);
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  const int64_t n = ShapeNumel(shape);
  EALGAP_CHECK_EQ(n, static_cast<int64_t>(values.size()))
      << "shape " << ShapeToString(shape);
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = n;
  t.storage_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::Arange(int64_t n, float start, float step) {
  Tensor t({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = start + step * static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  if (i < 0) i += ndim();
  EALGAP_CHECK(i >= 0 && i < ndim()) << "dim " << i << " of " << ndim();
  return shape_[i];
}

float* Tensor::data() {
  EALGAP_CHECK(defined());
  return storage_->data();
}

const float* Tensor::data() const {
  EALGAP_CHECK(defined());
  return storage_->data();
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  EALGAP_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t off = 0;
  int64_t i = 0;
  for (int64_t v : idx) {
    EALGAP_CHECK(v >= 0 && v < shape_[i])
        << "index " << v << " in dim " << i << " of " << ShapeToString(shape_);
    off = off * shape_[i] + v;
    ++i;
  }
  return (*storage_)[off];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->at(idx);
}

Tensor Tensor::Clone() const {
  if (!defined()) return Tensor();
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return t;
}

Tensor Tensor::Reshape(Shape shape) const {
  EALGAP_CHECK_EQ(ShapeNumel(shape), numel_)
      << ShapeToString(shape_) << " -> " << ShapeToString(shape);
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = numel_;
  t.storage_ = storage_;
  return t;
}

void Tensor::CopyFrom(const Tensor& src) {
  EALGAP_CHECK(SameShape(src));
  std::copy(src.data(), src.data() + numel_, data());
}

void Tensor::Fill(float value) {
  std::fill(storage_->begin(), storage_->end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  EALGAP_CHECK(SameShape(other))
      << ShapeToString(shape_) << " += " << ShapeToString(other.shape_);
  kernels::Active().add_ip(data(), other.data(), numel_);
}

void Tensor::ScaleInPlace(float s) {
  kernels::Active().scale_ip(data(), s, numel_);
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t show = std::min<int64_t>(numel_, 64);
  const float* p = data();
  for (int64_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << p[i];
  }
  if (show < numel_) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace ealgap
