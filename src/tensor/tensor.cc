#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <ostream>
#include <sstream>

#include "common/aligned_alloc.h"
#include "common/arena.h"
#include "common/logging.h"
#include "tensor/kernels.h"

namespace ealgap {

// Storage::payload() hardcodes the header-to-payload offset.
static_assert(kCacheAlign == 64, "Tensor storage assumes 64-byte alignment");

size_t Shape::CheckedSize(size_t n) {
  EALGAP_CHECK_LE(n, static_cast<size_t>(kMaxRank))
      << "tensor rank above " << kMaxRank << " is unsupported";
  return n;
}

std::ostream& operator<<(std::ostream& os, const Shape& shape) {
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << shape;
  return os.str();
}

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

bool BroadcastCompatible(const Shape& a, const Shape& b) {
  const size_t na = a.size(), nb = b.size();
  const size_t n = std::max(na, nb);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < na ? a[na - 1 - i] : 1;
    const int64_t db = i < nb ? b[nb - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  EALGAP_CHECK(BroadcastCompatible(a, b))
      << ShapeToString(a) << " vs " << ShapeToString(b);
  const size_t na = a.size(), nb = b.size();
  const size_t n = std::max(na, nb);
  Shape out(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < na ? a[na - 1 - i] : 1;
    const int64_t db = i < nb ? b[nb - 1 - i] : 1;
    out[n - 1 - i] = std::max(da, db);
  }
  return out;
}

Tensor::Storage* Tensor::NewStorage(int64_t numel) {
  const std::size_t bytes =
      kCacheAlign + static_cast<std::size_t>(numel) * sizeof(float);
  Arena* arena = CurrentArena();
  void* base = arena ? arena->Allocate(bytes) : AlignedAlloc(bytes);
  auto* s = new (base) Storage;
  s->refs.store(1, std::memory_order_relaxed);
  s->arena = arena;
  return s;
}

void Tensor::FreeStorage(Storage* s) {
  s->~Storage();
  AlignedFree(s);
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  for (int64_t d : shape_) EALGAP_CHECK_GE(d, 0);
  numel_ = ShapeNumel(shape_);
  storage_ = NewStorage(numel_);
  std::memset(storage_->payload(), 0,
              static_cast<std::size_t>(numel_) * sizeof(float));
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::FromVector(Shape shape, const std::vector<float>& values) {
  const int64_t n = ShapeNumel(shape);
  EALGAP_CHECK_EQ(n, static_cast<int64_t>(values.size()))
      << "shape " << ShapeToString(shape);
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = n;
  t.storage_ = NewStorage(n);
  std::memcpy(t.storage_->payload(), values.data(),
              static_cast<std::size_t>(n) * sizeof(float));
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::Arange(int64_t n, float start, float step) {
  Tensor t({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = start + step * static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  if (i < 0) i += ndim();
  EALGAP_CHECK(i >= 0 && i < ndim()) << "dim " << i << " of " << ndim();
  return shape_[i];
}

float* Tensor::data() {
  EALGAP_CHECK(defined());
  return storage_->payload();
}

const float* Tensor::data() const {
  EALGAP_CHECK(defined());
  return storage_->payload();
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  EALGAP_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t off = 0;
  int64_t i = 0;
  for (int64_t v : idx) {
    EALGAP_CHECK(v >= 0 && v < shape_[i])
        << "index " << v << " in dim " << i << " of " << ShapeToString(shape_);
    off = off * shape_[i] + v;
    ++i;
  }
  return data()[off];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->at(idx);
}

Tensor Tensor::Clone() const {
  if (!defined()) return Tensor();
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.storage_ = NewStorage(numel_);
  std::memcpy(t.storage_->payload(), storage_->payload(),
              static_cast<std::size_t>(numel_) * sizeof(float));
  return t;
}

Tensor Tensor::Reshape(Shape shape) const {
  EALGAP_CHECK_EQ(ShapeNumel(shape), numel_)
      << ShapeToString(shape_) << " -> " << ShapeToString(shape);
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = numel_;
  t.storage_ = storage_;
  t.Retain();
  return t;
}

void Tensor::CopyFrom(const Tensor& src) {
  EALGAP_CHECK(SameShape(src));
  std::memcpy(data(), src.data(),
              static_cast<std::size_t>(numel_) * sizeof(float));
}

void Tensor::Fill(float value) {
  float* p = data();
  std::fill(p, p + numel_, value);
}

void Tensor::AddInPlace(const Tensor& other) {
  EALGAP_CHECK(SameShape(other))
      << ShapeToString(shape_) << " += " << ShapeToString(other.shape_);
  kernels::Active().add_ip(data(), other.data(), numel_);
}

void Tensor::ScaleInPlace(float s) {
  kernels::Active().scale_ip(data(), s, numel_);
}

bool Tensor::StorageUnique() const {
  return storage_ && storage_->refs.load(std::memory_order_acquire) == 1;
}

bool Tensor::ArenaBacked() const {
  return storage_ && storage_->arena != nullptr;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t show = std::min<int64_t>(numel_, 64);
  const float* p = data();
  for (int64_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << p[i];
  }
  if (show < numel_) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace ealgap
