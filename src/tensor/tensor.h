#ifndef EALGAP_TENSOR_TENSOR_H_
#define EALGAP_TENSOR_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ealgap {

class Arena;

/// Tensor dimension sizes, outermost first.
///
/// A fixed-capacity inline vector (max rank 8): shapes ride in the Tensor
/// object itself instead of a heap-allocated std::vector, which removes
/// one allocation per tensor — load-bearing for the zero-allocation serve
/// step (DESIGN.md §8e). The API is the std::vector subset the codebase
/// uses; exceeding kMaxRank aborts (checked in shape.cc helpers).
class Shape {
 public:
  static constexpr int64_t kMaxRank = 8;

  using value_type = int64_t;
  using iterator = int64_t*;
  using const_iterator = const int64_t*;

  Shape() = default;
  /// `n` dimensions, value-initialized to zero (std::vector semantics).
  explicit Shape(size_t n) : size_(CheckedSize(n)) {
    for (size_t i = 0; i < size_; ++i) dims_[i] = 0;
  }
  Shape(std::initializer_list<int64_t> dims) : size_(CheckedSize(dims.size())) {
    size_t i = 0;
    for (int64_t d : dims) dims_[i++] = d;
  }
  template <typename It>
  Shape(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  int64_t& operator[](size_t i) { return dims_[i]; }
  int64_t operator[](size_t i) const { return dims_[i]; }
  int64_t back() const { return dims_[size_ - 1]; }

  iterator begin() { return dims_; }
  iterator end() { return dims_ + size_; }
  const_iterator begin() const { return dims_; }
  const_iterator end() const { return dims_ + size_; }
  const int64_t* data() const { return dims_; }

  void push_back(int64_t d) {
    CheckedSize(size_ + 1);
    dims_[size_++] = d;
  }

  iterator insert(iterator pos, int64_t d) {
    CheckedSize(size_ + 1);
    for (iterator it = end(); it != pos; --it) *it = *(it - 1);
    *pos = d;
    ++size_;
    return pos;
  }

  iterator erase(iterator pos) {
    for (iterator it = pos; it + 1 != end(); ++it) *it = *(it + 1);
    --size_;
    return pos;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  /// Aborts (via the out-of-line handler) when n exceeds kMaxRank.
  static size_t CheckedSize(size_t n);

  int64_t dims_[kMaxRank];
  size_t size_ = 0;
};

/// Prints "[d0, d1, ...]" (test failure output; gtest picks this up).
std::ostream& operator<<(std::ostream& os, const Shape& shape);

/// Returns "[d0, d1, ...]" for error messages.
std::string ShapeToString(const Shape& shape);

/// Product of all dimensions (1 for a rank-0 shape).
int64_t ShapeNumel(const Shape& shape);

/// True when two shapes are broadcast-compatible (numpy rules).
bool BroadcastCompatible(const Shape& a, const Shape& b);

/// The broadcast result shape. Requires BroadcastCompatible(a, b).
Shape BroadcastShape(const Shape& a, const Shape& b);

/// Dense row-major float32 tensor with shared copy-on-nothing storage.
///
/// Copying a Tensor is cheap: copies share the underlying buffer (like
/// torch). Use Clone() for a deep copy. All factory functions produce
/// contiguous tensors; Reshape shares storage, Slice copies.
///
/// Storage is a single intrusive refcounted block whose float payload is
/// 64-byte aligned (common/aligned_alloc.h), so kernels can take the
/// aligned-load path on whole-tensor operations. When a thread has an
/// ArenaScope active (the serve step), storage comes from the arena and is
/// reclaimed wholesale by the scope's rewind; such tensors must not
/// outlive the scope.
class Tensor {
 public:
  /// An empty (undefined) tensor; defined() is false.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  ~Tensor() { Release(); }
  Tensor(const Tensor& o)
      : shape_(o.shape_), numel_(o.numel_), storage_(o.storage_) {
    Retain();
  }
  Tensor(Tensor&& o) noexcept
      : shape_(o.shape_), numel_(o.numel_), storage_(o.storage_) {
    o.storage_ = nullptr;
    o.numel_ = 0;
    o.shape_ = Shape();
  }
  Tensor& operator=(const Tensor& o) {
    if (this != &o) {
      Release();
      shape_ = o.shape_;
      numel_ = o.numel_;
      storage_ = o.storage_;
      Retain();
    }
    return *this;
  }
  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      Release();
      shape_ = o.shape_;
      numel_ = o.numel_;
      storage_ = o.storage_;
      o.storage_ = nullptr;
      o.numel_ = 0;
      o.shape_ = Shape();
    }
    return *this;
  }

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Scalar tensor of shape {1}.
  static Tensor Scalar(float value);
  /// Copies `values` into fresh aligned storage; requires
  /// values.size() == numel(shape).
  static Tensor FromVector(Shape shape, const std::vector<float>& values);
  /// Uniform values in [lo, hi).
  static Tensor Rand(Shape shape, Rng& rng, float lo = 0.f, float hi = 1.f);
  /// Normal values.
  static Tensor Randn(Shape shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// 1-D tensor [start, start+step, ...) of n elements.
  static Tensor Arange(int64_t n, float start = 0.f, float step = 1.f);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return numel_; }

  float* data();
  const float* data() const;

  /// Element access by multi-index (row-major). Debug-checked.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// View with a new shape sharing storage. Requires equal numel.
  Tensor Reshape(Shape shape) const;

  /// Copies `src` into this tensor. Requires identical shapes.
  void CopyFrom(const Tensor& src);

  /// Sets every element to `value`.
  void Fill(float value);

  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this *= s.
  void ScaleInPlace(float s);

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// True when no other Tensor shares this storage; in-place mutation is
  /// then invisible to the rest of the program.
  bool StorageUnique() const;

  /// True when the storage payload came from an arena (diagnostics/tests).
  bool ArenaBacked() const;

  /// Human-readable dump (small tensors only; elided past 64 elements).
  std::string ToString() const;

 private:
  /// Intrusive refcounted storage header. The float payload starts at
  /// kCacheAlign bytes past the header base, so payloads are 64-byte
  /// aligned whenever the block is (aligned_alloc/arena guarantee both).
  /// Arena-backed blocks are not freed on refcount zero — the owning
  /// scope's rewind reclaims them; the refcount still tracks sharing so
  /// StorageUnique() stays meaningful.
  struct Storage {
    std::atomic<int64_t> refs;
    Arena* arena;  // nullptr => heap block, AlignedFree on last release
    float* payload() {
      return reinterpret_cast<float*>(reinterpret_cast<char*>(this) + 64);
    }
  };

  static Storage* NewStorage(int64_t numel);

  void Retain() {
    if (storage_) storage_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  void Release() {
    if (storage_ &&
        storage_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        storage_->arena == nullptr) {
      FreeStorage(storage_);
    }
    storage_ = nullptr;
  }
  static void FreeStorage(Storage* s);

  Shape shape_;
  int64_t numel_ = 0;
  Storage* storage_ = nullptr;
};

}  // namespace ealgap

#endif  // EALGAP_TENSOR_TENSOR_H_
