#ifndef EALGAP_TENSOR_TENSOR_H_
#define EALGAP_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ealgap {

/// Tensor dimension sizes, outermost first.
using Shape = std::vector<int64_t>;

/// Returns "[d0, d1, ...]" for error messages.
std::string ShapeToString(const Shape& shape);

/// Product of all dimensions (1 for a rank-0 shape).
int64_t ShapeNumel(const Shape& shape);

/// True when two shapes are broadcast-compatible (numpy rules).
bool BroadcastCompatible(const Shape& a, const Shape& b);

/// The broadcast result shape. Requires BroadcastCompatible(a, b).
Shape BroadcastShape(const Shape& a, const Shape& b);

/// Dense row-major float32 tensor with shared copy-on-nothing storage.
///
/// Copying a Tensor is cheap: copies share the underlying buffer (like
/// torch). Use Clone() for a deep copy. All factory functions produce
/// contiguous tensors; Reshape shares storage, Slice copies.
class Tensor {
 public:
  /// An empty (undefined) tensor; defined() is false.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Scalar tensor of shape {1}.
  static Tensor Scalar(float value);
  /// Takes ownership of `values`; requires values.size() == numel(shape).
  static Tensor FromVector(Shape shape, std::vector<float> values);
  /// Uniform values in [lo, hi).
  static Tensor Rand(Shape shape, Rng& rng, float lo = 0.f, float hi = 1.f);
  /// Normal values.
  static Tensor Randn(Shape shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// 1-D tensor [start, start+step, ...) of n elements.
  static Tensor Arange(int64_t n, float start = 0.f, float step = 1.f);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return numel_; }

  float* data();
  const float* data() const;

  /// Element access by multi-index (row-major). Debug-checked.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// View with a new shape sharing storage. Requires equal numel.
  Tensor Reshape(Shape shape) const;

  /// Copies `src` into this tensor. Requires identical shapes.
  void CopyFrom(const Tensor& src);

  /// Sets every element to `value`.
  void Fill(float value);

  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this *= s.
  void ScaleInPlace(float s);

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// True when no other Tensor shares this storage; in-place mutation is
  /// then invisible to the rest of the program.
  bool StorageUnique() const { return storage_ && storage_.use_count() == 1; }

  /// Human-readable dump (small tensors only; elided past 64 elements).
  std::string ToString() const;

 private:
  Shape shape_;
  int64_t numel_ = 0;
  std::shared_ptr<std::vector<float>> storage_;
};

}  // namespace ealgap

#endif  // EALGAP_TENSOR_TENSOR_H_
