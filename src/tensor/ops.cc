#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"

namespace ealgap {
namespace ops {

namespace {

// Applies `f` elementwise over the broadcast of a and b.
template <typename F>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, F f) {
  if (a.SameShape(b)) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = out.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
    return out;
  }
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape);
  const int64_t rank = out.ndim();
  // Right-aligned shapes/strides for a and b.
  std::vector<int64_t> sa(rank, 1), sb(rank, 1);  // dim sizes
  std::vector<int64_t> ta(rank, 0), tb(rank, 0);  // strides (0 = broadcast)
  {
    int64_t stride = 1;
    for (int64_t i = a.ndim() - 1, j = rank - 1; i >= 0; --i, --j) {
      sa[j] = a.shape()[i];
      ta[j] = sa[j] == 1 ? 0 : stride;
      stride *= sa[j];
    }
    stride = 1;
    for (int64_t i = b.ndim() - 1, j = rank - 1; i >= 0; --i, --j) {
      sb[j] = b.shape()[i];
      tb[j] = sb[j] == 1 ? 0 : stride;
      stride *= sb[j];
    }
  }
  std::vector<int64_t> idx(rank, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  int64_t oa = 0, ob = 0;
  for (int64_t i = 0; i < n; ++i) {
    po[i] = f(pa[oa], pb[ob]);
    // Increment the multi-index (row-major) and the two offsets.
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++idx[d];
      oa += ta[d];
      ob += tb[d];
      if (idx[d] < out_shape[d]) break;
      idx[d] = 0;
      oa -= ta[d] * out_shape[d];
      ob -= tb[d] * out_shape[d];
    }
  }
  return out;
}

template <typename F>
Tensor Unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x * s; });
}
Tensor PowScalar(const Tensor& a, float p) {
  return Unary(a, [p](float x) { return std::pow(x, p); });
}
Tensor MaximumScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return std::max(x, s); });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return Unary(a, [lo, hi](float x) { return std::min(hi, std::max(lo, x)); });
}

Tensor Neg(const Tensor& a) {
  return Unary(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return Unary(a, [](float x) { return std::sqrt(x); });
}
Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return Unary(a, [](float x) { return 1.f / (1.f + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0.f ? x : 0.f; });
}
Tensor Abs(const Tensor& a) {
  return Unary(a, [](float x) { return std::fabs(x); });
}
Tensor Sign(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0.f ? 1.f : (x < 0.f ? -1.f : 0.f); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  EALGAP_CHECK_EQ(a.ndim(), 2);
  EALGAP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  EALGAP_CHECK_EQ(k, b.dim(0))
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.f) continue;
      const float* brow = pb + p * n;
      float* orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor BMatMul(const Tensor& a, const Tensor& b) {
  EALGAP_CHECK_EQ(a.ndim(), 3);
  EALGAP_CHECK_EQ(b.ndim(), 3);
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  EALGAP_CHECK_EQ(bs, b.dim(0));
  EALGAP_CHECK_EQ(k, b.dim(1))
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  Tensor out({bs, m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t s = 0; s < bs; ++s) {
    const float* sa = pa + s * m * k;
    const float* sb = pb + s * k * n;
    float* so = po + s * m * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float av = sa[i * k + p];
        if (av == 0.f) continue;
        const float* brow = sb + p * n;
        float* orow = so + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  EALGAP_CHECK_GE(a.ndim(), 2);
  Shape out_shape = a.shape();
  std::swap(out_shape[a.ndim() - 1], out_shape[a.ndim() - 2]);
  Tensor out(out_shape);
  const int64_t r = a.dim(-2), c = a.dim(-1);
  const int64_t batch = a.numel() / (r * c);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t s = 0; s < batch; ++s) {
    const float* sa = pa + s * r * c;
    float* so = po + s * r * c;
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < c; ++j) so[j * r + i] = sa[i * c + j];
    }
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& a) {
  EALGAP_CHECK_GT(a.numel(), 0);
  Tensor s = SumAll(a);
  s.ScaleInPlace(1.f / static_cast<float>(a.numel()));
  return s;
}

Tensor MaxAll(const Tensor& a) {
  EALGAP_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  float m = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::max(m, p[i]);
  return Tensor::Scalar(m);
}

namespace {
// Decomposes a shape around `axis` into (outer, axis_size, inner).
void AxisSplit(const Shape& shape, int64_t axis, int64_t* outer, int64_t* n,
               int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape[i];
  *n = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) *inner *= shape[i];
}
}  // namespace

Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  EALGAP_CHECK(axis >= 0 && axis < a.ndim());
  int64_t outer, n, inner;
  AxisSplit(a.shape(), axis, &outer, &n, &inner);
  Shape out_shape = a.shape();
  if (keepdim) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t k = 0; k < n; ++k) {
      const float* src = pa + (o * n + k) * inner;
      float* dst = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  Tensor s = SumAxis(a, axis, keepdim);
  s.ScaleInPlace(1.f / static_cast<float>(a.shape()[axis]));
  return s;
}

Tensor SoftmaxLastDim(const Tensor& a) {
  EALGAP_CHECK_GE(a.ndim(), 1);
  const int64_t n = a.dim(-1);
  const int64_t rows = a.numel() / n;
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = pa + r * n;
    float* dst = po + r * n;
    float mx = src[0];
    for (int64_t i = 1; i < n; ++i) mx = std::max(mx, src[i]);
    float denom = 0.f;
    for (int64_t i = 0; i < n; ++i) {
      dst[i] = std::exp(src[i] - mx);
      denom += dst[i];
    }
    const float inv = 1.f / denom;
    for (int64_t i = 0; i < n; ++i) dst[i] *= inv;
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t end) {
  if (axis < 0) axis += a.ndim();
  EALGAP_CHECK(axis >= 0 && axis < a.ndim());
  EALGAP_CHECK(start >= 0 && start <= end && end <= a.shape()[axis])
      << "slice [" << start << "," << end << ") of dim " << a.shape()[axis];
  int64_t outer, n, inner;
  AxisSplit(a.shape(), axis, &outer, &n, &inner);
  Shape out_shape = a.shape();
  out_shape[axis] = end - start;
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t len = end - start;
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = pa + (o * n + start) * inner;
    float* dst = po + o * len * inner;
    std::copy(src, src + len * inner, dst);
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  EALGAP_CHECK(!parts.empty());
  if (axis < 0) axis += parts[0].ndim();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    EALGAP_CHECK_EQ(p.ndim(), parts[0].ndim());
    for (int64_t d = 0; d < p.ndim(); ++d) {
      if (d != axis) EALGAP_CHECK_EQ(p.shape()[d], parts[0].shape()[d]);
    }
    total += p.shape()[axis];
  }
  Shape out_shape = parts[0].shape();
  out_shape[axis] = total;
  Tensor out(out_shape);
  int64_t outer, n_out, inner;
  AxisSplit(out_shape, axis, &outer, &n_out, &inner);
  float* po = out.data();
  int64_t written = 0;
  for (const Tensor& p : parts) {
    const int64_t n = p.shape()[axis];
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(pp + o * n * inner, pp + (o + 1) * n * inner,
                po + (o * n_out + written) * inner);
    }
    written += n;
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  EALGAP_CHECK(!parts.empty());
  std::vector<Tensor> reshaped;
  reshaped.reserve(parts.size());
  for (const Tensor& p : parts) {
    Shape s = p.shape();
    s.insert(s.begin(), 1);
    reshaped.push_back(p.Reshape(s));
  }
  return Concat(reshaped, 0);
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  return BroadcastBinary(a, Tensor::Zeros(shape),
                         [](float x, float) { return x; });
}

Tensor ReduceToShape(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) return grad;
  Tensor cur = grad;
  // Sum away extra leading dims.
  while (cur.ndim() > static_cast<int64_t>(target.size())) {
    cur = SumAxis(cur, 0, /*keepdim=*/false);
  }
  // Sum broadcast dims (target dim == 1, grad dim > 1).
  for (int64_t d = 0; d < cur.ndim(); ++d) {
    if (target[d] == 1 && cur.shape()[d] != 1) {
      cur = SumAxis(cur, d, /*keepdim=*/true);
    }
  }
  EALGAP_CHECK(cur.shape() == target)
      << ShapeToString(grad.shape()) << " -> " << ShapeToString(target);
  return cur;
}

}  // namespace ops
}  // namespace ealgap
