#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace ealgap {
namespace ops {

namespace {

using kernels::KernelTable;

/// Elementwise kernels split into chunks of at least this many elements;
/// anything smaller runs serially with zero threading overhead.
constexpr int64_t kElemGrain = 1 << 12;

/// MatMul-family kernels parallelize only when one chunk carries at least
/// this many multiply-adds.
constexpr int64_t kMatMulGrainOps = 1 << 15;

/// Fixed reduction block size. Chunk boundaries of reductions must NOT
/// depend on the thread count, or results would change with it; partial
/// sums over these fixed blocks are combined in block order.
constexpr int64_t kReduceBlock = 1 << 14;

/// The three row forms a broadcast binary op decomposes into; filled from
/// the active KernelTable per op. All three are bit-identical across SIMD
/// backends, so broadcasting never breaks the determinism contract.
struct BinK {
  void (*vv)(const float*, const float*, float*, int64_t);
  void (*vs)(const float*, float, float*, int64_t);
  void (*sv)(float, const float*, float*, int64_t);
};

/// Walks the broadcast iteration space of (a, b) and applies `row` to each
/// contiguous output row. `row(ra, sa, rb, sb, ro, inner)` receives the
/// row base pointers, the inner strides (1 = contiguous, 0 = broadcast
/// along the inner dim), and the row length.
template <typename RowFn>
Tensor BroadcastRows(const Tensor& a, const Tensor& b, RowFn row) {
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape);
  const int64_t rank = out.ndim();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (rank == 0) {  // two rank-0 scalars
    row(pa, 1, pb, 1, po, 1);
    return out;
  }
  // Right-aligned strides for a and b (0 = broadcast along that dim).
  // Fixed-size stack arrays (rank <= Shape::kMaxRank): no per-op heap
  // traffic — this runs on the zero-allocation serve path.
  int64_t ta[Shape::kMaxRank] = {0};
  int64_t tb[Shape::kMaxRank] = {0};
  {
    int64_t stride = 1;
    for (int64_t i = a.ndim() - 1, j = rank - 1; i >= 0; --i, --j) {
      ta[j] = a.shape()[i] == 1 ? 0 : stride;
      stride *= a.shape()[i];
    }
    stride = 1;
    for (int64_t i = b.ndim() - 1, j = rank - 1; i >= 0; --i, --j) {
      tb[j] = b.shape()[i] == 1 ? 0 : stride;
      stride *= b.shape()[i];
    }
  }
  // The innermost dim is contiguous (stride 1) or broadcast (stride 0) for
  // both inputs, so each output row is one kernel call; the multi-index
  // bookkeeping only ever walks the outer dims, once per row.
  const int64_t inner = out_shape[rank - 1];
  const int64_t rows = out.numel() / inner;
  const int64_t sa = ta[rank - 1], sb = tb[rank - 1];
  const int64_t grain = std::max<int64_t>(1, kElemGrain / inner);
  ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
    // Seed the outer multi-index and input offsets for row r0.
    int64_t idx[Shape::kMaxRank] = {0};
    int64_t oa = 0, ob = 0;
    for (int64_t d = rank - 2, rem = r0; d >= 0; --d) {
      idx[d] = rem % out_shape[d];
      rem /= out_shape[d];
      oa += idx[d] * ta[d];
      ob += idx[d] * tb[d];
    }
    for (int64_t r = r0; r < r1; ++r) {
      row(pa + oa, sa, pb + ob, sb, po + r * inner, inner);
      // Advance the outer multi-index (row-major) and the two offsets.
      for (int64_t d = rank - 2; d >= 0; --d) {
        ++idx[d];
        oa += ta[d];
        ob += tb[d];
        if (idx[d] < out_shape[d]) break;
        idx[d] = 0;
        oa -= ta[d] * out_shape[d];
        ob -= tb[d] * out_shape[d];
      }
    }
  });
  return out;
}

/// Broadcast binary op on the SIMD kernel layer. The same-shape fast path
/// skips all stride bookkeeping and fans flat chunks across the pool.
Tensor BroadcastBinaryK(const Tensor& a, const Tensor& b, const BinK& k) {
  if (a.SameShape(b)) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, out.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
      k.vv(pa + i0, pb + i0, po + i0, i1 - i0);
    });
    return out;
  }
  return BroadcastRows(
      a, b,
      [&k](const float* ra, int64_t sa, const float* rb, int64_t sb, float* ro,
           int64_t inner) {
        if (sa == 1 && sb == 1) {
          k.vv(ra, rb, ro, inner);
        } else if (sa == 1) {  // b constant along the inner dim
          k.vs(ra, rb[0], ro, inner);
        } else if (sb == 1) {  // a constant along the inner dim
          k.sv(ra[0], rb, ro, inner);
        } else {  // both broadcast => inner == 1
          k.vv(ra, rb, ro, 1);
        }
      });
}

/// Generic scalar fallback for ops with no dedicated kernel (Log,
/// PowScalar, BroadcastTo). Not SIMD-dispatched, hence trivially
/// backend-independent.
template <typename F>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, F f) {
  if (a.SameShape(b)) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, out.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) po[i] = f(pa[i], pb[i]);
    });
    return out;
  }
  return BroadcastRows(a, b,
                       [&f](const float* ra, int64_t sa, const float* rb,
                            int64_t sb, float* ro, int64_t inner) {
                         for (int64_t j = 0; j < inner; ++j) {
                           ro[j] = f(ra[sa == 1 ? j : 0], rb[sb == 1 ? j : 0]);
                         }
                       });
}

template <typename F>
Tensor Unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = f(pa[i]);
  });
  return out;
}

/// Unary op on a table kernel, fanned across the pool.
Tensor UnaryK(const Tensor& a,
              void (*fn)(const float*, float*, int64_t)) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    fn(pa + i0, po + i0, i1 - i0);
  });
  return out;
}

/// Unary op with one float parameter (AddScalar/MulScalar/MaximumScalar).
Tensor UnaryKs(const Tensor& a, float s,
               void (*fn)(const float*, float, float*, int64_t)) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    fn(pa + i0, s, po + i0, i1 - i0);
  });
  return out;
}

/// Deterministic parallel reduction: partial results over fixed-size blocks
/// (independent of the thread count), combined in block order.
template <typename BlockFn>
double BlockedReduce(int64_t n, BlockFn block_sum) {
  if (n <= 0) return 0.0;
  const int64_t nblocks = (n + kReduceBlock - 1) / kReduceBlock;
  if (nblocks <= 1 || InParallelRegion()) return block_sum(0, n);
  std::vector<double> partial(nblocks, 0.0);
  ParallelFor(0, nblocks, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t b = c * kReduceBlock;
      partial[c] = block_sum(b, std::min(n, b + kReduceBlock));
    }
  });
  double acc = 0.0;
  for (double v : partial) acc += v;
  return acc;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const KernelTable& t = kernels::Active();
  // add is commutative, so the scalar-side variant serves both row forms.
  return BroadcastBinaryK(
      a, b,
      {t.add_vv, t.add_vs,
       [](float s, const float* p, float* o, int64_t n) {
         kernels::Active().add_vs(p, s, o, n);
       }});
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  const KernelTable& t = kernels::Active();
  return BroadcastBinaryK(a, b, {t.sub_vv, t.sub_vs, t.sub_sv});
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  const KernelTable& t = kernels::Active();
  return BroadcastBinaryK(
      a, b,
      {t.mul_vv, t.mul_vs,
       [](float s, const float* p, float* o, int64_t n) {
         kernels::Active().mul_vs(p, s, o, n);
       }});
}
Tensor Div(const Tensor& a, const Tensor& b) {
  const KernelTable& t = kernels::Active();
  return BroadcastBinaryK(a, b, {t.div_vv, t.div_vs, t.div_sv});
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  const KernelTable& t = kernels::Active();
  return BroadcastBinaryK(a, b, {t.max_vv, t.max_vs, t.max_sv});
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryKs(a, s, kernels::Active().add_vs);
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryKs(a, s, kernels::Active().mul_vs);
}
Tensor PowScalar(const Tensor& a, float p) {
  return Unary(a, [p](float x) { return std::pow(x, p); });
}
Tensor MaximumScalar(const Tensor& a, float s) {
  return UnaryKs(a, s, kernels::Active().max_vs);
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  const KernelTable& t = kernels::Active();
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    t.clamp(pa + i0, lo, hi, po + i0, i1 - i0);
  });
  return out;
}

Tensor Neg(const Tensor& a) { return UnaryK(a, kernels::Active().neg); }
Tensor Exp(const Tensor& a) { return UnaryK(a, kernels::Active().exp); }
Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) { return UnaryK(a, kernels::Active().sqrt); }
Tensor Tanh(const Tensor& a) { return UnaryK(a, kernels::Active().tanh); }
Tensor Sigmoid(const Tensor& a) {
  return UnaryK(a, kernels::Active().sigmoid);
}
Tensor Relu(const Tensor& a) { return UnaryK(a, kernels::Active().relu); }
Tensor Abs(const Tensor& a) { return UnaryK(a, kernels::Active().abs); }
Tensor Sign(const Tensor& a) { return UnaryK(a, kernels::Active().sign); }

void AddInPlace(Tensor& a, const Tensor& b) {
  EALGAP_CHECK(a.SameShape(b))
      << ShapeToString(a.shape()) << " += " << ShapeToString(b.shape());
  const KernelTable& t = kernels::Active();
  float* pa = a.data();
  const float* pb = b.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    t.add_ip(pa + i0, pb + i0, i1 - i0);
  });
}

void AxpyInPlace(Tensor& a, float alpha, const Tensor& b) {
  EALGAP_CHECK(a.SameShape(b))
      << ShapeToString(a.shape()) << " += a*" << ShapeToString(b.shape());
  const KernelTable& t = kernels::Active();
  float* pa = a.data();
  const float* pb = b.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    t.axpy_ip(pa + i0, alpha, pb + i0, i1 - i0);
  });
}

void ScaleInPlace(Tensor& a, float s) {
  const KernelTable& t = kernels::Active();
  float* pa = a.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    t.scale_ip(pa + i0, s, i1 - i0);
  });
}

void ReluInPlace(Tensor& a) {
  const KernelTable& t = kernels::Active();
  float* pa = a.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    t.relu_ip(pa + i0, i1 - i0);
  });
}

void ClampInPlace(Tensor& a, float lo, float hi) {
  const KernelTable& t = kernels::Active();
  float* pa = a.data();
  ParallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    t.clamp_ip(pa + i0, lo, hi, i1 - i0);
  });
}

double SumSquares(const Tensor& a) {
  const KernelTable& t = kernels::Active();
  const float* p = a.data();
  return BlockedReduce(a.numel(), [&t, p](int64_t b, int64_t e) {
    return t.sumsq_block(p + b, e - b);
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  EALGAP_CHECK_EQ(a.ndim(), 2);
  EALGAP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  EALGAP_CHECK_EQ(k, b.dim(0))
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  const KernelTable& t = kernels::Active();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t row_ops = std::max<int64_t>(1, k * n);
  const int64_t grain = std::max<int64_t>(1, kMatMulGrainOps / row_ops);
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    t.matmul_rows(pa, pb, po, i0, i1, k, n);
  });
  return out;
}

Tensor BMatMul(const Tensor& a, const Tensor& b) {
  EALGAP_CHECK_EQ(a.ndim(), 3);
  EALGAP_CHECK_EQ(b.ndim(), 3);
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  EALGAP_CHECK_EQ(bs, b.dim(0));
  EALGAP_CHECK_EQ(k, b.dim(1))
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  const KernelTable& t = kernels::Active();
  Tensor out({bs, m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Parallel over the flattened (batch, row) space so a few large matrices
  // and many small ones both split well.
  const int64_t row_ops = std::max<int64_t>(1, k * n);
  const int64_t grain = std::max<int64_t>(1, kMatMulGrainOps / row_ops);
  ParallelFor(0, bs * m, grain, [&](int64_t r0, int64_t r1) {
    int64_t r = r0;
    while (r < r1) {
      const int64_t s = r / m;
      const int64_t i = r % m;
      const int64_t i1 = std::min(m, i + (r1 - r));
      t.matmul_rows(pa + s * m * k, pb + s * k * n, po + s * m * n, i, i1, k,
                    n);
      r += i1 - i;
    }
  });
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  EALGAP_CHECK_GE(a.ndim(), 2);
  Shape out_shape = a.shape();
  std::swap(out_shape[a.ndim() - 1], out_shape[a.ndim() - 2]);
  Tensor out(out_shape);
  const int64_t r = a.dim(-2), c = a.dim(-1);
  const int64_t batch = a.numel() / (r * c);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElemGrain / (r * c));
  ParallelFor(0, batch, grain, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      const float* sa = pa + s * r * c;
      float* so = po + s * r * c;
      for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < c; ++j) so[j * r + i] = sa[i * c + j];
      }
    }
  });
  return out;
}

Tensor SumAll(const Tensor& a) {
  const KernelTable& t = kernels::Active();
  const float* p = a.data();
  const double acc = BlockedReduce(a.numel(), [&t, p](int64_t b, int64_t e) {
    return t.sum_block(p + b, e - b);
  });
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& a) {
  EALGAP_CHECK_GT(a.numel(), 0);
  Tensor s = SumAll(a);
  s.ScaleInPlace(1.f / static_cast<float>(a.numel()));
  return s;
}

Tensor MaxAll(const Tensor& a) {
  EALGAP_CHECK_GT(a.numel(), 0);
  const KernelTable& t = kernels::Active();
  const float* p = a.data();
  // Max is insensitive to the combine order, so fixed blocks + ordered
  // combine keeps it bit-stable across thread counts like the sums.
  const int64_t n = a.numel();
  const int64_t nblocks = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<float> partial(nblocks, p[0]);
  ParallelFor(0, nblocks, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t b = c * kReduceBlock;
      partial[c] = t.max_block(p + b, std::min(n, b + kReduceBlock) - b);
    }
  });
  float m = partial[0];
  for (float v : partial) m = std::max(m, v);
  return Tensor::Scalar(m);
}

namespace {
// Decomposes a shape around `axis` into (outer, axis_size, inner).
void AxisSplit(const Shape& shape, int64_t axis, int64_t* outer, int64_t* n,
               int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape[i];
  *n = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) *inner *= shape[i];
}
}  // namespace

Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  EALGAP_CHECK(axis >= 0 && axis < a.ndim());
  int64_t outer, n, inner;
  AxisSplit(a.shape(), axis, &outer, &n, &inner);
  Shape out_shape = a.shape();
  if (keepdim) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  const KernelTable& t = kernels::Active();
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  // Each output segment [o*inner, (o+1)*inner) is owned by one chunk and
  // accumulated in fixed k order: deterministic for any thread count.
  const int64_t grain = std::max<int64_t>(1, kElemGrain / (n * inner));
  ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      float* dst = po + o * inner;
      for (int64_t k = 0; k < n; ++k) {
        t.add_ip(dst, pa + (o * n + k) * inner, inner);
      }
    }
  });
  return out;
}

Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  Tensor s = SumAxis(a, axis, keepdim);
  s.ScaleInPlace(1.f / static_cast<float>(a.shape()[axis]));
  return s;
}

Tensor SoftmaxLastDim(const Tensor& a) {
  EALGAP_CHECK_GE(a.ndim(), 1);
  const int64_t n = a.dim(-1);
  const int64_t rows = a.numel() / n;
  const KernelTable& t = kernels::Active();
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElemGrain / n);
  ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      t.softmax_row(pa + r * n, po + r * n, n);
    }
  });
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t end) {
  if (axis < 0) axis += a.ndim();
  EALGAP_CHECK(axis >= 0 && axis < a.ndim());
  EALGAP_CHECK(start >= 0 && start <= end && end <= a.shape()[axis])
      << "slice [" << start << "," << end << ") of dim " << a.shape()[axis];
  int64_t outer, n, inner;
  AxisSplit(a.shape(), axis, &outer, &n, &inner);
  Shape out_shape = a.shape();
  out_shape[axis] = end - start;
  const KernelTable& t = kernels::Active();
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t len = end - start;
  if (outer == 1) {
    // Contiguous row range (no dims outside `axis`): ONE kernel copy of
    // the whole block. Alignment guarantee: the destination is fresh
    // 64-byte-aligned tensor storage, but the source offset start*inner
    // is arbitrary — the copy kernel accepts that (memcpy semantics), so
    // this fast path preserves the output's alignment and requires none
    // of the input slice.
    t.copy(pa + start * inner, po, len * inner);
    return out;
  }
  for (int64_t o = 0; o < outer; ++o) {
    t.copy(pa + (o * n + start) * inner, po + o * len * inner, len * inner);
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  EALGAP_CHECK(!parts.empty());
  if (axis < 0) axis += parts[0].ndim();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    EALGAP_CHECK_EQ(p.ndim(), parts[0].ndim());
    for (int64_t d = 0; d < p.ndim(); ++d) {
      if (d != axis) EALGAP_CHECK_EQ(p.shape()[d], parts[0].shape()[d]);
    }
    total += p.shape()[axis];
  }
  Shape out_shape = parts[0].shape();
  out_shape[axis] = total;
  const KernelTable& t = kernels::Active();
  Tensor out(out_shape);
  int64_t outer, n_out, inner;
  AxisSplit(out_shape, axis, &outer, &n_out, &inner);
  float* po = out.data();
  int64_t written = 0;
  for (const Tensor& p : parts) {
    const int64_t n = p.shape()[axis];
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      t.copy(pp + o * n * inner, po + (o * n_out + written) * inner,
             n * inner);
    }
    written += n;
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  EALGAP_CHECK(!parts.empty());
  std::vector<Tensor> reshaped;
  reshaped.reserve(parts.size());
  for (const Tensor& p : parts) {
    Shape s = p.shape();
    s.insert(s.begin(), 1);
    reshaped.push_back(p.Reshape(s));
  }
  return Concat(reshaped, 0);
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  return BroadcastBinary(a, Tensor::Zeros(shape),
                         [](float x, float) { return x; });
}

Tensor ReduceToShape(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) return grad;
  Tensor cur = grad;
  // Sum away extra leading dims.
  while (cur.ndim() > static_cast<int64_t>(target.size())) {
    cur = SumAxis(cur, 0, /*keepdim=*/false);
  }
  // Sum broadcast dims (target dim == 1, grad dim > 1).
  for (int64_t d = 0; d < cur.ndim(); ++d) {
    if (target[d] == 1 && cur.shape()[d] != 1) {
      cur = SumAxis(cur, d, /*keepdim=*/true);
    }
  }
  EALGAP_CHECK(cur.shape() == target)
      << ShapeToString(grad.shape()) << " -> " << ShapeToString(target);
  return cur;
}

}  // namespace ops
}  // namespace ealgap
