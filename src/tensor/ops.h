#ifndef EALGAP_TENSOR_OPS_H_
#define EALGAP_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace ealgap {
namespace ops {

/// Forward-only tensor math. All binary elementwise ops broadcast with numpy
/// semantics; the autograd layer (tensor/autograd.h) builds on these.

// --- elementwise binary (broadcasting) ---
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// --- elementwise with scalar ---
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor PowScalar(const Tensor& a, float p);
Tensor MaximumScalar(const Tensor& a, float s);
Tensor Clamp(const Tensor& a, float lo, float hi);

// --- elementwise unary ---
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  ///< natural log; inputs must be > 0
Tensor Sqrt(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sign(const Tensor& a);  ///< -1/0/+1

// --- in-place (allocation-free; used by the optimizer / grad accumulation) ---
/// a += b. Shapes must match exactly (no broadcasting).
void AddInPlace(Tensor& a, const Tensor& b);
/// a += alpha * b. Shapes must match exactly.
void AxpyInPlace(Tensor& a, float alpha, const Tensor& b);
/// a *= s.
void ScaleInPlace(Tensor& a, float s);
/// a = max(a, 0) elementwise. Used by the serve path to fuse ReLU into the
/// Eq. 11 extreme-modulation output without a temporary.
void ReluInPlace(Tensor& a);
/// a = min(hi, max(lo, a)) elementwise.
void ClampInPlace(Tensor& a, float lo, float hi);
/// Sum of squared elements, accumulated in double with a deterministic
/// blocked reduction (bit-identical for any thread count).
double SumSquares(const Tensor& a);

// --- linear algebra ---
/// 2-D matrix product: (m,k) x (k,n) -> (m,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Batched 3-D matrix product: (B,m,k) x (B,k,n) -> (B,m,n).
Tensor BMatMul(const Tensor& a, const Tensor& b);
/// Swap the last two dims (rank >= 2); copies.
Tensor TransposeLast2(const Tensor& a);

// --- reductions ---
Tensor SumAll(const Tensor& a);   ///< shape {1}
Tensor MeanAll(const Tensor& a);  ///< shape {1}
Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim = true);
Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim = true);
Tensor MaxAll(const Tensor& a);  ///< shape {1}

/// Numerically-stable softmax over the last dimension.
Tensor SoftmaxLastDim(const Tensor& a);

// --- shape manipulation (copying) ---
/// Elements [start, end) along `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t end);
/// Concatenation along `axis`; all inputs must agree on other dims.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
/// Stacks rank-r tensors into rank-(r+1) along a new leading `axis`=0.
Tensor Stack(const std::vector<Tensor>& parts);
/// Expands `a` to `shape` by broadcasting; copies.
Tensor BroadcastTo(const Tensor& a, const Shape& shape);

/// Sums `grad` down to `target` shape (inverse of broadcasting); used by the
/// autograd layer for the backward pass of broadcast ops.
Tensor ReduceToShape(const Tensor& grad, const Shape& target);

}  // namespace ops
}  // namespace ealgap

#endif  // EALGAP_TENSOR_OPS_H_
