#ifndef EALGAP_TENSOR_KERNELS_H_
#define EALGAP_TENSOR_KERNELS_H_

/// SIMD kernel layer with runtime dispatch.
///
/// Every hot inner loop of tensor/ops.cc (and the distribution-PDF rows of
/// stats/) goes through a KernelTable of raw float-pointer kernels. Three
/// tables exist — scalar, SSE2, AVX2 — compiled from the SAME templates
/// (kernels_impl.h over the backends in vec.h), so every kernel is
/// bit-identical across tables; dispatch picks the widest table the CPU
/// supports at first use.
///
/// Override for testing/debugging with EALGAP_SIMD=scalar|sse2|avx2:
///  - an unknown value aborts (catches typos in CI),
///  - a known value the CPU/build cannot run falls back to the best
///    supported table with a warning (results are identical either way).

#include <cstdint>

namespace ealgap {
namespace kernels {

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Shape threshold for the fused int8 GEMM (quant_gemm_dequant_rows): up
/// to this reduction depth the fused kernel's per-column-tile walk over
/// the weight pack stays L1-resident ((k/2) pack cache lines live across
/// one tile) and its int16 activation-row expansion fits on the stack.
/// Callers should use the fused kernel when k <= kQuantFusedMaxK and the
/// streaming pair (quant_gemm_rows + dequant_bias_row) otherwise — deeper
/// reductions make the tile walk thrash L1 while the streaming kernel
/// reads the pack sequentially exactly once. Both paths are bit-identical,
/// so the choice is purely a performance policy.
inline constexpr int64_t kQuantFusedMaxK = 512;

/// "scalar", "sse2", "avx2".
const char* BackendName(Backend b);

/// All kernels take raw pointers (no alignment requirement) and an element
/// count; `n == 0` is a no-op. Kernels internally detect 64-byte-aligned
/// operands and switch to aligned load/store instructions — same bits,
/// same results (kernels_impl.h, AlignedIO). Reduction kernels define a
/// fixed accumulation order (4 interleaved double lanes, combined in lane
/// order) that callers rely on for thread-count determinism.
struct KernelTable {
  Backend backend;

  // elementwise binary: o[i] = a[i] op b[i]
  void (*add_vv)(const float* a, const float* b, float* o, int64_t n);
  void (*sub_vv)(const float* a, const float* b, float* o, int64_t n);
  void (*mul_vv)(const float* a, const float* b, float* o, int64_t n);
  void (*div_vv)(const float* a, const float* b, float* o, int64_t n);
  void (*max_vv)(const float* a, const float* b, float* o, int64_t n);

  // elementwise binary, one side a broadcast scalar
  void (*add_vs)(const float* a, float s, float* o, int64_t n);
  void (*sub_vs)(const float* a, float s, float* o, int64_t n);
  void (*sub_sv)(float s, const float* b, float* o, int64_t n);
  void (*mul_vs)(const float* a, float s, float* o, int64_t n);
  void (*div_vs)(const float* a, float s, float* o, int64_t n);
  void (*div_sv)(float s, const float* b, float* o, int64_t n);
  void (*max_vs)(const float* a, float s, float* o, int64_t n);
  void (*max_sv)(float s, const float* b, float* o, int64_t n);

  // elementwise unary
  void (*neg)(const float* a, float* o, int64_t n);
  void (*abs)(const float* a, float* o, int64_t n);
  void (*sign)(const float* a, float* o, int64_t n);
  void (*sqrt)(const float* a, float* o, int64_t n);
  void (*relu)(const float* a, float* o, int64_t n);  // x > 0 ? x : 0
  void (*clamp)(const float* a, float lo, float hi, float* o, int64_t n);
  void (*exp)(const float* a, float* o, int64_t n);
  void (*tanh)(const float* a, float* o, int64_t n);
  void (*sigmoid)(const float* a, float* o, int64_t n);

  // in-place
  void (*add_ip)(float* a, const float* b, int64_t n);          // a += b
  void (*axpy_ip)(float* a, float alpha, const float* b, int64_t n);
  void (*scale_ip)(float* a, float s, int64_t n);
  void (*relu_ip)(float* a, int64_t n);
  void (*clamp_ip)(float* a, float lo, float hi, int64_t n);

  // deterministic block reductions (fixed 4-lane interleave)
  double (*sum_block)(const float* p, int64_t n);
  double (*sumsq_block)(const float* p, int64_t n);
  float (*max_block)(const float* p, int64_t n);  // n >= 1; NaN-free input

  /// Contiguous copy (memcpy semantics, regions must not overlap). Routes
  /// Slice/CopyFrom through the kernel layer; preserves no alignment
  /// guarantee beyond what the destination already has.
  void (*copy)(const float* src, float* dst, int64_t n);

  // fused rows
  void (*softmax_row)(const float* src, float* dst, int64_t n);
  /// out[i] = x[i] < 0 ? 0 : lambda * exp(-lambda * x[i])
  void (*exp_pdf_row)(const float* x, float lambda, float* o, int64_t n);
  /// out[i] = inv_norm * exp(-0.5 * ((x[i]-mean) * inv_stddev)^2)
  void (*normal_pdf_row)(const float* x, float mean, float inv_stddev,
                         float inv_norm, float* o, int64_t n);

  /// Rows [i0, i1) of the (m,k)x(k,n) product accumulated into po (callers
  /// zero-initialize). Vectorized across output columns; each output
  /// element keeps the exact scalar accumulation order.
  void (*matmul_rows)(const float* pa, const float* pb, float* po, int64_t i0,
                      int64_t i1, int64_t k, int64_t n);

  // --- int8 inference family (DESIGN.md §8g) ---

  /// max |p[i]| over [0, n); n == 0 -> 0. Order-insensitive (NaN-free
  /// input), used for dynamic per-tensor activation scales.
  float (*absmax_block)(const float* p, int64_t n);
  /// q[i] = round-nearest-even(x[i] * inv_scale) clamped to [-127, 127].
  void (*quantize_s8)(const float* x, float inv_scale, int8_t* q, int64_t n);
  /// Rows [i0, i1) of the int8 (m,k)x(k,n) product with exact int32
  /// accumulation; wpack is the pair-interleaved int16 weight pack
  /// (nn/quant.cc). Overwrites acc rows (no zero-init needed). k must be
  /// <= nn::quant::kQuantMaxK so int32 cannot overflow.
  void (*quant_gemm_rows)(const int8_t* aq, const int16_t* wpack,
                          int32_t* acc, int64_t i0, int64_t i1, int64_t k,
                          int64_t n);
  /// Fused rows [i0, i1) of the int8 GEMM + dequant epilogue: o[i*n+j] =
  /// float(acc_ij) * (a_scale * w_scale[j]) [+ bias[j]], with the int32
  /// accumulator tile held in registers (no acc buffer). Bit-identical to
  /// quant_gemm_rows followed by dequant_bias_row; the serve forward uses
  /// this when k <= kQuantFusedMaxK (tall-activation layers) and the
  /// streaming pair above for deeper reductions (decoder GEMVs).
  void (*quant_gemm_dequant_rows)(const int8_t* aq, const int16_t* wpack,
                                  float a_scale, const float* w_scale,
                                  const float* bias, float* o, int64_t i0,
                                  int64_t i1, int64_t k, int64_t n);
  /// o[j] = float(acc[j]) * (a_scale * w_scale[j]) + bias[j] (bias may be
  /// null). Fixed per-element rounding tree.
  void (*dequant_bias_row)(const int32_t* acc, float a_scale,
                           const float* w_scale, const float* bias, float* o,
                           int64_t n);
};

/// The active table (resolved once: CPU detection + EALGAP_SIMD override).
const KernelTable& Active();

/// Backend of the active table.
Backend ActiveBackend();

/// True when the backend was compiled in AND the CPU can execute it.
bool BackendSupported(Backend b);

/// Table for an explicit backend, or nullptr when unsupported. Used by
/// vec_test to compare backends bit-for-bit in one process.
const KernelTable* Table(Backend b);

/// Replaces the active table (must be supported). Tests only.
void SetBackendForTesting(Backend b);

}  // namespace kernels
}  // namespace ealgap

#endif  // EALGAP_TENSOR_KERNELS_H_
