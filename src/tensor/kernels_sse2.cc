// SSE2 kernel table (4 lanes). On x86-64 SSE2 is part of the baseline ISA,
// so this TU needs no extra -m flags; on other architectures it compiles
// to a null table and dispatch skips it.

#include "tensor/kernels_impl.h"

namespace ealgap {
namespace kernels {

#if defined(__SSE2__)
const KernelTable* GetSse2Table() {
  static const KernelTable table = impl::MakeTable<vec::VSse2>(Backend::kSse2);
  return &table;
}
#else
const KernelTable* GetSse2Table() { return nullptr; }
#endif

}  // namespace kernels
}  // namespace ealgap
