#include "tensor/autograd.h"

#include <algorithm>
#include <unordered_set>

#include "common/arena.h"
#include "common/logging.h"

namespace ealgap {

namespace autograd {

void Node::AccumulateGrad(const Tensor& g) {
  if (!requires_grad) return;
  if (g.SameShape(value)) {
    // Hot path: no broadcast to undo. Reuse the existing gradient buffer;
    // the first accumulation copies instead of zero-fill + add.
    if (!grad.defined()) {
      grad = Tensor(value.shape());
      grad.CopyFrom(g);
    } else {
      ops::AddInPlace(grad, g);
    }
    return;
  }
  // ReduceToShape goes through SumAxis here (shapes differ), so `reduced`
  // is freshly allocated and safe to adopt as the gradient buffer.
  Tensor reduced = ops::ReduceToShape(g, value.shape());
  if (!grad.defined()) {
    grad = std::move(reduced);
  } else {
    ops::AddInPlace(grad, reduced);
  }
}

}  // namespace autograd

namespace {

// Thread-local so independent evaluation threads (see
// NeuralForecaster::EvaluateLoss) can each hold a NoGradGuard without
// racing on a shared flag.
thread_local bool g_grad_enabled = true;

using NodePtr = std::shared_ptr<autograd::Node>;

/// Minimal STL allocator over the current arena. allocate_shared places the
/// control block and the Node in one arena bump; deallocate is a no-op
/// because ArenaScope rewind reclaims the whole region. Nodes allocated this
/// way must not outlive the enclosing arena scope (the serve-path lifetime
/// rule; see common/arena.h).
template <class T>
struct ArenaAlloc {
  using value_type = T;
  Arena* arena;
  explicit ArenaAlloc(Arena* a) : arena(a) {}
  template <class U>
  ArenaAlloc(const ArenaAlloc<U>& o) : arena(o.arena) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(arena->Allocate(n * sizeof(T)));
  }
  void deallocate(T*, std::size_t) {}
  template <class U>
  bool operator==(const ArenaAlloc<U>& o) const {
    return arena == o.arena;
  }
  template <class U>
  bool operator!=(const ArenaAlloc<U>& o) const {
    return arena != o.arena;
  }
};

NodePtr NewNode() {
  if (Arena* arena = CurrentArena()) {
    return std::allocate_shared<autograd::Node>(
        ArenaAlloc<autograd::Node>(arena));
  }
  return std::make_shared<autograd::Node>();
}

NodePtr MakeLeafNode(Tensor value, bool requires_grad) {
  NodePtr n = NewNode();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  return n;
}

/// Creates an op node. `make_back` is a factory returning the backward
/// closure; it is invoked — and the std::function materialized — only when
/// grad recording is on AND some input requires gradients. The no-grad
/// serve path therefore never constructs a std::function or parents vector,
/// and with an arena installed never touches the heap. Inputs arrive as a
/// pointer list so the call sites' brace lists live on the stack.
template <class MakeBack>
Var MakeOp(Tensor value, std::initializer_list<const Var*> inputs,
           MakeBack&& make_back) {
  bool record = GradEnabled();
  if (record) {
    record = false;
    for (const Var* v : inputs) {
      if (v->requires_grad()) {
        record = true;
        break;
      }
    }
  }
  if (!record) return Var::Leaf(std::move(value), /*requires_grad=*/false);
  NodePtr n = NewNode();
  n->value = std::move(value);
  n->requires_grad = true;
  n->parents.reserve(inputs.size());
  for (const Var* v : inputs) n->parents.push_back(v->node());
  n->backfn = make_back();
  return Var(std::move(n));
}

/// Variadic-input variant for Concat.
template <class MakeBack>
Var MakeOpN(Tensor value, const std::vector<Var>& inputs,
            MakeBack&& make_back) {
  bool record = GradEnabled();
  if (record) {
    record = false;
    for (const Var& v : inputs) {
      if (v.requires_grad()) {
        record = true;
        break;
      }
    }
  }
  if (!record) return Var::Leaf(std::move(value), /*requires_grad=*/false);
  NodePtr n = NewNode();
  n->value = std::move(value);
  n->requires_grad = true;
  n->parents.reserve(inputs.size());
  for (const Var& v : inputs) n->parents.push_back(v.node());
  n->backfn = make_back();
  return Var(std::move(n));
}

}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

Var Var::Leaf(Tensor value, bool requires_grad) {
  return Var(MakeLeafNode(std::move(value), requires_grad));
}

const Tensor& Var::value() const {
  EALGAP_CHECK(defined());
  return node_->value;
}

bool Var::requires_grad() const { return defined() && node_->requires_grad; }

Tensor& Var::grad() {
  EALGAP_CHECK(defined());
  if (!node_->grad.defined()) node_->grad = Tensor::Zeros(node_->value.shape());
  return node_->grad;
}

void Var::ZeroGrad() {
  if (defined() && node_->grad.defined()) node_->grad.Fill(0.f);
}

Var Var::Detach() const {
  EALGAP_CHECK(defined());
  return Leaf(node_->value, /*requires_grad=*/false);
}

void Backward(const Var& root) {
  EALGAP_CHECK(root.defined());
  EALGAP_CHECK(root.requires_grad()) << "Backward on a graph with no parameters";
  // Iterative post-order DFS to get a topological order (root last).
  std::vector<autograd::Node*> topo;
  std::unordered_set<autograd::Node*> visited;
  struct Frame {
    autograd::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.node().get(), 0});
  visited.insert(root.node().get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      autograd::Node* p = f.node->parents[f.next_parent++].get();
      if (p != nullptr && p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  autograd::Node* root_node = root.node().get();
  if (!root_node->grad.defined()) {
    root_node->grad = Tensor::Zeros(root_node->value.shape());
  }
  root_node->grad.Fill(1.f);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    autograd::Node* n = *it;
    if (n->backfn && n->grad.defined()) n->backfn(n->grad);
  }
}

// ---------------------------------------------------------------------------
// Op definitions. Each backward closure captures the input nodes it needs by
// shared_ptr so the graph stays alive until backward completes. The closures
// are built inside a factory lambda so nothing is materialized on the
// no-grad path.
// ---------------------------------------------------------------------------

Var Add(const Var& a, const Var& b) {
  Tensor out = ops::Add(a.value(), b.value());
  return MakeOp(std::move(out), {&a, &b}, [&] {
    auto na = a.node(), nb = b.node();
    return [na, nb](const Tensor& g) {
      na->AccumulateGrad(g);
      nb->AccumulateGrad(g);
    };
  });
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = ops::Sub(a.value(), b.value());
  return MakeOp(std::move(out), {&a, &b}, [&] {
    auto na = a.node(), nb = b.node();
    return [na, nb](const Tensor& g) {
      na->AccumulateGrad(g);
      nb->AccumulateGrad(ops::Neg(g));
    };
  });
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = ops::Mul(a.value(), b.value());
  return MakeOp(std::move(out), {&a, &b}, [&] {
    auto na = a.node(), nb = b.node();
    return [na, nb](const Tensor& g) {
      na->AccumulateGrad(ops::Mul(g, nb->value));
      nb->AccumulateGrad(ops::Mul(g, na->value));
    };
  });
}

Var Div(const Var& a, const Var& b) {
  Tensor out = ops::Div(a.value(), b.value());
  return MakeOp(std::move(out), {&a, &b}, [&] {
    auto na = a.node(), nb = b.node();
    return [na, nb](const Tensor& g) {
      na->AccumulateGrad(ops::Div(g, nb->value));
      // d/db (a/b) = -a / b^2
      Tensor b2 = ops::Mul(nb->value, nb->value);
      nb->AccumulateGrad(ops::Neg(ops::Div(ops::Mul(g, na->value), b2)));
    };
  });
}

Var AddScalar(const Var& a, float s) {
  return MakeOp(ops::AddScalar(a.value(), s), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) { na->AccumulateGrad(g); };
  });
}

Var MulScalar(const Var& a, float s) {
  return MakeOp(ops::MulScalar(a.value(), s), {&a}, [&] {
    auto na = a.node();
    return [na, s](const Tensor& g) {
      na->AccumulateGrad(ops::MulScalar(g, s));
    };
  });
}

Var PowScalar(const Var& a, float p) {
  return MakeOp(ops::PowScalar(a.value(), p), {&a}, [&] {
    auto na = a.node();
    return [na, p](const Tensor& g) {
      Tensor d = ops::MulScalar(ops::PowScalar(na->value, p - 1.f), p);
      na->AccumulateGrad(ops::Mul(g, d));
    };
  });
}

Var Neg(const Var& a) {
  return MakeOp(ops::Neg(a.value()), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) { na->AccumulateGrad(ops::Neg(g)); };
  });
}

Var Exp(const Var& a) {
  Tensor out = ops::Exp(a.value());
  return MakeOp(out, {&a}, [&] {
    auto na = a.node();
    return [na, out](const Tensor& g) {
      na->AccumulateGrad(ops::Mul(g, out));
    };
  });
}

Var Log(const Var& a) {
  return MakeOp(ops::Log(a.value()), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) {
      na->AccumulateGrad(ops::Div(g, na->value));
    };
  });
}

Var Sqrt(const Var& a) {
  Tensor out = ops::Sqrt(a.value());
  return MakeOp(out, {&a}, [&] {
    auto na = a.node();
    return [na, out](const Tensor& g) {
      na->AccumulateGrad(ops::Div(ops::MulScalar(g, 0.5f), out));
    };
  });
}

Var Tanh(const Var& a) {
  Tensor out = ops::Tanh(a.value());
  return MakeOp(out, {&a}, [&] {
    auto na = a.node();
    return [na, out](const Tensor& g) {
      // 1 - tanh^2
      Tensor d = ops::AddScalar(ops::Neg(ops::Mul(out, out)), 1.f);
      na->AccumulateGrad(ops::Mul(g, d));
    };
  });
}

Var Sigmoid(const Var& a) {
  Tensor out = ops::Sigmoid(a.value());
  return MakeOp(out, {&a}, [&] {
    auto na = a.node();
    return [na, out](const Tensor& g) {
      Tensor d = ops::Mul(out, ops::AddScalar(ops::Neg(out), 1.f));
      na->AccumulateGrad(ops::Mul(g, d));
    };
  });
}

Var Relu(const Var& a) {
  return MakeOp(ops::Relu(a.value()), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) {
      Tensor mask = ops::Relu(ops::Sign(na->value));  // 1 where input > 0
      na->AccumulateGrad(ops::Mul(g, mask));
    };
  });
}

Var ReluInPlace(Var a) {
  // In-place is only legal when nobody can observe the old value: no graph
  // is being recorded, this Var is the node's sole owner (it was moved in),
  // and the tensor does not share storage with another tensor.
  if (!GradEnabled() && !a.requires_grad() && a.node().use_count() == 1 &&
      a.node()->value.StorageUnique()) {
    ops::ReluInPlace(a.node()->value);
    return a;
  }
  return Relu(a);
}

Var Abs(const Var& a) {
  return MakeOp(ops::Abs(a.value()), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) {
      na->AccumulateGrad(ops::Mul(g, ops::Sign(na->value)));
    };
  });
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = ops::MatMul(a.value(), b.value());
  return MakeOp(std::move(out), {&a, &b}, [&] {
    auto na = a.node(), nb = b.node();
    return [na, nb](const Tensor& g) {
      na->AccumulateGrad(ops::MatMul(g, ops::TransposeLast2(nb->value)));
      nb->AccumulateGrad(ops::MatMul(ops::TransposeLast2(na->value), g));
    };
  });
}

Var BMatMul(const Var& a, const Var& b) {
  Tensor out = ops::BMatMul(a.value(), b.value());
  return MakeOp(std::move(out), {&a, &b}, [&] {
    auto na = a.node(), nb = b.node();
    return [na, nb](const Tensor& g) {
      na->AccumulateGrad(ops::BMatMul(g, ops::TransposeLast2(nb->value)));
      nb->AccumulateGrad(ops::BMatMul(ops::TransposeLast2(na->value), g));
    };
  });
}

Var TransposeLast2(const Var& a) {
  return MakeOp(ops::TransposeLast2(a.value()), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) {
      na->AccumulateGrad(ops::TransposeLast2(g));
    };
  });
}

Var SumAll(const Var& a) {
  return MakeOp(ops::SumAll(a.value()), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) {
      na->AccumulateGrad(Tensor::Full(na->value.shape(), g.data()[0]));
    };
  });
}

Var MeanAll(const Var& a) {
  const float inv = 1.f / static_cast<float>(a.value().numel());
  return MakeOp(ops::MeanAll(a.value()), {&a}, [&] {
    auto na = a.node();
    return [na, inv](const Tensor& g) {
      na->AccumulateGrad(Tensor::Full(na->value.shape(), g.data()[0] * inv));
    };
  });
}

Var SumAxis(const Var& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.value().ndim();
  return MakeOp(ops::SumAxis(a.value(), axis, keepdim), {&a}, [&] {
    auto na = a.node();
    return [na, axis, keepdim](const Tensor& g) {
      Tensor gk = g;
      if (!keepdim) {
        Shape s = g.shape();
        s.insert(s.begin() + axis, 1);
        gk = g.Reshape(s);
      }
      na->AccumulateGrad(ops::BroadcastTo(gk, na->value.shape()));
    };
  });
}

Var MeanAxis(const Var& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.value().ndim();
  const float inv = 1.f / static_cast<float>(a.value().shape()[axis]);
  return MulScalar(SumAxis(a, axis, keepdim), inv);
}

Var SoftmaxLastDim(const Var& a) {
  Tensor out = ops::SoftmaxLastDim(a.value());
  return MakeOp(out, {&a}, [&] {
    auto na = a.node();
    return [na, out](const Tensor& g) {
      // ds = s * (g - sum(g*s, last, keepdim))
      Tensor gs = ops::Mul(g, out);
      Tensor dot = ops::SumAxis(gs, out.ndim() - 1, /*keepdim=*/true);
      na->AccumulateGrad(ops::Mul(out, ops::Sub(g, dot)));
    };
  });
}

Var Slice(const Var& a, int64_t axis, int64_t start, int64_t end) {
  if (axis < 0) axis += a.value().ndim();
  Tensor out = ops::Slice(a.value(), axis, start, end);
  return MakeOp(std::move(out), {&a}, [&] {
    auto na = a.node();
    return [na, axis, start](const Tensor& g) {
      // Scatter g back into a zero tensor of the input shape.
      Tensor full = Tensor::Zeros(na->value.shape());
      int64_t outer = 1, inner = 1;
      const Shape& s = na->value.shape();
      for (int64_t i = 0; i < axis; ++i) outer *= s[i];
      for (size_t i = axis + 1; i < s.size(); ++i) inner *= s[i];
      const int64_t n = s[axis];
      const int64_t len = g.shape()[axis];
      const float* pg = g.data();
      float* pf = full.data();
      for (int64_t o = 0; o < outer; ++o) {
        std::copy(pg + o * len * inner, pg + (o + 1) * len * inner,
                  pf + (o * n + start) * inner);
      }
      na->AccumulateGrad(full);
    };
  });
}

Var Concat(const std::vector<Var>& parts, int64_t axis) {
  EALGAP_CHECK(!parts.empty());
  // Single-part concat is the identity: same values bit-for-bit, and the
  // part's own node already carries the right gradient plumbing. Skipping
  // the copy keeps degenerate call sites allocation-free on the serve path.
  if (parts.size() == 1) return parts[0];
  if (axis < 0) axis += parts[0].value().ndim();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Var& p : parts) values.push_back(p.value());
  Tensor out = ops::Concat(values, axis);
  return MakeOpN(std::move(out), parts, [&] {
    std::vector<NodePtr> nodes;
    std::vector<int64_t> sizes;
    nodes.reserve(parts.size());
    sizes.reserve(parts.size());
    for (const Var& p : parts) {
      nodes.push_back(p.node());
      sizes.push_back(p.value().shape()[axis]);
    }
    return [nodes = std::move(nodes), sizes = std::move(sizes),
            axis](const Tensor& g) {
      int64_t offset = 0;
      for (size_t i = 0; i < nodes.size(); ++i) {
        nodes[i]->AccumulateGrad(
            ops::Slice(g, axis, offset, offset + sizes[i]));
        offset += sizes[i];
      }
    };
  });
}

Var Stack(const std::vector<Var>& parts) {
  EALGAP_CHECK(!parts.empty());
  std::vector<Var> reshaped;
  reshaped.reserve(parts.size());
  for (const Var& p : parts) {
    Shape s = p.value().shape();
    s.insert(s.begin(), 1);
    reshaped.push_back(Reshape(p, std::move(s)));
  }
  return Concat(reshaped, 0);
}

Var Reshape(const Var& a, Shape shape) {
  Tensor out = a.value().Reshape(shape);
  return MakeOp(std::move(out), {&a}, [&] {
    auto na = a.node();
    return [na](const Tensor& g) {
      na->AccumulateGrad(g.Reshape(na->value.shape()));
    };
  });
}

}  // namespace ealgap
