// AVX2 kernel table (8 lanes). This TU is compiled with -mavx2 (and
// -ffp-contract=off, like every kernel TU — FMA contraction of the scalar
// remainder loops would break bit-parity with the scalar table) when the
// target is x86; elsewhere it degrades to a null table. Dispatch only
// selects it after __builtin_cpu_supports("avx2") says the host can run it.

#include "tensor/kernels_impl.h"

namespace ealgap {
namespace kernels {

#if defined(__AVX2__)
const KernelTable* GetAvx2Table() {
  static const KernelTable table = impl::MakeTable<vec::VAvx2>(Backend::kAvx2);
  return &table;
}
#else
const KernelTable* GetAvx2Table() { return nullptr; }
#endif

}  // namespace kernels
}  // namespace ealgap
