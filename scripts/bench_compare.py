#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]
       [--allow-missing]

A missing or unreadable baseline fails with a one-line message naming the
file (exit 1). With --allow-missing it warns and exits 0 instead — for
fresh checkouts and new benchmark suites that have no recorded baseline
yet (the first recording session creates it).

Benchmarks are matched by name; a benchmark regresses when its candidate
cpu_time exceeds baseline cpu_time by more than --threshold percent
(default 15). Benchmarks present in only one file are reported but never
fail the comparison (the suite is allowed to grow). Exit code 1 on any
regression, 0 otherwise.

On shared/virtualized hosts the *whole machine* drifts between recording
sessions (steal time leaks into the guest's CPU clock): two runs of an
identical binary 10 minutes apart can differ uniformly by 30%+, which no
per-benchmark threshold survives. The comparison therefore factors the
suite-wide shift out first: the median of per-benchmark cpu_time ratios
is the machine-state estimate, every ratio is divided by it, and the
threshold applies to the residual. A single kernel that regresses moves
its own ratio but barely moves the median, so it is still caught; a
uniform shift is reported (with its magnitude) but does not fail the
gate. Pass --absolute to compare raw ratios instead — do that when the
two files come from the same session on an idle, bare-metal host and a
global slowdown (e.g. a disabled SIMD dispatch) must fail loudly.
"""

import argparse
import json
import statistics
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    iterations = {}
    medians = {}
    for b in doc.get("benchmarks", []):
        # Skip errored runs (e.g. a SIMD backend the host doesn't support).
        if b.get("error_occurred"):
            continue
        if b.get("run_type") == "aggregate":
            # Of the aggregate rows (mean/median/stddev/cv), keep the
            # median: on a noisy shared host the median of N repetitions
            # is far more stable than any single run, so it is what gets
            # compared whenever the file was recorded with repetitions.
            if b.get("aggregate_name") == "median":
                name = b["name"]
                suffix = "_median"
                if name.endswith(suffix):
                    name = name[:-len(suffix)]
                medians[name] = float(b["cpu_time"])
            continue
        # Repeated iteration rows share a name; the median row (if any)
        # overrides whichever repetition lands here last.
        iterations[b["name"]] = float(b["cpu_time"])
    iterations.update(medians)
    return doc.get("context", {}), iterations


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="max allowed cpu_time increase in percent")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw cpu_time ratios without factoring "
                         "out the suite-wide median shift")
    ap.add_argument("--allow-missing", action="store_true",
                    help="warn (exit 0) instead of failing when the "
                         "baseline file is missing or unreadable")
    args = ap.parse_args()

    try:
        base_ctx, base = load_benchmarks(args.baseline)
    except (OSError, ValueError) as e:
        reason = ("no such file" if isinstance(e, FileNotFoundError)
                  else "not valid benchmark JSON")
        line = f"baseline {args.baseline}: {reason}"
        if args.allow_missing:
            print(f"WARNING: {line}; skipping comparison (--allow-missing)",
                  file=sys.stderr)
            return 0
        print(f"ERROR: {line} (record one with bench_to_json.sh, or pass "
              "--allow-missing)", file=sys.stderr)
        return 1
    try:
        cand_ctx, cand = load_benchmarks(args.candidate)
    except (OSError, ValueError) as e:
        reason = ("no such file" if isinstance(e, FileNotFoundError)
                  else "not valid benchmark JSON")
        print(f"ERROR: candidate {args.candidate}: {reason}", file=sys.stderr)
        return 1

    for name, ctx in (("baseline", base_ctx), ("candidate", cand_ctx)):
        stamp = ctx.get("ealgap_build_type", "unknown")
        if stamp != "release":
            print(f"WARNING: {name} has ealgap_build_type={stamp}; "
                  "comparison may be meaningless", file=sys.stderr)

    if not base and not cand:
        print("ERROR: neither file contains any benchmarks", file=sys.stderr)
        return 1

    regressions = []
    common = sorted(set(base) & set(cand))
    removed = sorted(set(base) - set(cand))
    added = sorted(set(cand) - set(base))
    width = max(len(n) for n in common + removed + added)

    # Suite-wide machine-state shift: the median of per-benchmark ratios.
    # Robust to a handful of genuine regressions (they sit in the tails);
    # only a regression touching more than half the suite could hide in
    # it, and that magnitude of change should be visible in the printed
    # shift anyway.
    shift = 1.0
    if common and not args.absolute:
        ratios = [cand[n] / base[n] for n in common if base[n] > 0]
        if ratios:
            shift = statistics.median(ratios)
    if abs(shift - 1.0) > 0.05:
        print(f"suite-wide shift: {(shift - 1.0) * 100.0:+.1f}% "
              "(machine-state drift; factored out of per-benchmark deltas)")

    for name in common:
        b, c = base[name], cand[name]
        delta = (c / (b * shift) - 1.0) * 100.0 if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:>+7.1f}%{flag}")

    # A benchmark on only one side is suite churn, not a regression: the
    # suite is allowed to grow, shrink, or rename. Report it and move on.
    for name in removed:
        print(f"{name:<{width}}  removed (baseline only)")
    for name in added:
        print(f"{name:<{width}}  added (candidate only)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0f}% threshold:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: +{delta:.1f}%", file=sys.stderr)
        return 1
    if not common:
        print(f"\nOK: no overlapping benchmark names to compare "
              f"({len(removed)} removed, {len(added)} added)")
        return 0
    print(f"\nOK: no regression over {args.threshold:.0f}% "
          f"across {len(common)} benchmarks"
          + (f" ({len(removed)} removed, {len(added)} added)"
             if removed or added else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
