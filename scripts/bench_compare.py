#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Benchmarks are matched by name; a benchmark regresses when its candidate
cpu_time exceeds baseline cpu_time by more than --threshold percent
(default 15). Benchmarks present in only one file are reported but never
fail the comparison (the suite is allowed to grow). Exit code 1 on any
regression, 0 otherwise.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions) and
        # errored runs (e.g. a SIMD backend the host doesn't support).
        if b.get("run_type") == "aggregate" or b.get("error_occurred"):
            continue
        out[b["name"]] = float(b["cpu_time"])
    return doc.get("context", {}), out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="max allowed cpu_time increase in percent")
    args = ap.parse_args()

    base_ctx, base = load_benchmarks(args.baseline)
    cand_ctx, cand = load_benchmarks(args.candidate)

    for name, ctx in (("baseline", base_ctx), ("candidate", cand_ctx)):
        stamp = ctx.get("ealgap_build_type", "unknown")
        if stamp != "release":
            print(f"WARNING: {name} has ealgap_build_type={stamp}; "
                  "comparison may be meaningless", file=sys.stderr)

    if not base and not cand:
        print("ERROR: neither file contains any benchmarks", file=sys.stderr)
        return 1

    regressions = []
    common = sorted(set(base) & set(cand))
    removed = sorted(set(base) - set(cand))
    added = sorted(set(cand) - set(base))
    width = max(len(n) for n in common + removed + added)
    for name in common:
        b, c = base[name], cand[name]
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:>+7.1f}%{flag}")

    # A benchmark on only one side is suite churn, not a regression: the
    # suite is allowed to grow, shrink, or rename. Report it and move on.
    for name in removed:
        print(f"{name:<{width}}  removed (baseline only)")
    for name in added:
        print(f"{name:<{width}}  added (candidate only)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0f}% threshold:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: +{delta:.1f}%", file=sys.stderr)
        return 1
    if not common:
        print(f"\nOK: no overlapping benchmark names to compare "
              f"({len(removed)} removed, {len(added)} added)")
        return 0
    print(f"\nOK: no regression over {args.threshold:.0f}% "
          f"across {len(common)} benchmarks"
          + (f" ({len(removed)} removed, {len(added)} added)"
             if removed or added else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
