#!/usr/bin/env bash
# Tier-1 CI gate: build, run the full test suite, rehearse an interrupted
# experiment sweep (crash + resume must reproduce the clean run byte for
# byte), chaos-soak the serving daemon with faults armed (plain, quantized,
# and adaptive), TSan the concurrent serving paths, ASan the
# checkpoint/resume parsers, and UBSan the adaptation arithmetic.
#
# Usage: scripts/ci.sh
#   BUILD_DIR=<dir>       main build directory   (default: build)
#   TSAN_BUILD_DIR=<dir>  TSan build directory   (default: build-tsan)
#   ASAN_BUILD_DIR=<dir>  ASan build directory   (default: build-asan)
#   UBSAN_BUILD_DIR=<dir> UBSan build directory  (default: build-ubsan)
#   EALGAP_CI_BENCH=1     also run the bench stage: re-measure the micro
#                         suites in Release and fail on >15% cpu_time
#                         regression vs the committed BENCH_*.json baselines
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

echo "===== tier-1: build + full test suite (scalar + native SIMD) ====="
cmake -B "$BUILD_DIR" -S . -G Ninja
cmake --build "$BUILD_DIR" -j
# The whole suite runs twice: once pinned to the scalar kernel table, once
# on the widest ISA the host supports. The golden/determinism tests compare
# against the same fixtures both times — this is the kernel-layer
# bit-identity contract enforced end to end.
echo "----- tier-1 pass 1/2: EALGAP_SIMD=scalar -----"
EALGAP_SIMD=scalar ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "----- tier-1 pass 2/2: native SIMD dispatch -----"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "===== fault stage: serve tests with injection armed ====="
# Re-run the fault suite with EALGAP_FAULTS set so the env-arming path is
# exercised end to end (every test still pins its own spec via
# ScopedFaults, so ambient arming must not break any of them, and the
# EnvVarArmsTheHarness test stops being skipped).
EALGAP_FAULTS="nn.predict.nan:every=7,io.write.fail:p=0.5:seed=5" \
  "./$BUILD_DIR/tests/fault_injection_test"

echo "===== quant stage: int8 parity suite on every SIMD backend ====="
# The int8 serve path's core promise is bit-identical predictions across
# kernel backends; tier-1 already ran the suite under scalar and native
# dispatch, this pins each backend explicitly (the in-process cross-backend
# tests re-run under each pin, so an sse2-vs-avx2 divergence cannot hide
# behind the host's widest ISA).
for simd in scalar sse2 avx2; do
  echo "----- quant parity: EALGAP_SIMD=$simd -----"
  EALGAP_SIMD="$simd" "./$BUILD_DIR/tests/quant_kernel_test"
  EALGAP_SIMD="$simd" "./$BUILD_DIR/tests/quant_parity_test"
done

echo "===== interrupt-resume stage: crash a sweep, resume it, diff vs clean ====="
# Leg 1 — journal resume. A tiny sweep with io.write.fail armed so the
# first cell's journal record lands and the second cell's record fails all
# three atomic-write attempts: the sweep must abort (unrecorded progress is
# not progress). Resuming without faults re-runs only the missing cell, and
# the resulting journal must be byte-identical to one from a clean sweep —
# the journal format deliberately carries no wall-clock fields.
RESUME_TMP="$(mktemp -d)"
trap 'rm -rf "$RESUME_TMP"' EXIT
TOOL="./$BUILD_DIR/tools/ealgap_tool"
SWEEP_ARGS=(--cities nyc_bike --periods normal --schemes HA,ARIMA --scale 0.35)
if EALGAP_FAULTS="io.write.fail:every=1:after=1" \
    "$TOOL" experiment "${SWEEP_ARGS[@]}" --journal "$RESUME_TMP/interrupted.journal" \
    > /dev/null 2>&1; then
  echo "FAIL: sweep with journal-write faults armed should have aborted" >&2
  exit 1
fi
"$TOOL" experiment "${SWEEP_ARGS[@]}" --journal "$RESUME_TMP/interrupted.journal" \
  --resume > /dev/null
"$TOOL" experiment "${SWEEP_ARGS[@]}" --journal "$RESUME_TMP/clean.journal" \
  > /dev/null
diff "$RESUME_TMP/clean.journal" "$RESUME_TMP/interrupted.journal"
echo "journal resume: interrupted+resumed journal byte-identical to clean"

# Leg 2 — train-state resume. Kill one EALGAP training run mid-epoch with
# an injected step fault (per-epoch train-state snapshots on), resume it,
# and require the final model checkpoint to be byte-identical to an
# uninterrupted run's.
"$TOOL" generate --city nyc_bike --period normal --scale 0.35 \
  --out-trips "$RESUME_TMP/trips.csv" \
  --out-stations "$RESUME_TMP/stations.csv" > /dev/null
EVAL_ARGS=(--trips "$RESUME_TMP/trips.csv" --stations "$RESUME_TMP/stations.csv"
  --start 2020-06-30 --scheme EALGAP --epochs 3)
"$TOOL" evaluate "${EVAL_ARGS[@]}" --save "$RESUME_TMP/clean.ckpt" > /dev/null
# after=150 lands in epoch 2 (~110 optimizer steps per epoch here), so the
# epoch-1 snapshot is on disk when the run dies.
if EALGAP_FAULTS="train.step.error:every=1:after=150:max=1" \
    "$TOOL" evaluate "${EVAL_ARGS[@]}" --train-state "$RESUME_TMP/state.train" \
    --checkpoint-every 1 > /dev/null 2>&1; then
  echo "FAIL: evaluate with a step fault armed should have exited non-zero" >&2
  exit 1
fi
if [[ ! -f "$RESUME_TMP/state.train" ]]; then
  echo "FAIL: the interrupted run left no train-state snapshot" \
       "(did the kill point move before the first epoch boundary?)" >&2
  exit 1
fi
"$TOOL" evaluate "${EVAL_ARGS[@]}" --train-state "$RESUME_TMP/state.train" \
  --checkpoint-every 1 --resume --save "$RESUME_TMP/resumed.ckpt" > /dev/null
cmp "$RESUME_TMP/clean.ckpt" "$RESUME_TMP/resumed.ckpt"
echo "train resume: interrupted+resumed checkpoint byte-identical to clean"

echo "===== chaos stage: fault-armed daemon soak ====="
# A short soak of the sharded serving daemon with the overload and crash
# sites armed on top of the load generator's own burst phases: queues
# fill, shards die mid-serve and restart from their checkpoints. The tool
# exits 3 (naming the counter that leaked) if any request or degraded
# step ends the run unattributed, so this stage's exit 0 IS the
# zero-unattributed assertion. The replay-digest line in the output is
# the hook for debugging a failure by re-running the same seeds.
EALGAP_FAULTS="daemon.queue.full:p=0.05:seed=11,daemon.shard.crash:p=0.01:seed=13" \
  "$TOOL" daemon --shards 3 --ticks 200 --days 40 --epochs 0 \
  --state-dir "$RESUME_TMP/daemon_state" | tail -n 2
echo "daemon soak: fault-armed run exited clean with full attribution"

# The same soak serving through the int8 path, with nn.quant.drift armed on
# top: a forced drift trip mid-soak must degrade that shard's wrapper to
# float serving (sticky, attributed in the drift-guard table) while the
# fleet keeps full request attribution — and crashed shards must come back
# quantized (the restart path re-wraps the reloaded checkpoint).
EALGAP_FAULTS="daemon.queue.full:p=0.05:seed=11,daemon.shard.crash:p=0.01:seed=13,nn.quant.drift:every=97:max=2" \
  "$TOOL" daemon --shards 3 --ticks 200 --days 40 --epochs 0 --quant \
  --state-dir "$RESUME_TMP/daemon_state_quant" | tail -n 3
echo "daemon soak: quantized fault-armed run exited clean with full attribution"

# The adaptation soak: test-time adaptation on, with every serve.adapt.*
# failure site armed (poisoned validation loss, forced rejection, micro-fit
# infra failure, attempt stall) plus shard crashes — so attempts roll back,
# the sticky freeze trips and probe-recovers, and crashed shards resume
# their adapted weights + detector posture from checkpoints. The tool exits
# 3 if any adaptation attempt ends the run unattributed (attempts !=
# commits + rollbacks), so exit 0 IS the adaptation-attribution assertion.
EALGAP_FAULTS="serve.adapt.nan:every=3,serve.adapt.reject:every=4,serve.adapt.error:every=5,serve.adapt.delay:every=7:ms=1,daemon.shard.crash:every=83" \
  "$TOOL" daemon --shards 2 --ticks 200 --days 40 --epochs 0 --adapt \
  --adapt-cusum-h 4 --adapt-window 32 --adapt-min-window 12 \
  --adapt-holdout 4 --adapt-cooldown 8 \
  --state-dir "$RESUME_TMP/daemon_state_adapt" | tail -n 4
echo "daemon soak: adaptive fault-armed run exited clean with full attribution"

echo "===== alloc-free stage: zero-allocation serve contract ====="
# The counting run: alloc_guard_test links a malloc-family interposition
# hook and asserts 0 heap allocations over 240-step healthy AND
# fault-degraded ResilientPredictor replays (tier-1 already ran it; this
# repeats it with the fault env armed so ambient arming is covered too).
EALGAP_FAULTS="nn.predict.nan:every=7" "./$BUILD_DIR/tests/alloc_guard_test"

echo "===== TSan: concurrent serving + training paths ====="
# PredictMany fans samples across the pool and EvaluateLoss fans batches;
# run both under ThreadSanitizer with more threads than the tiny models
# need, to force interleavings. The fault suite rides along: fault
# decisions are mutex-serialized and must stay race-free under load.
cmake -B "$TSAN_BUILD_DIR" -S . -G Ninja -DEALGAP_SANITIZE=thread
# daemon_test is the TSan leg of the daemon soak: the multi-producer
# queue stress and the cross-shard ParallelFor serve fan-out both run
# with sanitized interleavings here.
cmake --build "$TSAN_BUILD_DIR" -j --target \
  serve_parity_test determinism_test thread_pool_test ops_parallel_test \
  fault_injection_test train_resume_test daemon_test
for t in serve_parity_test determinism_test thread_pool_test \
         ops_parallel_test fault_injection_test train_resume_test \
         daemon_test; do
  echo "----- TSan: $t -----"
  EALGAP_NUM_THREADS=4 "./$TSAN_BUILD_DIR/tests/$t"
done

echo "===== ASan: checkpoint/resume + fault-injection + arena paths ====="
# The resume machinery shuffles large snapshots (params, Adam moments, RNG
# streams) through text serialization and back; AddressSanitizer guards the
# parser against overreads on truncated or corrupt state files.
# alloc_guard_test rides along deliberately: under ASan its malloc hook
# compiles out (ASan owns malloc) and the counting assertions self-skip,
# which turns the 240-step replays into a lifetime check of the exact
# arena checkpoint/rewind scenario — a use-after-rewind trips ASan here.
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
cmake -B "$ASAN_BUILD_DIR" -S . -G Ninja -DEALGAP_SANITIZE=address
cmake --build "$ASAN_BUILD_DIR" -j --target \
  train_resume_test fault_injection_test experiment_test alloc_guard_test
for t in train_resume_test fault_injection_test experiment_test \
         alloc_guard_test; do
  echo "----- ASan: $t -----"
  "./$ASAN_BUILD_DIR/tests/$t"
done

echo "===== UBSan: adaptation + serving arithmetic paths ====="
# The adaptation layer leans on arithmetic edge cases by design (CUSUM
# z-scores over a floored sigma, log2 scoring near zero, int64 step
# counters): UndefinedBehaviorSanitizer with -fno-sanitize-recover turns
# any signed overflow, bad shift, or misaligned access in those paths into
# a test failure. daemon_test drives the full adapt/freeze/restart
# machinery; robustness_test drives the corrupt-input parsers whose
# error paths do offset arithmetic on attacker-shaped files.
UBSAN_BUILD_DIR="${UBSAN_BUILD_DIR:-build-ubsan}"
cmake -B "$UBSAN_BUILD_DIR" -S . -G Ninja -DEALGAP_SANITIZE=undefined
cmake --build "$UBSAN_BUILD_DIR" -j --target \
  daemon_test robustness_test fault_injection_test quant_parity_test
for t in daemon_test robustness_test fault_injection_test \
         quant_parity_test; do
  echo "----- UBSan: $t -----"
  "./$UBSAN_BUILD_DIR/tests/$t"
done

if [[ "${EALGAP_CI_BENCH:-0}" == "1" ]]; then
  echo "===== bench stage: regression check vs committed baselines ====="
  # Measure into a scratch directory (never overwrites the committed
  # baselines; re-record those deliberately with scripts/bench_to_json.sh).
  BENCH_TMP="$(mktemp -d)"
  trap 'rm -rf "$BENCH_TMP"' EXIT
  for pair in "micro_tensor_ops:BENCH_tensor_ops.json" \
              "micro_serve:BENCH_serve.json" \
              "micro_daemon:BENCH_daemon.json" \
              "micro_quant:BENCH_quant.json" \
              "micro_adapt:BENCH_adapt.json"; do
    target="${pair%%:*}"
    baseline="${pair##*:}"
    if [[ ! -f "$baseline" ]]; then
      echo "no committed $baseline; skipping $target"
      continue
    fi
    scripts/bench_to_json.sh "$target" "$BENCH_TMP/$baseline"
    # Threshold 60, not the script's default 15: on the virtualized CI
    # hosts two runs of an IDENTICAL binary differ per-benchmark by up to
    # ~47% even after bench_compare factors out the suite-wide drift
    # (per-process page placement shifts cache-conflict patterns; the
    # repetitions within one run are tight, the runs disagree). 60 only
    # flags unambiguous regressions; use 15 when comparing recordings
    # from the same process lifetime or a bare-metal box.
    python3 scripts/bench_compare.py "$baseline" "$BENCH_TMP/$baseline" \
      --threshold 60
  done
fi

echo "ci.sh: all gates green"
