#!/usr/bin/env bash
# Tier-1 CI gate: build, run the full test suite, TSan the concurrent
# serving paths, and record serving latency as BENCH_serve.json.
#
# Usage: scripts/ci.sh
#   BUILD_DIR=<dir>       main build directory   (default: build)
#   TSAN_BUILD_DIR=<dir>  TSan build directory   (default: build-tsan)
#   EALGAP_CI_BENCH=1     also run the bench stage: re-measure the micro
#                         suites in Release and fail on >15% cpu_time
#                         regression vs the committed BENCH_*.json baselines
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

echo "===== tier-1: build + full test suite (scalar + native SIMD) ====="
cmake -B "$BUILD_DIR" -S . -G Ninja
cmake --build "$BUILD_DIR" -j
# The whole suite runs twice: once pinned to the scalar kernel table, once
# on the widest ISA the host supports. The golden/determinism tests compare
# against the same fixtures both times — this is the kernel-layer
# bit-identity contract enforced end to end.
echo "----- tier-1 pass 1/2: EALGAP_SIMD=scalar -----"
EALGAP_SIMD=scalar ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "----- tier-1 pass 2/2: native SIMD dispatch -----"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "===== fault stage: serve tests with injection armed ====="
# Re-run the fault suite with EALGAP_FAULTS set so the env-arming path is
# exercised end to end (every test still pins its own spec via
# ScopedFaults, so ambient arming must not break any of them, and the
# EnvVarArmsTheHarness test stops being skipped).
EALGAP_FAULTS="nn.predict.nan:every=7,io.write.fail:p=0.5:seed=5" \
  "./$BUILD_DIR/tests/fault_injection_test"

echo "===== TSan: concurrent serving + training paths ====="
# PredictMany fans samples across the pool and EvaluateLoss fans batches;
# run both under ThreadSanitizer with more threads than the tiny models
# need, to force interleavings. The fault suite rides along: fault
# decisions are mutex-serialized and must stay race-free under load.
cmake -B "$TSAN_BUILD_DIR" -S . -G Ninja -DEALGAP_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j --target \
  serve_parity_test determinism_test thread_pool_test ops_parallel_test \
  fault_injection_test
for t in serve_parity_test determinism_test thread_pool_test \
         ops_parallel_test fault_injection_test; do
  echo "----- TSan: $t -----"
  EALGAP_NUM_THREADS=4 "./$TSAN_BUILD_DIR/tests/$t"
done

if [[ "${EALGAP_CI_BENCH:-0}" == "1" ]]; then
  echo "===== bench stage: regression check vs committed baselines ====="
  # Measure into a scratch directory (never overwrites the committed
  # baselines; re-record those deliberately with scripts/bench_to_json.sh).
  BENCH_TMP="$(mktemp -d)"
  trap 'rm -rf "$BENCH_TMP"' EXIT
  for pair in "micro_tensor_ops:BENCH_tensor_ops.json" \
              "micro_serve:BENCH_serve.json"; do
    target="${pair%%:*}"
    baseline="${pair##*:}"
    if [[ ! -f "$baseline" ]]; then
      echo "no committed $baseline; skipping $target"
      continue
    fi
    scripts/bench_to_json.sh "$target" "$BENCH_TMP/$baseline"
    python3 scripts/bench_compare.py "$baseline" "$BENCH_TMP/$baseline" \
      --threshold 15
  done
fi

echo "ci.sh: all gates green"
