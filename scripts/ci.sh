#!/usr/bin/env bash
# Tier-1 CI gate: build, run the full test suite, TSan the concurrent
# serving paths, and record serving latency as BENCH_serve.json.
#
# Usage: scripts/ci.sh
#   BUILD_DIR=<dir>       main build directory   (default: build)
#   TSAN_BUILD_DIR=<dir>  TSan build directory   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

echo "===== tier-1: build + full test suite ====="
cmake -B "$BUILD_DIR" -S . -G Ninja
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "===== fault stage: serve tests with injection armed ====="
# Re-run the fault suite with EALGAP_FAULTS set so the env-arming path is
# exercised end to end (every test still pins its own spec via
# ScopedFaults, so ambient arming must not break any of them, and the
# EnvVarArmsTheHarness test stops being skipped).
EALGAP_FAULTS="nn.predict.nan:every=7,io.write.fail:p=0.5:seed=5" \
  "./$BUILD_DIR/tests/fault_injection_test"

echo "===== TSan: concurrent serving + training paths ====="
# PredictMany fans samples across the pool and EvaluateLoss fans batches;
# run both under ThreadSanitizer with more threads than the tiny models
# need, to force interleavings. The fault suite rides along: fault
# decisions are mutex-serialized and must stay race-free under load.
cmake -B "$TSAN_BUILD_DIR" -S . -G Ninja -DEALGAP_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j --target \
  serve_parity_test determinism_test thread_pool_test ops_parallel_test \
  fault_injection_test
for t in serve_parity_test determinism_test thread_pool_test \
         ops_parallel_test fault_injection_test; do
  echo "----- TSan: $t -----"
  EALGAP_NUM_THREADS=4 "./$TSAN_BUILD_DIR/tests/$t"
done

echo "===== serving latency snapshot ====="
BUILD_DIR="$BUILD_DIR" scripts/bench_to_json.sh micro_serve

echo "ci.sh: all gates green"
