#!/usr/bin/env bash
# Tier-1 CI gate: build, run the full test suite, TSan the concurrent
# serving paths, and record serving latency as BENCH_serve.json.
#
# Usage: scripts/ci.sh
#   BUILD_DIR=<dir>       main build directory   (default: build)
#   TSAN_BUILD_DIR=<dir>  TSan build directory   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

echo "===== tier-1: build + full test suite ====="
cmake -B "$BUILD_DIR" -S . -G Ninja
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "===== TSan: concurrent serving + training paths ====="
# PredictMany fans samples across the pool and EvaluateLoss fans batches;
# run both under ThreadSanitizer with more threads than the tiny models
# need, to force interleavings.
cmake -B "$TSAN_BUILD_DIR" -S . -G Ninja -DEALGAP_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j --target \
  serve_parity_test determinism_test thread_pool_test ops_parallel_test
for t in serve_parity_test determinism_test thread_pool_test \
         ops_parallel_test; do
  echo "----- TSan: $t -----"
  EALGAP_NUM_THREADS=4 "./$TSAN_BUILD_DIR/tests/$t"
done

echo "===== serving latency snapshot ====="
BUILD_DIR="$BUILD_DIR" scripts/bench_to_json.sh micro_serve

echo "ci.sh: all gates green"
