#!/usr/bin/env bash
# Runs the tensor-op microbenchmarks with google-benchmark's JSON reporter
# and records the result as BENCH_tensor_ops.json at the repo root, so the
# perf trajectory of the compute substrate is tracked in-tree PR over PR.
#
# Usage: scripts/bench_to_json.sh [out.json]
#   BUILD_DIR=<dir>  build directory (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_tensor_ops.json}"
BIN="$BUILD_DIR/bench/micro_tensor_ops"

if [[ ! -x "$BIN" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" --target micro_tensor_ops -j
fi

"$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "Wrote $OUT"
