#!/usr/bin/env bash
# Runs a microbenchmark binary with google-benchmark's JSON reporter and
# records the result as BENCH_<name>.json at the repo root, so the perf
# trajectory (compute substrate, serving latency, ...) is tracked in-tree
# PR over PR.
#
# The bench build is forced to Release: committed baselines from a debug
# binary are worthless and poison every later comparison. Each binary
# stamps "ealgap_build_type" into its JSON context (bench/bench_main.cc);
# this script refuses to write the output file unless that stamp says
# "release". (The system libbenchmark's own "library_build_type" field
# reflects how the LIBRARY was compiled, not our code — ignore it.)
#
# Usage: scripts/bench_to_json.sh [target [out.json]]
#   target           bench binary name (default: micro_tensor_ops)
#   out.json         output path (default: BENCH_<target minus micro_>.json)
#   BUILD_DIR=<dir>  bench build directory (default: build-bench)
#   BENCH_REPS=<n>   benchmark repetitions (default: 3). Each benchmark is
#                    repeated n times and the JSON carries median aggregates;
#                    bench_compare.py compares the medians, which keeps the
#                    regression gate stable on noisy shared hosts.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
TARGET="${1:-micro_tensor_ops}"
OUT="${2:-BENCH_${TARGET#micro_}.json}"
BIN="$BUILD_DIR/bench/$TARGET"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target "$TARGET" -j

TMP="$(mktemp "${OUT}.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

"$BIN" \
  --benchmark_out="$TMP" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-3}" \
  --benchmark_format=console

STAMP="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["context"].get("ealgap_build_type","missing"))' "$TMP")"
if [[ "$STAMP" != "release" ]]; then
  echo "ERROR: $TARGET reports ealgap_build_type='$STAMP' (want 'release');" >&2
  echo "       refusing to overwrite $OUT with non-release numbers." >&2
  exit 1
fi

mv "$TMP" "$OUT"
trap - EXIT
echo "Wrote $OUT"
