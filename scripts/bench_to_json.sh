#!/usr/bin/env bash
# Runs a microbenchmark binary with google-benchmark's JSON reporter and
# records the result as BENCH_<name>.json at the repo root, so the perf
# trajectory (compute substrate, serving latency, ...) is tracked in-tree
# PR over PR.
#
# Usage: scripts/bench_to_json.sh [target [out.json]]
#   target           bench binary name (default: micro_tensor_ops)
#   out.json         output path (default: BENCH_<target minus micro_>.json)
#   BUILD_DIR=<dir>  build directory (default: build)
#
# Examples:
#   scripts/bench_to_json.sh                      # -> BENCH_tensor_ops.json
#   scripts/bench_to_json.sh micro_serve          # -> BENCH_serve.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TARGET="${1:-micro_tensor_ops}"
OUT="${2:-BENCH_${TARGET#micro_}.json}"
BIN="$BUILD_DIR/bench/$TARGET"

if [[ ! -x "$BIN" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" --target "$TARGET" -j
fi

"$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "Wrote $OUT"
