#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, test, and regenerate every
# table/figure of the paper into test_output.txt / bench_output.txt.
#
# Usage: scripts/repro.sh [--full]
#   --full  paper-leaning effort (longer training, larger synthetic volumes)
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA=""
if [[ "${1:-}" == "--full" ]]; then
  EXTRA="--full"
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

(for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  echo "===== $b ====="
  "$b" ${EXTRA}
  echo
done) 2>&1 | tee bench_output.txt

echo "Done: see test_output.txt and bench_output.txt"
