#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, test, and regenerate every
# table/figure of the paper into test_output.txt / bench_output.txt.
#
# Usage: scripts/repro.sh [--full]
#   --full  paper-leaning effort (longer training, larger synthetic volumes)
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA=""
if [[ "${1:-}" == "--full" ]]; then
  EXTRA="--full"
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Thread-sanitizer pass over the parallel substrate: the pool itself plus
# the tensor kernels that run on it, with more threads than cores to force
# interleavings.
cmake -B build-tsan -G Ninja -DEALGAP_SANITIZE=thread
cmake --build build-tsan --target thread_pool_test ops_parallel_test tensor_test
for t in thread_pool_test ops_parallel_test tensor_test; do
  echo "===== TSan: $t ====="
  EALGAP_NUM_THREADS=4 "./build-tsan/tests/$t"
done

(for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  echo "===== $b ====="
  "$b" ${EXTRA}
  echo
done) 2>&1 | tee bench_output.txt

echo "Done: see test_output.txt and bench_output.txt"
