#include "bench/table_common.h"

#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace ealgap {
namespace bench {

namespace {

std::vector<std::string> SplitSchemes(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int RunTableBench(data::City city, const char* table_name, int argc,
                  char** argv) {
  Flags flags(argc, argv);
  const bool full = flags.GetBool("full");

  core::ExperimentOptions options;
  options.seed = flags.GetInt("seed", 7);
  options.data_scale = flags.GetDouble("scale", full ? 3.0 : 1.5);
  options.train.epochs = static_cast<int>(flags.GetInt("epochs", full ? 50 : 15));
  options.train.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 2e-3));
  options.train.patience = static_cast<int>(flags.GetInt("patience", full ? 10 : 4));
  options.verbose = flags.GetBool("verbose");
  if (flags.Has("schemes")) {
    options.schemes = SplitSchemes(flags.GetString("schemes"));
  }

  // Columns: Scheme, then ER/MSLE/R2 per period.
  std::vector<std::string> columns = {"Scheme"};
  std::vector<core::PeriodResult> periods;
  for (data::Period period : data::AllPeriods()) {
    data::PeriodConfig config =
        data::MakePeriodConfig(city, period, options.seed, options.data_scale);
    columns.push_back(config.label + ":ER");
    columns.push_back(config.label + ":MSLE");
    columns.push_back(config.label + ":R2");
    auto result = core::RunPeriod(config, options);
    if (!result.ok()) {
      std::cerr << "period " << config.label << " failed: "
                << result.status().ToString() << "\n";
      return 1;
    }
    periods.push_back(std::move(result).value());
  }

  TablePrinter table(std::string(table_name) + " — prediction results (" +
                         data::CityName(city) + ", synthetic reproduction)",
                     columns);
  for (size_t s = 0; s < options.schemes.size(); ++s) {
    std::vector<std::string> row = {options.schemes[s]};
    for (const core::PeriodResult& p : periods) {
      // Scheme failures are isolated per cell: the row stays in the table
      // with "fail" markers instead of fabricated zeros.
      if (!p.rows[s].status.ok()) {
        row.insert(row.end(), {"fail", "fail", "fail"});
        continue;
      }
      const auto& m = p.rows[s].metrics;
      row.push_back(TablePrinter::Num(m.er));
      row.push_back(TablePrinter::Num(m.msle));
      row.push_back(TablePrinter::Num(m.r2));
    }
    table.AddRow(std::move(row));
  }
  if (flags.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
    std::cout << "\nPer-scheme training time (mean ms per optimization step):\n";
    for (size_t s = 0; s < options.schemes.size(); ++s) {
      double ms = 0;
      for (const auto& p : periods) ms += p.rows[s].train_step_ms;
      std::cout << "  " << options.schemes[s] << ": "
                << TablePrinter::Num(ms / periods.size(), 3) << " ms\n";
    }
  }
  return 0;
}

}  // namespace bench
}  // namespace ealgap
