// Reproduces Table 4: prediction results on the nyc_taxi dataset.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  return ealgap::bench::RunTableBench(ealgap::data::City::kNycTaxi,
                                      "Table 4", argc, argv);
}
