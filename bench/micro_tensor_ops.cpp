// google-benchmark microbenchmarks of the substrate hot paths: tensor ops,
// autograd round trips, cell forwards, distribution fits, and clustering.

#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"
#include "stats/distribution.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace {

using namespace ealgap;

/// Pins the pool size for one benchmark run, restoring it afterwards. The
/// *Threads benches sweep 1/2/4/8 so BENCH_tensor_ops.json records the
/// scaling curve of each kernel.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(GetNumThreads()) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(saved_); }

 private:
  int saved_;
};

/// Pins a SIMD backend for one run; the *Simd benches sweep every backend
/// the host supports so the JSON records the scalar/sse2/avx2 curve of the
/// kernel layer directly. Skips (rather than fails) on hosts that lack one.
class ScopedBackend {
 public:
  ScopedBackend(benchmark::State& state, kernels::Backend b)
      : saved_(kernels::ActiveBackend()) {
    if (!kernels::BackendSupported(b)) {
      state.SkipWithError("backend not supported on this host");
      ok_ = false;
      return;
    }
    kernels::SetBackendForTesting(b);
  }
  ~ScopedBackend() { kernels::SetBackendForTesting(saved_); }
  bool ok() const { return ok_; }

 private:
  kernels::Backend saved_;
  bool ok_ = true;
};

constexpr kernels::Backend kBackends[] = {
    kernels::Backend::kScalar, kernels::Backend::kSse2,
    kernels::Backend::kAvx2};

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

/// Projection-shaped matmul scaled by region count: an (N, d) activation
/// against a (d, d) weight, the shape every per-region linear layer runs
/// at N=20 (city), N=1k (metro), and N=10k (metropolis) regions.
void BM_MatMulRegions(benchmark::State& state) {
  const int64_t n = state.range(0);
  constexpr int64_t kD = 64;
  Rng rng(1);
  Tensor a = Tensor::Randn({n, kD}, rng);
  Tensor b = Tensor::Randn({kD, kD}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * kD * kD);
}
BENCHMARK(BM_MatMulRegions)->Arg(20)->Arg(1000)->Arg(10000);

void BM_MatMulThreads(benchmark::State& state) {
  const int64_t n = 128;
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BMatMulThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Rng rng(1);
  // Attention-shaped batch: many small per-region matrices.
  Tensor a = Tensor::Randn({64, 24, 24}, rng);
  Tensor b = Tensor::Randn({64, 24, 24}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BMatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 24 * 24 * 24);
}
BENCHMARK(BM_BMatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ElementwiseAddThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({1 << 20}, rng);
  Tensor b = Tensor::Randn({1 << 20}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ElementwiseAddThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BroadcastAddThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Rng rng(1);
  // Exercises the strided-row broadcast path (b constant per row block).
  Tensor a = Tensor::Randn({128, 128, 64}, rng);
  Tensor b = Tensor::Randn({128, 1, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128 * 64);
}
BENCHMARK(BM_BroadcastAddThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SumAxisThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({512, 64, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::SumAxis(a, 1));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 64 * 32);
}
BENCHMARK(BM_SumAxisThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SoftmaxThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({4096, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::SoftmaxLastDim(a));
  }
  state.SetItemsProcessed(state.iterations() * 4096 * 64);
}
BENCHMARK(BM_SoftmaxThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MatMulSimd(benchmark::State& state) {
  ScopedBackend backend(state, kBackends[state.range(0)]);
  if (!backend.ok()) return;
  ScopedThreads threads(1);
  const int64_t n = 128;
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulSimd)->Arg(0)->Arg(1)->Arg(2);

void BM_ElementwiseAddSimd(benchmark::State& state) {
  ScopedBackend backend(state, kBackends[state.range(0)]);
  if (!backend.ok()) return;
  ScopedThreads threads(1);
  Rng rng(1);
  // Cache-resident size and a preallocated output: measures the kernel,
  // not DRAM bandwidth or the allocator.
  constexpr int64_t kN = 1 << 14;
  Tensor a = Tensor::Randn({kN}, rng);
  Tensor b = Tensor::Randn({kN}, rng);
  Tensor o = Tensor::Zeros({kN});
  const kernels::KernelTable& t = kernels::Active();
  for (auto _ : state) {
    t.add_vv(a.data(), b.data(), o.data(), kN);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_ElementwiseAddSimd)->Arg(0)->Arg(1)->Arg(2);

void BM_SoftmaxSimd(benchmark::State& state) {
  ScopedBackend backend(state, kBackends[state.range(0)]);
  if (!backend.ok()) return;
  ScopedThreads threads(1);
  Rng rng(1);
  Tensor a = Tensor::Randn({4096, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::SoftmaxLastDim(a));
  }
  state.SetItemsProcessed(state.iterations() * 4096 * 64);
}
BENCHMARK(BM_SoftmaxSimd)->Arg(0)->Arg(1)->Arg(2);

void BM_ExpSimd(benchmark::State& state) {
  ScopedBackend backend(state, kBackends[state.range(0)]);
  if (!backend.ok()) return;
  ScopedThreads threads(1);
  Rng rng(1);
  Tensor a = Tensor::Randn({1 << 18}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Exp(a));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 18));
}
BENCHMARK(BM_ExpSimd)->Arg(0)->Arg(1)->Arg(2);

void BM_TanhSimd(benchmark::State& state) {
  ScopedBackend backend(state, kBackends[state.range(0)]);
  if (!backend.ok()) return;
  ScopedThreads threads(1);
  Rng rng(1);
  Tensor a = Tensor::Randn({1 << 18}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Tanh(a));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 18));
}
BENCHMARK(BM_TanhSimd)->Arg(0)->Arg(1)->Arg(2);

void BM_SigmoidSimd(benchmark::State& state) {
  ScopedBackend backend(state, kBackends[state.range(0)]);
  if (!backend.ok()) return;
  ScopedThreads threads(1);
  Rng rng(1);
  Tensor a = Tensor::Randn({1 << 18}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Sigmoid(a));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 18));
}
BENCHMARK(BM_SigmoidSimd)->Arg(0)->Arg(1)->Arg(2);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn({20, 5, 1}, rng);
  Tensor b = Tensor::Randn({20, 1, 5}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn({state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::SoftmaxLastDim(a));
  }
}
BENCHMARK(BM_SoftmaxLastDim)->Arg(64)->Arg(512);

void BM_GruCellForward(benchmark::State& state) {
  Rng rng(1);
  nn::GruCell cell(5, 16, rng);
  NoGradGuard no_grad;
  Var x = Var::Leaf(Tensor::Randn({20, 5}, rng));
  Var h = nn::ZeroState(20, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.Forward(x, h));
  }
}
BENCHMARK(BM_GruCellForward);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(1);
  nn::Linear fc1(32, 64, rng), fc2(64, 1, rng);
  Tensor x = Tensor::Randn({64, 32}, rng);
  Tensor y = Tensor::Randn({64, 1}, rng);
  for (auto _ : state) {
    fc1.ZeroGrad();
    fc2.ZeroGrad();
    Var pred = fc2.Forward(Relu(fc1.Forward(Var::Leaf(x))));
    Var d = Sub(pred, Var::Leaf(y));
    Var loss = MeanAll(Mul(d, d));
    Backward(loss);
    benchmark::DoNotOptimize(loss.value().data());
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_ExponentialRowwisePdf(benchmark::State& state) {
  Rng rng(1);
  Tensor x = Tensor::Rand({20, 5}, rng, 0.f, 100.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::RowwisePdf(x, stats::DistributionFamily::kExponential));
  }
}
BENCHMARK(BM_ExponentialRowwisePdf);

void BM_KMeansStations(benchmark::State& state) {
  Rng rng(1);
  std::vector<cluster::Point2> pts;
  for (int i = 0; i < 347; ++i) {
    pts.push_back({rng.Uniform(-74.1, -73.9), rng.Uniform(40.6, 40.9)});
  }
  for (auto _ : state) {
    auto result = cluster::KMeans(pts, 20);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeansStations);

}  // namespace

// main() lives in bench_main.cc (stamps ealgap_build_type / ealgap_simd).
