// Reproduces Table 5: prediction results on the chicago_taxi dataset.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  return ealgap::bench::RunTableBench(ealgap::data::City::kChicagoTaxi,
                                      "Table 5", argc, argv);
}
