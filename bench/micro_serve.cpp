// google-benchmark microbenchmarks of the online serving path: per-step
// Observe(), single-stream PredictNext() latency (the number a serving SLO
// cares about), pool-fanned PredictMany() across fleet sizes, and the
// mid-stream SaveState/LoadState checkpoint cost.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ealgap.h"
#include "data/dataset.h"
#include "serve/online_predictor.h"

namespace {

using namespace ealgap;

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(GetNumThreads()) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(saved_); }

 private:
  int saved_;
};

data::MobilitySeries MakeSeries(int regions, int days) {
  Rng rng(5);
  data::MobilitySeries series;
  series.num_regions = regions;
  series.steps_per_day = 24;
  series.start_date = {2020, 6, 1};
  series.num_days = days;
  series.counts = Tensor::Zeros({regions, static_cast<int64_t>(days) * 24});
  for (int r = 0; r < regions; ++r) {
    double ar = 0.0;
    for (int64_t s = 0; s < days * 24; ++s) {
      const int h = static_cast<int>(s % 24);
      const double base =
          20.0 + 15.0 * std::exp(-0.5 * std::pow((h - 8.5) / 2.5, 2)) +
          18.0 * std::exp(-0.5 * std::pow((h - 17.5) / 2.5, 2));
      ar = 0.9 * ar + rng.Normal(0.0, 1.5);
      series.counts.data()[r * days * 24 + s] = static_cast<float>(
          std::max(0.0, base * (1.0 + 0.1 * r) + ar));
    }
  }
  return series;
}

/// One fitted model + dataset per region count, shared across iterations.
struct Fixture {
  data::SlidingWindowDataset dataset;
  data::StepRanges split;
  std::unique_ptr<core::EalgapForecaster> model;
};

Fixture& GetFixture(int regions) {
  static std::map<int, Fixture> cache;
  auto it = cache.find(regions);
  if (it != cache.end()) return it->second;
  Fixture f;
  data::DatasetOptions options;
  options.history_length = 5;
  options.num_windows = 3;
  options.norm_history = 3;
  f.dataset = data::SlidingWindowDataset::Create(MakeSeries(regions, 40),
                                                 options)
                  .value();
  f.split = data::MakeChronoSplit(f.dataset).value();
  f.model = std::make_unique<core::EalgapForecaster>();
  TrainConfig train;
  train.epochs = 2;
  train.seed = 11;
  train.learning_rate = 3e-3f;
  EALGAP_CHECK(f.model->Fit(f.dataset, f.split, train).ok());
  return cache.emplace(regions, std::move(f)).first->second;
}

std::vector<double> Truth(const data::SlidingWindowDataset& ds, int64_t s) {
  const std::vector<float> row = ds.StepCounts(s);
  return std::vector<double>(row.begin(), row.end());
}

/// The serving SLO number: one PredictNext() on a live stream.
void BM_ServePredictNext(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.PredictNext());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServePredictNext)->Arg(4)->Arg(16)->Arg(64);

/// Per-step ingest: matched-stat refresh + ring/rolling-sum update.
void BM_ServeObserve(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  int64_t step = f.split.test_begin;
  const std::vector<double> row = Truth(f.dataset, step);
  for (auto _ : state) {
    // Replays the same realized row; the work is identical per step.
    benchmark::DoNotOptimize(predictor.Observe(row));
    ++step;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeObserve)->Arg(4)->Arg(16)->Arg(64);

/// A fleet of concurrent streams served through the thread pool.
void BM_ServePredictManyThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Fixture& f = GetFixture(16);
  const int kFleet = 8;
  std::vector<serve::OnlinePredictor> fleet;
  for (int i = 0; i < kFleet; ++i) {
    fleet.push_back(serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                   f.split.test_begin)
                        .value());
  }
  std::vector<serve::OnlinePredictor*> ptrs;
  for (auto& p : fleet) ptrs.push_back(&p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::OnlinePredictor::PredictMany(ptrs));
  }
  state.SetItemsProcessed(state.iterations() * kFleet);
}
BENCHMARK(BM_ServePredictManyThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Mid-stream state checkpoint round trip (restartable serving nodes).
void BM_ServeStateRoundTrip(benchmark::State& state) {
  Fixture& f = GetFixture(16);
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  const std::string path = "/tmp/ealgap_bench_serve.state";
  for (auto _ : state) {
    EALGAP_CHECK(predictor.SaveState(path).ok());
    auto restored = serve::OnlinePredictor::LoadState(path, f.model.get());
    benchmark::DoNotOptimize(restored);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeStateRoundTrip);

}  // namespace

// main() lives in bench_main.cc (stamps ealgap_build_type / ealgap_simd).
