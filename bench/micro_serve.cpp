// google-benchmark microbenchmarks of the online serving path: per-step
// Observe(), single-stream PredictNext() latency (the number a serving SLO
// cares about), pool-fanned PredictMany() across fleet sizes, and the
// mid-stream SaveState/LoadState checkpoint cost.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ealgap.h"
#include "data/dataset.h"
#include "data/synthetic_city.h"
#include "serve/online_predictor.h"
#include "serve/resilient_predictor.h"

namespace {

using namespace ealgap;

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(GetNumThreads()) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(saved_); }

 private:
  int saved_;
};

data::MobilitySeries MakeSeries(int regions, int days) {
  data::RegionSeriesConfig config;
  config.num_regions = regions;
  config.num_days = days;
  return data::GenerateRegionSeries(config);
}

/// One fitted model + dataset per region count, shared across iterations.
struct Fixture {
  data::SlidingWindowDataset dataset;
  data::StepRanges split;
  std::unique_ptr<core::EalgapForecaster> model;
};

Fixture MakeFixture(int regions, int epochs) {
  Fixture f;
  data::DatasetOptions options;
  options.history_length = 5;
  options.num_windows = 3;
  options.norm_history = 3;
  f.dataset = data::SlidingWindowDataset::Create(MakeSeries(regions, 40),
                                                 options)
                  .value();
  f.split = data::MakeChronoSplit(f.dataset).value();
  f.model = std::make_unique<core::EalgapForecaster>();
  TrainConfig train;
  train.epochs = epochs;
  train.seed = 11;
  train.learning_rate = 3e-3f;
  EALGAP_CHECK(f.model->Fit(f.dataset, f.split, train).ok());
  return f;
}

Fixture& GetFixture(int regions) {
  static std::map<int, Fixture> cache;
  auto it = cache.find(regions);
  if (it != cache.end()) return it->second;
  return cache.emplace(regions, MakeFixture(regions, /*epochs=*/2))
      .first->second;
}

/// Fixtures for the N=20/1k/10k scaling benches. Fit runs with epochs=0:
/// the model is initialized (shapes, scalers) but never trained — weight
/// VALUES do not change the serve-step cost, and two training epochs at
/// N=10k would take longer than the whole bench suite.
Fixture& GetScaleFixture(int regions) {
  static std::map<int, Fixture> cache;
  auto it = cache.find(regions);
  if (it != cache.end()) return it->second;
  return cache.emplace(regions, MakeFixture(regions, /*epochs=*/0))
      .first->second;
}

/// Tail-latency counters for the scaling benches: google-benchmark reports
/// the mean; a serving SLO cares about p95/p99, so each iteration is also
/// timed individually and the percentiles land in the JSON as counters.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(benchmark::State& state) : state_(state) {
    samples_.reserve(1024);
  }
  ~LatencyRecorder() {
    if (samples_.empty()) return;
    std::sort(samples_.begin(), samples_.end());
    state_.counters["p50_us"] = Quantile(0.50);
    state_.counters["p95_us"] = Quantile(0.95);
    state_.counters["p99_us"] = Quantile(0.99);
  }
  void Record(std::chrono::steady_clock::time_point t0,
              std::chrono::steady_clock::time_point t1) {
    samples_.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

 private:
  double Quantile(double q) const {
    const auto i = static_cast<size_t>(q * (samples_.size() - 1));
    return samples_[i];
  }
  benchmark::State& state_;
  std::vector<double> samples_;
};

std::vector<double> Truth(const data::SlidingWindowDataset& ds, int64_t s) {
  const std::vector<float> row = ds.StepCounts(s);
  return std::vector<double>(row.begin(), row.end());
}

/// The serving SLO number: one PredictNext() on a live stream.
void BM_ServePredictNext(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.PredictNext());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServePredictNext)->Arg(4)->Arg(16)->Arg(64);

/// Per-step ingest: matched-stat refresh + ring/rolling-sum update.
void BM_ServeObserve(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  int64_t step = f.split.test_begin;
  const std::vector<double> row = Truth(f.dataset, step);
  for (auto _ : state) {
    // Replays the same realized row; the work is identical per step.
    benchmark::DoNotOptimize(predictor.Observe(row));
    ++step;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeObserve)->Arg(4)->Arg(16)->Arg(64);

/// A fleet of concurrent streams served through the thread pool.
void BM_ServePredictManyThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  Fixture& f = GetFixture(16);
  const int kFleet = 8;
  std::vector<serve::OnlinePredictor> fleet;
  for (int i = 0; i < kFleet; ++i) {
    fleet.push_back(serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                   f.split.test_begin)
                        .value());
  }
  std::vector<serve::OnlinePredictor*> ptrs;
  for (auto& p : fleet) ptrs.push_back(&p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::OnlinePredictor::PredictMany(ptrs));
  }
  state.SetItemsProcessed(state.iterations() * kFleet);
}
BENCHMARK(BM_ServePredictManyThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Mid-stream state checkpoint round trip (restartable serving nodes).
void BM_ServeStateRoundTrip(benchmark::State& state) {
  Fixture& f = GetFixture(16);
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  const std::string path = "/tmp/ealgap_bench_serve.state";
  for (auto _ : state) {
    EALGAP_CHECK(predictor.SaveState(path).ok());
    auto restored = serve::OnlinePredictor::LoadState(path, f.model.get());
    benchmark::DoNotOptimize(restored);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeStateRoundTrip);

/// Scaling curve of the serve-SLO number: one steady-state PredictNextInto
/// (arena-backed, zero-allocation) at city (20), metro (1k), and
/// metropolis (10k) region counts.
void BM_ServePredictNextRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out;
  EALGAP_CHECK(predictor.PredictNextInto(&out).ok());  // warm the buffers
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(predictor.PredictNextInto(&out));
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServePredictNextRegions)->Arg(20)->Arg(1000)->Arg(10000);

/// Scaling curve of per-step ingest: matched-stat refresh over the
/// flattened slot buffer + ring/rolling-sum update.
void BM_ServeObserveRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  const std::vector<double> row = Truth(f.dataset, f.split.test_begin);
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(predictor.Observe(row));
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeObserveRegions)->Arg(20)->Arg(1000)->Arg(10000);

/// Scaling curve of the full guarded serve step: ResilientPredictor
/// attempt + classification + in-place publish, then Observe of the
/// served values (self-rollout, so any region count replays indefinitely).
void BM_ServeResilientStepRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  serve::ResilientPredictor served(&predictor, {});
  serve::ServedPrediction out;
  EALGAP_CHECK(served.PredictNextInto(&out).ok());  // warm the buffers
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(served.PredictNextInto(&out));
    EALGAP_CHECK(served.Observe(out.values).ok());
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeResilientStepRegions)->Arg(20)->Arg(1000)->Arg(10000);

}  // namespace

// main() lives in bench_main.cc (stamps ealgap_build_type / ealgap_simd).
