// Reproduces Fig. 13: predicted vs ground-truth bike pick-up series over
// the ten test days for (a) the normal period, (b) the hurricane period,
// and (c) the Christmas period (NYC bike data). One line per test step:
//   <period> <timestamp> <ground_truth> <prediction>
// for the busiest region (the paper plots a single region's series).

#include <algorithm>
#include <iostream>
#include <numeric>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.patience = 4;
  train.seed = flags.GetInt("seed", 7);
  const int64_t limit = flags.GetInt("limit", 96);

  for (data::Period period : data::AllPeriods()) {
    data::PeriodConfig config = data::MakePeriodConfig(
        data::City::kNycBike, period, train.seed, flags.GetDouble("scale", 1.5));
    auto prepared = core::PrepareData(config);
    if (!prepared.ok()) {
      std::cerr << prepared.status().ToString() << "\n";
      return 1;
    }
    auto model = core::MakeForecaster("EALGAP", *prepared);
    if (!model.ok() ||
        !(*model)->Fit(prepared->dataset, prepared->split, train).ok()) {
      std::cerr << "training failed for " << config.label << "\n";
      return 1;
    }
    // Busiest region over the test range.
    const auto& series = prepared->dataset.series();
    std::vector<double> volume(series.num_regions, 0.0);
    for (int64_t s = prepared->split.test_begin; s < prepared->split.test_end;
         ++s) {
      for (int r = 0; r < series.num_regions; ++r) volume[r] += series.At(r, s);
    }
    const int busiest = static_cast<int>(std::distance(
        volume.begin(), std::max_element(volume.begin(), volume.end())));
    std::cout << "# Fig. 13 (" << config.label << ") — region " << busiest
              << ", first " << limit << " test steps\n";
    std::cout << "period timestamp truth prediction\n";
    int64_t printed = 0;
    double err = 0.0, tot = 0.0;
    for (int64_t s = prepared->split.test_begin; s < prepared->split.test_end;
         ++s) {
      auto pred = (*model)->Predict(prepared->dataset, s);
      if (!pred.ok()) {
        std::cerr << pred.status().ToString() << "\n";
        return 1;
      }
      const double truth = series.At(busiest, s);
      err += std::abs(truth - (*pred)[busiest]);
      tot += truth;
      if (printed++ < limit) {
        std::cout << config.label << " " << FormatDate(series.DateOfStep(s))
                  << "T" << series.HourOfStep(s) << " "
                  << TablePrinter::Num(truth, 0) << " "
                  << TablePrinter::Num((*pred)[busiest], 1) << "\n";
      }
    }
    std::cout << "# region ER over full test range: "
              << TablePrinter::Num(err / std::max(tot, 1.0)) << "\n\n";
  }
  return 0;
}
