// Reproduces the Sec. VI-B training-cost comparison: average wall-clock
// time of one optimization step for each deep scheme (the paper reports
// per-step-per-epoch averages on its GPU desktop; here the substrate is a
// single CPU core, so magnitudes differ but the ordering is comparable).

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "core/experiment.h"

namespace {

using namespace ealgap;

// One small shared experiment (8 regions, 60 days) so each benchmark run
// stays in milliseconds.
const core::PreparedData& SmallData() {
  static core::PreparedData* data = [] {
    data::PeriodConfig config = data::MakePeriodConfig(
        data::City::kNycBike, data::Period::kWeather, /*seed=*/7,
        /*scale=*/0.6);
    config.generator.num_stations = 60;
    config.generator.num_regions = 8;
    config.generator.num_days = 60;
    config.partition.num_regions = 8;
    auto prepared = core::PrepareData(config);
    EALGAP_CHECK(prepared.ok()) << prepared.status().ToString();
    return new core::PreparedData(std::move(prepared).value());
  }();
  return *data;
}

void BM_TrainStep(benchmark::State& state, const char* scheme) {
  const core::PreparedData& data = SmallData();
  TrainConfig train;
  train.epochs = 1;
  train.patience = 1;
  double step_ms = 0.0;
  for (auto _ : state) {
    auto result = core::RunScheme(scheme, data, train);
    EALGAP_CHECK(result.ok()) << result.status().ToString();
    step_ms = result->train_step_ms;
    benchmark::DoNotOptimize(result->metrics.er);
  }
  state.counters["opt_step_ms"] = step_ms;
}

}  // namespace

BENCHMARK_CAPTURE(BM_TrainStep, gru, "GRU")->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrainStep, lstm, "LSTM")->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrainStep, rnn, "RNN")->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrainStep, st_norm, "ST-Norm")->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrainStep, st_resnet, "ST-ResNet")->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrainStep, evl, "EVL")->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrainStep, chat, "CHAT")->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrainStep, ealgap, "EALGAP")->Iterations(1)->Unit(benchmark::kMillisecond);

// main() lives in bench_main.cc (stamps ealgap_build_type / ealgap_simd).
