// Reproduces Figs. 14 and 15: ground-truth vs predicted citywide heatmaps
// for one test step during the hurricane (Fig. 14) and one during the
// Christmas holidays (Fig. 15). Each region is reported with its center
// coordinates so the output can be plotted directly.

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

namespace {

bool RunOne(data::Period period, const char* figure, int hour,
            const TrainConfig& train, const Flags& flags) {
  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, period, train.seed, flags.GetDouble("scale", 1.5));
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return false;
  }
  auto model = core::MakeForecaster("EALGAP", *prepared);
  if (!model.ok() ||
      !(*model)->Fit(prepared->dataset, prepared->split, train).ok()) {
    std::cerr << "training failed\n";
    return false;
  }
  const auto& series = prepared->dataset.series();
  // The event day inside the test window (the anomaly event's first day).
  CivilDate event_date = series.DateOfStep(prepared->split.test_begin);
  for (const auto& e : config.generator.events) {
    if (e.kind != data::EventKind::kMildWeather) event_date = e.start_date;
  }
  const int64_t step =
      (DaysSinceEpoch(event_date) - DaysSinceEpoch(series.start_date)) * 24 +
      hour;
  auto pred = (*model)->Predict(prepared->dataset, step);
  if (!pred.ok()) {
    std::cerr << pred.status().ToString() << "\n";
    return false;
  }
  std::cout << figure << " — " << config.label << " heatmap at "
            << FormatDate(event_date) << " " << hour << ":00\n";
  TablePrinter table("", {"region", "lon", "lat", "truth", "prediction"});
  for (int r = 0; r < series.num_regions; ++r) {
    table.AddRow({std::to_string(r),
                  TablePrinter::Num(prepared->partition.region_centers[r].x, 4),
                  TablePrinter::Num(prepared->partition.region_centers[r].y, 4),
                  TablePrinter::Num(series.At(r, step), 0),
                  TablePrinter::Num((*pred)[r], 1)});
  }
  table.Print(std::cout);
  std::cout << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.patience = 4;
  train.seed = flags.GetInt("seed", 7);
  const int hour = static_cast<int>(flags.GetInt("hour", 17));
  if (!RunOne(data::Period::kWeather, "Fig. 14", hour, train, flags)) return 1;
  if (!RunOne(data::Period::kHoliday, "Fig. 15", hour, train, flags)) return 1;
  return 0;
}
