#ifndef EALGAP_BENCH_TABLE_COMMON_H_
#define EALGAP_BENCH_TABLE_COMMON_H_

#include "data/dataset_configs.h"

namespace ealgap {
namespace bench {

/// Shared driver for the Table II-V binaries: runs every scheme over the
/// city's three test periods and prints the paper-style table.
///
/// Flags: --epochs N  --lr F  --scale F  --seed N  --schemes a,b,c
///        --full (paper-leaning effort: more epochs, more data)
///        --csv  (machine-readable output)
int RunTableBench(data::City city, const char* table_name, int argc,
                  char** argv);

}  // namespace bench
}  // namespace ealgap

#endif  // EALGAP_BENCH_TABLE_COMMON_H_
