// google-benchmark microbenchmarks of the sharded serving daemon: the
// bounded-queue ingest edge, the steady-state virtual-time tick at several
// fleet sizes (the number an admission-control SLO budget is built from),
// the same tick under deliberate overload (shed path), and the
// quarantine -> restart-from-checkpoint recovery cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bounded_queue.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/ealgap.h"
#include "data/aggregate.h"
#include "data/dataset.h"
#include "data/synthetic_city.h"
#include "serve/daemon.h"
#include "serve/load_gen.h"
#include "serve/shard.h"

namespace {

using namespace ealgap;

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(GetNumThreads()) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(saved_); }

 private:
  int saved_;
};

constexpr int kRegionsPerShard = 8;

/// Builds a daemon fleet over slices of one synthetic city. Models are
/// initialized but untrained (epochs=0): weight values do not change the
/// control-plane or forward-pass cost being measured, and training would
/// dominate suite runtime (same tradeoff as micro_serve's scale fixtures).
std::unique_ptr<serve::Daemon> MakeFleet(int shards,
                                         const serve::DaemonConfig& dcfg,
                                         size_t queue_capacity,
                                         const std::string& state_root = "") {
  data::RegionSeriesConfig series_config;
  series_config.num_regions = shards * kRegionsPerShard;
  series_config.num_days = 40;
  const data::MobilitySeries city = data::GenerateRegionSeries(series_config);
  auto daemon = std::make_unique<serve::Daemon>(dcfg);
  for (int s = 0; s < shards; ++s) {
    auto slice = data::SliceRegions(city, s * kRegionsPerShard,
                                    (s + 1) * kRegionsPerShard);
    EALGAP_CHECK(slice.ok());
    data::DatasetOptions dopts;
    dopts.history_length = 5;
    dopts.num_windows = 3;
    dopts.norm_history = 3;
    auto dataset =
        data::SlidingWindowDataset::Create(std::move(slice).value(), dopts);
    EALGAP_CHECK(dataset.ok());
    auto split = data::MakeChronoSplit(*dataset);
    EALGAP_CHECK(split.ok());
    auto model = std::make_unique<core::EalgapForecaster>();
    TrainConfig train;
    train.epochs = 0;
    train.seed = 11 + s;
    EALGAP_CHECK(model->Fit(*dataset, *split, train).ok());
    serve::ShardConfig config;
    config.name = "s" + std::to_string(s);
    config.queue_capacity = queue_capacity;
    if (!state_root.empty()) config.state_dir = state_root + "/" + config.name;
    config.guard.on_bad_value = serve::RepairPolicy::kImpute;
    config.guard.on_gap = serve::RepairPolicy::kImpute;
    config.guard.max_gap_steps = 4096;
    auto shard = serve::Shard::Create(std::move(*dataset), std::move(model),
                                      split->test_begin, config);
    EALGAP_CHECK(shard.ok());
    daemon->AddShard(std::move(shard).value());
  }
  return daemon;
}

void BM_BoundedQueuePushPop(benchmark::State& state) {
  BoundedQueue<serve::Request> queue(1024);
  serve::Request req;
  req.kind = serve::RequestKind::kPredict;
  int64_t ops = 0;
  for (auto _ : state) {
    req.id = ops;
    benchmark::DoNotOptimize(queue.TryPush(req));
    serve::Request out;
    benchmark::DoNotOptimize(queue.TryPop(&out));
    ++ops;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_BoundedQueuePushPop);

/// Steady-state tick: moderate load every shard keeps up with. Items =
/// predict answers, so items/s is the fleet's serving throughput.
void BM_DaemonTick(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  ScopedThreads threads(4);
  serve::DaemonConfig dcfg;
  auto daemon = MakeFleet(shards, dcfg, 256);
  serve::LoadGenConfig lcfg;
  lcfg.num_shards = shards;
  lcfg.phases = {{32, 4.0}};
  serve::LoadGen gen(lcfg);
  std::vector<int> arrivals;
  for (auto _ : state) {
    gen.ArrivalsAt(daemon->now_tick(), &arrivals);
    daemon->Tick(arrivals);
  }
  const serve::SloReport report = daemon->Report();
  state.SetItemsProcessed(report.served_model + report.served_degraded);
  state.counters["shed"] = static_cast<double>(report.shed_overload_predict);
}
BENCHMARK(BM_DaemonTick)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

/// The same tick drowning: 64 predicts/tick against a 16-slot queue and
/// batch_max 8. Measures the cost of REJECTING — admission control has to
/// be much cheaper than serving, or overload cascades.
void BM_DaemonTickOverload(benchmark::State& state) {
  ScopedThreads threads(4);
  serve::DaemonConfig dcfg;
  dcfg.batch_max = 8;
  auto daemon = MakeFleet(2, dcfg, 16);
  serve::LoadGenConfig lcfg;
  lcfg.num_shards = 2;
  lcfg.phases = {{32, 64.0}};
  serve::LoadGen gen(lcfg);
  std::vector<int> arrivals;
  for (auto _ : state) {
    gen.ArrivalsAt(daemon->now_tick(), &arrivals);
    daemon->Tick(arrivals);
  }
  const serve::SloReport report = daemon->Report();
  state.SetItemsProcessed(report.predict_requests);
  state.counters["shed"] = static_cast<double>(report.shed_overload_predict);
}
BENCHMARK(BM_DaemonTickOverload)->Unit(benchmark::kMicrosecond);

/// Quarantine -> restart from the on-disk CRC'd checkpoint: the recovery
/// latency a watchdog-supervised shard pays before re-entering probation.
void BM_ShardRestartFromCheckpoint(benchmark::State& state) {
  const std::string root = "/tmp/ealgap_bench_daemon_state";
  auto daemon = MakeFleet(1, serve::DaemonConfig{}, 64, root);
  serve::Shard* shard = daemon->shard(0);
  for (auto _ : state) {
    state.PauseTiming();
    shard->BeginQuarantine(daemon->now_tick(), /*injected_crash=*/false);
    state.ResumeTiming();
    EALGAP_CHECK(shard->Restart().ok());
  }
}
BENCHMARK(BM_ShardRestartFromCheckpoint)->Unit(benchmark::kMillisecond);

}  // namespace
