// Reproduces Fig. 11: ablation studies on the NYC bike data during the
// hurricane —
//   (i)   complete EALGAP
//   (ii)  Global Impact Modeling Module only
//   (iii) Extreme Degree & Local Impact Modeling Module only (MLP global)
//   (iv)  normal distribution replacing the exponential
//   (v)   region partitioning with DBSCAN
//   (vi)  region partitioning with OPTICS

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t seed = flags.GetInt("seed", 7);
  const double scale = flags.GetDouble("scale", 1.5);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.patience = 4;
  train.seed = seed;

  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, seed, scale);

  TablePrinter table("Fig. 11 — ablations, NYC bike pick-ups during the "
                     "hurricane test period",
                     {"variant", "ER", "MSLE", "R2"});

  auto add_row = [&](const std::string& label, const std::string& scheme,
                     const core::PreparedData& prepared) -> bool {
    auto result = core::RunScheme(scheme, prepared, train);
    if (!result.ok()) {
      std::cerr << label << ": " << result.status().ToString() << "\n";
      return false;
    }
    table.AddRow({label, TablePrinter::Num(result->metrics.er),
                  TablePrinter::Num(result->metrics.msle),
                  TablePrinter::Num(result->metrics.r2)});
    return true;
  };

  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  if (!add_row("(i) EALGAP", "EALGAP", *prepared)) return 1;
  if (!add_row("(ii) global only", "EALGAP-G", *prepared)) return 1;
  if (!add_row("(iii) extreme only", "EALGAP-E", *prepared)) return 1;
  if (!add_row("(iv) normal dist", "EALGAP-N", *prepared)) return 1;

  // (v)/(vi): density-based partitions replace k-means.
  data::PartitionOptions dbscan = config.partition;
  dbscan.method = data::PartitionMethod::kDbscan;
  dbscan.eps = flags.GetDouble("eps", 0.008);
  auto prepared_db = core::PrepareData(config, dbscan);
  if (!prepared_db.ok()) {
    std::cerr << "DBSCAN prep: " << prepared_db.status().ToString() << "\n";
    return 1;
  }
  std::cout << "(v) DBSCAN produced " << prepared_db->partition.num_regions
            << " regions\n";
  if (!add_row("(v) DBSCAN", "EALGAP", *prepared_db)) return 1;

  data::PartitionOptions optics = dbscan;
  optics.method = data::PartitionMethod::kOptics;
  auto prepared_op = core::PrepareData(config, optics);
  if (!prepared_op.ok()) {
    std::cerr << "OPTICS prep: " << prepared_op.status().ToString() << "\n";
    return 1;
  }
  std::cout << "(vi) OPTICS produced " << prepared_op->partition.num_regions
            << " regions\n\n";
  if (!add_row("(vi) OPTICS", "EALGAP", *prepared_op)) return 1;

  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 11): (i) best; (iii) better than "
               "(ii); (iv) worse than (i).\n";
  return 0;
}
