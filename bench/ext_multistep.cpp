// Extension bench (future work in the paper's one-step setting): recursive
// multi-step forecasting. For each horizon h, predictions for steps
// t+1..t+h are produced by feeding the model its own outputs; the table
// reports the ER at each horizon on the NYC bike hurricane test days.

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/rollout.h"
#include "stats/metrics.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.seed = flags.GetInt("seed", 7);
  const int max_horizon = static_cast<int>(flags.GetInt("horizon", 6));

  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, train.seed,
      flags.GetDouble("scale", 1.5));
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table(
      "Extension — recursive multi-step forecast ER by horizon "
      "(NYC bike, hurricane test days)",
      {"scheme", "h=1", "h=2", "h=3", "h=6"});
  const std::vector<int> horizons = {1, 2, 3, 6};
  for (const std::string& scheme : {std::string("GRU"), std::string("EALGAP")}) {
    auto model = core::MakeForecaster(scheme, *prepared);
    if (!model.ok() ||
        !(*model)->Fit(prepared->dataset, prepared->split, train).ok()) {
      std::cerr << scheme << " training failed\n";
      return 1;
    }
    // Roll out from every 12th test step to bound runtime.
    std::vector<std::vector<double>> pred_h(max_horizon), truth_h(max_horizon);
    const auto& series = prepared->dataset.series();
    for (int64_t s = prepared->split.test_begin;
         s + max_horizon <= prepared->split.test_end; s += 12) {
      auto rollout =
          core::RolloutForecast(**model, prepared->dataset, s, max_horizon);
      if (!rollout.ok()) {
        std::cerr << rollout.status().ToString() << "\n";
        return 1;
      }
      for (int h = 0; h < max_horizon; ++h) {
        for (int r = 0; r < series.num_regions; ++r) {
          pred_h[h].push_back((*rollout)[h][r]);
          truth_h[h].push_back(series.At(r, s + h));
        }
      }
    }
    std::vector<std::string> row = {scheme};
    for (int h : horizons) {
      if (h > max_horizon) break;
      row.push_back(
          TablePrinter::Num(stats::ErrorRate(pred_h[h - 1], truth_h[h - 1])));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected: errors grow with horizon; EALGAP degrades more "
               "slowly thanks to the matched-statistics anchor.\n";
  return 0;
}
