// Extension bench: sensitivity to the number of regions. The paper fixes
// 20 (NYC) / 18 (Chicago); this sweep reports clustering quality (mean
// silhouette) and EALGAP accuracy across region counts.

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "cluster/silhouette.h"
#include "core/experiment.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 12));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.seed = flags.GetInt("seed", 7);

  TablePrinter table(
      "Extension — region-count sensitivity (NYC bike, hurricane)",
      {"regions", "silhouette", "ER", "MSLE"});
  for (int k : {10, 15, 20, 25, 30}) {
    data::PeriodConfig config = data::MakePeriodConfig(
        data::City::kNycBike, data::Period::kWeather, train.seed,
        flags.GetDouble("scale", 1.5));
    config.partition.num_regions = k;
    auto prepared = core::PrepareData(config);
    if (!prepared.ok()) {
      std::cerr << prepared.status().ToString() << "\n";
      return 1;
    }
    std::vector<cluster::Point2> points;
    for (const auto& s : prepared->stations) {
      points.push_back({s.lon, s.lat});
    }
    auto silhouette = cluster::MeanSilhouette(
        points, prepared->partition.station_region);
    auto result = core::RunScheme("EALGAP", *prepared, train);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({std::to_string(k),
                  TablePrinter::Num(silhouette.ok() ? *silhouette : -1, 3),
                  TablePrinter::Num(result->metrics.er),
                  TablePrinter::Num(result->metrics.msle)});
  }
  table.Print(std::cout);
  return 0;
}
