// Reproduces Figs. 2 and 3: the hurricane's instantaneous impact on
// station-level pick-ups (day before vs. event day) and its local impact on
// region-level pick-ups (historical weekday average vs. event day).

#include <iostream>
#include <map>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

namespace {

// Daily pick-ups per station id on `date`.
std::map<int, int64_t> StationPickups(const std::vector<data::TripRecord>& trips,
                                      const CivilDate& date) {
  const int64_t begin = DaysSinceEpoch(date) * 86400;
  const int64_t end = begin + 86400;
  std::map<int, int64_t> out;
  for (const auto& t : trips) {
    if (t.start_seconds >= begin && t.start_seconds < end) {
      ++out[t.start_station];
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, flags.GetInt("seed", 7),
      flags.GetDouble("scale", 1.5));
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  const auto& city = prepared->city;
  // The hurricane is the non-mild weather event on the calendar.
  CivilDate event_date{};
  for (const auto& e : config.generator.events) {
    if (e.kind == data::EventKind::kHurricane) event_date = e.start_date;
  }
  const CivilDate before = AddDays(event_date, -1);

  // --- Fig. 2: station-level pick-ups, day before vs event day.
  auto pickups_before = StationPickups(city.trips, before);
  auto pickups_event = StationPickups(city.trips, event_date);
  int64_t total_before = 0, total_event = 0;
  for (const auto& [sid, c] : pickups_before) total_before += c;
  for (const auto& [sid, c] : pickups_event) total_event += c;
  std::cout << "Fig. 2 — station pick-ups on " << FormatDate(before)
            << " (before) vs " << FormatDate(event_date)
            << " (hurricane):\n";
  std::cout << "  citywide: " << total_before << " -> " << total_event << " ("
            << TablePrinter::Num(
                   100.0 * (1.0 - double(total_event) /
                                      std::max<int64_t>(total_before, 1)),
                   1)
            << "% drop)\n";
  const int show = static_cast<int>(flags.GetInt("stations", 15));
  TablePrinter fig2("  first stations (id, lon, lat, before, hurricane):",
                    {"station", "lon", "lat", "before", "hurricane"});
  int printed = 0;
  for (const auto& s : city.stations) {
    if (printed++ >= show) break;
    fig2.AddRow({std::to_string(s.id), TablePrinter::Num(s.lon, 4),
                 TablePrinter::Num(s.lat, 4),
                 std::to_string(pickups_before[s.id]),
                 std::to_string(pickups_event[s.id])});
  }
  fig2.Print(std::cout);

  // --- Fig. 3: region-level, historical weekday average vs event day.
  const auto& series = prepared->dataset.series();
  const int64_t event_day_index =
      DaysSinceEpoch(event_date) - DaysSinceEpoch(series.start_date);
  std::cout << "\nFig. 3 — region daily pick-ups: historical weekday average "
               "vs hurricane day:\n";
  TablePrinter fig3("", {"region", "weekday_avg", "hurricane", "drop%"});
  for (int r = 0; r < series.num_regions; ++r) {
    double avg = 0.0;
    int days = 0;
    for (int64_t d = 0; d < event_day_index; ++d) {
      if (IsWeekend(AddDays(series.start_date, d))) continue;
      double daily = 0.0;
      for (int h = 0; h < 24; ++h) daily += series.At(r, d * 24 + h);
      avg += daily;
      ++days;
    }
    avg /= std::max(days, 1);
    double event_total = 0.0;
    for (int h = 0; h < 24; ++h) {
      event_total += series.At(r, event_day_index * 24 + h);
    }
    fig3.AddRow({std::to_string(r), TablePrinter::Num(avg, 1),
                 TablePrinter::Num(event_total, 1),
                 TablePrinter::Num(100.0 * (1.0 - event_total / avg), 1)});
  }
  fig3.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 5): drops of roughly 19%-34% "
               "that vary by region.\n";
  return 0;
}
