// Reproduces Fig. 7: the empirical distribution of hourly pick-up volumes
// and the fitted exponential PDF, plus the exponential-vs-normal
// log-likelihood comparison that justifies the paper's choice (Sec. V-A).

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "stats/distribution.h"
#include "stats/histogram.h"
#include "stats/timeseries.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kNormal, flags.GetInt("seed", 7),
      flags.GetDouble("scale", 1.5));
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  const auto& series = prepared->dataset.series();
  std::vector<double> values;
  values.reserve(series.counts.numel());
  const float* p = series.counts.data();
  for (int64_t i = 0; i < series.counts.numel(); ++i) values.push_back(p[i]);

  auto exp_fit = stats::ExponentialDistribution::Fit(values);
  auto norm_fit = stats::NormalDistribution::Fit(values);
  auto hist = stats::Histogram::Build(values, 25);
  if (!exp_fit.ok() || !norm_fit.ok() || !hist.ok()) {
    std::cerr << "fit failed\n";
    return 1;
  }
  std::cout << "Fig. 7 — hourly pick-up density and fitted PDFs ("
            << values.size() << " region-hours)\n";
  std::cout << "fitted exponential rate lambda = "
            << TablePrinter::Num(exp_fit->lambda(), 5) << " (mean "
            << TablePrinter::Num(exp_fit->Mean(), 2) << ")\n\n";
  TablePrinter table("", {"bin_center", "empirical", "exp_pdf", "normal_pdf"});
  for (int b = 0; b < hist->num_bins(); ++b) {
    const double x = hist->BinCenter(b);
    table.AddRow({TablePrinter::Num(x, 1), TablePrinter::Num(hist->Density(b), 5),
                  TablePrinter::Num(exp_fit->Pdf(x), 5),
                  TablePrinter::Num(norm_fit->Pdf(x), 5)});
  }
  table.Print(std::cout);
  const double ll_exp = exp_fit->LogLikelihood(values) / values.size();
  const double ll_norm = norm_fit->LogLikelihood(values) / values.size();
  std::cout << "\nmean log-likelihood: exponential "
            << TablePrinter::Num(ll_exp, 4) << "  vs  normal "
            << TablePrinter::Num(ll_norm, 4)
            << (ll_exp > ll_norm ? "  -> exponential fits better (as in the "
                                   "paper's empirical study)"
                                 : "  -> normal fits better")
            << "\n";
  const double ks_exp = stats::KolmogorovSmirnovStatistic(
      values, [&](double x) { return exp_fit->Cdf(x); });
  const double ks_norm = stats::KolmogorovSmirnovStatistic(
      values, [&](double x) { return norm_fit->Cdf(x); });
  std::cout << "Kolmogorov-Smirnov distance: exponential "
            << TablePrinter::Num(ks_exp, 4) << "  vs  normal "
            << TablePrinter::Num(ks_norm, 4) << "\n";
  return 0;
}
