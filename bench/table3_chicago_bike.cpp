// Reproduces Table 3: prediction results on the chicago_bike dataset.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  return ealgap::bench::RunTableBench(ealgap::data::City::kChicagoBike,
                                      "Table 3", argc, argv);
}
