// Reproduces Fig. 10: the k-means region partition of the bike stations,
// reported as region centers/sizes plus how well the partition recovers the
// generator's ground-truth regions.

#include <iostream>
#include <map>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kNormal, flags.GetInt("seed", 7),
      flags.GetDouble("scale", 1.0));
  auto city = data::GenerateCity(config.generator);
  if (!city.ok()) {
    std::cerr << city.status().ToString() << "\n";
    return 1;
  }
  auto partition = data::PartitionStations(city->stations, config.partition);
  if (!partition.ok()) {
    std::cerr << partition.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Fig. 10 — k-means partition of " << city->stations.size()
            << " stations into " << partition->num_regions << " regions\n\n";
  TablePrinter table("", {"region", "stations", "center_lon", "center_lat"});
  std::vector<int> sizes(partition->num_regions, 0);
  for (int r : partition->station_region) ++sizes[r];
  for (int r = 0; r < partition->num_regions; ++r) {
    table.AddRow({std::to_string(r), std::to_string(sizes[r]),
                  TablePrinter::Num(partition->region_centers[r].x, 4),
                  TablePrinter::Num(partition->region_centers[r].y, 4)});
  }
  table.Print(std::cout);

  // Cluster purity vs the generator's ground-truth regions.
  std::map<int, std::map<int, int>> confusion;
  for (size_t s = 0; s < city->stations.size(); ++s) {
    ++confusion[partition->station_region[s]][city->true_region[s]];
  }
  int majority = 0;
  for (const auto& [cluster, truths] : confusion) {
    int best = 0;
    for (const auto& [truth, count] : truths) best = std::max(best, count);
    majority += best;
  }
  std::cout << "\npartition purity vs generative regions: "
            << TablePrinter::Num(
                   100.0 * majority / double(city->stations.size()), 1)
            << "%\n";
  return 0;
}
