// google-benchmark microbenchmarks of the int8 quantized inference path
// (DESIGN.md §8g): the kernel primitives (dynamic activation quantization,
// int32-accumulation GEMM, dequant+bias epilogue), the float-vs-int8 layer
// forward at representative serve shapes, and the end-to-end quantized
// serve step at city (20) / metro (1k) / metropolis (10k) region counts —
// the float counterparts run in the same process so BENCH_quant.json
// carries the speedup, not just the absolute numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "core/ealgap.h"
#include "data/dataset.h"
#include "data/synthetic_city.h"
#include "nn/quant.h"
#include "serve/online_predictor.h"
#include "serve/quantized_forecaster.h"
#include "tensor/kernels.h"

namespace {

using namespace ealgap;

// ---------------------------------------------------------------------------
// Kernel-level: float matmul vs the full int8 pipeline at the same shape.
// ---------------------------------------------------------------------------

/// Deterministic value streams (no RNG in benches: identical work every
/// run keeps the regression gate stable).
float TestValue(int64_t i) {
  return static_cast<float>(((i * 2654435761u) % 2000) - 1000) * 0.01f;
}
int8_t TestQ8(int64_t i) {
  return static_cast<int8_t>(static_cast<int>((i * 2654435761u) % 255u) - 127);
}

/// Pair-interleaved int16 weight pack for a logical (k, n) matrix — the
/// layout nn/quant.cc produces and quant_gemm_rows consumes.
std::vector<int16_t> MakePack(int64_t k, int64_t n) {
  const int64_t pairs = (k + 1) / 2;
  std::vector<int16_t> pack(static_cast<size_t>(pairs * 2 * n), 0);
  for (int64_t x = 0; x < k; ++x) {
    for (int64_t j = 0; j < n; ++j) {
      pack[(x / 2) * 2 * n + 2 * j + (x & 1)] = TestQ8(x * n + j);
    }
  }
  return pack;
}

/// o = a(1,k) x w(k,n) in float — the kernel the int8 path replaces.
void BM_FloatGemv(benchmark::State& state) {
  const int64_t k = state.range(0);
  const int64_t n = state.range(1);
  std::vector<float> a(static_cast<size_t>(k));
  std::vector<float> w(static_cast<size_t>(k * n));
  std::vector<float> o(static_cast<size_t>(n));
  for (int64_t i = 0; i < k; ++i) a[static_cast<size_t>(i)] = TestValue(i);
  for (int64_t i = 0; i < k * n; ++i) {
    w[static_cast<size_t>(i)] = TestValue(i + 7);
  }
  const kernels::KernelTable& kt = kernels::Active();
  for (auto _ : state) {
    std::fill(o.begin(), o.end(), 0.0f);  // matmul_rows accumulates
    kt.matmul_rows(a.data(), w.data(), o.data(), 0, 1, k, n);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * k * n);
}
BENCHMARK(BM_FloatGemv)
    ->Args({64, 64})
    ->Args({256, 256})
    ->Args({1024, 1024})
    ->Args({4096, 1024});

/// The full int8 pipeline at the same shape, following the serve kernel
/// policy (kernels.h, kQuantFusedMaxK): dynamic activation quant (absmax
/// + quantize), then the fused register-tile kernel for shallow
/// reductions or the streaming GEMM + dequant epilogue for deep ones.
/// Weights are pre-packed (that is serve reality: packs are built once at
/// checkpoint load, only activations quantize per step).
void BM_QuantGemv(benchmark::State& state) {
  const int64_t k = state.range(0);
  const int64_t n = state.range(1);
  std::vector<float> a(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) a[static_cast<size_t>(i)] = TestValue(i);
  const std::vector<int16_t> pack = MakePack(k, n);
  std::vector<float> w_scale(static_cast<size_t>(n), 0.01f);
  std::vector<float> bias(static_cast<size_t>(n), 0.5f);
  std::vector<int8_t> aq(static_cast<size_t>(k));
  std::vector<int32_t> acc(static_cast<size_t>(n));
  std::vector<float> o(static_cast<size_t>(n));
  const bool fused = k <= kernels::kQuantFusedMaxK;
  const kernels::KernelTable& kt = kernels::Active();
  for (auto _ : state) {
    const float absmax = kt.absmax_block(a.data(), k);
    const float inv_scale = 127.0f / absmax;
    kt.quantize_s8(a.data(), inv_scale, aq.data(), k);
    if (fused) {
      kt.quant_gemm_dequant_rows(aq.data(), pack.data(), absmax / 127.0f,
                                 w_scale.data(), bias.data(), o.data(), 0, 1,
                                 k, n);
    } else {
      kt.quant_gemm_rows(aq.data(), pack.data(), acc.data(), 0, 1, k, n);
      kt.dequant_bias_row(acc.data(), absmax / 127.0f, w_scale.data(),
                          bias.data(), o.data(), n);
    }
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * k * n);
}
BENCHMARK(BM_QuantGemv)
    ->Args({64, 64})
    ->Args({256, 256})
    ->Args({1024, 1024})
    ->Args({4096, 1024});

/// Tall-activation GEMM (rows = num_regions, k and n = feature/hidden
/// widths — the per-region head and recurrent-cell shape). Float baseline
/// vs the fused int8 kernel, which holds the accumulator tile in
/// registers across the whole reduction.
void BM_FloatGemmTall(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t k = 32, n = 32;
  std::vector<float> a(static_cast<size_t>(m * k));
  for (int64_t i = 0; i < m * k; ++i) {
    a[static_cast<size_t>(i)] = TestValue(i);
  }
  std::vector<float> w(static_cast<size_t>(k * n));
  for (int64_t i = 0; i < k * n; ++i) {
    w[static_cast<size_t>(i)] = TestValue(i + 7);
  }
  std::vector<float> o(static_cast<size_t>(m * n));
  const kernels::KernelTable& kt = kernels::Active();
  for (auto _ : state) {
    std::fill(o.begin(), o.end(), 0.0f);  // matmul_rows accumulates
    kt.matmul_rows(a.data(), w.data(), o.data(), 0, m, k, n);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_FloatGemmTall)->Arg(1000)->Arg(10000);

void BM_QuantGemmTall(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t k = 32, n = 32;
  std::vector<float> a(static_cast<size_t>(m * k));
  for (int64_t i = 0; i < m * k; ++i) {
    a[static_cast<size_t>(i)] = TestValue(i);
  }
  const std::vector<int16_t> pack = MakePack(k, n);
  std::vector<float> w_scale(static_cast<size_t>(n), 0.01f);
  std::vector<float> bias(static_cast<size_t>(n), 0.5f);
  std::vector<int8_t> aq(static_cast<size_t>(m * k));
  std::vector<float> o(static_cast<size_t>(m * n));
  const kernels::KernelTable& kt = kernels::Active();
  for (auto _ : state) {
    const float absmax = kt.absmax_block(a.data(), m * k);
    const float inv_scale = 127.0f / absmax;
    kt.quantize_s8(a.data(), inv_scale, aq.data(), m * k);
    kt.quant_gemm_dequant_rows(aq.data(), pack.data(), absmax / 127.0f,
                               w_scale.data(), bias.data(), o.data(), 0, m,
                               k, n);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_QuantGemmTall)->Arg(1000)->Arg(10000);

/// Per-step activation quantization alone (absmax + round/clamp/store).
void BM_QuantizeActivations(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> x(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) x[static_cast<size_t>(i)] = TestValue(i);
  std::vector<int8_t> q(static_cast<size_t>(n));
  const kernels::KernelTable& kt = kernels::Active();
  for (auto _ : state) {
    const float absmax = kt.absmax_block(x.data(), n);
    kt.quantize_s8(x.data(), 127.0f / absmax, q.data(), n);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuantizeActivations)->Arg(1024)->Arg(16384);

/// Dequant + bias epilogue alone.
void BM_DequantBiasRow(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int32_t> acc(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    acc[static_cast<size_t>(i)] = static_cast<int32_t>((i * 97) % 20011) - 10000;
  }
  std::vector<float> w_scale(static_cast<size_t>(n), 0.01f);
  std::vector<float> bias(static_cast<size_t>(n), 0.5f);
  std::vector<float> o(static_cast<size_t>(n));
  const kernels::KernelTable& kt = kernels::Active();
  for (auto _ : state) {
    kt.dequant_bias_row(acc.data(), 0.02f, w_scale.data(), bias.data(),
                        o.data(), n);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DequantBiasRow)->Arg(1024)->Arg(16384);

// ---------------------------------------------------------------------------
// End-to-end: the quantized serve step vs the float serve step.
// ---------------------------------------------------------------------------

/// One fitted model + dataset per region count, shared across iterations.
/// Fit runs with epochs=0 (initialized, never trained): weight VALUES do
/// not change the serve-step cost — micro_serve.cpp uses the same trick.
struct Fixture {
  data::SlidingWindowDataset dataset;
  data::StepRanges split;
  std::unique_ptr<core::EalgapForecaster> model;
};

Fixture& GetScaleFixture(int regions) {
  static std::map<int, Fixture> cache;
  auto it = cache.find(regions);
  if (it != cache.end()) return it->second;
  Fixture f;
  data::RegionSeriesConfig series_config;
  series_config.num_regions = regions;
  series_config.num_days = 40;
  data::DatasetOptions options;
  options.history_length = 5;
  options.num_windows = 3;
  options.norm_history = 3;
  f.dataset = data::SlidingWindowDataset::Create(
                  data::GenerateRegionSeries(series_config), options)
                  .value();
  f.split = data::MakeChronoSplit(f.dataset).value();
  f.model = std::make_unique<core::EalgapForecaster>();
  TrainConfig train;
  train.epochs = 0;
  train.seed = 11;
  EALGAP_CHECK(f.model->Fit(f.dataset, f.split, train).ok());
  return cache.emplace(regions, std::move(f)).first->second;
}

/// Tail latency counters, same shape as micro_serve.cpp's.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(benchmark::State& state) : state_(state) {
    samples_.reserve(1024);
  }
  ~LatencyRecorder() {
    if (samples_.empty()) return;
    std::sort(samples_.begin(), samples_.end());
    state_.counters["p50_us"] = Quantile(0.50);
    state_.counters["p95_us"] = Quantile(0.95);
    state_.counters["p99_us"] = Quantile(0.99);
  }
  void Record(std::chrono::steady_clock::time_point t0,
              std::chrono::steady_clock::time_point t1) {
    samples_.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

 private:
  double Quantile(double q) const {
    const auto i = static_cast<size_t>(q * (samples_.size() - 1));
    return samples_[i];
  }
  benchmark::State& state_;
  std::vector<double> samples_;
};

/// Float baseline in THIS binary so the speedup is one JSON file, not a
/// cross-file join against BENCH_serve.json.
void BM_ServeFloatPredictNextRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out;
  EALGAP_CHECK(predictor.PredictNextInto(&out).ok());  // warm the buffers
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(predictor.PredictNextInto(&out));
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeFloatPredictNextRegions)->Arg(20)->Arg(1000)->Arg(10000);

/// The quantized serve step, probing disabled: pure int8 forward.
void BM_ServeQuantPredictNextRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  serve::QuantOptions qopt;
  qopt.check_every = 0;
  auto quant =
      serve::QuantizedForecaster::Create(f.model.get(), qopt).value();
  auto predictor = serve::OnlinePredictor::Create(quant.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out;
  EALGAP_CHECK(predictor.PredictNextInto(&out).ok());  // warm the buffers
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(predictor.PredictNextInto(&out));
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeQuantPredictNextRegions)->Arg(20)->Arg(1000)->Arg(10000);

/// A probing serve step: the float shadow forward runs EVERY step (the
/// bench replays one target step, so a %64 cadence would be all-or-nothing
/// here). This is the worst-case guarded step; a deployment at
/// check_every=N pays (this - pure_quant) / N extra on average.
void BM_ServeQuantProbedPredictNextRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  serve::QuantOptions qopt;
  qopt.check_every = 1;        // probe every step
  qopt.drift_threshold = 1e9;  // measure probing cost, not fallback serving
  auto quant =
      serve::QuantizedForecaster::Create(f.model.get(), qopt).value();
  auto predictor = serve::OnlinePredictor::Create(quant.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out;
  EALGAP_CHECK(predictor.PredictNextInto(&out).ok());  // warm the buffers
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(predictor.PredictNextInto(&out));
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeQuantProbedPredictNextRegions)
    ->Arg(20)
    ->Arg(1000)
    ->Arg(10000);

}  // namespace

// main() lives in bench_main.cc (stamps ealgap_build_type / ealgap_simd).
