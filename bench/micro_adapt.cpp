// google-benchmark microbenchmarks of the test-time adaptation layer
// (DESIGN.md §8h): the per-step tracking overhead the AdaptivePredictor
// adds to a serve step (observation backfill, EWMA/CUSUM detector, ring
// clone, A/B scoring), the cost of one full adaptation attempt (snapshot,
// micro-fine-tune, holdout validation, commit-or-rollback), and the
// adapt.state checkpoint round trip. The float baseline runs in the same
// process so BENCH_adapt.json carries the overhead ratio, not just the
// absolute numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/ealgap.h"
#include "data/dataset.h"
#include "data/synthetic_city.h"
#include "serve/adaptive_predictor.h"
#include "serve/online_predictor.h"

namespace {

using namespace ealgap;

/// One fitted model + dataset per region count, shared across iterations.
/// Fit runs with epochs=0 (initialized, never trained): weight VALUES do
/// not change the serve-step cost — micro_serve.cpp uses the same trick.
struct Fixture {
  data::SlidingWindowDataset dataset;
  data::StepRanges split;
  std::unique_ptr<core::EalgapForecaster> model;
};

Fixture MakeFixture(int regions) {
  Fixture f;
  data::RegionSeriesConfig series_config;
  series_config.num_regions = regions;
  series_config.num_days = 40;
  data::DatasetOptions options;
  options.history_length = 5;
  options.num_windows = 3;
  options.norm_history = 3;
  f.dataset = data::SlidingWindowDataset::Create(
                  data::GenerateRegionSeries(series_config), options)
                  .value();
  f.split = data::MakeChronoSplit(f.dataset).value();
  f.model = std::make_unique<core::EalgapForecaster>();
  TrainConfig train;
  train.epochs = 0;
  train.seed = 11;
  EALGAP_CHECK(f.model->Fit(f.dataset, f.split, train).ok());
  return f;
}

Fixture& GetScaleFixture(int regions) {
  static std::map<int, Fixture> cache;
  auto it = cache.find(regions);
  if (it != cache.end()) return it->second;
  return cache.emplace(regions, MakeFixture(regions)).first->second;
}

/// Tail latency counters, same shape as micro_serve.cpp's.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(benchmark::State& state) : state_(state) {
    samples_.reserve(1024);
  }
  ~LatencyRecorder() {
    if (samples_.empty()) return;
    std::sort(samples_.begin(), samples_.end());
    state_.counters["p50_us"] = Quantile(0.50);
    state_.counters["p95_us"] = Quantile(0.95);
    state_.counters["p99_us"] = Quantile(0.99);
  }
  void Record(std::chrono::steady_clock::time_point t0,
              std::chrono::steady_clock::time_point t1) {
    samples_.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

 private:
  double Quantile(double q) const {
    const auto i = static_cast<size_t>(q * (samples_.size() - 1));
    return samples_[i];
  }
  benchmark::State& state_;
  std::vector<double> samples_;
};

/// Feed the served values back as the next observation (self-rollout, so
/// any region count replays indefinitely), sanitized so the input guard
/// never rejects: non-finite -> 0, negative -> 0.
void FeedBack(const std::vector<double>& out, std::vector<double>* row) {
  row->resize(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const double v = out[i];
    (*row)[i] = std::isfinite(v) && v > 0.0 ? v : 0.0;
  }
}

// ---------------------------------------------------------------------------
// Per-step overhead: the adaptation-tracking serve step vs the float step.
// ---------------------------------------------------------------------------

/// Float baseline in THIS binary: one PredictNextInto + Observe of the
/// served values — the same loop the tracked variant runs, minus the
/// adaptive wrapper.
void BM_ServeFloatStepRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  auto predictor = serve::OnlinePredictor::Create(f.model.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out, row;
  EALGAP_CHECK(predictor.PredictNextInto(&out).ok());  // warm the buffers
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(predictor.PredictNextInto(&out));
    FeedBack(out, &row);
    EALGAP_CHECK(predictor.Observe(row).ok());
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeFloatStepRegions)->Arg(20)->Arg(1000);

/// The same step through an AdaptivePredictor that never triggers
/// (cusum_h effectively infinite): what every adapt-enabled step pays for
/// observation backfill, the EWMA/CUSUM detector, the ring clone, and
/// pre-divergence A/B scoring. delta vs BM_ServeFloatStepRegions is the
/// tracking overhead.
void BM_ServeAdaptTrackedStepRegions(benchmark::State& state) {
  Fixture& f = GetScaleFixture(static_cast<int>(state.range(0)));
  serve::AdaptOptions aopt;
  aopt.cusum_h = 1e18;  // track, never adapt
  auto adaptive =
      serve::AdaptivePredictor::Create(f.model.get(), aopt).value();
  auto predictor = serve::OnlinePredictor::Create(adaptive.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out, row;
  EALGAP_CHECK(predictor.PredictNextInto(&out).ok());  // warm the buffers
  LatencyRecorder latency(state);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(predictor.PredictNextInto(&out));
    FeedBack(out, &row);
    EALGAP_CHECK(predictor.Observe(row).ok());
    const auto t1 = std::chrono::steady_clock::now();
    latency.Record(t0, t1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["observed"] =
      static_cast<double>(adaptive->stats().observed);
}
BENCHMARK(BM_ServeAdaptTrackedStepRegions)->Arg(20)->Arg(1000);

// ---------------------------------------------------------------------------
// The adaptation attempt itself (runs OUTSIDE the timed predict path in
// production — the daemon phases it into the supervisor; this bench prices
// the supervisor-side budget, not a request's deadline).
// ---------------------------------------------------------------------------

/// One full MaybeAdapt attempt per iteration: parameter snapshot,
/// micro-fine-tune (4 SGD steps x batch 8 on the ring), holdout
/// validation, then commit or bit-exact rollback. The feed is perturbed so
/// the CUSUM detector trips every observed step, and cooldown/min_window
/// are floored so every MaybeAdapt call runs an attempt.
void BM_AdaptMicroFitAttempt(benchmark::State& state) {
  // Own fixture: attempts mutate (and roll back) the model's weights, so
  // keep this model out of the shared cache.
  static Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  serve::AdaptOptions aopt;
  aopt.cusum_k = 0.0;
  aopt.cusum_h = 0.5;
  aopt.window = 32;
  aopt.min_window = 16;
  aopt.holdout = 4;
  aopt.cooldown = 0;
  aopt.freeze_after = 1000000000;  // never freeze: price every attempt
  auto adaptive =
      serve::AdaptivePredictor::Create(f.model.get(), aopt).value();
  auto predictor = serve::OnlinePredictor::Create(adaptive.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out, row;
  // Fill the ring past min_window so the first timed call can attempt.
  for (int i = 0; i < aopt.min_window + 2; ++i) {
    EALGAP_CHECK(predictor.PredictNextInto(&out).ok());
    FeedBack(out, &row);
    for (size_t r = 0; r < row.size(); ++r) {
      row[r] += 2.0 + static_cast<double>(r % 3);  // sustained drift
    }
    EALGAP_CHECK(predictor.Observe(row).ok());
  }
  for (auto _ : state) {
    EALGAP_CHECK(predictor.PredictNextInto(&out).ok());
    FeedBack(out, &row);
    for (size_t r = 0; r < row.size(); ++r) {
      row[r] += 2.0 + static_cast<double>(r % 3);
    }
    EALGAP_CHECK(predictor.Observe(row).ok());
    auto event = adaptive->MaybeAdapt();
    EALGAP_CHECK(event.ok());
    benchmark::DoNotOptimize(event);
  }
  const serve::AdaptStats& stats = adaptive->stats();
  EALGAP_CHECK(stats.attempts > 0);
  state.counters["attempts_per_iter"] =
      static_cast<double>(stats.attempts) /
      static_cast<double>(state.iterations());
  state.counters["commits"] = static_cast<double>(stats.commits);
  state.SetItemsProcessed(stats.attempts);
}
BENCHMARK(BM_AdaptMicroFitAttempt)->Arg(20);

// ---------------------------------------------------------------------------
// Detector/freeze posture checkpoint round trip (restartable shards).
// ---------------------------------------------------------------------------

void BM_AdaptStateRoundTrip(benchmark::State& state) {
  Fixture& f = GetScaleFixture(1000);
  auto adaptive = serve::AdaptivePredictor::Create(f.model.get()).value();
  auto predictor = serve::OnlinePredictor::Create(adaptive.get(), f.dataset,
                                                  f.split.test_begin)
                       .value();
  std::vector<double> out, row;
  // A couple of steps so the per-region detector state exists.
  for (int i = 0; i < 3; ++i) {
    EALGAP_CHECK(predictor.PredictNextInto(&out).ok());
    FeedBack(out, &row);
    EALGAP_CHECK(predictor.Observe(row).ok());
  }
  const std::string path = "/tmp/ealgap_bench_adapt.state";
  for (auto _ : state) {
    EALGAP_CHECK(adaptive->SaveState(path).ok());
    benchmark::DoNotOptimize(adaptive->LoadState(path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptStateRoundTrip);

}  // namespace

// main() lives in bench_main.cc (stamps ealgap_build_type / ealgap_simd).
