// Extension bench: ablations of this implementation's own design choices
// (beyond the paper's Fig. 11) — the Eq. (10) auxiliary degree supervision
// and the attention width J of Eq. (2).

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.seed = flags.GetInt("seed", 7);

  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, train.seed,
      flags.GetDouble("scale", 1.5));
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  TablePrinter table(
      "Extension — implementation design ablations (NYC bike, hurricane)",
      {"variant", "ER", "MSLE", "R2"});
  const std::vector<std::pair<std::string, std::string>> variants = {
      {"EALGAP (default: J=1, no aux)", "EALGAP"},
      {"with Eq.(10) supervision (0.3)", "EALGAP-AUX"},
      {"attention J=4", "EALGAP-J4"},
  };
  for (const auto& [label, scheme] : variants) {
    auto result = core::RunScheme(scheme, *prepared, train);
    if (!result.ok()) {
      std::cerr << scheme << ": " << result.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({label, TablePrinter::Num(result->metrics.er),
                  TablePrinter::Num(result->metrics.msle),
                  TablePrinter::Num(result->metrics.r2)});
  }
  table.Print(std::cout);
  return 0;
}
