// Reproduces Figs. 4 and 5: hourly pick-up profiles of selected regions
// (historical weekday average vs the hurricane day), and per-region daily
// totals with the percentage drops annotated in Fig. 5.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, flags.GetInt("seed", 7),
      flags.GetDouble("scale", 1.5));
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return 1;
  }
  const auto& series = prepared->dataset.series();
  CivilDate event_date{};
  for (const auto& e : config.generator.events) {
    if (e.kind == data::EventKind::kHurricane) event_date = e.start_date;
  }
  const int64_t event_day =
      DaysSinceEpoch(event_date) - DaysSinceEpoch(series.start_date);

  // Historical weekday-average hourly profile per region.
  std::vector<std::vector<double>> avg(series.num_regions,
                                       std::vector<double>(24, 0.0));
  int weekdays = 0;
  for (int64_t d = 0; d < event_day; ++d) {
    if (IsWeekend(AddDays(series.start_date, d))) continue;
    ++weekdays;
    for (int r = 0; r < series.num_regions; ++r) {
      for (int h = 0; h < 24; ++h) avg[r][h] += series.At(r, d * 24 + h);
    }
  }
  for (auto& row : avg) {
    for (double& v : row) v /= std::max(weekdays, 1);
  }

  // Fig. 4: the four busiest regions' profiles.
  std::vector<int> order(series.num_regions);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::accumulate(avg[a].begin(), avg[a].end(), 0.0) >
           std::accumulate(avg[b].begin(), avg[b].end(), 0.0);
  });
  std::cout << "Fig. 4 — hourly pick-ups, weekday average (avg) vs hurricane "
               "day (hur), four busiest regions:\n";
  for (int k = 0; k < 4 && k < series.num_regions; ++k) {
    const int r = order[k];
    std::cout << "region " << r << ":\n  hour:";
    for (int h = 0; h < 24; ++h) printf("%7d", h);
    std::cout << "\n  avg: ";
    for (int h = 0; h < 24; ++h) printf("%7.1f", avg[r][h]);
    std::cout << "\n  hur: ";
    for (int h = 0; h < 24; ++h) {
      printf("%7.1f", series.At(r, event_day * 24 + h));
    }
    std::cout << "\n";
  }

  // Fig. 5: per-region daily totals and the drop percentages.
  std::cout << "\nFig. 5 — per-region daily pick-ups, weekday average vs "
               "hurricane day:\n";
  TablePrinter fig5("", {"region", "weekday_avg", "hurricane", "drop%"});
  double min_drop = 100, max_drop = -100;
  for (int r = 0; r < series.num_regions; ++r) {
    const double base = std::accumulate(avg[r].begin(), avg[r].end(), 0.0);
    double event_total = 0.0;
    for (int h = 0; h < 24; ++h) event_total += series.At(r, event_day * 24 + h);
    const double drop = 100.0 * (1.0 - event_total / std::max(base, 1.0));
    min_drop = std::min(min_drop, drop);
    max_drop = std::max(max_drop, drop);
    fig5.AddRow({std::to_string(r), TablePrinter::Num(base, 0),
                 TablePrinter::Num(event_total, 0),
                 TablePrinter::Num(drop, 0)});
  }
  fig5.Print(std::cout);
  std::cout << "\ndrop range: " << TablePrinter::Num(min_drop, 0) << "% .. "
            << TablePrinter::Num(max_drop, 0)
            << "%  (paper Fig. 5: 16%-37% across regions)\n";
  return 0;
}
