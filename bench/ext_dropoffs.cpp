// Extension bench: predicting drop-offs (arrivals) instead of pick-ups.
// The paper's introduction frames mobility as "arrivals and departures";
// its evaluation uses pick-ups. This bench runs the same pipeline on the
// drop-off series to show the model generalizes across the two views.

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.seed = flags.GetInt("seed", 7);

  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, train.seed,
      flags.GetDouble("scale", 1.5));

  TablePrinter table(
      "Extension — pick-ups vs drop-offs (NYC bike, hurricane period)",
      {"view", "scheme", "ER", "MSLE", "R2"});
  const std::vector<std::pair<std::string, data::CountKind>> views = {
      {"pick-ups", data::CountKind::kPickups},
      {"drop-offs", data::CountKind::kDropoffs},
  };
  for (const auto& [label, kind] : views) {
    auto prepared = core::PrepareData(config, std::nullopt, kind);
    if (!prepared.ok()) {
      std::cerr << prepared.status().ToString() << "\n";
      return 1;
    }
    for (const std::string& scheme :
         {std::string("GRU"), std::string("EALGAP")}) {
      auto result = core::RunScheme(scheme, *prepared, train);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({label, scheme, TablePrinter::Num(result->metrics.er),
                    TablePrinter::Num(result->metrics.msle),
                    TablePrinter::Num(result->metrics.r2)});
    }
  }
  table.Print(std::cout);
  return 0;
}
