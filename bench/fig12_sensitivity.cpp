// Reproduces Fig. 12: sensitivity of EALGAP to the near-history length L
// (with M fixed) and the number of windows M (with L fixed), on the NYC
// bike data during the hurricane.

#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/experiment.h"

using namespace ealgap;

namespace {

bool RunOne(data::PeriodConfig config, int l, int m, const TrainConfig& train,
            TablePrinter* table, const std::string& label) {
  config.dataset.history_length = l;
  config.dataset.num_windows = m;
  config.dataset.norm_history = m;
  auto prepared = core::PrepareData(config);
  if (!prepared.ok()) {
    std::cerr << prepared.status().ToString() << "\n";
    return false;
  }
  auto result = core::RunScheme("EALGAP", *prepared, train);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return false;
  }
  table->AddRow({label, std::to_string(l), std::to_string(m),
                 TablePrinter::Num(result->metrics.er),
                 TablePrinter::Num(result->metrics.msle)});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = static_cast<int>(flags.GetInt("epochs", 12));
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.patience = 3;
  train.seed = flags.GetInt("seed", 7);
  data::PeriodConfig config = data::MakePeriodConfig(
      data::City::kNycBike, data::Period::kWeather, train.seed,
      flags.GetDouble("scale", 1.5));

  TablePrinter table(
      "Fig. 12 — EALGAP sensitivity on L and M (NYC bike, hurricane)",
      {"sweep", "L", "M", "ER", "MSLE"});
  for (int l = 2; l <= 6; ++l) {
    if (!RunOne(config, l, 3, train, &table, "L")) return 1;
  }
  for (int m = 2; m <= 6; ++m) {
    if (!RunOne(config, 5, m, train, &table, "M")) return 1;
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 12): a shallow optimum around "
               "L=5, M=3.\n";
  return 0;
}
