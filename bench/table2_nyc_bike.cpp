// Reproduces Table 2: prediction results on the nyc_bike dataset.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  return ealgap::bench::RunTableBench(ealgap::data::City::kNycBike,
                                      "Table 2", argc, argv);
}
