// Shared benchmark main: stamps the build type and active SIMD backend into
// the JSON context so scripts/bench_to_json.sh can refuse to record debug
// numbers (the system libbenchmark reports its OWN library_build_type, which
// says nothing about how this code was compiled).

#include <benchmark/benchmark.h>

#include "tensor/kernels.h"

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ealgap_build_type", "release");
#else
  benchmark::AddCustomContext("ealgap_build_type", "debug");
#endif
  benchmark::AddCustomContext(
      "ealgap_simd",
      ealgap::kernels::BackendName(ealgap::kernels::ActiveBackend()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
